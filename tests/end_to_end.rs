//! End-to-end integration tests: Cypher text → GIR → optimization → execution, checking
//! that every optimization stage preserves results and reduces (or at least does not
//! increase) intermediate work.

use gopt::core::{GOpt, GOptConfig, GraphScopeSpec, GsRuleOnlyPlanner, Neo4jSpec, NeoPlanner};
use gopt::exec::{Backend, PartitionedBackend, SingleMachineBackend};
use gopt::glogue::{GLogue, GLogueConfig, GlogueQuery, LowOrderEstimator};
use gopt::parser::parse_cypher;
use gopt::workloads::{generate_ldbc_graph, qc_queries, qr_queries, qt_queries, LdbcScale};

struct Fixture {
    graph: gopt::graph::PropertyGraph,
    glogue: GLogue,
}

fn fixture() -> Fixture {
    let graph = generate_ldbc_graph(&LdbcScale::tiny());
    let glogue = GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 3,
            max_anchors: Some(300),
            seed: 3,
        },
    );
    Fixture { graph, glogue }
}

fn sorted_rows(
    f: &Fixture,
    plan: &gopt::gir::PhysicalPlan,
    partitions: Option<usize>,
) -> Vec<Vec<gopt::graph::PropValue>> {
    match partitions {
        Some(p) => PartitionedBackend::new(p)
            .expect("non-zero partitions")
            .execute(&f.graph, plan)
            .expect("plan executes")
            .sorted_rows(),
        None => SingleMachineBackend::new()
            .execute(&f.graph, plan)
            .expect("plan executes")
            .sorted_rows(),
    }
}

#[test]
fn optimization_stages_preserve_results_on_the_micro_workloads() {
    let f = fixture();
    let gq = GlogueQuery::new(&f.glogue);
    let spec = GraphScopeSpec;
    let queries: Vec<_> = qr_queries()
        .into_iter()
        .chain(qt_queries())
        .chain(qc_queries().into_iter().take(4))
        .collect();
    for q in queries {
        let logical = parse_cypher(&q.text, f.graph.schema()).expect("parses");
        let optimized = GOpt::new(f.graph.schema(), &gq, &spec)
            .optimize(&logical)
            .unwrap_or_else(|e| panic!("{} failed to optimize: {e}", q.name));
        let unoptimized = GOpt::new(f.graph.schema(), &gq, &spec)
            .with_config(GOptConfig::none())
            .optimize(&logical)
            .unwrap();
        let a = sorted_rows(&f, &optimized, Some(4));
        let b = sorted_rows(&f, &unoptimized, Some(4));
        assert_eq!(a, b, "{}: optimized and unoptimized plans disagree", q.name);
    }
}

#[test]
fn both_backends_and_both_specs_agree() {
    let f = fixture();
    let gq = GlogueQuery::new(&f.glogue);
    for q in qc_queries().into_iter().take(4) {
        let logical = parse_cypher(&q.text, f.graph.schema()).unwrap();
        let gs_spec = GraphScopeSpec;
        let neo_spec = Neo4jSpec;
        let gs_plan = GOpt::new(f.graph.schema(), &gq, &gs_spec)
            .optimize(&logical)
            .unwrap();
        let neo_plan = GOpt::new(f.graph.schema(), &gq, &neo_spec)
            .optimize(&logical)
            .unwrap();
        let on_partitioned = sorted_rows(&f, &gs_plan, Some(4));
        let on_single = sorted_rows(&f, &neo_plan, None);
        assert_eq!(
            on_partitioned, on_single,
            "{} differs across backends",
            q.name
        );
    }
}

#[test]
fn baselines_agree_with_gopt_on_results() {
    let f = fixture();
    let gq = GlogueQuery::new(&f.glogue);
    let lo = LowOrderEstimator::new(&f.glogue);
    let spec = GraphScopeSpec;
    for q in qr_queries().into_iter().take(6) {
        let logical = parse_cypher(&q.text, f.graph.schema()).unwrap();
        let gopt = GOpt::new(f.graph.schema(), &gq, &spec)
            .optimize(&logical)
            .unwrap();
        let neo = NeoPlanner::new(&lo).optimize(&logical).unwrap();
        let gs = GsRuleOnlyPlanner::new().optimize(&logical).unwrap();
        let a = sorted_rows(&f, &gopt, Some(2));
        let b = sorted_rows(&f, &neo, Some(2));
        let c = sorted_rows(&f, &gs, Some(2));
        assert_eq!(a, b, "{}: NeoPlanner differs", q.name);
        assert_eq!(a, c, "{}: GsRuleOnly differs", q.name);
    }
}

#[test]
fn type_inference_rejects_impossible_patterns_and_keeps_possible_ones() {
    let f = fixture();
    let gq = GlogueQuery::new(&f.glogue);
    let spec = GraphScopeSpec;
    // a Place can never have an outgoing Knows edge
    let bad = parse_cypher(
        "MATCH (a:Place)-[:Knows]->(b) RETURN count(*) AS cnt",
        f.graph.schema(),
    )
    .unwrap();
    assert!(GOpt::new(f.graph.schema(), &gq, &spec)
        .optimize(&bad)
        .is_err());
    // but the same query without the wrong label optimizes fine
    let good = parse_cypher(
        "MATCH (a)-[:Knows]->(b) RETURN count(*) AS cnt",
        f.graph.schema(),
    )
    .unwrap();
    assert!(GOpt::new(f.graph.schema(), &gq, &spec)
        .optimize(&good)
        .is_ok());
}
