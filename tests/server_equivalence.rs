//! `gopt_server` serving equivalence: N client threads hammering one server
//! with a mixed workload must each receive exactly the rows a solo
//! scalar-oracle run of the same optimized plan produces — bit-identical and
//! in the same order — across partitions {1, 2, 4} × threads {1, 2, 4}, on
//! both a cold plan cache (every client may race to optimize) and a hot one
//! (every plan served from cache).
//!
//! The thread axis can be narrowed from the environment for CI matrix runs:
//! `GOPT_THREADS=1,4` restricts the suite to those thread counts.

use gopt::exec::{Backend, ExecMode, SingleMachineBackend};
use gopt::glogue::{GLogue, GLogueConfig};
use gopt::graph::{PartitionerSpec, PropValue, PropertyGraph};
use gopt::server::{Server, ServerConfig};
use gopt::workloads::{generate_ldbc_graph, qr_queries, qt_queries, LdbcScale, NamedQuery};
use std::sync::Arc;

/// Thread counts under test: `GOPT_THREADS` (comma-separated) or {1, 2, 4}.
fn thread_matrix() -> Vec<usize> {
    match std::env::var("GOPT_THREADS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("GOPT_THREADS is comma-separated integers")
            })
            .collect(),
        _ => vec![1, 2, 4],
    }
}

fn fixture() -> (Arc<PropertyGraph>, Arc<GLogue>) {
    let graph = Arc::new(generate_ldbc_graph(&LdbcScale::tiny()));
    let glogue = Arc::new(GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 3,
            max_anchors: Some(300),
            seed: 3,
        },
    ));
    (graph, glogue)
}

fn workload() -> Vec<NamedQuery> {
    qr_queries().into_iter().chain(qt_queries()).collect()
}

/// Rows of `plan` on the scalar single-machine oracle — the strictest
/// reference: no batching, no partitioning, no worker pool.
fn oracle_rows(graph: &PropertyGraph, plan: &gopt::gir::PhysicalPlan) -> Vec<Vec<PropValue>> {
    SingleMachineBackend::new()
        .with_mode(ExecMode::Scalar)
        .execute(graph, plan)
        .expect("oracle executes")
        .rows()
}

/// Submit the whole workload from `clients` concurrent sessions and check
/// every result against `expected` (query name → oracle rows). Returns how
/// many submissions were plan-cache hits.
fn hammer(
    server: &Server,
    queries: &[NamedQuery],
    expected: &[(String, Vec<Vec<PropValue>>)],
    clients: usize,
    tag: &str,
) -> u64 {
    let hits = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..clients {
            let session = server.session();
            let hits = &hits;
            s.spawn(move || {
                // stagger starting points so clients overlap on different
                // queries instead of marching in lockstep
                for i in 0..queries.len() {
                    let q = &queries[(i + c) % queries.len()];
                    let out = session
                        .submit(&q.text)
                        .unwrap_or_else(|e| panic!("{} failed under {tag}: {e}", q.name));
                    if out.cache_hit {
                        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    let want = &expected
                        .iter()
                        .find(|(name, _)| *name == q.name)
                        .expect("oracle entry")
                        .1;
                    assert_eq!(
                        &out.result.rows(),
                        want,
                        "{} diverges from the scalar oracle under {tag} (client {c})",
                        q.name
                    );
                }
            });
        }
    });
    hits.into_inner()
}

/// The full sweep: for every (partitions, threads) combination, 4 concurrent
/// clients replay the mixed workload twice — once cold (plans optimized under
/// contention), once hot (plans served from cache) — and every single result
/// is bit-identical to the solo scalar-oracle run of the same plan.
#[test]
fn n_clients_get_oracle_identical_rows_cold_and_hot() {
    let (graph, glogue) = fixture();
    let queries = workload();
    const CLIENTS: usize = 4;
    for partitions in [1usize, 2, 4] {
        // placement axis: modulo hash everywhere, plus greedy placement with
        // replicated hubs where placement matters (more than one shard)
        let placements: &[(PartitionerSpec, usize)] = if partitions == 1 {
            &[(PartitionerSpec::Hash, 0)]
        } else {
            &[(PartitionerSpec::Hash, 0), (PartitionerSpec::Greedy, 8)]
        };
        for &(partitioner, replicate_hubs) in placements {
            for &threads in &thread_matrix() {
                let tag = format!(
                    "p={partitions} t={threads} partitioner={}",
                    partitioner.name()
                );
                let server = Server::new(
                    Arc::clone(&graph),
                    Arc::clone(&glogue),
                    ServerConfig {
                        partitions,
                        partitioner,
                        replicate_hubs,
                        threads,
                        max_concurrent: CLIENTS,
                        queue_capacity: 2 * CLIENTS,
                        ..ServerConfig::default()
                    },
                )
                .expect("server");

                // the oracle runs the very plans the server will serve:
                // submit each query once solo, execute its plan on the
                // scalar engine
                let probe = server.session();
                let expected: Vec<(String, Vec<Vec<PropValue>>)> = queries
                    .iter()
                    .map(|q| {
                        let out = probe.submit(&q.text).expect("probe submit");
                        // exec_plan, not plan: the cached plan is generic
                        // (constants parameterized out); the oracle must run
                        // the plan with this query's constants bound back in
                        (q.name.clone(), oracle_rows(&graph, &out.exec_plan))
                    })
                    .collect();
                server.clear_plan_cache();

                // cold: clients race to optimize every shape
                hammer(
                    &server,
                    &queries,
                    &expected,
                    CLIENTS,
                    &format!("{tag} cold"),
                );
                let cold = server.cache_metrics();
                assert_eq!(
                    cold.len,
                    queries.len(),
                    "one cached entry per shape under {tag}"
                );

                // hot: every submission must be served from the cache
                let hits = hammer(&server, &queries, &expected, CLIENTS, &format!("{tag} hot"));
                assert_eq!(
                    hits as usize,
                    CLIENTS * queries.len(),
                    "hot pass missed the cache under {tag}"
                );
                let m = server.admission_metrics();
                assert_eq!(m.running, 0, "permits leaked under {tag}");
                assert_eq!(m.rejected, 0, "spurious overload under {tag}");
            }
        }
    }
}

/// Concurrent cold misses on the same shape converge to one cache entry, and
/// a hot hit serves the identical `Arc`-shared plan to every client.
#[test]
fn racing_clients_share_one_cached_plan_per_shape() {
    let (graph, glogue) = fixture();
    let server = Server::new(graph, glogue, ServerConfig::default()).expect("server");
    let q = &qr_queries()[0];
    let plans: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = server.session();
                let text = q.text.clone();
                s.spawn(move || session.submit(&text).expect("submit").plan)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(server.cache_metrics().len, 1, "one entry for one shape");
    // after the race settles, a fresh submission shares the cached plan
    let cached = server.session().submit(&q.text).expect("submit");
    assert!(cached.cache_hit);
    assert!(
        plans.iter().any(|p| Arc::ptr_eq(p, &cached.plan)),
        "the cached plan is one of the racers' plans"
    );
}
