//! `ParallelEngine` vs scalar `Engine` equivalence: partitioned, morsel-driven
//! parallel execution over sharded storage must return exactly the rows of the
//! scalar single-partition oracle — for every workload query the repository
//! ships (optimized by GOpt for both backend specs) and for randomized plan
//! orders — at partitions {1, 2, 4} × threads {1, 2, 4}, with communication
//! counts identical across thread counts (they are measured from the data, not
//! from scheduling).
//!
//! The thread axis can be narrowed from the environment for CI matrix runs:
//! `GOPT_THREADS=1,4` restricts the suite to those thread counts.

use gopt::core::{ExpandStrategy, GOpt, GOptConfig, GraphScopeSpec, Neo4jSpec, RandomPlanner};
use gopt::exec::{Engine, EngineConfig, ExecResult, ParallelEngine};
use gopt::gir::PhysicalPlan;
use gopt::glogue::{GLogue, GLogueConfig, GlogueQuery};
use gopt::graph::generator::{random_graph, RandomGraphConfig};
use gopt::graph::schema::fig6_schema;
use gopt::graph::{PartitionedGraph, PartitionerSpec, PropertyGraph};
use gopt::parser::{parse_cypher, parse_gremlin};
use gopt::workloads::{
    generate_ldbc_graph, ic_queries, qc_queries, qr_gremlin_queries, qt_queries, LdbcScale,
};
use proptest::prelude::*;

const PARTITIONS: [usize; 3] = [1, 2, 4];

/// Thread counts under test: `GOPT_THREADS` (comma-separated) or {1, 2, 4}.
fn thread_matrix() -> Vec<usize> {
    match std::env::var("GOPT_THREADS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("GOPT_THREADS is comma-separated integers")
            })
            .collect(),
        _ => vec![1, 2, 4],
    }
}

/// Execute `plan` on the scalar single-partition oracle and on the parallel
/// engine at every (partitioner, partition, thread) combination; rows
/// (including order) and record statistics must match, and the measured
/// communication must not depend on the thread count.
fn assert_parallel_agrees(g: &PropertyGraph, plan: &PhysicalPlan) {
    let config = EngineConfig {
        partitions: None,
        record_limit: Some(3_000_000),
    };
    let oracle = Engine::new(g, config).execute(plan);
    let threads = thread_matrix();
    for parts in PARTITIONS {
        // placement axis: modulo hash, and (beyond one shard, where placement
        // matters) Fennel-style greedy with a few replicated hubs
        let placements: &[(PartitionerSpec, usize)] = if parts == 1 {
            &[(PartitionerSpec::Hash, 0)]
        } else {
            &[(PartitionerSpec::Hash, 0), (PartitionerSpec::Greedy, 4)]
        };
        for &(spec, hubs) in placements {
            let name = spec.name();
            let sharded = PartitionedGraph::build_with_opts(g, spec.build(g, parts), hubs);
            let mut comm_seen: Option<u64> = None;
            for &t in &threads {
                let got = ParallelEngine::new(&sharded)
                    .with_threads(t)
                    .with_record_limit(Some(3_000_000))
                    .execute(plan);
                match (&oracle, &got) {
                    (Ok(o), Ok(r)) => {
                        assert_same(o, r, parts, t);
                        match comm_seen {
                            None => comm_seen = Some(r.stats.comm_records),
                            Some(c) => assert_eq!(
                                c, r.stats.comm_records,
                                "communication depends on thread count \
                                 (p={parts}, t={t}, partitioner={name})"
                            ),
                        }
                        if parts == 1 {
                            assert_eq!(
                                r.stats.comm_records, 0,
                                "a single partition ships no rows (t={t})"
                            );
                        }
                    }
                    (Err(eo), Err(eg)) => assert_eq!(
                        eo, eg,
                        "errors diverge (p={parts}, t={t}, partitioner={name})"
                    ),
                    _ => panic!(
                        "one engine failed where the other succeeded \
                         (p={parts}, t={t}, partitioner={name}): \
                         oracle={oracle:?} parallel={got:?}"
                    ),
                }
            }
        }
    }
}

fn assert_same(oracle: &ExecResult, got: &ExecResult, parts: usize, threads: usize) {
    assert_eq!(
        oracle.tags.tags(),
        got.tags.tags(),
        "tag maps diverge (p={parts}, t={threads})"
    );
    // exact rows in exact order — parallelism must not reorder results
    assert_eq!(
        oracle.rows(),
        got.rows(),
        "rows diverge (p={parts}, t={threads})"
    );
    assert_eq!(
        oracle.stats.intermediate_records, got.stats.intermediate_records,
        "intermediate records diverge (p={parts}, t={threads})"
    );
    assert_eq!(
        oracle.stats.peak_records, got.stats.peak_records,
        "peak records diverge (p={parts}, t={threads})"
    );
}

fn ldbc_env() -> (PropertyGraph, GLogue) {
    let graph = generate_ldbc_graph(&LdbcScale {
        persons: 40,
        seed: 42,
    });
    let glogue = GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 2,
            max_anchors: Some(200),
            seed: 9,
        },
    );
    (graph, glogue)
}

/// Every shipped workload query, planned by GOpt for both backend specs,
/// executes identically on the parallel partitioned engine.
#[test]
fn workload_plans_agree_with_the_scalar_oracle() {
    let (graph, glogue) = ldbc_env();
    let gq = GlogueQuery::new(&glogue);
    let queries = qc_queries()
        .into_iter()
        .chain(ic_queries())
        .chain(qt_queries())
        .chain(qr_gremlin_queries())
        .collect::<Vec<_>>();
    let mut planned = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let logical = match parse_cypher(&q.text, graph.schema()) {
            Ok(l) => l,
            Err(_) => match parse_gremlin(&q.text, graph.schema()) {
                Ok(l) => l,
                Err(_) => continue,
            },
        };
        // alternate the backend spec across queries (both specs are covered
        // many times over the query set at half the wall-clock cost)
        let plan = if qi % 2 == 0 {
            GOpt::new(graph.schema(), &gq, &GraphScopeSpec)
                .with_config(GOptConfig::default())
                .optimize(&logical)
        } else {
            GOpt::new(graph.schema(), &gq, &Neo4jSpec)
                .with_config(GOptConfig::default())
                .optimize(&logical)
        };
        let Ok(plan) = plan else { continue };
        planned += 1;
        assert_parallel_agrees(&graph, &plan);
    }
    assert!(
        planned >= 8,
        "expected to replay at least 8 optimized workload plans, got {planned}"
    );
}

/// The typed Int/Date grouping fast path on the parallel engine: packed keys
/// per morsel must merge to exactly the scalar oracle's groups at every
/// (partition, thread) combination, including sparse Date keys (nulls) and
/// the mixed-kind fallback.
#[test]
fn typed_group_keys_agree_across_partitions_and_threads() {
    use gopt::gir::pattern::Direction;
    use gopt::gir::physical::PhysicalOp;
    use gopt::gir::types::TypeConstraint;
    use gopt::gir::{AggFunc, Expr};
    use gopt::graph::graph::GraphBuilder;
    use gopt::graph::PropValue;
    let mut b = GraphBuilder::new(fig6_schema());
    let mut people = Vec::new();
    for i in 0..30i64 {
        let mut props = vec![("age", PropValue::Int(i % 6))];
        if i % 2 == 0 {
            props.push(("seen", PropValue::Date(10 + i % 3)));
        }
        props.push(if i < 15 {
            ("badge", PropValue::Int(i % 2))
        } else {
            ("badge", PropValue::str("b"))
        });
        people.push(b.add_vertex_by_name("Person", props).unwrap());
    }
    for i in 1..30usize {
        b.add_edge_by_name("Knows", people[i - 1], people[i], vec![])
            .unwrap();
    }
    let g = b.finish();
    let person = TypeConstraint::basic(g.schema().vertex_label("Person").unwrap());
    let knows = TypeConstraint::basic(g.schema().edge_label("Knows").unwrap());
    for key in ["age", "seen", "badge"] {
        let mut plan = PhysicalPlan::new();
        plan.push(PhysicalOp::Scan {
            alias: "a".into(),
            constraint: person.clone(),
            predicate: None,
        });
        plan.push(PhysicalOp::EdgeExpand {
            src: "a".into(),
            edge_alias: None,
            edge_constraint: knows.clone(),
            direction: Direction::Out,
            dst_alias: "b".into(),
            dst_constraint: person.clone(),
            dst_predicate: None,
            edge_predicate: None,
        });
        plan.push(PhysicalOp::HashGroup {
            keys: vec![(Expr::prop("b", key), "k".into())],
            aggs: vec![(AggFunc::Count, Expr::tag("a"), "cnt".into())],
        });
        assert_parallel_agrees(&g, &plan);
    }
}

/// String-heavy plans over dictionary-encoded columns under morsel-driven
/// parallel execution: rank-based `Str` predicates, `HashGroup`/`OrderLimit`
/// on `Str` keys (packed prefix keys for short strings, row-wise fallback
/// beyond 8 bytes), deduplication on strings. Shards build their dictionaries
/// independently, so this also checks that shard-local codes never leak into
/// cross-shard comparisons.
#[test]
fn string_plans_agree_across_partitions_and_threads() {
    use gopt::gir::expr::{BinOp, SortDir};
    use gopt::gir::pattern::Direction;
    use gopt::gir::physical::PhysicalOp;
    use gopt::gir::types::TypeConstraint;
    use gopt::gir::{AggFunc, Expr};
    use gopt::graph::graph::GraphBuilder;
    use gopt::graph::PropValue;
    let cities = [
        "Oslo",
        "Rio",
        "Konstantinopel",
        "Konstanz",
        "Konstanz\u{0131}",
        "",
    ];
    let mut b = GraphBuilder::new(fig6_schema());
    let mut people = Vec::new();
    for i in 0..30i64 {
        let mut props = vec![("age", PropValue::Int(i % 6))];
        if i % 5 != 0 {
            props.push(("city", PropValue::str(cities[i as usize % cities.len()])));
        }
        people.push(b.add_vertex_by_name("Person", props).unwrap());
    }
    for i in 1..30usize {
        b.add_edge_by_name("Knows", people[i - 1], people[i], vec![])
            .unwrap();
    }
    let g = b.finish();
    let person = TypeConstraint::basic(g.schema().vertex_label("Person").unwrap());
    let knows = TypeConstraint::basic(g.schema().edge_label("Knows").unwrap());
    let expand = |plan: &mut PhysicalPlan| {
        plan.push(PhysicalOp::Scan {
            alias: "a".into(),
            constraint: person.clone(),
            predicate: None,
        });
        plan.push(PhysicalOp::EdgeExpand {
            src: "a".into(),
            edge_alias: None,
            edge_constraint: knows.clone(),
            direction: Direction::Out,
            dst_alias: "b".into(),
            dst_constraint: person.clone(),
            dst_predicate: None,
            edge_predicate: None,
        });
    };
    // rank-based predicates, including a needle absent from the dictionary
    for predicate in [
        Expr::prop_eq("b", "city", "Oslo"),
        Expr::prop_eq("b", "city", "Paris"),
        Expr::binary(
            BinOp::Lt,
            Expr::prop("b", "city"),
            Expr::lit(PropValue::str("Konstanz")),
        ),
        Expr::binary(
            BinOp::Gt,
            Expr::prop("b", "city"),
            Expr::lit(PropValue::str("Konstanz\u{0130}")),
        ),
    ] {
        let mut plan = PhysicalPlan::new();
        expand(&mut plan);
        plan.push(PhysicalOp::Select { predicate });
        plan.push(PhysicalOp::Project {
            items: vec![(Expr::prop("b", "city"), "city".into())],
        });
        assert_parallel_agrees(&g, &plan);
    }
    // group and sort on the Str key; Min over strings crosses shards
    let mut group = PhysicalPlan::new();
    expand(&mut group);
    group.push(PhysicalOp::HashGroup {
        keys: vec![(Expr::prop("b", "city"), "city".into())],
        aggs: vec![
            (AggFunc::Count, Expr::tag("a"), "cnt".into()),
            (AggFunc::Max, Expr::prop("b", "city"), "max_city".into()),
        ],
    });
    group.push(PhysicalOp::OrderLimit {
        keys: vec![(Expr::tag("city"), SortDir::Desc)],
        limit: Some(4),
    });
    assert_parallel_agrees(&g, &group);
    // dedup on strings
    let mut dedup = PhysicalPlan::new();
    expand(&mut dedup);
    dedup.push(PhysicalOp::Project {
        items: vec![(Expr::prop("b", "city"), "city".into())],
    });
    dedup.push(PhysicalOp::Dedup {
        keys: vec![Expr::tag("city")],
    });
    assert_parallel_agrees(&g, &dedup);
}

/// Randomized (but valid) plan orders over random graphs with both expansion
/// strategies.
#[test]
fn random_plan_orders_agree_with_the_scalar_oracle() {
    let schema = fig6_schema();
    for seed in 0..4u64 {
        let graph = random_graph(
            &schema,
            &RandomGraphConfig {
                vertices_per_label: 10,
                edges_per_endpoint: 35,
                seed,
            },
        );
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let mut pattern = gopt::gir::Pattern::new();
        let a = pattern.add_vertex_tagged("a", gopt::gir::TypeConstraint::basic(person));
        let b = pattern.add_vertex_tagged("b", gopt::gir::TypeConstraint::basic(person));
        let c = pattern.add_vertex_tagged("c", gopt::gir::TypeConstraint::basic(place));
        pattern.add_edge(a, b, gopt::gir::TypeConstraint::basic(knows));
        pattern.add_edge(a, c, gopt::gir::TypeConstraint::basic(located));
        pattern.add_edge(b, c, gopt::gir::TypeConstraint::basic(located));
        let mut builder = gopt::gir::GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let logical = builder.build(m);
        for strategy in [ExpandStrategy::Intersect, ExpandStrategy::Flatten] {
            let plan = RandomPlanner::new(seed, strategy)
                .optimize(&logical)
                .expect("random plan builds");
            assert_parallel_agrees(&graph, &plan);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property test: random graph, random plan order — the parallel engine
    /// always agrees with the oracle over the whole partition × thread matrix.
    #[test]
    fn parallel_agrees_on_random_graphs(seed in 0u64..200, edges in 15usize..60) {
        let schema = fig6_schema();
        let graph = random_graph(&schema, &RandomGraphConfig {
            vertices_per_label: 8,
            edges_per_endpoint: edges,
            seed,
        });
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let mut pattern = gopt::gir::Pattern::new();
        let a = pattern.add_vertex_tagged("a", gopt::gir::TypeConstraint::basic(person));
        let b = pattern.add_vertex_tagged("b", gopt::gir::TypeConstraint::basic(person));
        let c = pattern.add_vertex_tagged("c", gopt::gir::TypeConstraint::basic(person));
        pattern.add_edge(a, b, gopt::gir::TypeConstraint::basic(knows));
        pattern.add_edge(b, c, gopt::gir::TypeConstraint::basic(knows));
        let mut builder = gopt::gir::GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let logical = builder.build(m);
        let plan = RandomPlanner::new(seed, ExpandStrategy::Intersect)
            .optimize(&logical)
            .expect("random plan builds");
        assert_parallel_agrees(&graph, &plan);
    }
}
