//! Property test for cooperative cancellation (satellite of the lifecycle
//! layer): a context cancelled at a *random* check index — striking anywhere
//! between "before the first operator" and "after the last morsel" — must
//! never yield partial rows. On every backend the outcome is either
//! `Err(LimitExceeded(Cancelled))` or the complete, oracle-equal result set;
//! nothing in between.

use gopt::exec::{
    Backend, ExecError, LimitReason, PartitionedBackend, QueryContext, SingleMachineBackend,
};
use gopt::gir::pattern::Direction;
use gopt::gir::physical::{PhysicalOp, PhysicalPlan};
use gopt::gir::types::TypeConstraint;
use gopt::gir::{AggFunc, Expr, SortDir};
use gopt::graph::generator::{random_graph, RandomGraphConfig};
use gopt::graph::schema::fig6_schema;
use gopt::graph::{PropValue, PropertyGraph};
use proptest::prelude::*;

/// Scan → expand → group → sort: crosses operator boundaries, morsel
/// checkpoints and every breaker accumulation loop.
fn plan(g: &PropertyGraph) -> PhysicalPlan {
    let person = TypeConstraint::basic(g.schema().vertex_label("Person").unwrap());
    let knows = TypeConstraint::basic(g.schema().edge_label("Knows").unwrap());
    let mut plan = PhysicalPlan::new();
    plan.push(PhysicalOp::Scan {
        alias: "a".into(),
        constraint: person.clone(),
        predicate: None,
    });
    plan.push(PhysicalOp::EdgeExpand {
        src: "a".into(),
        edge_alias: None,
        edge_constraint: knows,
        direction: Direction::Out,
        dst_alias: "b".into(),
        dst_constraint: person,
        dst_predicate: None,
        edge_predicate: None,
    });
    plan.push(PhysicalOp::HashGroup {
        keys: vec![(Expr::tag("b"), "b".into())],
        aggs: vec![(AggFunc::Count, Expr::tag("a"), "cnt".into())],
    });
    plan.push(PhysicalOp::OrderLimit {
        keys: vec![(Expr::tag("cnt"), SortDir::Desc)],
        limit: None,
    });
    plan
}

fn check_backend<B: Backend>(
    backend: &B,
    g: &PropertyGraph,
    plan: &PhysicalPlan,
    oracle: &[Vec<PropValue>],
    cancel_at: u64,
    label: &str,
) {
    let ctx = QueryContext::new().cancel_after_checks(cancel_at);
    match backend.execute_with_ctx(g, plan, &ctx) {
        Ok(res) => prop_assert_eq_rows(res.rows(), oracle, cancel_at, label),
        Err(ExecError::LimitExceeded(LimitReason::Cancelled)) => {}
        Err(other) => panic!("{label}: cancel_at={cancel_at} produced a foreign error: {other}"),
    }
}

fn prop_assert_eq_rows(
    got: Vec<Vec<PropValue>>,
    want: &[Vec<PropValue>],
    cancel_at: u64,
    label: &str,
) {
    assert_eq!(
        got, want,
        "{label}: cancel_at={cancel_at} returned partial or wrong rows"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cancellation_never_yields_partial_rows(
        seed in 0u64..200,
        cancel_at in 0u64..2_000,
        parts in 1usize..4,
        threads in 1usize..4,
    ) {
        let graph = random_graph(&fig6_schema(), &RandomGraphConfig {
            vertices_per_label: 10,
            edges_per_endpoint: 40,
            seed,
        });
        let plan = plan(&graph);
        let single = SingleMachineBackend::new();
        let oracle = single
            .execute(&graph, &plan)
            .expect("unrestricted run succeeds")
            .rows();
        check_backend(&single, &graph, &plan, &oracle, cancel_at, "single-machine");
        let parted = PartitionedBackend::new(parts).unwrap().with_threads(threads);
        check_backend(&parted, &graph, &plan, &oracle, cancel_at, "partitioned");
    }
}
