//! Property test for the server's plan cache: under a *random* interleaving
//! of submissions, statistics bumps and explicit cache clears, the server
//! must never serve a stale plan (every outcome's `stats_version` equals the
//! server's version at submit time), a cache hit must answer exactly like the
//! original miss, and the cache must never exceed its capacity — even with a
//! capacity small enough to force constant eviction.

use gopt::glogue::{GLogue, GLogueConfig};
use gopt::graph::{GraphStats, PropValue, PropertyGraph};
use gopt::server::{Server, ServerConfig};
use gopt::workloads::{generate_ldbc_graph, qr_queries, qt_queries, LdbcScale, NamedQuery};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

fn fixture() -> (Arc<PropertyGraph>, Arc<GLogue>) {
    let graph = Arc::new(generate_ldbc_graph(&LdbcScale::tiny()));
    let glogue = Arc::new(GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 3,
            max_anchors: Some(300),
            seed: 3,
        },
    ));
    (graph, glogue)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_op_interleavings_never_serve_stale_or_wrong_plans(
        seed in 0u64..1_000,
        capacity in 1usize..4,
        steps in 20usize..40,
    ) {
        let (graph, glogue) = fixture();
        let server = Server::new(
            Arc::clone(&graph),
            glogue,
            ServerConfig {
                plan_cache_capacity: capacity,
                ..ServerConfig::default()
            },
        ).expect("server");
        let session = server.session();
        let queries: Vec<NamedQuery> =
            qr_queries().into_iter().chain(qt_queries()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        // ground truth: the rows each query produced the first time — cache
        // hits, evicted re-optimizations and post-invalidation re-plans must
        // all keep answering exactly this
        let mut first_rows: HashMap<String, Vec<Vec<PropValue>>> = HashMap::new();
        let mut expected_version = 0u64;

        for _ in 0..steps {
            match rng.gen_range(0..10u32) {
                // occasionally: the statistics move on
                0 => {
                    expected_version = server.update_stats(GraphStats::shared(&graph));
                    prop_assert_eq!(server.stats_version(), expected_version);
                }
                // occasionally: an operator drops every cached plan
                1 => server.clear_plan_cache(),
                // mostly: a client submits some query
                _ => {
                    let q = &queries[rng.gen_range(0..queries.len())];
                    let out = session.submit(&q.text)
                        .unwrap_or_else(|e| panic!("{} failed: {e}", q.name));
                    // staleness: the plan's stats version IS the current one
                    prop_assert_eq!(out.stats_version, expected_version,
                        "stale plan served for {}", &q.name);
                    let rows = out.result.rows();
                    match first_rows.get(&q.name) {
                        Some(want) => prop_assert_eq!(&rows, want,
                            "{} answered differently on a later submission \
                             (cache_hit={})", &q.name, out.cache_hit),
                        None => { first_rows.insert(q.name.clone(), rows); }
                    }
                }
            }
            let m = server.cache_metrics();
            prop_assert!(m.len <= capacity,
                "cache holds {} entries over capacity {}", m.len, capacity);
        }
        // the counters are consistent: every lookup was a hit or a miss
        let m = server.cache_metrics();
        prop_assert!(m.hits + m.misses > 0);
    }
}
