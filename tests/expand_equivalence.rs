//! Equivalence tests for the four expand operators after the CSR storage
//! refactor: on random fig6-schema graphs, `edge_expand`, `expand_into`,
//! `expand_intersect` and `path_expand` must produce exactly the results of a
//! brute-force reference that only ever scans the flat edge list — it never
//! touches the adjacency index being tested.

use gopt::exec::expand::{self, EdgeExpandArgs};
use gopt::exec::{Entry, Record, TagMap};
use gopt::gir::pattern::{Direction, PathSemantics};
use gopt::gir::physical::IntersectStep;
use gopt::gir::TypeConstraint;
use gopt::graph::generator::{random_graph, RandomGraphConfig};
use gopt::graph::schema::fig6_schema;
use gopt::graph::{EdgeId, LabelId, PropertyGraph, VertexId};

fn graph(seed: u64) -> PropertyGraph {
    random_graph(
        &fig6_schema(),
        &RandomGraphConfig {
            vertices_per_label: 8,
            edges_per_endpoint: 25,
            seed,
        },
    )
}

/// Edge-list scan: all `(edge, neighbor)` pairs reachable from `src` over the
/// given labels/direction, deduplicated to the smallest edge id per distinct
/// neighbour and sorted by `(neighbor, edge)` — the operator contract.
fn ref_neighbors(
    g: &PropertyGraph,
    src: VertexId,
    labels: &[LabelId],
    direction: Direction,
) -> Vec<(EdgeId, VertexId)> {
    let mut pairs: Vec<(EdgeId, VertexId)> = Vec::new();
    for e in g.edge_ids() {
        let (s, d) = g.edge_endpoints(e);
        if !labels.contains(&g.edge_label(e)) {
            continue;
        }
        match direction {
            Direction::Out => {
                if s == src {
                    pairs.push((e, d));
                }
            }
            Direction::In => {
                if d == src {
                    pairs.push((e, s));
                }
            }
            Direction::Both => {
                if s == src {
                    pairs.push((e, d));
                }
                if d == src {
                    pairs.push((e, s));
                }
            }
        }
    }
    pairs.sort_by_key(|(e, n)| (*n, *e));
    pairs.dedup_by_key(|(_, n)| *n);
    pairs
}

fn person(g: &PropertyGraph) -> TypeConstraint {
    TypeConstraint::basic(g.schema().vertex_label("Person").unwrap())
}

fn knows_label(g: &PropertyGraph) -> LabelId {
    g.schema().edge_label("Knows").unwrap()
}

fn person_scan(g: &PropertyGraph, tags: &mut TagMap) -> Vec<Record> {
    expand::scan(g, tags, "a", &person(g), &None)
}

#[test]
fn edge_expand_matches_edge_list_reference() {
    for seed in [1u64, 2, 3] {
        let g = graph(seed);
        let knows = knows_label(&g);
        for direction in [Direction::Out, Direction::In, Direction::Both] {
            let mut tags = TagMap::new();
            let input = person_scan(&g, &mut tags);
            let args = EdgeExpandArgs {
                src: "a",
                edge_alias: Some("e"),
                edge_constraint: &TypeConstraint::basic(knows),
                direction,
                dst_alias: "b",
                dst_constraint: &person(&g),
                dst_predicate: &None,
                edge_predicate: &None,
            };
            let (out, _) = expand::edge_expand(&g, &input, &mut tags, &args, None).unwrap();
            let (sa, sb, se) = (
                tags.slot("a").unwrap(),
                tags.slot("b").unwrap(),
                tags.slot("e").unwrap(),
            );
            let mut got: Vec<(VertexId, VertexId, EdgeId)> = out
                .iter()
                .map(|r| {
                    (
                        r.get(sa).as_vertex().unwrap(),
                        r.get(sb).as_vertex().unwrap(),
                        r.get(se).as_edge().unwrap(),
                    )
                })
                .collect();
            got.sort();
            let person_label = g.schema().vertex_label("Person").unwrap();
            let mut want: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
            for rec in &input {
                let src = rec.get(sa).as_vertex().unwrap();
                for (e, n) in ref_neighbors(&g, src, &[knows], direction) {
                    if g.vertex_label(n) == person_label {
                        want.push((src, n, e));
                    }
                }
            }
            want.sort();
            assert_eq!(got, want, "seed {seed}, direction {direction:?}");
        }
    }
}

#[test]
fn expand_into_matches_edge_list_reference() {
    for seed in [1u64, 5] {
        let g = graph(seed);
        let knows = knows_label(&g);
        // all (a, b) person pairs as input records
        let mut tags = TagMap::new();
        let sa = tags.slot_or_insert("a");
        let sb = tags.slot_or_insert("b");
        let persons = g
            .vertices_with_label(g.schema().vertex_label("Person").unwrap())
            .to_vec();
        let mut input = Vec::new();
        for &a in &persons {
            for &b in &persons {
                let mut r = Record::new();
                r.set(sa, Entry::Vertex(a));
                r.set(sb, Entry::Vertex(b));
                input.push(r);
            }
        }
        for direction in [Direction::Out, Direction::In, Direction::Both] {
            let mut t = tags.clone();
            let (out, _) = expand::expand_into(
                &g,
                &input,
                &mut t,
                "a",
                "b",
                &TypeConstraint::basic(knows),
                direction,
                Some("e"),
                &None,
                None,
            )
            .unwrap();
            let se = t.slot("e").unwrap();
            let mut got: Vec<(VertexId, VertexId, EdgeId)> = out
                .iter()
                .map(|r| {
                    (
                        r.get(sa).as_vertex().unwrap(),
                        r.get(sb).as_vertex().unwrap(),
                        r.get(se).as_edge().unwrap(),
                    )
                })
                .collect();
            got.sort();
            // reference: the smallest edge id connecting the pair in the
            // requested direction ((s,d) probed before (d,s) for Both)
            let mut want: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
            for rec in &input {
                let (s, d) = (
                    rec.get(sa).as_vertex().unwrap(),
                    rec.get(sb).as_vertex().unwrap(),
                );
                let pairs: &[(VertexId, VertexId)] = match direction {
                    Direction::Out => &[(s, d)],
                    Direction::In => &[(d, s)],
                    Direction::Both => &[(s, d), (d, s)],
                };
                let mut found = None;
                'pairs: for &(from, to) in pairs {
                    let mut run: Vec<EdgeId> = g
                        .edge_ids()
                        .filter(|&e| g.edge_label(e) == knows && g.edge_endpoints(e) == (from, to))
                        .collect();
                    run.sort();
                    if let Some(&e) = run.first() {
                        found = Some(e);
                        break 'pairs;
                    }
                }
                if let Some(e) = found {
                    want.push((s, d, e));
                }
            }
            want.sort();
            assert_eq!(got, want, "seed {seed}, direction {direction:?}");
        }
    }
}

#[test]
fn expand_intersect_matches_set_intersection_reference() {
    for seed in [1u64, 9] {
        let g = graph(seed);
        let knows = knows_label(&g);
        // input: all (a, b) pairs connected by a Knows edge
        let mut tags = TagMap::new();
        let input = person_scan(&g, &mut tags);
        let args = EdgeExpandArgs {
            src: "a",
            edge_alias: None,
            edge_constraint: &TypeConstraint::basic(knows),
            direction: Direction::Out,
            dst_alias: "b",
            dst_constraint: &person(&g),
            dst_predicate: &None,
            edge_predicate: &None,
        };
        let (pairs, _) = expand::edge_expand(&g, &input, &mut tags, &args, None).unwrap();
        let steps = vec![
            IntersectStep {
                src: "a".into(),
                edge_constraint: TypeConstraint::basic(knows),
                direction: Direction::Out,
                edge_alias: None,
            },
            IntersectStep {
                src: "b".into(),
                edge_constraint: TypeConstraint::basic(knows),
                direction: Direction::Both,
                edge_alias: None,
            },
        ];
        let mut t = tags.clone();
        let (out, _) =
            expand::expand_intersect(&g, &pairs, &mut t, &steps, "c", &person(&g), &None, None)
                .unwrap();
        let (sa, sb) = (tags.slot("a").unwrap(), tags.slot("b").unwrap());
        let sc = t.slot("c").unwrap();
        // the operator emits candidates in ascending vertex order per record:
        // compare the exact sequence, not just the set
        let got: Vec<(VertexId, VertexId, VertexId)> = out
            .iter()
            .map(|r| {
                (
                    r.get(sa).as_vertex().unwrap(),
                    r.get(sb).as_vertex().unwrap(),
                    r.get(sc).as_vertex().unwrap(),
                )
            })
            .collect();
        let person_label = g.schema().vertex_label("Person").unwrap();
        let mut want: Vec<(VertexId, VertexId, VertexId)> = Vec::new();
        for rec in &pairs {
            let a = rec.get(sa).as_vertex().unwrap();
            let b = rec.get(sb).as_vertex().unwrap();
            let na: Vec<VertexId> = ref_neighbors(&g, a, &[knows], Direction::Out)
                .into_iter()
                .map(|(_, n)| n)
                .collect();
            let nb: Vec<VertexId> = ref_neighbors(&g, b, &[knows], Direction::Both)
                .into_iter()
                .map(|(_, n)| n)
                .collect();
            let mut common: Vec<VertexId> = na
                .into_iter()
                .filter(|n| nb.contains(n) && g.vertex_label(*n) == person_label)
                .collect();
            common.sort();
            for c in common {
                want.push((a, b, c));
            }
        }
        assert_eq!(got, want, "seed {seed}");
        assert!(
            !got.is_empty(),
            "seed {seed} produced no triangles — test would be vacuous"
        );
    }
}

#[test]
fn path_expand_matches_bfs_reference() {
    for seed in [1u64, 4] {
        let g = graph(seed);
        let knows = knows_label(&g);
        let mut tags = TagMap::new();
        let input = person_scan(&g, &mut tags);
        for semantics in [PathSemantics::Arbitrary, PathSemantics::Simple] {
            let mut t = tags.clone();
            let (out, _) = expand::path_expand(
                &g,
                &input,
                &mut t,
                "a",
                "b",
                &TypeConstraint::basic(knows),
                Direction::Out,
                1,
                3,
                semantics,
                Some("p"),
                None,
            )
            .unwrap();
            let sp = t.slot("p").unwrap();
            let mut got: Vec<Vec<VertexId>> = out
                .iter()
                .map(|r| match r.get(sp) {
                    Entry::Path(p) => p.clone(),
                    other => panic!("expected path entry, got {other:?}"),
                })
                .collect();
            got.sort();
            // reference: DFS over the edge list
            let sa = tags.slot("a").unwrap();
            let mut want: Vec<Vec<VertexId>> = Vec::new();
            for rec in &input {
                let start = rec.get(sa).as_vertex().unwrap();
                let mut stack = vec![vec![start]];
                while let Some(path) = stack.pop() {
                    let hops = path.len() - 1;
                    if hops >= 1 {
                        want.push(path.clone());
                    }
                    if hops == 3 {
                        continue;
                    }
                    let cur = *path.last().unwrap();
                    for e in g.edge_ids() {
                        let (s, d) = g.edge_endpoints(e);
                        if g.edge_label(e) != knows || s != cur {
                            continue;
                        }
                        if semantics == PathSemantics::Simple && path.contains(&d) {
                            continue;
                        }
                        let mut np = path.clone();
                        np.push(d);
                        stack.push(np);
                    }
                }
            }
            want.sort();
            assert_eq!(got, want, "seed {seed}, semantics {semantics:?}");
        }
    }
}
