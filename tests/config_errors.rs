//! Typed configuration errors from the environment knobs: an invalid
//! `GOPT_EXCHANGE_CAP`, `GOPT_EXCHANGE_MODE` or `GOPT_PARTITIONER` value must
//! surface as [`ExecError::Config`] on the first execute — never a silent
//! fallback to the default — while valid values and explicit builder settings
//! keep working.
//!
//! Environment variables are process-global, so this whole suite is ONE test
//! function in its own integration-test binary: no other test shares the
//! process, and the mutations here are sequential.

use gopt::exec::{Backend, ExchangeMode, ExecError, ParallelEngine, PartitionedBackend};
use gopt::gir::pattern::Direction;
use gopt::gir::physical::{PhysicalOp, PhysicalPlan};
use gopt::gir::types::TypeConstraint;
use gopt::graph::generator::{random_graph, RandomGraphConfig};
use gopt::graph::schema::fig6_schema;
use gopt::graph::{PartitionedGraph, PropertyGraph};

fn simple_plan(g: &PropertyGraph) -> PhysicalPlan {
    let person = TypeConstraint::basic(g.schema().vertex_label("Person").unwrap());
    let knows = TypeConstraint::basic(g.schema().edge_label("Knows").unwrap());
    let mut plan = PhysicalPlan::new();
    plan.push(PhysicalOp::Scan {
        alias: "a".into(),
        constraint: person.clone(),
        predicate: None,
    });
    plan.push(PhysicalOp::EdgeExpand {
        src: "a".into(),
        edge_alias: None,
        edge_constraint: knows,
        direction: Direction::Out,
        dst_alias: "b".into(),
        dst_constraint: person,
        dst_predicate: None,
        edge_predicate: None,
    });
    plan
}

/// Set `var` for the duration of `f`, always restoring the previous state.
fn with_env<R>(var: &str, value: &str, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var_os(var);
    std::env::set_var(var, value);
    let out = f();
    match prev {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    out
}

fn expect_config_err(r: Result<impl std::fmt::Debug, ExecError>, var: &str, tag: &str) {
    match r {
        Err(ExecError::Config(msg)) => assert!(
            msg.contains(var),
            "{tag}: error must name the offending variable, got {msg:?}"
        ),
        other => panic!("{tag}: expected ExecError::Config, got {other:?}"),
    }
}

#[test]
fn invalid_env_knobs_fail_typed_and_valid_ones_work() {
    let g = random_graph(&fig6_schema(), &RandomGraphConfig::default());
    let plan = simple_plan(&g);
    let sharded = PartitionedGraph::build(&g, 4);
    let want = ParallelEngine::new(&sharded)
        .execute(&plan)
        .expect("baseline run")
        .rows();

    // --- GOPT_EXCHANGE_CAP ------------------------------------------------
    for bad in ["0", "-3", "banana", "1.5"] {
        with_env("GOPT_EXCHANGE_CAP", bad, || {
            expect_config_err(
                ParallelEngine::new(&sharded).execute(&plan),
                "GOPT_EXCHANGE_CAP",
                &format!("cap={bad:?}"),
            );
            // an explicit builder setting overrides the broken environment
            let rows = ParallelEngine::new(&sharded)
                .with_exchange_capacity(2)
                .execute(&plan)
                .expect("builder overrides a bad GOPT_EXCHANGE_CAP")
                .rows();
            assert_eq!(rows, want);
        });
    }
    with_env("GOPT_EXCHANGE_CAP", "3", || {
        let rows = ParallelEngine::new(&sharded)
            .execute(&plan)
            .expect("valid GOPT_EXCHANGE_CAP")
            .rows();
        assert_eq!(rows, want);
    });

    // --- GOPT_EXCHANGE_MODE -----------------------------------------------
    for bad in ["eager", "Pipelined", "1"] {
        with_env("GOPT_EXCHANGE_MODE", bad, || {
            expect_config_err(
                ParallelEngine::new(&sharded).execute(&plan),
                "GOPT_EXCHANGE_MODE",
                &format!("mode={bad:?}"),
            );
            let rows = ParallelEngine::new(&sharded)
                .with_exchange_mode(ExchangeMode::Barrier)
                .execute(&plan)
                .expect("builder overrides a bad GOPT_EXCHANGE_MODE")
                .rows();
            assert_eq!(rows, want);
        });
    }
    for good in ["barrier", "pipelined", " barrier "] {
        with_env("GOPT_EXCHANGE_MODE", good, || {
            let rows = ParallelEngine::new(&sharded)
                .execute(&plan)
                .expect("valid GOPT_EXCHANGE_MODE")
                .rows();
            assert_eq!(rows, want);
        });
    }

    // --- GOPT_PARTITIONER -------------------------------------------------
    let backend = || PartitionedBackend::new(4).unwrap();
    let base = backend().execute(&g, &plan).expect("baseline backend run");
    for bad in ["fennel", "random", "modulo"] {
        with_env("GOPT_PARTITIONER", bad, || {
            expect_config_err(
                backend().execute(&g, &plan),
                "GOPT_PARTITIONER",
                &format!("partitioner={bad:?}"),
            );
            // prepare (the server warm-up hook) fails the same way
            expect_config_err(
                backend().prepare(&g),
                "GOPT_PARTITIONER",
                &format!("prepare partitioner={bad:?}"),
            );
        });
    }
    for good in ["hash", "greedy", "Greedy"] {
        with_env("GOPT_PARTITIONER", good, || {
            let got = backend()
                .execute(&g, &plan)
                .expect("valid GOPT_PARTITIONER");
            assert_eq!(got.sorted_rows(), base.sorted_rows(), "rows under {good}");
        });
    }
}
