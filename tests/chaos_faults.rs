//! Chaos suite for the query-lifecycle layer: under every injected fault —
//! `err`, `panic` and `delay` actions at each of the engine's fail points, at
//! partitions {1, 2, 4} × threads {1, 2, 4} — execution must either return
//! exactly the unfaulted scalar oracle's rows or a **typed** [`ExecError`];
//! never a hang, never a raw panic out of `execute`, never a poisoned lock
//! leaking to the caller. After the fault is cleared the *same* engine (same
//! worker pool) must execute the query correctly again: one query's failure
//! must not poison the pool.
//!
//! Limits are exercised directly too: a zero deadline, a one-byte budget and
//! a pre-cancelled context must abort all three engines (scalar, batched,
//! parallel) with the identical typed error.
//!
//! The fail-point registry is process-global, so every test that arms points
//! holds a serializing gate for its whole body.

use gopt::exec::{
    BatchEngine, Engine, EngineConfig, ExchangeMode, ExecError, LimitReason, ParallelEngine,
    QueryContext,
};
use gopt::gir::pattern::Direction;
use gopt::gir::physical::{PhysicalOp, PhysicalPlan};
use gopt::gir::types::TypeConstraint;
use gopt::gir::{AggFunc, Expr, SortDir};
use gopt::graph::graph::GraphBuilder;
use gopt::graph::schema::fig6_schema;
use gopt::graph::{PartitionedGraph, PartitionerSpec, PropValue, PropertyGraph};
use std::sync::{Mutex, MutexGuard};

/// The placement axis at `parts` shards: modulo hash everywhere, plus the
/// Fennel-style greedy partitioner with a few replicated hubs where placement
/// matters (more than one shard).
fn placements(parts: usize) -> &'static [(PartitionerSpec, usize)] {
    if parts == 1 {
        &[(PartitionerSpec::Hash, 0)]
    } else {
        &[(PartitionerSpec::Hash, 0), (PartitionerSpec::Greedy, 4)]
    }
}

/// Serialize tests that touch the process-global fail-point registry.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard: clears the registry on drop, even if an assertion unwinds.
struct ClearOnDrop;
impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn small_graph() -> PropertyGraph {
    let mut b = GraphBuilder::new(fig6_schema());
    let mut people = Vec::new();
    for i in 0..40i64 {
        people.push(
            b.add_vertex_by_name("Person", vec![("age", PropValue::Int(20 + i % 7))])
                .unwrap(),
        );
    }
    for i in 0..people.len() {
        for d in 1..4 {
            let j = (i + d * 7) % people.len();
            b.add_edge_by_name("Knows", people[i], people[j], vec![])
                .unwrap();
        }
    }
    b.finish()
}

/// A plan that crosses every fail point on the parallel engine: scan, two
/// expands (shuffles), then the three pipeline breakers (group, sort, dedup).
fn chaos_plan(g: &PropertyGraph) -> PhysicalPlan {
    let person = TypeConstraint::basic(g.schema().vertex_label("Person").unwrap());
    let knows = TypeConstraint::basic(g.schema().edge_label("Knows").unwrap());
    let mut plan = PhysicalPlan::new();
    plan.push(PhysicalOp::Scan {
        alias: "a".into(),
        constraint: person.clone(),
        predicate: None,
    });
    plan.push(PhysicalOp::EdgeExpand {
        src: "a".into(),
        edge_alias: None,
        edge_constraint: knows.clone(),
        direction: Direction::Out,
        dst_alias: "b".into(),
        dst_constraint: person.clone(),
        dst_predicate: None,
        edge_predicate: None,
    });
    plan.push(PhysicalOp::EdgeExpand {
        src: "b".into(),
        edge_alias: None,
        edge_constraint: knows,
        direction: Direction::Out,
        dst_alias: "c".into(),
        dst_constraint: person,
        dst_predicate: None,
        edge_predicate: None,
    });
    plan.push(PhysicalOp::HashGroup {
        keys: vec![(Expr::prop("c", "age"), "age".into())],
        aggs: vec![(AggFunc::Count, Expr::tag("a"), "cnt".into())],
    });
    plan.push(PhysicalOp::Dedup {
        keys: vec![Expr::tag("age"), Expr::tag("cnt")],
    });
    plan.push(PhysicalOp::OrderLimit {
        keys: vec![
            (Expr::tag("cnt"), SortDir::Desc),
            (Expr::tag("age"), SortDir::Asc),
        ],
        limit: Some(5),
    });
    plan
}

const NO_LIMIT: EngineConfig = EngineConfig {
    partitions: None,
    record_limit: None,
};

fn oracle_rows(g: &PropertyGraph, plan: &PhysicalPlan) -> Vec<Vec<PropValue>> {
    Engine::new(g, NO_LIMIT)
        .execute(plan)
        .expect("oracle")
        .rows()
}

const POINTS: [&str; 4] = [
    "exec.operator",
    "exec.morsel",
    "exec.exchange",
    "exec.merge",
];
const ACTIONS: [&str; 3] = ["err(chaos)", "panic(chaos)", "delay(1)"];

/// Every (point, action, partitions, threads) combination terminates with the
/// oracle's rows or a typed error matching the action — and after clearing
/// the fault, the same engine instance (same pool) recovers.
#[test]
fn every_injected_fault_yields_typed_error_or_oracle_rows() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let g = small_graph();
    let plan = chaos_plan(&g);
    let want = oracle_rows(&g, &plan);
    assert!(!want.is_empty(), "chaos plan produces rows");
    for parts in [1usize, 2, 4] {
        for &(spec, hubs) in placements(parts) {
            let sharded = PartitionedGraph::build_with_opts(&g, spec.build(&g, parts), hubs);
            for threads in [1usize, 2, 4] {
                let engine = ParallelEngine::new(&sharded).with_threads(threads);
                for point in POINTS {
                    for action in ACTIONS {
                        failpoint::clear();
                        failpoint::configure(point, action).unwrap();
                        let got = engine.execute(&plan);
                        let tag = format!(
                            "{point}={action} p={parts} t={threads} partitioner={}",
                            spec.name()
                        );
                        match (&got, action) {
                            (Ok(res), _) => {
                                // a point that never fired (or only delayed)
                                // must not perturb the result
                                assert_eq!(res.rows(), want, "rows diverge under {tag}");
                            }
                            (Err(ExecError::Injected { point: p, msg }), a)
                                if a.starts_with("err") =>
                            {
                                assert_eq!(p, point, "wrong injection site under {tag}");
                                assert_eq!(msg, "chaos", "wrong message under {tag}");
                            }
                            (Err(ExecError::WorkerPanicked { .. }), a)
                                if a.starts_with("panic") => {}
                            (err, _) => panic!("unexpected outcome under {tag}: {err:?}"),
                        }
                        if action.starts_with("delay") {
                            assert!(got.is_ok(), "delay must not fail ({tag})");
                        }
                        // pool survival: clear the fault and replay on the
                        // SAME engine — the pool must not be poisoned
                        failpoint::clear();
                        let replay = engine
                            .execute(&plan)
                            .unwrap_or_else(|e| panic!("pool did not recover after {tag}: {e}"));
                        assert_eq!(replay.rows(), want, "recovery rows diverge after {tag}");
                    }
                }
            }
        }
    }
}

/// `err` at the operator boundary — the one point all three engines share —
/// produces the *identical* typed error on scalar, batched and parallel
/// execution; `panic` produces the identical `WorkerPanicked` naming the same
/// operator.
#[test]
fn operator_faults_fail_identically_on_all_three_engines() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let g = small_graph();
    let plan = chaos_plan(&g);
    let sharded = PartitionedGraph::build(&g, 2);
    for action in ["err(chaos)", "panic(chaos)"] {
        let mut errors = Vec::new();
        // re-arm per engine so `@N`-free hit counting starts fresh each run
        failpoint::clear();
        failpoint::configure("exec.operator", action).unwrap();
        errors.push(Engine::new(&g, NO_LIMIT).execute(&plan).unwrap_err());
        failpoint::clear();
        failpoint::configure("exec.operator", action).unwrap();
        errors.push(BatchEngine::new(&g, NO_LIMIT).execute(&plan).unwrap_err());
        failpoint::clear();
        failpoint::configure("exec.operator", action).unwrap();
        errors.push(
            ParallelEngine::new(&sharded)
                .with_threads(2)
                .execute(&plan)
                .unwrap_err(),
        );
        failpoint::clear();
        assert_eq!(errors[0], errors[1], "scalar vs batched under {action}");
        assert_eq!(errors[0], errors[2], "scalar vs parallel under {action}");
        match action {
            "err(chaos)" => assert_eq!(
                errors[0],
                ExecError::Injected {
                    point: "exec.operator".into(),
                    msg: "chaos".into()
                }
            ),
            _ => assert!(
                matches!(errors[0], ExecError::WorkerPanicked { op: "Scan" }),
                "panic at the first operator: {:?}",
                errors[0]
            ),
        }
    }
}

/// A fault striking only the Nth morsel (`@N`) fails that query with a typed
/// error while an immediate replay without the fault is oracle-equal.
#[test]
fn nth_morsel_fault_is_reproducible_and_recoverable() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let g = small_graph();
    let plan = chaos_plan(&g);
    let want = oracle_rows(&g, &plan);
    let sharded = PartitionedGraph::build(&g, 4);
    let engine = ParallelEngine::new(&sharded).with_threads(4);
    failpoint::configure("exec.morsel", "err(late)@3").unwrap();
    let got = engine.execute(&plan);
    match got {
        Err(ExecError::Injected { ref point, ref msg }) => {
            assert_eq!(point, "exec.morsel");
            assert_eq!(msg, "late");
        }
        other => panic!("expected the third morsel to fail: {other:?}"),
    }
    failpoint::clear();
    assert_eq!(engine.execute(&plan).unwrap().rows(), want);
}

/// Backpressure chaos: `exec.exchange` faults with the tightest bounded
/// channel (capacity 1) in both exchange modes, at partitions {1, 2, 4} ×
/// threads {1, 2, 4}. The fault now fires per routed morsel inside the
/// pipeline, so this exercises fault delivery while producers are blocked on
/// a full channel: the outcome must be the oracle's rows or the action's
/// typed error — never a hang — and the engine must recover after clearing.
#[test]
fn exchange_faults_fire_through_capacity_one_backpressure() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let g = small_graph();
    let plan = chaos_plan(&g);
    let want = oracle_rows(&g, &plan);
    for parts in [1usize, 2, 4] {
        for &(spec, hubs) in placements(parts) {
            let sharded = PartitionedGraph::build_with_opts(&g, spec.build(&g, parts), hubs);
            for threads in [1usize, 2, 4] {
                for mode in [ExchangeMode::Pipelined, ExchangeMode::Barrier] {
                    let engine = ParallelEngine::new(&sharded)
                        .with_threads(threads)
                        .with_exchange_capacity(1)
                        .with_exchange_mode(mode);
                    for action in ACTIONS {
                        failpoint::clear();
                        failpoint::configure("exec.exchange", action).unwrap();
                        let tag = format!(
                            "exec.exchange={action} p={parts} t={threads} {mode:?} partitioner={}",
                            spec.name()
                        );
                        let got = engine.execute(&plan);
                        match (&got, action) {
                            (Ok(res), _) => {
                                assert_eq!(res.rows(), want, "rows diverge under {tag}");
                            }
                            (Err(ExecError::Injected { point, msg }), a)
                                if a.starts_with("err") =>
                            {
                                assert_eq!(point, "exec.exchange", "wrong site under {tag}");
                                assert_eq!(msg, "chaos", "wrong message under {tag}");
                            }
                            (Err(ExecError::WorkerPanicked { .. }), a)
                                if a.starts_with("panic") => {}
                            (err, _) => panic!("unexpected outcome under {tag}: {err:?}"),
                        }
                        if action.starts_with("delay") {
                            assert!(got.is_ok(), "delay must not fail ({tag})");
                        }
                        failpoint::clear();
                        let replay = engine
                            .execute(&plan)
                            .unwrap_or_else(|e| panic!("no recovery after {tag}: {e}"));
                        assert_eq!(replay.rows(), want, "recovery rows diverge after {tag}");
                    }
                }
            }
        }
    }
}

/// A context cancelled before submission, combined with the tightest channel,
/// yields `Cancelled` on every engine — no deadlock, no partial rows — at
/// every thread count.
#[test]
fn precancelled_context_with_capacity_one_channel_fails_identically() {
    let _gate = serial();
    let g = small_graph();
    let plan = chaos_plan(&g);
    let ctx = QueryContext::new();
    ctx.cancel();
    for (i, r) in run_all_engines(&g, &plan, &ctx).into_iter().enumerate() {
        assert_eq!(
            r.unwrap_err(),
            ExecError::LimitExceeded(LimitReason::Cancelled),
            "engine #{i}"
        );
    }
    let sharded = PartitionedGraph::build(&g, 4);
    for threads in [1usize, 2, 4] {
        let r = ParallelEngine::new(&sharded)
            .with_threads(threads)
            .with_exchange_capacity(1)
            .execute_with_ctx(&plan, &ctx)
            .map(|res| res.rows());
        assert_eq!(
            r.unwrap_err(),
            ExecError::LimitExceeded(LimitReason::Cancelled),
            "cap=1 t={threads}"
        );
    }
}

fn run_all_engines(
    g: &PropertyGraph,
    plan: &PhysicalPlan,
    ctx: &QueryContext,
) -> Vec<Result<Vec<Vec<PropValue>>, ExecError>> {
    let sharded = PartitionedGraph::build(g, 2);
    vec![
        Engine::new(g, NO_LIMIT)
            .execute_with_ctx(plan, ctx)
            .map(|r| r.rows()),
        BatchEngine::new(g, NO_LIMIT)
            .execute_with_ctx(plan, ctx)
            .map(|r| r.rows()),
        ParallelEngine::new(&sharded)
            .with_threads(2)
            .execute_with_ctx(plan, ctx)
            .map(|r| r.rows()),
    ]
}

/// An expired deadline aborts all three engines with the identical typed
/// error carrying the configured duration.
#[test]
fn zero_deadline_fails_identically_everywhere() {
    let _gate = serial();
    let g = small_graph();
    let plan = chaos_plan(&g);
    let ctx = QueryContext::new().with_deadline_millis(0);
    for (i, r) in run_all_engines(&g, &plan, &ctx).into_iter().enumerate() {
        assert_eq!(
            r.unwrap_err(),
            ExecError::LimitExceeded(LimitReason::Deadline { millis: 0 }),
            "engine #{i}"
        );
    }
}

/// A one-byte budget aborts all three engines with the identical typed error
/// carrying the configured bound (the engines' byte *heuristics* differ, but
/// any real allocation blows a one-byte budget on every one of them).
#[test]
fn tiny_budget_fails_identically_everywhere() {
    let _gate = serial();
    let g = small_graph();
    let plan = chaos_plan(&g);
    let ctx = QueryContext::new().with_budget_bytes(1);
    for (i, r) in run_all_engines(&g, &plan, &ctx).into_iter().enumerate() {
        assert_eq!(
            r.unwrap_err(),
            ExecError::LimitExceeded(LimitReason::Budget { bytes: 1 }),
            "engine #{i}"
        );
    }
}

/// A generous budget is charged without firing, and the metered total is
/// identical wherever the per-engine heuristics coincide by construction —
/// here we only assert it is non-zero and the query succeeds on all engines.
#[test]
fn generous_budget_meters_without_firing() {
    let _gate = serial();
    let g = small_graph();
    let plan = chaos_plan(&g);
    let want = oracle_rows(&g, &plan);
    let ctx = QueryContext::new().with_budget_bytes(1 << 30);
    for (i, r) in run_all_engines(&g, &plan, &ctx).into_iter().enumerate() {
        assert_eq!(r.unwrap(), want, "engine #{i}");
    }
    assert!(ctx.bytes_charged() > 0, "budget accounting metered nothing");
}

/// A pre-cancelled context aborts all three engines before any work.
#[test]
fn cancelled_context_fails_identically_everywhere() {
    let _gate = serial();
    let g = small_graph();
    let plan = chaos_plan(&g);
    let ctx = QueryContext::new();
    ctx.cancel();
    for (i, r) in run_all_engines(&g, &plan, &ctx).into_iter().enumerate() {
        assert_eq!(
            r.unwrap_err(),
            ExecError::LimitExceeded(LimitReason::Cancelled),
            "engine #{i}"
        );
    }
}

/// The unified record limit aborts all three engines with the identical typed
/// error embedding the configured bound (satellite: `RecordLimitExceeded` is
/// folded into `LimitReason::Records`).
#[test]
fn record_limit_fails_identically_everywhere() {
    let _gate = serial();
    let g = small_graph();
    let plan = chaos_plan(&g);
    let ctx = QueryContext::new().with_record_limit(Some(10));
    for (i, r) in run_all_engines(&g, &plan, &ctx).into_iter().enumerate() {
        assert_eq!(r.unwrap_err(), ExecError::record_limit(10), "engine #{i}");
    }
}

// ---------------------------------------------------------------------------
// Chaos under concurrency: faults striking while the serving frontend has
// several queries in flight on ONE shared worker pool. The poisoned query
// must get a typed error; every bystander must return oracle-equal rows; and
// the pool must serve the next wave of queries as if nothing happened.
// ---------------------------------------------------------------------------

use gopt::glogue::{GLogue, GLogueConfig};
use gopt::server::{Server, ServerConfig, ServerError};
use gopt::workloads::{generate_ldbc_graph, LdbcScale};
use std::sync::{Arc, Barrier};

const SERVED_Q: &str =
    "MATCH (p:Person)-[:Knows]->(f:Person)-[:Knows]->(g:Person) RETURN p, g LIMIT 50";

fn chaos_server() -> Server {
    let graph = Arc::new(generate_ldbc_graph(&LdbcScale::tiny()));
    let glogue = Arc::new(GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 3,
            max_anchors: Some(300),
            seed: 3,
        },
    ));
    Server::new(
        graph,
        glogue,
        ServerConfig {
            partitions: 2,
            threads: 2,
            max_concurrent: 4,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server")
}

/// Submit `SERVED_Q` from `k` concurrent clients (released together) and
/// return every outcome.
fn concurrent_wave(server: &Server, k: usize) -> Vec<Result<Vec<Vec<PropValue>>, ServerError>> {
    let start = Barrier::new(k);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..k)
            .map(|_| {
                let session = server.session();
                let start = &start;
                s.spawn(move || {
                    start.wait();
                    session.submit(SERVED_Q).map(|o| o.result.rows())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// A one-shot fault (`@1`: first hit only) armed while 4 queries run on the
/// shared pool strikes at most one of them. For every point × {err, panic}:
/// the poisoned query reports the matching typed error, every bystander's
/// rows equal the unfaulted run, and a full clean wave follows on the same
/// pool.
#[test]
fn one_shot_fault_under_concurrency_poisons_at_most_one_query() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let server = chaos_server();
    // warm the plan cache so the wave contends on execution, not optimization
    let want = server
        .session()
        .submit(SERVED_Q)
        .expect("warm-up")
        .result
        .rows();
    assert!(!want.is_empty(), "served query produces rows");
    for point in POINTS {
        for action in ["err(chaos)@1", "panic(chaos)@1"] {
            failpoint::clear();
            failpoint::configure(point, action).unwrap();
            let tag = format!("{point}={action}");
            let outcomes = concurrent_wave(&server, 4);
            let mut failed = 0usize;
            for out in &outcomes {
                match out {
                    Ok(rows) => assert_eq!(rows, &want, "bystander rows diverge under {tag}"),
                    Err(ServerError::Exec(ExecError::Injected { point: p, msg })) => {
                        assert!(action.starts_with("err"), "err under panic action ({tag})");
                        assert_eq!(p, point, "wrong injection site under {tag}");
                        assert_eq!(msg, "chaos", "wrong message under {tag}");
                        failed += 1;
                    }
                    Err(ServerError::Exec(ExecError::WorkerPanicked { .. })) => {
                        assert!(
                            action.starts_with("panic"),
                            "panic under err action ({tag})"
                        );
                        failed += 1;
                    }
                    Err(other) => panic!("foreign error under {tag}: {other:?}"),
                }
            }
            // `@1` fires exactly once; a plan may skip a point (e.g. a merge
            // that never runs), but the fault can never spread further
            assert!(failed <= 1, "{failed} queries poisoned under {tag}");
            failpoint::clear();
            // pool survival: a full wave succeeds on the very same pool
            for (i, out) in concurrent_wave(&server, 4).into_iter().enumerate() {
                let rows = out.unwrap_or_else(|e| panic!("no recovery after {tag} (#{i}): {e}"));
                assert_eq!(rows, want, "recovery rows diverge after {tag} (#{i})");
            }
            assert_eq!(
                server.admission_metrics().running,
                0,
                "a permit leaked under {tag}"
            );
        }
    }
}

/// The operator-boundary fault — hit by every plan — poisons *exactly* one of
/// the concurrent queries, and the session bookkeeping comes out clean.
#[test]
fn operator_fault_under_concurrency_poisons_exactly_one_query() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let server = chaos_server();
    let want = server
        .session()
        .submit(SERVED_Q)
        .expect("warm-up")
        .result
        .rows();
    failpoint::clear();
    failpoint::configure("exec.operator", "err(chaos)@1").unwrap();
    let outcomes = concurrent_wave(&server, 4);
    let failed = outcomes.iter().filter(|o| o.is_err()).count();
    assert_eq!(failed, 1, "exactly one query hits the one-shot fault");
    for out in outcomes {
        match out {
            Ok(rows) => assert_eq!(rows, want),
            Err(ServerError::Exec(ExecError::Injected { point, msg })) => {
                assert_eq!(point, "exec.operator");
                assert_eq!(msg, "chaos");
            }
            Err(other) => panic!("foreign error: {other:?}"),
        }
    }
}
