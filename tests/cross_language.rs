//! Cross-language integration tests: the same CGP expressed in Cypher and Gremlin must
//! produce the same optimized results (the core promise of the unified GIR).

use gopt::core::{GOpt, GraphScopeSpec};
use gopt::exec::{Backend, PartitionedBackend};
use gopt::glogue::{GLogue, GLogueConfig, GlogueQuery};
use gopt::parser::{parse_cypher, parse_gremlin};
use gopt::workloads::{generate_ldbc_graph, LdbcScale};

#[test]
fn cypher_and_gremlin_agree_on_counts() {
    let graph = generate_ldbc_graph(&LdbcScale::tiny());
    let glogue = GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 2,
            max_anchors: Some(200),
            seed: 5,
        },
    );
    let gq = GlogueQuery::new(&glogue);
    let spec = GraphScopeSpec;
    let backend = PartitionedBackend::new(4).unwrap();
    let pairs = [
        (
            "MATCH (p:Person)-[:Knows]->(f:Person) RETURN count(*) AS cnt",
            "g.V().hasLabel('Person').as('p').out('Knows').as('f').hasLabel('Person').count()",
        ),
        (
            "MATCH (p:Person)-[:Knows]->(f:Person)-[:IsLocatedIn]->(c:Place) WHERE c.name = 'China' RETURN count(*) AS cnt",
            "g.V().hasLabel('Person').as('p').out('Knows').as('f').out('IsLocatedIn').as('c').hasLabel('Place').has('name', 'China').count()",
        ),
        (
            "MATCH (a:Person)-[:Knows]->(b:Person), (b)-[:Knows]->(c:Person), (a)-[:Knows]->(c) RETURN count(*) AS cnt",
            "g.V().match(__.as('a').hasLabel('Person').out('Knows').as('b'), __.as('b').hasLabel('Person').out('Knows').as('c'), __.as('a').out('Knows').as('c')).select('c').hasLabel('Person').count()",
        ),
    ];
    for (cy, gr) in pairs {
        let from_cypher = parse_cypher(cy, graph.schema()).expect("cypher parses");
        let from_gremlin = parse_gremlin(gr, graph.schema()).expect("gremlin parses");
        let p1 = GOpt::new(graph.schema(), &gq, &spec)
            .optimize(&from_cypher)
            .unwrap();
        let p2 = GOpt::new(graph.schema(), &gq, &spec)
            .optimize(&from_gremlin)
            .unwrap();
        let r1 = backend.execute(&graph, &p1).unwrap();
        let r2 = backend.execute(&graph, &p2).unwrap();
        let c1 = r1.rows()[0].last().unwrap().clone();
        let c2 = r2.rows()[0].last().unwrap().clone();
        assert_eq!(c1, c2, "languages disagree for {cy}");
    }
}
