//! `gopt_server` boot-from-image equivalence: a [`Server`] booted from a
//! binary graph image must answer every workload query with exactly the rows
//! of (a) a server built in-process over the same graph and (b) the scalar
//! single-machine oracle. Also covers the runtime swap path
//! ([`Server::load_image`]): loading an image must bump the statistics
//! version so no plan optimized for the previous graph is ever served from
//! the cache.

use gopt::exec::{Backend, ExecMode, SingleMachineBackend};
use gopt::glogue::{GLogue, GLogueConfig};
use gopt::graph::stats::GraphStats;
use gopt::graph::{image, PartitionedGraph, PropertyGraph};
use gopt::server::{Server, ServerConfig, ServerError};
use gopt::workloads::{generate_ldbc_graph, qr_queries, qt_queries, LdbcScale, NamedQuery};
use std::path::PathBuf;
use std::sync::Arc;

const GLOGUE_CFG: GLogueConfig = GLogueConfig {
    max_pattern_vertices: 3,
    max_anchors: Some(300),
    seed: 3,
};

fn workload() -> Vec<NamedQuery> {
    qr_queries().into_iter().chain(qt_queries()).collect()
}

fn temp_image(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gopt_{name}_{}.img", std::process::id()))
}

/// Write the tiny LDBC graph to an image at `partitions` shards.
fn write_fixture_image(path: &std::path::Path, partitions: usize) -> Arc<PropertyGraph> {
    let graph = Arc::new(generate_ldbc_graph(&LdbcScale::tiny()));
    let pg = PartitionedGraph::build(&graph, partitions);
    let stats = GraphStats::from_graph(&graph);
    image::write_image(&graph, &pg, &stats, path).expect("write image");
    graph
}

#[test]
fn server_booted_from_image_is_oracle_equivalent() {
    let config = ServerConfig::default();
    let path = temp_image("server_boot");
    let graph = write_fixture_image(&path, config.partitions);

    let in_process = Server::new(
        Arc::clone(&graph),
        Arc::new(GLogue::build(&graph, &GLOGUE_CFG)),
        config.clone(),
    )
    .expect("in-process server");
    let from_image = Server::from_image(&path, &GLOGUE_CFG, config).expect("image server");
    std::fs::remove_file(&path).ok();

    // the image's statistics were installed under a bumped version
    assert_ne!(from_image.stats_version(), 0);

    let oracle = SingleMachineBackend::new().with_mode(ExecMode::Scalar);
    let a = in_process.session();
    let b = from_image.session();
    for q in workload() {
        let live = a.session_rows(&q);
        let booted = b.session_rows(&q);
        assert_eq!(
            live, booted,
            "{}: image-booted server diverges from in-process server",
            q.name
        );
        // both must equal the scalar oracle run of the booted server's plan
        let out = b.submit(&q.text).expect("submit");
        let want = oracle
            .execute(&from_image.graph(), &out.exec_plan)
            .expect("oracle executes")
            .rows();
        assert_eq!(
            out.result.rows(),
            want,
            "{}: image-booted server diverges from the scalar oracle",
            q.name
        );
    }
}

/// Small helper so the test above reads naturally.
trait SessionRows {
    fn session_rows(&self, q: &NamedQuery) -> Vec<Vec<gopt::graph::PropValue>>;
}

impl SessionRows for gopt::server::Session {
    fn session_rows(&self, q: &NamedQuery) -> Vec<Vec<gopt::graph::PropValue>> {
        self.submit(&q.text).expect("submit").result.rows()
    }
}

#[test]
fn load_image_bumps_stats_version_and_invalidates_plan_cache() {
    let config = ServerConfig::default();
    let path = temp_image("server_swap");
    let graph = write_fixture_image(&path, config.partitions);

    let server = Server::new(
        Arc::clone(&graph),
        Arc::new(GLogue::build(&graph, &GLOGUE_CFG)),
        config,
    )
    .expect("server");
    let session = server.session();
    let q = &workload()[0];

    let cold = session.submit(&q.text).expect("cold");
    let warm = session.submit(&q.text).expect("warm");
    assert!(!cold.cache_hit);
    assert!(
        warm.cache_hit,
        "second submission should hit the plan cache"
    );
    let v0 = server.stats_version();

    let v1 = server.load_image(&path, &GLOGUE_CFG).expect("load image");
    std::fs::remove_file(&path).ok();
    assert_eq!(v1, v0 + 1, "loading an image bumps the stats version");
    assert_eq!(server.stats_version(), v1);

    // the cached plan was optimized under v0 — it must NOT be served now
    let reopt = session.submit(&q.text).expect("after swap");
    assert!(
        !reopt.cache_hit,
        "plan optimized for the previous graph must not be served after a swap"
    );
    assert_eq!(reopt.stats_version, v1);
    // rows still equal the oracle on the (identical) swapped-in graph
    assert_eq!(reopt.result.rows(), cold.result.rows());

    // and the cache works again under the new version
    let rewarm = session.submit(&q.text).expect("rewarm");
    assert!(rewarm.cache_hit);
}

#[test]
fn image_errors_surface_as_typed_server_errors() {
    let missing = temp_image("server_missing");
    match Server::from_image(&missing, &GLOGUE_CFG, ServerConfig::default()) {
        Err(ServerError::Image(_)) => {}
        other => panic!("expected ServerError::Image, got {other:?}"),
    }

    // a corrupted image must not take down a running server
    let config = ServerConfig::default();
    let path = temp_image("server_corrupt");
    let graph = write_fixture_image(&path, config.partitions);
    let mut bytes = std::fs::read(&path).expect("read image");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite image");

    let server = Server::new(
        Arc::clone(&graph),
        Arc::new(GLogue::build(&graph, &GLOGUE_CFG)),
        config,
    )
    .expect("server");
    let v0 = server.stats_version();
    match server.load_image(&path, &GLOGUE_CFG) {
        Err(ServerError::Image(_)) => {}
        other => panic!("expected ServerError::Image, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
    // failed load leaves the server untouched and still serving
    assert_eq!(server.stats_version(), v0);
    let q = &workload()[0];
    server.session().submit(&q.text).expect("still serving");
}
