//! Cancellation and deadline fairness of the serving frontend's admission
//! layer: cancelling a running query frees its slot promptly so a queued
//! query is admitted; a queued query honours its own deadline instead of
//! waiting forever; a full wait queue rejects with a typed overload error;
//! and none of this ever touches a bystander's query.
//!
//! A `delay` fail point at the morsel checkpoint makes the slot-holding query
//! slow without changing its semantics. The registry is process-global, so
//! every test holds a serializing gate for its whole body.

use gopt::exec::{ExecError, LimitReason};
use gopt::glogue::{GLogue, GLogueConfig};
use gopt::graph::PropValue;
use gopt::server::{Server, ServerConfig, ServerError, SubmitOptions};
use gopt::workloads::{generate_ldbc_graph, LdbcScale};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serialize tests that touch the process-global fail-point registry.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard: clears the registry on drop, even if an assertion unwinds.
struct ClearOnDrop;
impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

const Q: &str = "MATCH (p:Person)-[:Knows]->(f:Person)-[:Knows]->(g:Person) RETURN p, g LIMIT 50";

/// A single-slot server: one query executes at a time, the rest wait.
fn single_slot_server(queue_capacity: usize) -> Server {
    let graph = Arc::new(generate_ldbc_graph(&LdbcScale::tiny()));
    let glogue = Arc::new(GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 3,
            max_anchors: Some(300),
            seed: 3,
        },
    ));
    Server::new(
        graph,
        glogue,
        ServerConfig {
            partitions: 2,
            threads: 2,
            max_concurrent: 1,
            queue_capacity,
            ..ServerConfig::default()
        },
    )
    .expect("server")
}

/// Spin until `cond` holds, failing loudly instead of hanging forever.
fn wait_until(cond: impl Fn() -> bool, what: &str) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn cancelled() -> ServerError {
    ServerError::Exec(ExecError::LimitExceeded(LimitReason::Cancelled))
}

/// Cancelling the slot-holding query frees the slot promptly: the queued
/// bystander — a *different* session — is admitted and completes with
/// unfaulted rows, untouched by the cancellation.
#[test]
fn cancelling_the_running_query_admits_the_queued_one() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let server = single_slot_server(4);
    let want = server.session().submit(Q).expect("warm-up").result.rows();
    assert!(!want.is_empty());

    // every morsel checkpoint now sleeps 200ms: the next query is slow and
    // observably mid-flight, but still checks its context between sleeps
    failpoint::configure("exec.morsel", "delay(200)").unwrap();
    let victim = server.session();
    let bystander = server.session();
    let (victim_out, bystander_out) = std::thread::scope(|s| {
        let v = victim.clone();
        let victim_run = s.spawn(move || v.submit(Q));
        wait_until(
            || server.admission_metrics().running == 1,
            "the victim to occupy the slot",
        );
        let b = bystander.clone();
        let bystander_run = s.spawn(move || b.submit(Q));
        wait_until(
            || server.admission_metrics().queued == 1,
            "the bystander to queue behind the victim",
        );
        // cancel the victim, then disarm the delay so the bystander (not yet
        // admitted — the victim still holds the slot) runs at full speed
        victim.cancel_all();
        failpoint::clear();
        (victim_run.join().unwrap(), bystander_run.join().unwrap())
    });
    assert_eq!(victim_out.unwrap_err(), cancelled());
    assert_eq!(
        bystander_out
            .expect("the bystander must not be cancelled")
            .result
            .rows(),
        want,
        "bystander rows diverge after the victim's cancellation"
    );
    let m = server.admission_metrics();
    assert_eq!(m.running, 0, "the freed slot was returned");
    assert_eq!(m.admitted, 3, "warm-up + victim + bystander were admitted");
    assert_eq!(
        m.abandoned, 0,
        "the bystander waited out the queue normally"
    );
}

/// A queued query enforces its own deadline: it abandons the queue with the
/// typed deadline error while the slot-holder keeps running, and the
/// slot-holder's later cancellation is unaffected.
#[test]
fn queued_query_honours_its_deadline_while_waiting() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let server = single_slot_server(4);
    server.session().submit(Q).expect("warm-up");

    failpoint::configure("exec.morsel", "delay(200)").unwrap();
    let holder = server.session();
    let impatient = server.session();
    let (holder_out, impatient_out) = std::thread::scope(|s| {
        let h = holder.clone();
        let holder_run = s.spawn(move || h.submit(Q));
        wait_until(
            || server.admission_metrics().running == 1,
            "the holder to occupy the slot",
        );
        // 30ms deadline vs a 200ms-per-morsel holder: expires while queued
        let opts = SubmitOptions {
            deadline_millis: Some(30),
            ..SubmitOptions::default()
        };
        let impatient_result = impatient.submit_with(Q, &opts);
        holder.cancel_all();
        failpoint::clear();
        (holder_run.join().unwrap(), impatient_result)
    });
    assert_eq!(
        impatient_out.unwrap_err(),
        ServerError::Exec(ExecError::LimitExceeded(LimitReason::Deadline {
            millis: 30
        })),
        "the queued query must time out with its own typed deadline error"
    );
    assert_eq!(holder_out.unwrap_err(), cancelled());
    let m = server.admission_metrics();
    assert_eq!(
        m.abandoned, 1,
        "the impatient query left the queue unadmitted"
    );
    assert_eq!(m.admitted, 2, "only warm-up and holder ever got the slot");
    // the pool is healthy: a clean query serves immediately
    let replay: Vec<Vec<PropValue>> = server.session().submit(Q).unwrap().result.rows();
    assert!(!replay.is_empty());
}

/// With a zero-capacity wait queue, a second query is rejected immediately
/// with the typed overload error — no blocking, no effect on the runner.
#[test]
fn full_wait_queue_rejects_with_typed_overload() {
    let _gate = serial();
    let _clear = ClearOnDrop;
    let server = single_slot_server(0);
    let want = server.session().submit(Q).expect("warm-up").result.rows();

    failpoint::configure("exec.morsel", "delay(200)").unwrap();
    let holder = server.session();
    let rejected = server.session();
    std::thread::scope(|s| {
        let h = holder.clone();
        let holder_run = s.spawn(move || h.submit(Q));
        wait_until(
            || server.admission_metrics().running == 1,
            "the holder to occupy the slot",
        );
        match rejected.submit(Q) {
            Err(ServerError::Overloaded {
                max_concurrent,
                queue_capacity,
            }) => {
                assert_eq!(max_concurrent, 1);
                assert_eq!(queue_capacity, 0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        holder.cancel_all();
        failpoint::clear();
        assert_eq!(holder_run.join().unwrap().unwrap_err(), cancelled());
    });
    assert_eq!(server.admission_metrics().rejected, 1);
    // rejection is retryable: the same session succeeds once the slot frees
    assert_eq!(rejected.submit(Q).unwrap().result.rows(), want);
}
