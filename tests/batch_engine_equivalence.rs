//! `BatchEngine` vs `Engine` equivalence on realistic plans: every workload query the
//! repository ships, optimized by GOpt and by the baseline planners, plus randomized
//! plan orders over random graphs, must produce identical sorted rows and identical
//! statistics (modulo wall-clock time) under both engines at several batch sizes.
//!
//! The scalar `Engine` is the behavioural oracle; the operator-level suite lives in
//! `crates/exec/tests/batch_ops.rs`.

use gopt::core::{ExpandStrategy, GOpt, GOptConfig, GraphScopeSpec, Neo4jSpec, RandomPlanner};
use gopt::exec::{BatchEngine, Engine, EngineConfig, ExecResult};
use gopt::gir::PhysicalPlan;
use gopt::glogue::{GLogue, GLogueConfig, GlogueQuery};
use gopt::graph::generator::{random_graph, RandomGraphConfig};
use gopt::graph::schema::fig6_schema;
use gopt::graph::PropertyGraph;
use gopt::parser::{parse_cypher, parse_gremlin};
use gopt::workloads::{
    generate_ldbc_graph, ic_queries, qc_queries, qr_gremlin_queries, qt_queries, LdbcScale,
};
use proptest::prelude::*;

const BATCH_SIZES: [usize; 2] = [7, 1024];

fn assert_engines_agree(g: &PropertyGraph, plan: &PhysicalPlan, partitions: Option<usize>) {
    let config = EngineConfig {
        partitions,
        record_limit: Some(3_000_000),
    };
    let scalar = Engine::new(g, config.clone()).execute(plan);
    for batch_size in BATCH_SIZES {
        let batched = BatchEngine::new(g, config.clone())
            .with_batch_size(batch_size)
            .execute(plan);
        match (&scalar, &batched) {
            (Ok(s), Ok(b)) => assert_same(s, b, batch_size),
            (Err(es), Err(eb)) => assert_eq!(es, eb, "errors diverge (batch_size={batch_size})"),
            _ => panic!(
                "one engine failed where the other succeeded (batch_size={batch_size}): \
                 scalar={scalar:?} batched={batched:?}"
            ),
        }
    }
}

fn assert_same(scalar: &ExecResult, batched: &ExecResult, batch_size: usize) {
    assert_eq!(
        scalar.tags.tags(),
        batched.tags.tags(),
        "tag maps diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.sorted_rows(),
        batched.sorted_rows(),
        "sorted rows diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.stats.intermediate_records, batched.stats.intermediate_records,
        "intermediate records diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.stats.peak_records, batched.stats.peak_records,
        "peak records diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.stats.comm_records, batched.stats.comm_records,
        "communication accounting diverges (batch_size={batch_size})"
    );
}

fn ldbc_env() -> (PropertyGraph, GLogue) {
    let graph = generate_ldbc_graph(&LdbcScale {
        persons: 40,
        seed: 42,
    });
    let glogue = GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 2,
            max_anchors: Some(200),
            seed: 9,
        },
    );
    (graph, glogue)
}

/// Every shipped workload query, planned by GOpt for both backend specs, executes
/// identically on both engines.
#[test]
fn workload_plans_agree_on_both_engines() {
    let (graph, glogue) = ldbc_env();
    let gq = GlogueQuery::new(&glogue);
    let queries = qc_queries()
        .into_iter()
        .chain(ic_queries())
        .chain(qt_queries())
        .chain(qr_gremlin_queries())
        .collect::<Vec<_>>();
    let mut planned = 0usize;
    // alternate backend spec and partitioning across queries instead of running
    // the full cross product — every combination is still covered many times
    // over the query set, at a quarter of the wall-clock cost
    for (qi, q) in queries.iter().enumerate() {
        let logical = match parse_cypher(&q.text, graph.schema()) {
            Ok(l) => l,
            Err(_) => match parse_gremlin(&q.text, graph.schema()) {
                Ok(l) => l,
                Err(_) => continue,
            },
        };
        let plan = if qi % 2 == 0 {
            GOpt::new(graph.schema(), &gq, &GraphScopeSpec)
                .with_config(GOptConfig::default())
                .optimize(&logical)
        } else {
            GOpt::new(graph.schema(), &gq, &Neo4jSpec)
                .with_config(GOptConfig::default())
                .optimize(&logical)
        };
        let Ok(plan) = plan else { continue };
        planned += 1;
        let parts = if qi % 3 == 0 { Some(4) } else { None };
        assert_engines_agree(&graph, &plan, parts);
    }
    assert!(
        planned >= 8,
        "expected to replay at least 8 optimized workload plans, got {planned}"
    );
}

/// Randomized (but valid) plan orders over random graphs with both expansion
/// strategies.
#[test]
fn random_plan_orders_agree_on_both_engines() {
    let schema = fig6_schema();
    for seed in 0..6u64 {
        let graph = random_graph(
            &schema,
            &RandomGraphConfig {
                vertices_per_label: 10,
                edges_per_endpoint: 35,
                seed,
            },
        );
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let mut pattern = gopt::gir::Pattern::new();
        let a = pattern.add_vertex_tagged("a", gopt::gir::TypeConstraint::basic(person));
        let b = pattern.add_vertex_tagged("b", gopt::gir::TypeConstraint::basic(person));
        let c = pattern.add_vertex_tagged("c", gopt::gir::TypeConstraint::basic(place));
        pattern.add_edge(a, b, gopt::gir::TypeConstraint::basic(knows));
        pattern.add_edge(a, c, gopt::gir::TypeConstraint::basic(located));
        pattern.add_edge(b, c, gopt::gir::TypeConstraint::basic(located));
        let mut builder = gopt::gir::GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let logical = builder.build(m);
        for strategy in [ExpandStrategy::Intersect, ExpandStrategy::Flatten] {
            let plan = RandomPlanner::new(seed, strategy)
                .optimize(&logical)
                .expect("random plan builds");
            assert_engines_agree(&graph, &plan, None);
            assert_engines_agree(&graph, &plan, Some(3));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property test: random graph, random plan order, random partition count —
    /// the engines always agree.
    #[test]
    fn engines_agree_on_random_graphs(seed in 0u64..200, edges in 15usize..60, parts in 1usize..5) {
        let schema = fig6_schema();
        let graph = random_graph(&schema, &RandomGraphConfig {
            vertices_per_label: 8,
            edges_per_endpoint: edges,
            seed,
        });
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let mut pattern = gopt::gir::Pattern::new();
        let a = pattern.add_vertex_tagged("a", gopt::gir::TypeConstraint::basic(person));
        let b = pattern.add_vertex_tagged("b", gopt::gir::TypeConstraint::basic(person));
        let c = pattern.add_vertex_tagged("c", gopt::gir::TypeConstraint::basic(person));
        pattern.add_edge(a, b, gopt::gir::TypeConstraint::basic(knows));
        pattern.add_edge(b, c, gopt::gir::TypeConstraint::basic(knows));
        let mut builder = gopt::gir::GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let logical = builder.build(m);
        let plan = RandomPlanner::new(seed, ExpandStrategy::Intersect)
            .optimize(&logical)
            .expect("random plan builds");
        assert_engines_agree(&graph, &plan, Some(parts));
    }
}
