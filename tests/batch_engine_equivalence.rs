//! `BatchEngine` vs `Engine` equivalence on realistic plans: every workload query the
//! repository ships, optimized by GOpt and by the baseline planners, plus randomized
//! plan orders over random graphs, must produce identical sorted rows and identical
//! statistics (modulo wall-clock time) under both engines at several batch sizes.
//!
//! The scalar `Engine` is the behavioural oracle; the operator-level suite lives in
//! `crates/exec/tests/batch_ops.rs`.

use gopt::core::{ExpandStrategy, GOpt, GOptConfig, GraphScopeSpec, Neo4jSpec, RandomPlanner};
use gopt::exec::{BatchEngine, Engine, EngineConfig, ExecResult};
use gopt::gir::PhysicalPlan;
use gopt::glogue::{GLogue, GLogueConfig, GlogueQuery};
use gopt::graph::generator::{random_graph, RandomGraphConfig};
use gopt::graph::schema::fig6_schema;
use gopt::graph::PropertyGraph;
use gopt::parser::{parse_cypher, parse_gremlin};
use gopt::workloads::{
    generate_ldbc_graph, ic_queries, qc_queries, qr_gremlin_queries, qt_queries, LdbcScale,
};
use proptest::prelude::*;

const BATCH_SIZES: [usize; 2] = [7, 1024];

fn assert_engines_agree(g: &PropertyGraph, plan: &PhysicalPlan, partitions: Option<usize>) {
    let config = EngineConfig {
        partitions,
        record_limit: Some(3_000_000),
    };
    let scalar = Engine::new(g, config.clone()).execute(plan);
    for batch_size in BATCH_SIZES {
        let batched = BatchEngine::new(g, config.clone())
            .with_batch_size(batch_size)
            .execute(plan);
        match (&scalar, &batched) {
            (Ok(s), Ok(b)) => assert_same(s, b, batch_size),
            (Err(es), Err(eb)) => assert_eq!(es, eb, "errors diverge (batch_size={batch_size})"),
            _ => panic!(
                "one engine failed where the other succeeded (batch_size={batch_size}): \
                 scalar={scalar:?} batched={batched:?}"
            ),
        }
    }
}

fn assert_same(scalar: &ExecResult, batched: &ExecResult, batch_size: usize) {
    assert_eq!(
        scalar.tags.tags(),
        batched.tags.tags(),
        "tag maps diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.sorted_rows(),
        batched.sorted_rows(),
        "sorted rows diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.stats.intermediate_records, batched.stats.intermediate_records,
        "intermediate records diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.stats.peak_records, batched.stats.peak_records,
        "peak records diverge (batch_size={batch_size})"
    );
    assert_eq!(
        scalar.stats.comm_records, batched.stats.comm_records,
        "communication accounting diverges (batch_size={batch_size})"
    );
}

fn ldbc_env() -> (PropertyGraph, GLogue) {
    let graph = generate_ldbc_graph(&LdbcScale {
        persons: 40,
        seed: 42,
    });
    let glogue = GLogue::build(
        &graph,
        &GLogueConfig {
            max_pattern_vertices: 2,
            max_anchors: Some(200),
            seed: 9,
        },
    );
    (graph, glogue)
}

/// Every shipped workload query, planned by GOpt for both backend specs, executes
/// identically on both engines.
#[test]
fn workload_plans_agree_on_both_engines() {
    let (graph, glogue) = ldbc_env();
    let gq = GlogueQuery::new(&glogue);
    let queries = qc_queries()
        .into_iter()
        .chain(ic_queries())
        .chain(qt_queries())
        .chain(qr_gremlin_queries())
        .collect::<Vec<_>>();
    let mut planned = 0usize;
    // alternate backend spec and partitioning across queries instead of running
    // the full cross product — every combination is still covered many times
    // over the query set, at a quarter of the wall-clock cost
    for (qi, q) in queries.iter().enumerate() {
        let logical = match parse_cypher(&q.text, graph.schema()) {
            Ok(l) => l,
            Err(_) => match parse_gremlin(&q.text, graph.schema()) {
                Ok(l) => l,
                Err(_) => continue,
            },
        };
        let plan = if qi % 2 == 0 {
            GOpt::new(graph.schema(), &gq, &GraphScopeSpec)
                .with_config(GOptConfig::default())
                .optimize(&logical)
        } else {
            GOpt::new(graph.schema(), &gq, &Neo4jSpec)
                .with_config(GOptConfig::default())
                .optimize(&logical)
        };
        let Ok(plan) = plan else { continue };
        planned += 1;
        let parts = if qi % 3 == 0 { Some(4) } else { None };
        assert_engines_agree(&graph, &plan, parts);
    }
    assert!(
        planned >= 8,
        "expected to replay at least 8 optimized workload plans, got {planned}"
    );
}

/// Randomized (but valid) plan orders over random graphs with both expansion
/// strategies.
#[test]
fn random_plan_orders_agree_on_both_engines() {
    let schema = fig6_schema();
    for seed in 0..6u64 {
        let graph = random_graph(
            &schema,
            &RandomGraphConfig {
                vertices_per_label: 10,
                edges_per_endpoint: 35,
                seed,
            },
        );
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let mut pattern = gopt::gir::Pattern::new();
        let a = pattern.add_vertex_tagged("a", gopt::gir::TypeConstraint::basic(person));
        let b = pattern.add_vertex_tagged("b", gopt::gir::TypeConstraint::basic(person));
        let c = pattern.add_vertex_tagged("c", gopt::gir::TypeConstraint::basic(place));
        pattern.add_edge(a, b, gopt::gir::TypeConstraint::basic(knows));
        pattern.add_edge(a, c, gopt::gir::TypeConstraint::basic(located));
        pattern.add_edge(b, c, gopt::gir::TypeConstraint::basic(located));
        let mut builder = gopt::gir::GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let logical = builder.build(m);
        for strategy in [ExpandStrategy::Intersect, ExpandStrategy::Flatten] {
            let plan = RandomPlanner::new(seed, strategy)
                .optimize(&logical)
                .expect("random plan builds");
            assert_engines_agree(&graph, &plan, None);
            assert_engines_agree(&graph, &plan, Some(3));
        }
    }
}

/// Typed-property predicate coverage: plans filtering and projecting over
/// dense, sparse, mixed and all-null property columns must agree between the
/// scalar oracle and the batched engine (whose `Select` takes the typed
/// column kernels when the predicate shape allows) at partitions {1, 2, 4}.
#[test]
fn typed_property_predicates_agree_on_both_engines() {
    use gopt::gir::expr::{BinOp, Expr};
    use gopt::gir::pattern::Direction;
    use gopt::gir::physical::{PhysicalOp, PhysicalPlan};
    use gopt::gir::TypeConstraint;
    use gopt::graph::{GraphBuilder, PropValue};

    let mut b = GraphBuilder::new(fig6_schema());
    let mut persons = Vec::new();
    for i in 0..12i64 {
        let mut props = vec![
            ("age", PropValue::Int(20 + i)),             // dense Int
            ("score", PropValue::Float(i as f64 / 3.0)), // dense Float
            ("nick", PropValue::str(format!("p{i}"))),   // dense Str
        ];
        if i % 3 == 0 {
            props.push(("seen", PropValue::Date(7000 + i))); // sparse Date
        }
        props.push(if i < 6 {
            ("tag", PropValue::Int(i)) // mixed column: Int then Str cells
        } else {
            ("tag", PropValue::str("t"))
        });
        persons.push(b.add_vertex_by_name("Person", props).unwrap());
    }
    // `capacity` exists only on Places: all-null from Person's point of view
    b.add_vertex_by_name("Place", vec![("capacity", PropValue::Int(9))])
        .unwrap();
    for w in persons.windows(2) {
        b.add_edge_by_name(
            "Knows",
            w[0],
            w[1],
            vec![("since", PropValue::Int(w[1].0 as i64))],
        )
        .unwrap();
    }
    let graph = b.finish();
    let person = TypeConstraint::basic(graph.schema().vertex_label("Person").unwrap());
    let knows = TypeConstraint::basic(graph.schema().edge_label("Knows").unwrap());

    let predicates: Vec<Expr> = vec![
        // dense Int: kernel hit
        Expr::binary(BinOp::Lt, Expr::prop("b", "age"), Expr::lit(27)),
        // literal-on-the-left flips the operator
        Expr::binary(BinOp::Ge, Expr::lit(27), Expr::prop("b", "age")),
        // sparse Date: null bitmap consulted
        Expr::binary(
            BinOp::Le,
            Expr::prop("b", "seen"),
            Expr::lit(PropValue::Date(7006)),
        ),
        // cross-kind: Date column vs Int literal is a constant ordering
        Expr::binary(BinOp::Gt, Expr::prop("b", "seen"), Expr::lit(0)),
        // Float vs Int literal compares numerically
        Expr::binary(BinOp::Gt, Expr::prop("b", "score"), Expr::lit(2)),
        Expr::prop_eq("b", "nick", "p4"),
        // mixed column: per-cell fallback inside the kernel
        Expr::binary(BinOp::Lt, Expr::prop("b", "tag"), Expr::lit(4)),
        // all-null (absent-on-label) column and unknown key
        Expr::prop_eq("b", "capacity", 9),
        Expr::prop_eq("b", "no_such_key", 1),
        // AND/OR over sparse + dense leaves
        Expr::binary(BinOp::Lt, Expr::prop("b", "age"), Expr::lit(29)).and(Expr::binary(
            BinOp::Ge,
            Expr::prop("b", "seen"),
            Expr::lit(PropValue::Date(0)),
        )),
        Expr::binary(
            BinOp::Or,
            Expr::prop_eq("b", "nick", "p2"),
            Expr::binary(BinOp::Gt, Expr::prop("e", "since"), Expr::lit(8)),
        ),
        // shapes the kernel rejects: the row-wise oracle path must agree too
        Expr::binary(
            BinOp::Lt,
            Expr::binary(BinOp::Add, Expr::prop("b", "age"), Expr::lit(1)),
            Expr::lit(26),
        ),
        Expr::binary(BinOp::Eq, Expr::prop("b", "age"), Expr::prop("b", "tag")),
    ];
    for predicate in predicates {
        let mut plan = PhysicalPlan::new();
        plan.push(PhysicalOp::Scan {
            alias: "a".into(),
            constraint: person.clone(),
            predicate: None,
        });
        plan.push(PhysicalOp::EdgeExpand {
            src: "a".into(),
            edge_alias: Some("e".into()),
            edge_constraint: knows.clone(),
            direction: Direction::Out,
            dst_alias: "b".into(),
            dst_constraint: person.clone(),
            dst_predicate: None,
            edge_predicate: None,
        });
        plan.push(PhysicalOp::Select { predicate });
        plan.push(PhysicalOp::Project {
            items: vec![
                (Expr::prop("b", "age"), "age".into()),
                (Expr::prop("b", "tag"), "tag".into()),
                (Expr::prop("b", "seen"), "seen".into()),
            ],
        });
        for parts in [1usize, 2, 4] {
            assert_engines_agree(&graph, &plan, Some(parts));
        }
    }
}

/// String-heavy plans over dictionary-encoded `Str` columns: equality and
/// range predicates (now rank comparisons over `u32` codes), `HashGroup` on
/// `Str` keys and `OrderLimit` on `Str` keys (now covered by the packed-key
/// fast paths for short strings). Strings are chosen to hit every packing
/// regime: short (≤8 bytes, packable), long (>8 bytes, row-wise fallback),
/// sharing an 8-byte prefix (the prefix key alone cannot distinguish them),
/// and absent (null bitmap).
#[test]
fn string_heavy_plans_agree_on_both_engines() {
    use gopt::gir::expr::{AggFunc, BinOp, Expr, SortDir};
    use gopt::gir::physical::PhysicalOp;
    use gopt::gir::TypeConstraint;
    use gopt::graph::{GraphBuilder, PropValue};

    let cities = [
        "Oslo",             // short: packs into the prefix key
        "Rio",              // short
        "Konstantinopel",   // long: > 8 bytes, packed path bails
        "Konstanz",         // exactly 8 bytes, still packable
        "Konstanz\u{0131}", // > 8 bytes sharing an 8-byte prefix
        "",                 // empty string is a valid dict entry
    ];
    let mut b = GraphBuilder::new(fig6_schema());
    let mut persons = Vec::new();
    for i in 0..24i64 {
        let mut props = vec![("age", PropValue::Int(20 + (i % 7)))];
        if i % 5 != 0 {
            // dictionary column with repeats and a null every 5th row
            props.push(("city", PropValue::str(cities[i as usize % cities.len()])));
        }
        props.push(("nick", PropValue::str(format!("person_{:02}", i % 9))));
        persons.push(b.add_vertex_by_name("Person", props).unwrap());
    }
    for w in persons.windows(2) {
        b.add_edge_by_name("Knows", w[0], w[1], vec![]).unwrap();
    }
    let graph = b.finish();
    let person = TypeConstraint::basic(graph.schema().vertex_label("Person").unwrap());
    let knows = TypeConstraint::basic(graph.schema().edge_label("Knows").unwrap());

    let predicates: Vec<Expr> = vec![
        // equality → code == rank, including a long needle
        Expr::prop_eq("b", "city", "Oslo"),
        Expr::prop_eq("b", "city", "Konstantinopel"),
        // needle absent from the dictionary: rank exists, exact = false
        Expr::prop_eq("b", "city", "Paris"),
        // range predicates → code < / >= rank under dictionary order
        Expr::binary(
            BinOp::Lt,
            Expr::prop("b", "city"),
            Expr::lit(PropValue::str("Konstanz")),
        ),
        Expr::binary(
            BinOp::Ge,
            Expr::prop("b", "city"),
            Expr::lit(PropValue::str("Konstanz")),
        ),
        // prefix-sharing pair must order correctly beyond 8 bytes
        Expr::binary(
            BinOp::Gt,
            Expr::prop("b", "city"),
            Expr::lit(PropValue::str("Konstanz\u{0130}")),
        ),
        Expr::prop_eq("b", "city", ""),
        // Str column vs Int literal: cross-kind constant ordering
        Expr::binary(BinOp::Gt, Expr::prop("b", "city"), Expr::lit(5)),
    ];
    let mut plans = Vec::new();
    for predicate in predicates {
        let mut plan = base_expand_plan(&person, &knows);
        plan.push(PhysicalOp::Select { predicate });
        plan.push(PhysicalOp::Project {
            items: vec![(Expr::prop("b", "city"), "city".into())],
        });
        plans.push(plan);
    }
    // HashGroup on a Str key (packed fast path) + a long-string key column
    let mut group = base_expand_plan(&person, &knows);
    group.push(PhysicalOp::HashGroup {
        keys: vec![(Expr::prop("b", "city"), "city".into())],
        aggs: vec![
            (AggFunc::Count, Expr::tag("b"), "n".into()),
            (AggFunc::Min, Expr::prop("b", "nick"), "first_nick".into()),
        ],
    });
    plans.push(group);
    // grouping on a >8-byte-heavy key column forces the row-wise path
    let mut group_long = base_expand_plan(&person, &knows);
    group_long.push(PhysicalOp::HashGroup {
        keys: vec![(Expr::prop("b", "nick"), "nick".into())],
        aggs: vec![(AggFunc::Count, Expr::tag("b"), "n".into())],
    });
    plans.push(group_long);
    // OrderLimit on Str keys, both directions, with and without top-k
    for (dir, limit) in [(SortDir::Asc, None), (SortDir::Desc, Some(7))] {
        let mut order = base_expand_plan(&person, &knows);
        order.push(PhysicalOp::Project {
            items: vec![
                (Expr::prop("b", "city"), "city".into()),
                (Expr::prop("b", "age"), "age".into()),
            ],
        });
        order.push(PhysicalOp::OrderLimit {
            keys: vec![
                (Expr::prop("b", "city"), dir),
                (Expr::prop("b", "age"), SortDir::Asc),
            ],
            limit,
        });
        plans.push(order);
    }
    // Dedup on a Str key
    let mut dedup = base_expand_plan(&person, &knows);
    dedup.push(PhysicalOp::Project {
        items: vec![(Expr::prop("b", "city"), "city".into())],
    });
    dedup.push(PhysicalOp::Dedup {
        keys: vec![Expr::tag("city")],
    });
    plans.push(dedup);

    for plan in &plans {
        for parts in [1usize, 2, 4] {
            assert_engines_agree(&graph, plan, Some(parts));
        }
    }
}

fn base_expand_plan(
    person: &gopt::gir::TypeConstraint,
    knows: &gopt::gir::TypeConstraint,
) -> gopt::gir::physical::PhysicalPlan {
    use gopt::gir::pattern::Direction;
    use gopt::gir::physical::{PhysicalOp, PhysicalPlan};
    let mut plan = PhysicalPlan::new();
    plan.push(PhysicalOp::Scan {
        alias: "a".into(),
        constraint: person.clone(),
        predicate: None,
    });
    plan.push(PhysicalOp::EdgeExpand {
        src: "a".into(),
        edge_alias: Some("e".into()),
        edge_constraint: knows.clone(),
        direction: Direction::Out,
        dst_alias: "b".into(),
        dst_constraint: person.clone(),
        dst_predicate: None,
        edge_predicate: None,
    });
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property test: random graph, random plan order, random partition count —
    /// the engines always agree.
    #[test]
    fn engines_agree_on_random_graphs(seed in 0u64..200, edges in 15usize..60, parts in 1usize..5) {
        let schema = fig6_schema();
        let graph = random_graph(&schema, &RandomGraphConfig {
            vertices_per_label: 8,
            edges_per_endpoint: edges,
            seed,
        });
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let mut pattern = gopt::gir::Pattern::new();
        let a = pattern.add_vertex_tagged("a", gopt::gir::TypeConstraint::basic(person));
        let b = pattern.add_vertex_tagged("b", gopt::gir::TypeConstraint::basic(person));
        let c = pattern.add_vertex_tagged("c", gopt::gir::TypeConstraint::basic(person));
        pattern.add_edge(a, b, gopt::gir::TypeConstraint::basic(knows));
        pattern.add_edge(b, c, gopt::gir::TypeConstraint::basic(knows));
        let mut builder = gopt::gir::GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let logical = builder.build(m);
        let plan = RandomPlanner::new(seed, ExpandStrategy::Intersect)
            .optimize(&logical)
            .expect("random plan builds");
        assert_engines_agree(&graph, &plan, Some(parts));
    }
}
