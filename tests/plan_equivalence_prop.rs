//! Property-based integration tests: on random graphs, every plan the system can produce
//! for a pattern (GOpt with either backend spec, random orders, baselines) returns the
//! same match count as the reference homomorphism counter.

use gopt::core::{ExpandStrategy, GOpt, GraphScopeSpec, Neo4jSpec, RandomPlanner};
use gopt::exec::{Backend, PartitionedBackend, SingleMachineBackend};
use gopt::gir::{AggFunc, Expr, GraphIrBuilder, TypeConstraint};
use gopt::glogue::{count_homomorphisms, GLogue, GLogueConfig, GlogueQuery};
use gopt::graph::generator::{random_graph, RandomGraphConfig};
use gopt::graph::schema::fig6_schema;
use gopt::graph::PropValue;
use proptest::prelude::*;

/// Build one of a few representative pattern shapes over the fig6 schema.
fn shape(idx: usize) -> gopt::gir::Pattern {
    let schema = fig6_schema();
    let person = schema.vertex_label("Person").unwrap();
    let place = schema.vertex_label("Place").unwrap();
    let knows = schema.edge_label("Knows").unwrap();
    let located = schema.edge_label("LocatedIn").unwrap();
    let mut p = gopt::gir::Pattern::new();
    match idx % 3 {
        0 => {
            // single edge
            let a = p.add_vertex_tagged("a", TypeConstraint::basic(person));
            let b = p.add_vertex_tagged("b", TypeConstraint::basic(person));
            p.add_edge(a, b, TypeConstraint::basic(knows));
        }
        1 => {
            // wedge
            let a = p.add_vertex_tagged("a", TypeConstraint::basic(person));
            let b = p.add_vertex_tagged("b", TypeConstraint::basic(person));
            let c = p.add_vertex_tagged("c", TypeConstraint::basic(place));
            p.add_edge(a, b, TypeConstraint::basic(knows));
            p.add_edge(b, c, TypeConstraint::basic(located));
        }
        _ => {
            // triangle
            let a = p.add_vertex_tagged("a", TypeConstraint::basic(person));
            let b = p.add_vertex_tagged("b", TypeConstraint::basic(person));
            let c = p.add_vertex_tagged("c", TypeConstraint::basic(place));
            p.add_edge(a, b, TypeConstraint::basic(knows));
            p.add_edge(a, c, TypeConstraint::basic(located));
            p.add_edge(b, c, TypeConstraint::basic(located));
        }
    }
    p
}

fn count_plan(pattern: &gopt::gir::Pattern) -> gopt::gir::LogicalPlan {
    let mut b = GraphIrBuilder::new();
    let m = b.match_pattern(pattern.clone());
    let g = b.group(
        m,
        vec![],
        vec![(AggFunc::Count, Expr::tag("a"), "cnt".into())],
    );
    b.build(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_plan_matches_the_reference_count(seed in 0u64..500, shape_idx in 0usize..3, edges in 20usize..80) {
        let schema = fig6_schema();
        let graph = random_graph(&schema, &RandomGraphConfig {
            vertices_per_label: 12,
            edges_per_endpoint: edges,
            seed,
        });
        let pattern = shape(shape_idx);
        let expected = count_homomorphisms(&graph, &pattern);
        let glogue = GLogue::build(&graph, &GLogueConfig {
            max_pattern_vertices: 3,
            max_anchors: None,
            seed: 0,
        });
        let gq = GlogueQuery::new(&glogue);
        let logical = count_plan(&pattern);

        let extract = |rows: Vec<Vec<PropValue>>| -> f64 {
            match rows.first().and_then(|r| r.last()).cloned() {
                Some(PropValue::Int(i)) => i as f64,
                _ => 0.0,
            }
        };

        // GOpt plan on the partitioned backend
        let gs_spec = GraphScopeSpec;
        let plan = GOpt::new(graph.schema(), &gq, &gs_spec).optimize(&logical).unwrap();
        let got = extract(PartitionedBackend::new(3).unwrap().execute(&graph, &plan).unwrap().rows());
        prop_assert_eq!(got, expected);

        // GOpt plan on the single-machine backend with the Neo4j spec
        let neo_spec = Neo4jSpec;
        let plan = GOpt::new(graph.schema(), &gq, &neo_spec).optimize(&logical).unwrap();
        let got = extract(SingleMachineBackend::new().execute(&graph, &plan).unwrap().rows());
        prop_assert_eq!(got, expected);

        // random order plan
        let mut rnd = RandomPlanner::new(seed, ExpandStrategy::Intersect);
        let plan = rnd.optimize(&logical).unwrap();
        let got = extract(PartitionedBackend::new(2).unwrap().execute(&graph, &plan).unwrap().rows());
        prop_assert_eq!(got, expected);

        // the high-order estimate of a fully mined pattern is exact
        let est = gq.get_freq(&pattern);
        prop_assert!((est - expected).abs() < 1e-6, "estimate {} vs actual {}", est, expected);
    }
}
