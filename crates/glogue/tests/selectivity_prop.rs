//! Property tests for the statistics subsystem and the selectivity estimator:
//!
//! 1. every estimated selectivity lies in `[0, 1]`, for every comparison
//!    operator, literal and column shape (including cross-kind literals and
//!    unknown keys);
//! 2. on generated graphs the histogram/value-map estimate of a
//!    `prop CMP literal` predicate stays within a bounded absolute error of
//!    the exact matching fraction (computed by scanning the graph);
//! 3. building statistics monolithically and merging per-shard statistics at
//!    p ∈ {1, 2, 4} produce *identical* results — the mergeable
//!    histogram/NDV/value-map design is exact, not approximate.

use gopt_gir::expr::{BinOp, Expr};
use gopt_gir::types::TypeConstraint;
use gopt_glogue::{SelectivityEstimator, StatsSelectivity};
use gopt_graph::graph::GraphBuilder;
use gopt_graph::schema::fig6_schema;
use gopt_graph::{GraphStats, PartitionedGraph, PropValue, PropertyGraph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random typed-property graph: Persons with a dense Int `age` in
/// `[0, modulus)`, a dense Float `score`, a sparse Date `seen`, a Str `name`
/// over a small domain and a kind-mixed `badge`; Places with names; LocatedIn
/// edges carrying an Int `w`.
fn random_props_graph(seed: u64, persons: usize, modulus: i64) -> PropertyGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(fig6_schema());
    let mut people = Vec::new();
    for i in 0..persons {
        let mut props = vec![
            ("age", PropValue::Int(rng.gen_range(0..modulus))),
            (
                "score",
                PropValue::Float(rng.gen_range(0..(modulus * 4)) as f64 / 4.0),
            ),
            ("name", PropValue::str(format!("n{}", rng.gen_range(0..6)))),
        ];
        if rng.gen_bool(0.4) {
            props.push(("seen", PropValue::Date(rng.gen_range(0..modulus))));
        }
        props.push(if rng.gen_bool(0.5) {
            ("badge", PropValue::Int(rng.gen_range(0..3)))
        } else {
            ("badge", PropValue::str("b"))
        });
        people.push(b.add_vertex_by_name("Person", props).unwrap());
        let _ = i;
    }
    let mut places = Vec::new();
    for i in 0..5 {
        places.push(
            b.add_vertex_by_name("Place", vec![("name", PropValue::str(format!("pl{i}")))])
                .unwrap(),
        );
    }
    for &p in &people {
        if rng.gen_bool(0.8) {
            let c = places[rng.gen_range(0..places.len())];
            b.add_edge_by_name(
                "LocatedIn",
                p,
                c,
                vec![("w", PropValue::Int(rng.gen_range(0..modulus)))],
            )
            .unwrap();
        }
    }
    b.finish()
}

/// The exact fraction of Persons satisfying `prop op lit` (nulls fail).
fn exact_fraction(g: &PropertyGraph, prop: &str, op: BinOp, lit: &PropValue) -> f64 {
    let person = g.schema().vertex_label("Person").unwrap();
    let vertices = g.vertices_with_label(person);
    let matching = vertices
        .iter()
        .filter(|&&v| {
            g.vertex_prop_by_name(v, prop)
                .is_some_and(|val| op.apply(&val, lit).truthy())
        })
        .count();
    matching as f64 / vertices.len().max(1) as f64
}

const CMP_OPS: [BinOp; 6] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn selectivity_is_bounded_and_tracks_exact_fractions(
        seed in 0u64..10_000,
        persons in 30usize..120,
        modulus in 4i64..40,
    ) {
        let g = random_props_graph(seed, persons, modulus);
        let sel = StatsSelectivity::new(GraphStats::shared(&g));
        let person = TypeConstraint::basic(g.schema().vertex_label("Person").unwrap());
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e1ec7);
        // (a) + (b): for each covered column, every operator stays in [0, 1]
        // and the dense numeric columns stay near the exact fraction
        for (prop, accurate) in [
            ("age", true),
            ("score", true),
            ("seen", true),
            ("name", true),
            ("badge", false), // mixed column: falls back, bounds still hold
        ] {
            for op in CMP_OPS {
                let lit = match prop {
                    "score" => PropValue::Float(rng.gen_range(-2..(modulus + 2)) as f64 / 2.0),
                    "seen" => PropValue::Date(rng.gen_range(-2..modulus + 2)),
                    "name" => PropValue::str(format!("n{}", rng.gen_range(0..8))),
                    _ => PropValue::Int(rng.gen_range(-2..modulus + 2)),
                };
                let expr = Expr::binary(op, Expr::prop("v", prop), Expr::lit(lit.clone()));
                let Some(est) = sel.vertex_predicate(&person, &expr) else {
                    prop_assert!(!accurate || prop == "badge", "{prop} should be covered");
                    continue;
                };
                prop_assert!(
                    (0.0..=1.0).contains(&est),
                    "selectivity out of bounds: {est} for {prop} {op:?} {lit}"
                );
                if accurate {
                    let exact = exact_fraction(&g, prop, op, &lit);
                    prop_assert!(
                        (est - exact).abs() <= 0.15,
                        "{prop} {op:?} {lit}: estimate {est} vs exact {exact}"
                    );
                }
            }
        }
        // cross-kind literals and unknown keys stay bounded too
        for expr in [
            Expr::binary(BinOp::Lt, Expr::prop("v", "age"), Expr::lit(PropValue::str("z"))),
            Expr::binary(BinOp::Ge, Expr::prop("v", "seen"), Expr::lit(7)),
            Expr::prop_eq("v", "ghost", 1),
        ] {
            if let Some(est) = sel.vertex_predicate(&person, &expr) {
                prop_assert!((0.0..=1.0).contains(&est), "{est} out of bounds for {expr}");
            }
        }
    }

    #[test]
    fn monolithic_stats_equal_merged_shard_stats(
        seed in 0u64..10_000,
        persons in 10usize..90,
        modulus in 2i64..50,
    ) {
        let g = random_props_graph(seed, persons, modulus);
        let mono = GraphStats::from_graph(&g);
        for p in [1usize, 2, 4] {
            let pg = PartitionedGraph::build(&g, p);
            let merged = GraphStats::from_partitioned(&pg);
            prop_assert_eq!(&mono, &merged, "partitions = {}", p);
        }
    }
}

/// The estimator layers compose: a `StatsSelectivity` built over merged shard
/// statistics answers exactly like one built monolithically.
#[test]
fn shard_built_selectivity_answers_identically() {
    let g = random_props_graph(7, 64, 12);
    let pg = PartitionedGraph::build(&g, 4);
    let mono = StatsSelectivity::new(GraphStats::shared(&g));
    let merged = StatsSelectivity::new(Arc::new(GraphStats::from_partitioned(&pg)));
    let person = TypeConstraint::basic(g.schema().vertex_label("Person").unwrap());
    for op in CMP_OPS {
        for lit in [0i64, 3, 7, 11, 30] {
            let expr = Expr::binary(op, Expr::prop("v", "age"), Expr::lit(lit));
            assert_eq!(
                mono.vertex_predicate(&person, &expr),
                merged.vertex_predicate(&person, &expr),
                "{op:?} {lit}"
            );
        }
    }
}
