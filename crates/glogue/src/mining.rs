//! Homomorphism counting of patterns over a property graph.
//!
//! The counter performs a backtracking search in a connected order of the pattern
//! vertices: each new pattern vertex is matched by expanding from an already-matched
//! neighbour and verifying every pattern edge to previously matched vertices. Matching
//! follows the paper's homomorphism semantics: distinct pattern vertices may map to the
//! same data vertex, and the counted object is the number of *vertex mappings* (parallel
//! data edges between the same endpoints do not multiply the count).
//!
//! [`count_homomorphisms_sampled`] additionally supports *anchor sampling*: only a random
//! subset of candidates for the first pattern vertex is explored and the result is scaled
//! by the inverse sampling ratio. This is the laptop-scale stand-in for the graph
//! sparsification used by GLogS when building statistics over very large graphs.

use gopt_gir::pattern::{Pattern, PatternEdge, PatternVertexId};
use gopt_gir::types::TypeConstraint;
use gopt_graph::{LabelId, PropertyGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Exact homomorphism count of `pattern` in `graph`.
///
/// Variable-length path edges are not supported by the counter (they never appear in the
/// mined statistics patterns); such edges are ignored with a `debug_assert`.
pub fn count_homomorphisms(graph: &PropertyGraph, pattern: &Pattern) -> f64 {
    count_homomorphisms_sampled(graph, pattern, None, 0)
}

/// Homomorphism count with optional anchor sampling.
///
/// When `max_anchors` is `Some(n)` and the first pattern vertex has more than `n`
/// candidate data vertices, only `n` uniformly sampled candidates are explored and the
/// count is scaled by `candidates / n`.
pub fn count_homomorphisms_sampled(
    graph: &PropertyGraph,
    pattern: &Pattern,
    max_anchors: Option<usize>,
    seed: u64,
) -> f64 {
    if pattern.vertex_count() == 0 {
        return 0.0;
    }
    let order = matching_order(pattern);
    let anchor = order[0];
    let anchor_candidates = candidate_vertices(graph, &pattern.vertex(anchor).constraint);
    let (anchors, scale) = match max_anchors {
        Some(n) if anchor_candidates.len() > n && n > 0 => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sampled = Vec::with_capacity(n);
            for _ in 0..n {
                sampled.push(anchor_candidates[rng.gen_range(0..anchor_candidates.len())]);
            }
            (sampled, anchor_candidates.len() as f64 / n as f64)
        }
        _ => (anchor_candidates, 1.0),
    };
    let mut total = 0u64;
    let mut assignment: BTreeMap<PatternVertexId, VertexId> = BTreeMap::new();
    for a in anchors {
        assignment.insert(anchor, a);
        total += extend(graph, pattern, &order, 1, &mut assignment);
        assignment.remove(&anchor);
    }
    total as f64 * scale
}

/// A connected matching order of the pattern vertices (every vertex after the first is
/// adjacent to at least one earlier vertex when the pattern is connected).
fn matching_order(pattern: &Pattern) -> Vec<PatternVertexId> {
    let ids = pattern.vertex_ids();
    let mut order = Vec::with_capacity(ids.len());
    let mut placed: BTreeSet<PatternVertexId> = BTreeSet::new();
    // start with the most constrained vertex (fewest admissible labels, highest degree)
    let mut start = ids[0];
    let mut best_key = (usize::MAX, 0usize);
    for &v in &ids {
        let nlabels = pattern.vertex(v).constraint.len().unwrap_or(usize::MAX);
        let key = (nlabels, usize::MAX - pattern.degree(v));
        if key < best_key {
            best_key = key;
            start = v;
        }
    }
    order.push(start);
    placed.insert(start);
    while order.len() < ids.len() {
        // next: a vertex adjacent to the placed set (fall back to any if disconnected)
        let next = ids
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .max_by_key(|v| {
                pattern
                    .neighbors(*v)
                    .iter()
                    .filter(|n| placed.contains(n))
                    .count()
            })
            .expect("unplaced vertex exists");
        order.push(next);
        placed.insert(next);
    }
    order
}

fn candidate_vertices(graph: &PropertyGraph, constraint: &TypeConstraint) -> Vec<VertexId> {
    let labels: Vec<LabelId> =
        constraint.materialize(&graph.schema().vertex_label_ids().collect::<Vec<_>>());
    let mut out = Vec::new();
    for l in labels {
        out.extend_from_slice(graph.vertices_with_label(l));
    }
    out
}

fn edge_matches(graph: &PropertyGraph, edge: &PatternEdge, src: VertexId, dst: VertexId) -> bool {
    debug_assert!(
        edge.path.is_none(),
        "path edges are not counted by the miner"
    );
    let labels: Vec<LabelId> = edge
        .constraint
        .materialize(&graph.schema().edge_label_ids().collect::<Vec<_>>());
    labels.iter().any(|l| graph.has_edge(src, *l, dst))
}

fn extend(
    graph: &PropertyGraph,
    pattern: &Pattern,
    order: &[PatternVertexId],
    depth: usize,
    assignment: &mut BTreeMap<PatternVertexId, VertexId>,
) -> u64 {
    if depth == order.len() {
        return 1;
    }
    let pv = order[depth];
    let vertex = pattern.vertex(pv);
    // collect pattern edges between pv and already-assigned vertices
    let mut back_edges: Vec<&PatternEdge> = Vec::new();
    for eid in pattern.adjacent_edges(pv) {
        let e = pattern.edge(eid);
        let other = if e.src == pv { e.dst } else { e.src };
        if assignment.contains_key(&other) {
            back_edges.push(e);
        }
    }
    // candidate generation: expand from one assigned neighbour if possible, else scan
    let candidates: Vec<VertexId> = if let Some(e) = back_edges.first() {
        let (from_pv, outgoing) = if e.dst == pv {
            (e.src, true)
        } else {
            (e.dst, false)
        };
        let from = assignment[&from_pv];
        let elabels: Vec<LabelId> = e
            .constraint
            .materialize(&graph.schema().edge_label_ids().collect::<Vec<_>>());
        let mut cands: Vec<VertexId> = Vec::new();
        for el in elabels {
            let adj = if outgoing {
                graph.out_edges_with_label(from, el)
            } else {
                graph.in_edges_with_label(from, el)
            };
            cands.extend(adj.iter().map(|a| a.neighbor));
        }
        cands.sort_unstable();
        cands.dedup();
        cands
            .into_iter()
            .filter(|c| vertex.constraint.contains(graph.vertex_label(*c)))
            .collect()
    } else {
        candidate_vertices(graph, &vertex.constraint)
    };
    let mut total = 0u64;
    'cand: for c in candidates {
        for e in &back_edges {
            let (s, d) = if e.src == pv {
                (c, assignment[&e.dst])
            } else {
                (assignment[&e.src], c)
            };
            if !edge_matches(graph, e, s, d) {
                continue 'cand;
            }
        }
        assignment.insert(pv, c);
        total += extend(graph, pattern, order, depth + 1, assignment);
        assignment.remove(&pv);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_graph::graph::GraphBuilder;
    use gopt_graph::schema::fig6_schema;
    use gopt_graph::PropValue;

    /// Fixed small graph:
    /// persons p0,p1,p2; products q0; places c0
    /// knows: p0->p1, p0->p2, p1->p2
    /// purchases: p0->q0, p1->q0
    /// locatedin: p0->c0, p1->c0, p2->c0
    /// producedin: q0->c0
    fn graph() -> PropertyGraph {
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let p: Vec<_> = (0..3)
            .map(|i| {
                b.add_vertex_by_name("Person", vec![("id", PropValue::Int(i))])
                    .unwrap()
            })
            .collect();
        let q = b.add_vertex_by_name("Product", vec![]).unwrap();
        let c = b.add_vertex_by_name("Place", vec![]).unwrap();
        b.add_edge_by_name("Knows", p[0], p[1], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[0], p[2], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[1], p[2], vec![]).unwrap();
        b.add_edge_by_name("Purchases", p[0], q, vec![]).unwrap();
        b.add_edge_by_name("Purchases", p[1], q, vec![]).unwrap();
        for v in &p {
            b.add_edge_by_name("LocatedIn", *v, c, vec![]).unwrap();
        }
        b.add_edge_by_name("ProducedIn", q, c, vec![]).unwrap();
        b.finish()
    }

    fn labels(
        g: &PropertyGraph,
    ) -> (
        LabelId,
        LabelId,
        LabelId,
        LabelId,
        LabelId,
        LabelId,
        LabelId,
    ) {
        let s = g.schema();
        (
            s.vertex_label("Person").unwrap(),
            s.vertex_label("Product").unwrap(),
            s.vertex_label("Place").unwrap(),
            s.edge_label("Knows").unwrap(),
            s.edge_label("Purchases").unwrap(),
            s.edge_label("LocatedIn").unwrap(),
            s.edge_label("ProducedIn").unwrap(),
        )
    }

    #[test]
    fn single_vertex_and_single_edge_counts() {
        let g = graph();
        let (person, _product, _place, knows, purchases, located, _produced) = labels(&g);
        let mut p = Pattern::new();
        p.add_vertex(TypeConstraint::basic(person));
        assert_eq!(count_homomorphisms(&g, &p), 3.0);

        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        assert_eq!(count_homomorphisms(&g, &p), 3.0);

        // union edge type: knows or purchases from person
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::all());
        p.add_edge(a, b, TypeConstraint::union([knows, purchases]));
        assert_eq!(count_homomorphisms(&g, &p), 5.0);

        // all-type edges from person: 3 + 2 + 3 = 8
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::all());
        p.add_edge(a, b, TypeConstraint::all());
        assert_eq!(count_homomorphisms(&g, &p), 8.0);
        let _ = located;
    }

    #[test]
    fn wedge_and_triangle_counts() {
        let g = graph();
        let (person, _product, place, knows, _purchases, located, _produced) = labels(&g);
        // wedge: (a:Person)-Knows->(b:Person)-LocatedIn->(c:Place)
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::basic(place));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        p.add_edge(b, c, TypeConstraint::basic(located));
        // knows edges: 3, each destination is located in c0 => 3
        assert_eq!(count_homomorphisms(&g, &p), 3.0);

        // triangle: persons a-knows->b, both located in same place
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::basic(place));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        p.add_edge(a, c, TypeConstraint::basic(located));
        p.add_edge(b, c, TypeConstraint::basic(located));
        assert_eq!(count_homomorphisms(&g, &p), 3.0);

        // knows-triangle among persons: p0->p1->p2<-p0 (only one such mapping)
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::basic(person));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        p.add_edge(b, c, TypeConstraint::basic(knows));
        p.add_edge(a, c, TypeConstraint::basic(knows));
        assert_eq!(count_homomorphisms(&g, &p), 1.0);
    }

    #[test]
    fn homomorphism_allows_repeated_vertices() {
        let g = graph();
        let (person, ..) = labels(&g);
        let located = g.schema().edge_label("LocatedIn").unwrap();
        // wedge with the center at the place: two persons located in the same place,
        // homomorphism semantics allows both pattern vertices to map to the same person
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::all());
        p.add_edge(a, c, TypeConstraint::basic(located));
        p.add_edge(b, c, TypeConstraint::basic(located));
        // 3 persons located in c0 -> 3*3 = 9 mappings
        assert_eq!(count_homomorphisms(&g, &p), 9.0);
    }

    #[test]
    fn empty_and_unsatisfiable_patterns() {
        let g = graph();
        assert_eq!(count_homomorphisms(&g, &Pattern::new()), 0.0);
        let (person, product, ..) = labels(&g);
        let knows = g.schema().edge_label("Knows").unwrap();
        // person -knows-> product never exists
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(product));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        assert_eq!(count_homomorphisms(&g, &p), 0.0);
        // empty constraint set
        let mut p = Pattern::new();
        p.add_vertex(TypeConstraint::Labels(vec![]));
        assert_eq!(count_homomorphisms(&g, &p), 0.0);
    }

    #[test]
    fn sampling_scales_roughly() {
        let g = graph();
        let (person, ..) = labels(&g);
        let mut p = Pattern::new();
        p.add_vertex(TypeConstraint::basic(person));
        // sample 1 of the 3 persons -> scaled back to ~3
        let est = count_homomorphisms_sampled(&g, &p, Some(1), 1);
        assert_eq!(est, 3.0);
        // sampling disabled when the candidate count is below the cap
        let est = count_homomorphisms_sampled(&g, &p, Some(100), 1);
        assert_eq!(est, 3.0);
    }
}
