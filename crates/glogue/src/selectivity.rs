//! Filter selectivity estimation from typed property statistics.
//!
//! The paper's Remark 7.1 applies a *pre-defined constant selectivity*
//! ([`crate::DEFAULT_SELECTIVITY`]) to every filtered pattern element. This
//! module replaces the constant with a real estimate wherever statistics can
//! cover the predicate:
//!
//! * [`SelectivityEstimator`] — the interface the cardinality layer consults
//!   per filtered pattern element ([`crate::CardEstimator::pattern_freq_with_filters`]
//!   takes one); returning `None` means "no stats cover this predicate" and
//!   the caller falls back to the Remark 7.1 constant, bit-identical to the
//!   pre-statistics behaviour.
//! * [`ConstSelectivity`] — the fallback implementation: covers nothing, so
//!   every filter gets the constant. Passing it reproduces the paper's
//!   estimator exactly.
//! * [`StatsSelectivity`] — the real implementation over
//!   [`gopt_graph::GraphStats`]: `prop CMP literal` leaves (either operand
//!   order, the same shapes the PR 4 typed predicate kernels compile) are
//!   answered from the per-(label, key) histograms / value maps, `IS [NOT]
//!   NULL` from the null counts, `IN` lists as sums of equality estimates,
//!   and `AND`/`OR` combine under independence. Union- and all-typed
//!   elements weight the per-label estimates by label cardinality.
//!
//! A predicate containing *any* sub-expression the statistics cannot answer
//! makes the whole element fall back to the constant — partial coverage never
//! silently mixes estimated and assumed factors.

use gopt_gir::expr::{BinOp, Expr, UnaryOp};
use gopt_gir::types::TypeConstraint;
use gopt_graph::{CmpKind, GraphStats, LabelId};
use std::sync::Arc;

/// Maps a pattern element's filter predicate to an estimated selectivity in
/// `[0, 1]`, or `None` when the statistics do not cover the predicate (the
/// caller then applies [`crate::DEFAULT_SELECTIVITY`]).
pub trait SelectivityEstimator: Send + Sync {
    /// Selectivity of `predicate` over vertices admitted by `constraint`.
    fn vertex_predicate(&self, constraint: &TypeConstraint, predicate: &Expr) -> Option<f64>;

    /// Selectivity of `predicate` over edges admitted by `constraint`.
    fn edge_predicate(&self, constraint: &TypeConstraint, predicate: &Expr) -> Option<f64>;
}

/// The no-statistics estimator: covers nothing, so every filtered element
/// falls back to the Remark 7.1 constant. [`crate::CardEstimator`] consumers
/// that have no property statistics pass this and get estimates bit-identical
/// to the pre-statistics implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstSelectivity;

impl SelectivityEstimator for ConstSelectivity {
    fn vertex_predicate(&self, _constraint: &TypeConstraint, _predicate: &Expr) -> Option<f64> {
        None
    }

    fn edge_predicate(&self, _constraint: &TypeConstraint, _predicate: &Expr) -> Option<f64> {
        None
    }
}

/// Which element kind a predicate filters (vertex and edge property columns
/// are kept separately in [`gopt_graph::PropStats`]).
#[derive(Clone, Copy)]
enum Elem {
    Vertex,
    Edge,
}

/// Histogram-backed selectivity estimation over shared [`GraphStats`].
#[derive(Debug, Clone)]
pub struct StatsSelectivity {
    stats: Arc<GraphStats>,
}

impl StatsSelectivity {
    /// Create an estimator over shared graph statistics.
    pub fn new(stats: Arc<GraphStats>) -> Self {
        StatsSelectivity { stats }
    }

    /// The underlying statistics.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Labels admitted by a constraint, together with each label's row count.
    fn labels_of(&self, elem: Elem, constraint: &TypeConstraint) -> Vec<(LabelId, f64)> {
        let count_of = |l: LabelId| match elem {
            Elem::Vertex => self.stats.low.vertex_count(l) as f64,
            Elem::Edge => self.stats.low.edge_count(l) as f64,
        };
        match constraint.as_labels() {
            Some(labels) => labels.iter().map(|&l| (l, count_of(l))).collect(),
            None => {
                let n = match elem {
                    Elem::Vertex => self.stats.low.vertex_label_count(),
                    Elem::Edge => self.stats.low.edge_label_count(),
                };
                (0..n as u16)
                    .map(LabelId)
                    .map(|l| (l, count_of(l)))
                    .collect()
            }
        }
    }

    fn column(&self, elem: Elem, label: LabelId, key: &str) -> Option<&gopt_graph::ColumnStats> {
        match elem {
            Elem::Vertex => self.stats.props.vertex_stats(label, key),
            Elem::Edge => self.stats.props.edge_stats(label, key),
        }
    }

    /// Estimated number of `label` rows (out of `rows`) satisfying `expr`, or
    /// `None` when some sub-expression is uncovered.
    fn matching(&self, elem: Elem, label: LabelId, rows: f64, expr: &Expr) -> Option<f64> {
        match expr {
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    // independence: sel(a AND b) = sel(a) * sel(b)
                    let a = self.matching(elem, label, rows, lhs)?;
                    let b = self.matching(elem, label, rows, rhs)?;
                    Some(if rows > 0.0 { a * b / rows } else { 0.0 })
                }
                BinOp::Or => {
                    // inclusion-exclusion under independence
                    let a = self.matching(elem, label, rows, lhs)?;
                    let b = self.matching(elem, label, rows, rhs)?;
                    Some(if rows > 0.0 {
                        a + b - a * b / rows
                    } else {
                        0.0
                    })
                }
                _ => {
                    let cmp = cmp_kind(*op)?;
                    let (key, lit, cmp) = match (&**lhs, &**rhs) {
                        (Expr::Property { prop, .. }, Expr::Literal(v)) => (prop, v, cmp),
                        (Expr::Literal(v), Expr::Property { prop, .. }) => (prop, v, flip(cmp)),
                        _ => return None,
                    };
                    match self.column(elem, label, key) {
                        // no row of this label carries the key: the
                        // comparison is Null (falsy) everywhere
                        None => Some(0.0),
                        Some(col) => Some(col.matching(cmp, lit)?.min(rows)),
                    }
                }
            },
            Expr::Unary { op, operand } => {
                let Expr::Property { prop, .. } = &**operand else {
                    return None;
                };
                let non_null = self
                    .column(elem, label, prop)
                    .map_or(0.0, |c| c.non_null as f64)
                    .min(rows);
                match op {
                    UnaryOp::IsNull => Some(rows - non_null),
                    UnaryOp::IsNotNull => Some(non_null),
                    _ => None,
                }
            }
            Expr::InList { expr, list } => {
                let Expr::Property { prop, .. } = &**expr else {
                    return None;
                };
                match self.column(elem, label, prop) {
                    None => Some(0.0),
                    Some(col) => {
                        // dedup first: `IN (x, x)` matches the same rows as
                        // `IN (x)`, so repeated literals must not double-count
                        let distinct: std::collections::BTreeSet<&gopt_graph::PropValue> =
                            list.iter().collect();
                        let mut acc = 0.0;
                        for v in distinct {
                            acc += col.matching(CmpKind::Eq, v)?;
                        }
                        Some(acc.min(rows))
                    }
                }
            }
            _ => None,
        }
    }

    /// Label-cardinality-weighted selectivity of `predicate` over the
    /// admitted labels.
    fn predicate(&self, elem: Elem, constraint: &TypeConstraint, predicate: &Expr) -> Option<f64> {
        let labels = self.labels_of(elem, constraint);
        let total: f64 = labels.iter().map(|(_, n)| n).sum();
        if total <= 0.0 {
            return Some(0.0);
        }
        let mut matching = 0.0;
        for (label, rows) in labels {
            if rows <= 0.0 {
                continue;
            }
            matching += self.matching(elem, label, rows, predicate)?;
        }
        Some((matching / total).clamp(0.0, 1.0))
    }
}

impl SelectivityEstimator for StatsSelectivity {
    fn vertex_predicate(&self, constraint: &TypeConstraint, predicate: &Expr) -> Option<f64> {
        self.predicate(Elem::Vertex, constraint, predicate)
    }

    fn edge_predicate(&self, constraint: &TypeConstraint, predicate: &Expr) -> Option<f64> {
        self.predicate(Elem::Edge, constraint, predicate)
    }
}

/// Map a GIR comparison operator to the statistics layer's [`CmpKind`].
fn cmp_kind(op: BinOp) -> Option<CmpKind> {
    Some(match op {
        BinOp::Eq => CmpKind::Eq,
        BinOp::Ne => CmpKind::Ne,
        BinOp::Lt => CmpKind::Lt,
        BinOp::Le => CmpKind::Le,
        BinOp::Gt => CmpKind::Gt,
        BinOp::Ge => CmpKind::Ge,
        _ => return None,
    })
}

/// The operator with its operands swapped (`lit op prop` → `prop op' lit`).
fn flip(op: CmpKind) -> CmpKind {
    match op {
        CmpKind::Eq => CmpKind::Eq,
        CmpKind::Ne => CmpKind::Ne,
        CmpKind::Lt => CmpKind::Gt,
        CmpKind::Le => CmpKind::Ge,
        CmpKind::Gt => CmpKind::Lt,
        CmpKind::Ge => CmpKind::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_graph::graph::GraphBuilder;
    use gopt_graph::schema::fig6_schema;
    use gopt_graph::{PropValue, PropertyGraph};

    /// 100 Persons with dense `age` 0..100, sparse `seen` dates, `name` in a
    /// 4-value domain; 10 Places named China/India; LocatedIn edges with `w`.
    fn graph() -> PropertyGraph {
        let mut b = GraphBuilder::new(fig6_schema());
        let mut people = Vec::new();
        for i in 0..100i64 {
            let mut props = vec![
                ("age", PropValue::Int(i)),
                ("name", PropValue::str(format!("n{}", i % 4))),
            ];
            if i % 5 == 0 {
                props.push(("seen", PropValue::Date(7000 + i)));
            }
            people.push(b.add_vertex_by_name("Person", props).unwrap());
        }
        let mut places = Vec::new();
        for i in 0..10 {
            let name = if i == 0 { "China" } else { "India" };
            places.push(
                b.add_vertex_by_name("Place", vec![("name", PropValue::str(name))])
                    .unwrap(),
            );
        }
        for (i, p) in people.iter().enumerate() {
            b.add_edge_by_name(
                "LocatedIn",
                *p,
                places[i % 10],
                vec![("w", PropValue::Int((i % 10) as i64))],
            )
            .unwrap();
        }
        b.finish()
    }

    fn sel(g: &PropertyGraph) -> StatsSelectivity {
        StatsSelectivity::new(GraphStats::shared(g))
    }

    fn person(g: &PropertyGraph) -> TypeConstraint {
        TypeConstraint::basic(g.schema().vertex_label("Person").unwrap())
    }

    #[test]
    fn range_and_equality_predicates_match_true_fractions() {
        let g = graph();
        let s = sel(&g);
        let p = person(&g);
        let lt30 = Expr::binary(BinOp::Lt, Expr::prop("v", "age"), Expr::lit(30));
        let est = s.vertex_predicate(&p, &lt30).unwrap();
        assert!((est - 0.3).abs() < 0.05, "age<30 ~ 0.3, got {est}");
        // flipped operand order
        let flipped = Expr::binary(BinOp::Gt, Expr::lit(30), Expr::prop("v", "age"));
        let est2 = s.vertex_predicate(&p, &flipped).unwrap();
        assert!((est - est2).abs() < 1e-9);
        // string equality from the complete value map: exactly 25 of 100
        let eq = Expr::prop_eq("v", "name", "n1");
        let est = s.vertex_predicate(&p, &eq).unwrap();
        assert!((est - 0.25).abs() < 1e-9, "name=n1 is exact, got {est}");
        // unknown property key: nothing matches
        assert_eq!(
            s.vertex_predicate(&p, &Expr::prop_eq("v", "ghost", 1)),
            Some(0.0)
        );
    }

    #[test]
    fn null_sparsity_and_conjunctions() {
        let g = graph();
        let s = sel(&g);
        let p = person(&g);
        // sparse Date column: only 20% of persons carry `seen`
        let any_seen = Expr::binary(
            BinOp::Ge,
            Expr::prop("v", "seen"),
            Expr::lit(PropValue::Date(0)),
        );
        let est = s.vertex_predicate(&p, &any_seen).unwrap();
        assert!((est - 0.2).abs() < 0.05, "seen>=0 ~ 0.2, got {est}");
        let not_null = Expr::Unary {
            op: UnaryOp::IsNotNull,
            operand: Box::new(Expr::prop("v", "seen")),
        };
        assert!((s.vertex_predicate(&p, &not_null).unwrap() - 0.2).abs() < 1e-9);
        let is_null = Expr::Unary {
            op: UnaryOp::IsNull,
            operand: Box::new(Expr::prop("v", "seen")),
        };
        assert!((s.vertex_predicate(&p, &is_null).unwrap() - 0.8).abs() < 1e-9);
        // AND multiplies under independence
        let both = Expr::binary(BinOp::Lt, Expr::prop("v", "age"), Expr::lit(50))
            .and(Expr::prop_eq("v", "name", "n1"));
        let est = s.vertex_predicate(&p, &both).unwrap();
        assert!((est - 0.125).abs() < 0.03, "0.5 * 0.25, got {est}");
        // IN list sums equalities over *distinct* literals: a repeated value
        // matches the same rows, so it must not double-count
        let inlist = Expr::InList {
            expr: Box::new(Expr::prop("v", "name")),
            list: vec![PropValue::str("n1"), PropValue::str("n2")],
        };
        assert!((s.vertex_predicate(&p, &inlist).unwrap() - 0.5).abs() < 1e-9);
        let dup = Expr::InList {
            expr: Box::new(Expr::prop("v", "name")),
            list: vec![PropValue::str("n1"), PropValue::str("n1")],
        };
        assert!((s.vertex_predicate(&p, &dup).unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn union_constraints_weight_by_label_counts_and_edges_work() {
        let g = graph();
        let s = sel(&g);
        let person = g.schema().vertex_label("Person").unwrap();
        let place = g.schema().vertex_label("Place").unwrap();
        // name = 'China': 0/100 persons, 1/10 places -> 1/110 weighted
        let both = TypeConstraint::union([person, place]);
        let eq = Expr::prop_eq("v", "name", "China");
        let est = s.vertex_predicate(&both, &eq).unwrap();
        assert!((est - 1.0 / 110.0).abs() < 1e-9, "got {est}");
        // the all-typed constraint covers every label (Product has no rows)
        let est_all = s.vertex_predicate(&TypeConstraint::all(), &eq).unwrap();
        assert!((est_all - 1.0 / 110.0).abs() < 1e-9);
        // edge predicate over the LocatedIn `w` histogram
        let located = TypeConstraint::basic(g.schema().edge_label("LocatedIn").unwrap());
        let w = Expr::binary(BinOp::Le, Expr::prop("e", "w"), Expr::lit(4));
        let est = s.edge_predicate(&located, &w).unwrap();
        assert!((est - 0.5).abs() < 0.1, "w<=4 ~ 0.5, got {est}");
    }

    #[test]
    fn uncovered_shapes_fall_back_to_none() {
        let g = graph();
        let s = sel(&g);
        let p = person(&g);
        // property-vs-property comparison is uncovered
        let pp = Expr::binary(BinOp::Lt, Expr::prop("v", "age"), Expr::prop("v", "seen"));
        assert!(s.vertex_predicate(&p, &pp).is_none());
        // arithmetic inside a comparison is uncovered
        let arith = Expr::binary(
            BinOp::Lt,
            Expr::binary(BinOp::Add, Expr::prop("v", "age"), Expr::lit(1)),
            Expr::lit(10),
        );
        assert!(s.vertex_predicate(&p, &arith).is_none());
        // an uncovered conjunct poisons the whole predicate
        let mixed = Expr::prop_eq("v", "name", "n1").and(pp);
        assert!(s.vertex_predicate(&p, &mixed).is_none());
        // the constant estimator covers nothing by definition
        assert!(ConstSelectivity
            .vertex_predicate(&p, &Expr::prop_eq("v", "name", "n1"))
            .is_none());
        assert!(ConstSelectivity
            .edge_predicate(&p, &Expr::prop_eq("e", "w", 1))
            .is_none());
    }
}
