//! # gopt-glogue — high-order statistics and cardinality estimation
//!
//! This crate implements the statistics side of GOpt's cost-based optimizer
//! (Section 6.3.1 of the paper):
//!
//! * [`mining`] — homomorphism counting of patterns over a property graph, with optional
//!   anchor sampling (the sparsification knob the paper inherits from GLogS);
//! * [`glogue::GLogue`] — the *high-order statistics* store: pre-computed frequencies of
//!   all schema-consistent small patterns (up to `k` vertices, `k = 3` by default) with
//!   basic types, keyed by canonical pattern codes, plus low-order label counts;
//! * [`estimate::GlogueQuery`] — the `getFreq` interface used by the optimizer: estimates
//!   the frequency of **arbitrary** patterns (with BasicType, UnionType or AllType
//!   constraints and variable-length path edges) by decomposing them with Eq. 1
//!   (independent sub-pattern join) and Eq. 2 (expand ratios `σ_e`), memoizing
//!   intermediate results;
//! * [`estimate::LowOrderEstimator`] — the baseline estimator that only uses per-label
//!   vertex/edge counts under an independence assumption (what Fig. 8(d) compares
//!   against).

pub mod estimate;
pub mod glogue;
pub mod mining;
pub mod selectivity;

pub use estimate::{CardEstimator, GlogueQuery, LowOrderEstimator, DEFAULT_SELECTIVITY};
pub use glogue::{GLogue, GLogueConfig};
pub use mining::{count_homomorphisms, count_homomorphisms_sampled};
pub use selectivity::{ConstSelectivity, SelectivityEstimator, StatsSelectivity};
