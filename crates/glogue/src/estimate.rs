//! Cardinality estimation: `GlogueQuery::get_freq` for arbitrary patterns.
//!
//! The paper's estimator (Section 6.3.1) handles patterns whose vertices and edges carry
//! *arbitrary* type constraints (BasicType, UnionType, AllType) — something the original
//! GLogS statistics cannot do — by combining:
//!
//! * direct lookups in [`GLogue`] when the pattern is small and basic-typed,
//! * **Eq. 1**: `F(P_t) = F(P_s1) × F(P_s2) / F(P_s1 ∩ P_s2)` for join decompositions, and
//! * **Eq. 2**: `F(P_t) = F(P_s) × Π σ_e` where the *expand ratio* `σ_e` of an edge `e`
//!   is the ratio between the (union-typed) edge frequency and the frequency of its
//!   already-bound endpoint(s).
//!
//! Results are memoized by canonical pattern code, mirroring the paper's description of
//! `GLogueQuery` caching intermediate sub-pattern frequencies.

use crate::glogue::GLogue;
use crate::selectivity::SelectivityEstimator;
use gopt_gir::pattern::{Pattern, PatternVertexId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default selectivity applied per filtered pattern element whose predicate no
/// statistics cover (the paper's Remark 7.1 pre-defines a constant selectivity
/// for vertices/edges with filter conditions). This is the **single** source of
/// the constant: the estimator fallback, its tests and the RBO conjunct
/// ordering all reference it, so the magic number cannot drift.
pub const DEFAULT_SELECTIVITY: f64 = 0.1;

/// A cardinality estimator for patterns.
///
/// Two implementations exist: [`GlogueQuery`] (high-order statistics) and
/// [`LowOrderEstimator`] (label counts + independence assumption). The cost-based
/// optimizer is generic over this trait, which is what enables the Fig. 8(d) ablation.
pub trait CardEstimator {
    /// Estimated number of homomorphisms of `pattern`, ignoring predicates.
    fn pattern_freq(&self, pattern: &Pattern) -> f64;

    /// Estimated frequency including the selectivity of each filtered element.
    ///
    /// Each element's predicate is priced by `sel` (histogram-derived when the
    /// caller passes [`crate::StatsSelectivity`]); elements whose predicate the
    /// statistics do not cover fall back to [`DEFAULT_SELECTIVITY`]. Passing
    /// [`crate::ConstSelectivity`] covers nothing, which reproduces the
    /// Remark 7.1 behaviour (`freq × DEFAULT_SELECTIVITY^filters`) bit for
    /// bit.
    fn pattern_freq_with_filters(&self, pattern: &Pattern, sel: &dyn SelectivityEstimator) -> f64 {
        let mut fallbacks = 0i32;
        let mut known = 1.0f64;
        for v in pattern.vertices() {
            if let Some(p) = &v.predicate {
                match sel.vertex_predicate(&v.constraint, p) {
                    Some(s) => known *= s.clamp(0.0, 1.0),
                    None => fallbacks += 1,
                }
            }
        }
        for e in pattern.edges() {
            if let Some(p) = &e.predicate {
                match sel.edge_predicate(&e.constraint, p) {
                    Some(s) => known *= s.clamp(0.0, 1.0),
                    None => fallbacks += 1,
                }
            }
        }
        // `known` starts at exactly 1.0, so the all-fallback case multiplies
        // by DEFAULT_SELECTIVITY.powi(filters) unchanged
        self.pattern_freq(pattern) * (DEFAULT_SELECTIVITY.powi(fallbacks) * known)
    }
}

/// The `getFreq` interface over a [`GLogue`] store (high-order statistics), with
/// memoization of intermediate sub-pattern frequencies.
pub struct GlogueQuery<'a> {
    glogue: &'a GLogue,
    cache: Mutex<HashMap<String, f64>>,
}

impl<'a> GlogueQuery<'a> {
    /// Create a query interface over the given statistics store.
    pub fn new(glogue: &'a GLogue) -> Self {
        GlogueQuery {
            glogue,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying statistics store.
    pub fn glogue(&self) -> &GLogue {
        self.glogue
    }

    /// Number of memoized sub-pattern frequencies.
    pub fn cached_entries(&self) -> usize {
        self.cache.lock().len()
    }

    /// Estimated frequency of an arbitrary pattern (Eq. 1 / Eq. 2 decomposition).
    pub fn get_freq(&self, pattern: &Pattern) -> f64 {
        if pattern.vertex_count() == 0 {
            return 0.0;
        }
        let code = pattern.canonical_code();
        if let Some(f) = self.cache.lock().get(&code) {
            return *f;
        }
        let f = self.compute(pattern);
        self.cache.lock().insert(code, f);
        f
    }

    /// Eq. 1: frequency of the join of two sub-patterns given their intersection.
    /// `F(P_t) = F(P_s1) × F(P_s2) / F(P_s1 ∩ P_s2)`; when the intersection is empty the
    /// product is returned (Cartesian combination).
    pub fn join_freq(&self, left: &Pattern, right: &Pattern) -> f64 {
        let f1 = self.get_freq(left);
        let f2 = self.get_freq(right);
        let inter = left.intersection(right);
        if inter.vertex_count() == 0 {
            return f1 * f2;
        }
        let fi = self.get_freq(&inter).max(1.0);
        f1 * f2 / fi
    }

    fn compute(&self, pattern: &Pattern) -> f64 {
        let glogue = self.glogue;
        // no edges: product of vertex-constraint frequencies (usually a single vertex)
        if pattern.edge_count() == 0 {
            return pattern
                .vertices()
                .map(|v| glogue.vertex_constraint_freq(&v.constraint))
                .product();
        }
        // single edge
        if pattern.edge_count() == 1 {
            let e = pattern.edges().next().expect("one edge");
            let src = &pattern.vertex(e.src).constraint;
            let dst = &pattern.vertex(e.dst).constraint;
            let edge_f = glogue.edge_constraint_freq(src, &e.constraint, dst);
            if let Some(spec) = e.path {
                // variable-length path: start from the source frequency and apply the
                // per-hop ratio `hops` times (using the midpoint of the hop range).
                let src_f = glogue.vertex_constraint_freq(src).max(1.0);
                let ratio = edge_f / src_f;
                let hops = f64::from(spec.min_hops + spec.max_hops) / 2.0;
                return src_f * ratio.powf(hops);
            }
            return edge_f;
        }
        // exact lookup for basic-typed patterns within the mined size
        if pattern.vertex_count() <= glogue.max_pattern_vertices()
            && !pattern.has_path_edges()
            && pattern.vertices().all(|v| v.constraint.is_basic())
            && pattern.edges().all(|e| e.constraint.is_basic())
        {
            if let Some(f) = glogue.lookup(pattern) {
                return f;
            }
            // a schema-consistent pattern absent from GLogue genuinely has frequency 0,
            // but fall through to the decomposition to stay robust to sampling misses
        }
        // Eq. 2: remove a non-cut vertex v, estimate the remainder, multiply by the
        // expand ratios of v's incident edges.
        let v = self.pick_removal_vertex(pattern);
        let remainder = pattern.remove_vertex(v);
        let base = self.get_freq(&remainder);
        let mut freq = base;
        let v_freq = glogue
            .vertex_constraint_freq(&pattern.vertex(v).constraint)
            .max(1.0);
        for (i, eid) in pattern.adjacent_edges(v).into_iter().enumerate() {
            let e = pattern.edge(eid);
            let (anchor, _new) = if e.src == v {
                (e.dst, e.src)
            } else {
                (e.src, e.dst)
            };
            let src_c = &pattern.vertex(e.src).constraint;
            let dst_c = &pattern.vertex(e.dst).constraint;
            let edge_f = glogue.edge_constraint_freq(src_c, &e.constraint, dst_c);
            let anchor_f = glogue
                .vertex_constraint_freq(&pattern.vertex(anchor).constraint)
                .max(1.0);
            let hops = e
                .path
                .map(|p| f64::from(p.min_hops + p.max_hops) / 2.0)
                .unwrap_or(1.0);
            let mut sigma = (edge_f / anchor_f).powf(hops);
            if i > 0 {
                // v is already part of the intermediate pattern: closing a cycle
                sigma /= v_freq;
            }
            freq *= sigma;
        }
        freq
    }

    /// Choose a vertex whose removal keeps the remainder connected and non-empty,
    /// preferring low-degree vertices (so the remainder keeps as much mined structure as
    /// possible). A connected pattern always has such a vertex.
    fn pick_removal_vertex(&self, pattern: &Pattern) -> PatternVertexId {
        let mut best: Option<(usize, PatternVertexId)> = None;
        for v in pattern.vertex_ids() {
            let rest = pattern.remove_vertex(v);
            if rest.vertex_count() == 0 || !rest.is_connected() {
                continue;
            }
            let deg = pattern.degree(v);
            if best.is_none_or(|(d, _)| deg < d) {
                best = Some((deg, v));
            }
        }
        best.map(|(_, v)| v)
            .unwrap_or_else(|| pattern.vertex_ids()[0])
    }
}

impl CardEstimator for GlogueQuery<'_> {
    fn pattern_freq(&self, pattern: &Pattern) -> f64 {
        self.get_freq(pattern)
    }
}

/// Baseline estimator using only per-label counts and an independence assumption:
/// `F(P) = Π_v F(v) × Π_e F(e) / (F(src_e) × F(dst_e))`.
///
/// It shares the [`GLogue`] store but deliberately ignores the mined pattern frequencies,
/// which is exactly the "Low-order Stats" configuration of Fig. 8(d).
pub struct LowOrderEstimator<'a> {
    glogue: &'a GLogue,
}

impl<'a> LowOrderEstimator<'a> {
    /// Create a low-order estimator over the same statistics store.
    pub fn new(glogue: &'a GLogue) -> Self {
        LowOrderEstimator { glogue }
    }
}

impl CardEstimator for LowOrderEstimator<'_> {
    fn pattern_freq(&self, pattern: &Pattern) -> f64 {
        if pattern.vertex_count() == 0 {
            return 0.0;
        }
        let mut freq: f64 = pattern
            .vertices()
            .map(|v| self.glogue.vertex_constraint_freq(&v.constraint))
            .product();
        for e in pattern.edges() {
            let src = &pattern.vertex(e.src).constraint;
            let dst = &pattern.vertex(e.dst).constraint;
            let edge_f = self.glogue.edge_constraint_freq(src, &e.constraint, dst);
            let src_f = self.glogue.vertex_constraint_freq(src).max(1.0);
            let dst_f = self.glogue.vertex_constraint_freq(dst).max(1.0);
            let hops = e
                .path
                .map(|p| f64::from(p.min_hops + p.max_hops) / 2.0)
                .unwrap_or(1.0);
            freq *= (edge_f / (src_f * dst_f)).powf(hops);
        }
        freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glogue::GLogueConfig;
    use crate::mining::count_homomorphisms;
    use gopt_gir::pattern::PathSpec;
    use gopt_gir::types::TypeConstraint;
    use gopt_gir::Expr;
    use gopt_graph::generator::{random_graph, RandomGraphConfig};
    use gopt_graph::schema::fig6_schema;
    use gopt_graph::LabelId;

    struct Fig6 {
        glogue: GLogue,
        person: LabelId,
        product: LabelId,
        place: LabelId,
        knows: LabelId,
        purchases: LabelId,
        located: LabelId,
        produced: LabelId,
    }

    /// The paper's Fig. 6(a) GLogue.
    fn fig6_glogue() -> Fig6 {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let product = schema.vertex_label("Product").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let purchases = schema.edge_label("Purchases").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let produced = schema.edge_label("ProducedIn").unwrap();
        let glogue = GLogue::from_counts(
            schema,
            vec![(person, 10.0), (product, 20.0), (place, 5.0)],
            vec![
                (person, knows, person, 40.0),
                (person, purchases, product, 30.0),
                (person, located, place, 10.0),
                (product, produced, place, 20.0),
            ],
        );
        Fig6 {
            glogue,
            person,
            product,
            place,
            knows,
            purchases,
            located,
            produced,
        }
    }

    /// Build the paper's target pattern of Fig. 6(d): the triangle
    /// (v1:Person)-[Knows|Purchases]->(v2:Person|Product),
    /// (v2)-[LocatedIn|ProducedIn]->(v3:Place), (v1)-[LocatedIn]->(v3).
    fn fig6_target(f: &Fig6) -> Pattern {
        let mut p = Pattern::new();
        let v1 = p.add_vertex(TypeConstraint::basic(f.person));
        let v2 = p.add_vertex(TypeConstraint::union([f.person, f.product]));
        let v3 = p.add_vertex(TypeConstraint::basic(f.place));
        p.add_edge(v1, v2, TypeConstraint::union([f.knows, f.purchases]));
        p.add_edge(v2, v3, TypeConstraint::union([f.located, f.produced]));
        p.add_edge(v1, v3, TypeConstraint::basic(f.located));
        p
    }

    #[test]
    fn reproduces_paper_example_6_2() {
        let f = fig6_glogue();
        let q = GlogueQuery::new(&f.glogue);
        // source pattern Ps: (v1:Person)-[Knows|Purchases]->(v2:Person|Product), F = 70
        let mut ps = Pattern::new();
        let v1 = ps.add_vertex(TypeConstraint::basic(f.person));
        let v2 = ps.add_vertex(TypeConstraint::union([f.person, f.product]));
        ps.add_edge(v1, v2, TypeConstraint::union([f.knows, f.purchases]));
        assert_eq!(q.get_freq(&ps), 70.0);
        // the full target pattern estimates to 70 × 1.0 × 0.2 = 14
        let pt = fig6_target(&f);
        let est = q.get_freq(&pt);
        assert!((est - 14.0).abs() < 1e-6, "estimated {est}, expected 14");
        // memoization kicks in
        assert!(q.cached_entries() > 0);
        assert_eq!(q.get_freq(&pt), est);
        assert!(std::ptr::eq(q.glogue(), &f.glogue));
    }

    #[test]
    fn single_vertex_and_single_edge_frequencies() {
        let f = fig6_glogue();
        let q = GlogueQuery::new(&f.glogue);
        let mut p = Pattern::new();
        p.add_vertex(TypeConstraint::basic(f.person));
        assert_eq!(q.get_freq(&p), 10.0);
        let mut p = Pattern::new();
        p.add_vertex(TypeConstraint::all());
        assert_eq!(q.get_freq(&p), 35.0);
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::all());
        let b = p.add_vertex(TypeConstraint::basic(f.place));
        p.add_edge(a, b, TypeConstraint::all());
        // LocatedIn(10) + ProducedIn(20)
        assert_eq!(q.get_freq(&p), 30.0);
        assert_eq!(q.get_freq(&Pattern::new()), 0.0);
    }

    #[test]
    fn join_freq_follows_eq1() {
        let f = fig6_glogue();
        let q = GlogueQuery::new(&f.glogue);
        let pt = fig6_target(&f);
        let eids = pt.edge_ids();
        // split the triangle into {e0,e1} and {e2}
        let left = pt.induced_by_edges(&[eids[0], eids[1]].into_iter().collect());
        let right = pt.induced_by_edges(&[eids[2]].into_iter().collect());
        let f_left = q.get_freq(&left);
        let f_right = q.get_freq(&right);
        let inter = left.intersection(&right);
        let f_inter = q.get_freq(&inter).max(1.0);
        assert!((q.join_freq(&left, &right) - f_left * f_right / f_inter).abs() < 1e-9);
        // disjoint sub-patterns (of the same parent) multiply
        let v1_only = pt.single_vertex(pt.vertex_ids()[0]); // Person, F = 10
        let v3_only = pt.single_vertex(pt.vertex_ids()[2]); // Place, F = 5
        assert_eq!(q.join_freq(&v1_only, &v3_only), 50.0);
    }

    #[test]
    fn filters_apply_default_selectivity() {
        let f = fig6_glogue();
        let q = GlogueQuery::new(&f.glogue);
        let mut p = fig6_target(&f);
        let v3 = p.vertex_ids()[2];
        p.vertex_mut(v3).predicate = Some(Expr::prop_eq("v3", "name", "China"));
        let unfiltered = q.pattern_freq(&p);
        // without stats every filtered element gets the Remark 7.1 constant,
        // bit-identical to freq * DEFAULT_SELECTIVITY^filters
        let filtered = q.pattern_freq_with_filters(&p, &crate::ConstSelectivity);
        assert_eq!(filtered, unfiltered * DEFAULT_SELECTIVITY.powi(1));
        let e0 = p.edge_ids()[0];
        p.edge_mut(e0).predicate = Some(Expr::prop_eq("e0", "w", 1));
        let two = q.pattern_freq_with_filters(&p, &crate::ConstSelectivity);
        assert_eq!(two, q.pattern_freq(&p) * DEFAULT_SELECTIVITY.powi(2));
    }

    #[test]
    fn filters_use_stats_when_they_cover_the_predicate() {
        use gopt_graph::graph::GraphBuilder;
        use gopt_graph::{GraphStats, PropValue};
        // 10 Places, one named China; Person.age dense 0..50
        let mut b = GraphBuilder::new(fig6_schema());
        for i in 0..50i64 {
            b.add_vertex_by_name("Person", vec![("age", PropValue::Int(i))])
                .unwrap();
        }
        for i in 0..10 {
            let name = if i == 0 { "China" } else { "Else" };
            b.add_vertex_by_name("Place", vec![("name", PropValue::str(name))])
                .unwrap();
        }
        let g = b.finish();
        let stats = crate::StatsSelectivity::new(GraphStats::shared(&g));
        let f = fig6_glogue();
        let q = GlogueQuery::new(&f.glogue);
        let place = f.glogue.schema().vertex_label("Place").unwrap();
        let mut p = Pattern::new();
        let v = p.add_vertex(TypeConstraint::basic(place));
        p.vertex_mut(v).predicate = Some(Expr::prop_eq("v", "name", "China"));
        let base = q.pattern_freq(&p);
        let with = q.pattern_freq_with_filters(&p, &stats);
        assert!(
            (with - base * 0.1).abs() < 1e-9,
            "1 of 10 places is China: {with} vs {}",
            base * 0.1
        );
        // a predicate the stats cannot cover still falls back to the constant
        p.vertex_mut(v).predicate = Some(Expr::binary(
            gopt_gir::BinOp::Lt,
            Expr::prop("v", "name"),
            Expr::prop("v", "id"),
        ));
        let fallback = q.pattern_freq_with_filters(&p, &stats);
        assert_eq!(fallback, base * DEFAULT_SELECTIVITY.powi(1));
    }

    #[test]
    fn path_edges_estimate_multiplicatively() {
        let f = fig6_glogue();
        let q = GlogueQuery::new(&f.glogue);
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(f.person));
        let b = p.add_vertex(TypeConstraint::basic(f.person));
        p.add_edge_full(
            a,
            b,
            None,
            TypeConstraint::basic(f.knows),
            None,
            Some(PathSpec::exact(3)),
        );
        // per-hop ratio = 40/10 = 4; 10 * 4^3 = 640
        assert!((q.get_freq(&p) - 640.0).abs() < 1e-6);
    }

    #[test]
    fn high_order_beats_low_order_on_correlated_graph() {
        // Build a graph where Person-Knows->Person pairs are always co-located, a
        // correlation only the 3-vertex statistics can see.
        let schema = fig6_schema();
        let g = random_graph(
            &schema,
            &RandomGraphConfig {
                vertices_per_label: 30,
                edges_per_endpoint: 120,
                seed: 11,
            },
        );
        let gl = GLogue::build(
            &g,
            &GLogueConfig {
                max_pattern_vertices: 3,
                max_anchors: None,
                seed: 0,
            },
        );
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        // the triangle pattern person-knows-person co-located
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::basic(place));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        p.add_edge(a, c, TypeConstraint::basic(located));
        p.add_edge(b, c, TypeConstraint::basic(located));
        let actual = count_homomorphisms(&g, &p);
        let hi = GlogueQuery::new(&gl).pattern_freq(&p);
        let lo = LowOrderEstimator::new(&gl).pattern_freq(&p);
        let err = |est: f64| ((est.max(1.0)) / actual.max(1.0)).max(actual.max(1.0) / est.max(1.0));
        assert!(
            err(hi) <= err(lo) + 1e-9,
            "high-order error {} should not exceed low-order error {} (actual {actual}, hi {hi}, lo {lo})",
            err(hi),
            err(lo)
        );
        // the triangle is stored, so the high-order estimate is exact
        assert!((hi - actual).abs() < 1e-6);
    }

    #[test]
    fn low_order_estimator_basicproperties() {
        let f = fig6_glogue();
        let lo = LowOrderEstimator::new(&f.glogue);
        let mut p = Pattern::new();
        p.add_vertex(TypeConstraint::basic(f.person));
        assert_eq!(lo.pattern_freq(&p), 10.0);
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(f.person));
        let b = p.add_vertex(TypeConstraint::basic(f.person));
        p.add_edge(a, b, TypeConstraint::basic(f.knows));
        // 10 * 10 * (40 / (10*10)) = 40 : exact for a single edge
        assert_eq!(lo.pattern_freq(&p), 40.0);
        assert_eq!(lo.pattern_freq(&Pattern::new()), 0.0);
    }
}
