//! The GLogue high-order statistics store.
//!
//! GLogue pre-computes the frequencies of all schema-consistent small patterns (motifs)
//! with **basic types**, up to a configurable number of vertices (`k = 3` by default,
//! matching the paper). These high-order statistics capture label correlations that
//! per-label counts cannot (e.g. "Persons who know each other are usually located in the
//! same Country"), which is what makes cardinality estimation for complex patterns
//! accurate (Fig. 8(d) of the paper).
//!
//! Patterns are keyed by their [`canonical code`](gopt_gir::pattern::Pattern::canonical_code),
//! so lookups are invariant to how the query pattern happens to number its vertices.

use crate::mining::count_homomorphisms_sampled;
use gopt_gir::pattern::Pattern;
use gopt_gir::types::TypeConstraint;
use gopt_graph::{GraphSchema, LabelId, PropertyGraph};
use std::collections::{HashMap, HashSet};

/// Configuration for building a [`GLogue`] from a data graph.
#[derive(Debug, Clone)]
pub struct GLogueConfig {
    /// Maximum number of vertices of the mined patterns (the paper's `k`). Patterns of
    /// size 1 and 2 are always included; `3` adds wedges and triangles.
    pub max_pattern_vertices: usize,
    /// Anchor-sampling cap used while counting size-3 patterns; `None` counts exactly.
    /// This plays the role of GLogS's graph sparsification for large graphs.
    pub max_anchors: Option<usize>,
    /// RNG seed for anchor sampling.
    pub seed: u64,
}

impl Default for GLogueConfig {
    fn default() -> Self {
        GLogueConfig {
            max_pattern_vertices: 3,
            max_anchors: Some(2_000),
            seed: 0x610906,
        }
    }
}

/// The high-order statistics store.
#[derive(Debug, Clone)]
pub struct GLogue {
    schema: GraphSchema,
    vertex_counts: Vec<f64>,
    edge_counts: Vec<f64>,
    /// Distinct connected (src, dst) pair counts per (src label, edge label, dst label).
    typed_pair_counts: HashMap<(LabelId, LabelId, LabelId), f64>,
    /// Frequencies of mined patterns keyed by canonical code.
    pattern_freqs: HashMap<String, f64>,
    max_pattern_vertices: usize,
}

impl GLogue {
    /// Build the statistics by mining the data graph.
    pub fn build(graph: &PropertyGraph, config: &GLogueConfig) -> Self {
        let schema = graph.schema().clone();
        let mut vertex_counts = vec![0.0; schema.vertex_label_count()];
        for l in schema.vertex_label_ids() {
            vertex_counts[l.index()] = graph.vertex_count_by_label(l) as f64;
        }
        let mut edge_counts = vec![0.0; schema.edge_label_count()];
        for l in schema.edge_label_ids() {
            edge_counts[l.index()] = graph.edge_count_by_label(l) as f64;
        }
        // distinct connected pairs per (src label, edge label, dst label): each CSR
        // (vertex, label) segment is sorted by neighbour, so distinct neighbours per
        // label are a linear scan of the segment.
        let mut typed_pair_counts: HashMap<(LabelId, LabelId, LabelId), f64> = HashMap::new();
        for u in graph.vertex_ids() {
            let ul = graph.vertex_label(u);
            for el in schema.edge_label_ids() {
                let mut prev = None;
                for a in graph.out_edges_with_label(u, el) {
                    if prev != Some(a.neighbor) {
                        let nl = graph.vertex_label(a.neighbor);
                        *typed_pair_counts.entry((ul, el, nl)).or_insert(0.0) += 1.0;
                        prev = Some(a.neighbor);
                    }
                }
            }
        }
        let mut glogue = GLogue {
            schema,
            vertex_counts,
            edge_counts,
            typed_pair_counts,
            pattern_freqs: HashMap::new(),
            max_pattern_vertices: config.max_pattern_vertices,
        };
        glogue.seed_small_patterns();
        if config.max_pattern_vertices >= 3 {
            glogue.mine_size3(graph, config);
        }
        glogue
    }

    /// Build a GLogue directly from known counts, without a data graph.
    ///
    /// Used by tests (e.g. to reproduce the paper's Fig. 6 example) and by deployments
    /// that import statistics computed elsewhere. Size-1/2 pattern frequencies are seeded
    /// from the provided counts; size-3 frequencies can be added with [`GLogue::insert`].
    pub fn from_counts(
        schema: GraphSchema,
        vertex_counts: Vec<(LabelId, f64)>,
        typed_edge_counts: Vec<(LabelId, LabelId, LabelId, f64)>,
    ) -> Self {
        let mut vc = vec![0.0; schema.vertex_label_count()];
        for (l, c) in vertex_counts {
            vc[l.index()] = c;
        }
        let mut ec = vec![0.0; schema.edge_label_count()];
        let mut typed = HashMap::new();
        for (s, e, d, c) in typed_edge_counts {
            typed.insert((s, e, d), c);
            ec[e.index()] += c;
        }
        let mut glogue = GLogue {
            schema,
            vertex_counts: vc,
            edge_counts: ec,
            typed_pair_counts: typed,
            pattern_freqs: HashMap::new(),
            max_pattern_vertices: 2,
        };
        glogue.seed_small_patterns();
        glogue
    }

    /// Insert (or override) the frequency of a pattern, keyed by its canonical code.
    pub fn insert(&mut self, pattern: &Pattern, freq: f64) {
        self.pattern_freqs.insert(pattern.canonical_code(), freq);
        self.max_pattern_vertices = self.max_pattern_vertices.max(pattern.vertex_count());
    }

    fn seed_small_patterns(&mut self) {
        // size-1 patterns
        for l in self.schema.vertex_label_ids() {
            let mut p = Pattern::new();
            p.add_vertex(TypeConstraint::basic(l));
            self.pattern_freqs
                .insert(p.canonical_code(), self.vertex_counts[l.index()]);
        }
        // size-2 patterns from typed pair counts
        let entries: Vec<((LabelId, LabelId, LabelId), f64)> = self
            .typed_pair_counts
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        for ((s, e, d), c) in entries {
            let mut p = Pattern::new();
            let a = p.add_vertex(TypeConstraint::basic(s));
            let b = p.add_vertex(TypeConstraint::basic(d));
            p.add_edge(a, b, TypeConstraint::basic(e));
            self.pattern_freqs.insert(p.canonical_code(), c);
        }
    }

    /// Enumerate and count all schema-consistent 3-vertex basic-typed patterns
    /// (wedges and triangles) present in the schema.
    fn mine_size3(&mut self, graph: &PropertyGraph, config: &GLogueConfig) {
        let mut seen: HashSet<String> = HashSet::new();
        let patterns = enumerate_size3_patterns(&self.schema);
        for p in patterns {
            let code = p.canonical_code();
            if !seen.insert(code.clone()) {
                continue;
            }
            let freq = count_homomorphisms_sampled(graph, &p, config.max_anchors, config.seed);
            if freq > 0.0 {
                self.pattern_freqs.insert(code, freq);
            }
        }
    }

    /// The schema the statistics were computed against.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// The largest pattern size stored.
    pub fn max_pattern_vertices(&self) -> usize {
        self.max_pattern_vertices
    }

    /// Number of stored pattern frequencies.
    pub fn pattern_count(&self) -> usize {
        self.pattern_freqs.len()
    }

    /// Frequency of a vertex label.
    pub fn vertex_freq(&self, label: LabelId) -> f64 {
        self.vertex_counts
            .get(label.index())
            .copied()
            .unwrap_or(0.0)
    }

    /// Total number of vertices.
    pub fn total_vertex_freq(&self) -> f64 {
        self.vertex_counts.iter().sum()
    }

    /// Frequency (raw edge count) of an edge label.
    pub fn edge_freq(&self, label: LabelId) -> f64 {
        self.edge_counts.get(label.index()).copied().unwrap_or(0.0)
    }

    /// Frequency of `(src_label)-[edge_label]->(dst_label)` connected pairs.
    pub fn typed_edge_freq(&self, src: LabelId, edge: LabelId, dst: LabelId) -> f64 {
        self.typed_pair_counts
            .get(&(src, edge, dst))
            .copied()
            .unwrap_or(0.0)
    }

    /// Look up the stored frequency of a pattern (by canonical code).
    pub fn lookup(&self, pattern: &Pattern) -> Option<f64> {
        self.pattern_freqs.get(&pattern.canonical_code()).copied()
    }

    /// Sum of vertex frequencies admitted by a constraint.
    pub fn vertex_constraint_freq(&self, constraint: &TypeConstraint) -> f64 {
        match constraint.as_labels() {
            None => self.total_vertex_freq(),
            Some(labels) => labels.iter().map(|l| self.vertex_freq(*l)).sum(),
        }
    }

    /// Sum of typed-pair frequencies over all `(src, edge, dst)` triples admitted by the
    /// given constraints and the schema.
    pub fn edge_constraint_freq(
        &self,
        src: &TypeConstraint,
        edge: &TypeConstraint,
        dst: &TypeConstraint,
    ) -> f64 {
        let edge_labels: Vec<LabelId> =
            edge.materialize(&self.schema.edge_label_ids().collect::<Vec<_>>());
        let mut total = 0.0;
        for el in edge_labels {
            for &(s, d) in self.schema.edge_endpoints(el) {
                if src.contains(s) && dst.contains(d) {
                    total += self.typed_edge_freq(s, el, d);
                }
            }
        }
        total
    }
}

/// Enumerate all 3-vertex basic-typed patterns (wedges and triangles) permitted by the
/// schema. Duplicates (up to canonical equivalence) may be produced; callers de-duplicate.
fn enumerate_size3_patterns(schema: &GraphSchema) -> Vec<Pattern> {
    // branch = (edge label, outgoing?, other vertex label), relative to a center label
    let branches = |center: LabelId| -> Vec<(LabelId, bool, LabelId)> {
        let mut out = Vec::new();
        for el in schema.edge_label_ids() {
            for &(s, d) in schema.edge_endpoints(el) {
                if s == center {
                    out.push((el, true, d));
                }
                if d == center {
                    out.push((el, false, s));
                }
            }
        }
        out
    };
    let mut patterns = Vec::new();
    // wedges: center + two branches (unordered, with repetition)
    for center in schema.vertex_label_ids() {
        let bs = branches(center);
        for i in 0..bs.len() {
            for j in i..bs.len() {
                let mut p = Pattern::new();
                let c = p.add_vertex(TypeConstraint::basic(center));
                for &(el, outgoing, other) in [&bs[i], &bs[j]] {
                    let o = p.add_vertex(TypeConstraint::basic(other));
                    if outgoing {
                        p.add_edge(c, o, TypeConstraint::basic(el));
                    } else {
                        p.add_edge(o, c, TypeConstraint::basic(el));
                    }
                }
                patterns.push(p);
            }
        }
    }
    // triangles: three vertex labels and one connecting option per side
    let vlabels: Vec<LabelId> = schema.vertex_label_ids().collect();
    let side_options = |x: LabelId, y: LabelId| -> Vec<(LabelId, bool)> {
        // (edge label, true if x -> y else y -> x)
        let mut out = Vec::new();
        for el in schema.edge_label_ids() {
            for &(s, d) in schema.edge_endpoints(el) {
                if s == x && d == y {
                    out.push((el, true));
                }
                if s == y && d == x {
                    out.push((el, false));
                }
            }
        }
        out
    };
    for &la in &vlabels {
        for &lb in &vlabels {
            for &lc in &vlabels {
                let ab = side_options(la, lb);
                let bc = side_options(lb, lc);
                let ac = side_options(la, lc);
                if ab.is_empty() || bc.is_empty() || ac.is_empty() {
                    continue;
                }
                for &(e_ab, d_ab) in &ab {
                    for &(e_bc, d_bc) in &bc {
                        for &(e_ac, d_ac) in &ac {
                            let mut p = Pattern::new();
                            let a = p.add_vertex(TypeConstraint::basic(la));
                            let b = p.add_vertex(TypeConstraint::basic(lb));
                            let c = p.add_vertex(TypeConstraint::basic(lc));
                            let mut add = |x, y, el, fwd: bool| {
                                if fwd {
                                    p.add_edge(x, y, TypeConstraint::basic(el));
                                } else {
                                    p.add_edge(y, x, TypeConstraint::basic(el));
                                }
                            };
                            add(a, b, e_ab, d_ab);
                            add(b, c, e_bc, d_bc);
                            add(a, c, e_ac, d_ac);
                            patterns.push(p);
                        }
                    }
                }
            }
        }
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_graph::generator::{random_graph, RandomGraphConfig};
    use gopt_graph::graph::GraphBuilder;
    use gopt_graph::schema::fig6_schema;

    fn small_graph() -> PropertyGraph {
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let p: Vec<_> = (0..3)
            .map(|_| b.add_vertex_by_name("Person", vec![]).unwrap())
            .collect();
        let q = b.add_vertex_by_name("Product", vec![]).unwrap();
        let c = b.add_vertex_by_name("Place", vec![]).unwrap();
        b.add_edge_by_name("Knows", p[0], p[1], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[0], p[2], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[1], p[2], vec![]).unwrap();
        b.add_edge_by_name("Purchases", p[0], q, vec![]).unwrap();
        b.add_edge_by_name("Purchases", p[1], q, vec![]).unwrap();
        for v in &p {
            b.add_edge_by_name("LocatedIn", *v, c, vec![]).unwrap();
        }
        b.add_edge_by_name("ProducedIn", q, c, vec![]).unwrap();
        b.finish()
    }

    #[test]
    fn low_order_counts_are_exact() {
        let g = small_graph();
        let gl = GLogue::build(&g, &GLogueConfig::default());
        let s = g.schema();
        let person = s.vertex_label("Person").unwrap();
        let product = s.vertex_label("Product").unwrap();
        let place = s.vertex_label("Place").unwrap();
        let knows = s.edge_label("Knows").unwrap();
        let located = s.edge_label("LocatedIn").unwrap();
        assert_eq!(gl.vertex_freq(person), 3.0);
        assert_eq!(gl.vertex_freq(product), 1.0);
        assert_eq!(gl.total_vertex_freq(), 5.0);
        assert_eq!(gl.edge_freq(knows), 3.0);
        assert_eq!(gl.typed_edge_freq(person, knows, person), 3.0);
        assert_eq!(gl.typed_edge_freq(person, located, place), 3.0);
        assert_eq!(gl.typed_edge_freq(place, located, person), 0.0);
        assert_eq!(
            gl.vertex_constraint_freq(&TypeConstraint::union([person, product])),
            4.0
        );
        assert_eq!(gl.vertex_constraint_freq(&TypeConstraint::all()), 5.0);
        assert_eq!(
            gl.edge_constraint_freq(
                &TypeConstraint::basic(person),
                &TypeConstraint::all(),
                &TypeConstraint::all()
            ),
            3.0 + 2.0 + 3.0
        );
    }

    #[test]
    fn mined_patterns_include_wedges_and_triangles() {
        let g = small_graph();
        let gl = GLogue::build(&g, &GLogueConfig::default());
        let s = g.schema();
        let person = s.vertex_label("Person").unwrap();
        let place = s.vertex_label("Place").unwrap();
        let knows = s.edge_label("Knows").unwrap();
        let located = s.edge_label("LocatedIn").unwrap();
        assert!(gl.pattern_count() > 5);
        assert_eq!(gl.max_pattern_vertices(), 3);
        // wedge (a:Person)-Knows->(b:Person)-LocatedIn->(c:Place) has 3 homomorphisms
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::basic(place));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        p.add_edge(b, c, TypeConstraint::basic(located));
        assert_eq!(gl.lookup(&p), Some(3.0));
        // triangle person-knows-person both located in place: 3 mappings
        let mut t = Pattern::new();
        let a = t.add_vertex(TypeConstraint::basic(person));
        let b = t.add_vertex(TypeConstraint::basic(person));
        let c = t.add_vertex(TypeConstraint::basic(place));
        t.add_edge(a, b, TypeConstraint::basic(knows));
        t.add_edge(a, c, TypeConstraint::basic(located));
        t.add_edge(b, c, TypeConstraint::basic(located));
        assert_eq!(gl.lookup(&t), Some(3.0));
        // a pattern that does not occur is absent
        let mut z = Pattern::new();
        let a = z.add_vertex(TypeConstraint::basic(place));
        let b = z.add_vertex(TypeConstraint::basic(place));
        z.add_edge(a, b, TypeConstraint::basic(knows));
        assert_eq!(gl.lookup(&z), None);
    }

    #[test]
    fn from_counts_reproduces_paper_fig6_glogue() {
        // Fig. 6(a): Person:10, Product:20, Place:5; Knows:40, Purchases:30,
        // LocatedIn:10, ProducedIn:20
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let product = schema.vertex_label("Product").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let purchases = schema.edge_label("Purchases").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let produced = schema.edge_label("ProducedIn").unwrap();
        let gl = GLogue::from_counts(
            schema.clone(),
            vec![(person, 10.0), (product, 20.0), (place, 5.0)],
            vec![
                (person, knows, person, 40.0),
                (person, purchases, product, 30.0),
                (person, located, place, 10.0),
                (product, produced, place, 20.0),
            ],
        );
        assert_eq!(gl.vertex_freq(person), 10.0);
        assert_eq!(gl.edge_freq(knows), 40.0);
        assert_eq!(gl.typed_edge_freq(person, purchases, product), 30.0);
        // union-typed edge frequency (the paper's Ps): Knows|Purchases from Person = 70
        let f = gl.edge_constraint_freq(
            &TypeConstraint::basic(person),
            &TypeConstraint::union([knows, purchases]),
            &TypeConstraint::union([person, product]),
        );
        assert_eq!(f, 70.0);
        // insert a synthetic 3-vertex frequency and read it back
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::basic(place));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        p.add_edge(b, c, TypeConstraint::basic(located));
        let mut gl = gl;
        gl.insert(&p, 25.0);
        assert_eq!(gl.lookup(&p), Some(25.0));
        assert_eq!(gl.max_pattern_vertices(), 3);
    }

    #[test]
    fn build_on_random_graph_is_consistent_with_exact_counts() {
        let schema = fig6_schema();
        let g = random_graph(
            &schema,
            &RandomGraphConfig {
                vertices_per_label: 15,
                edges_per_endpoint: 40,
                seed: 3,
            },
        );
        // no sampling -> stored frequencies must equal exact homomorphism counts
        let gl = GLogue::build(
            &g,
            &GLogueConfig {
                max_pattern_vertices: 3,
                max_anchors: None,
                seed: 0,
            },
        );
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(person));
        let b = p.add_vertex(TypeConstraint::basic(person));
        let c = p.add_vertex(TypeConstraint::basic(place));
        p.add_edge(a, b, TypeConstraint::basic(knows));
        p.add_edge(b, c, TypeConstraint::basic(located));
        let exact = crate::mining::count_homomorphisms(&g, &p);
        if exact > 0.0 {
            assert_eq!(gl.lookup(&p), Some(exact));
        } else {
            assert_eq!(gl.lookup(&p), None);
        }
    }
}
