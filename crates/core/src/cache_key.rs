//! Plan-cache keys derived from normalized logical plans.
//!
//! A serving frontend wants to run the RBO/CBO pipeline once per query
//! *shape*, not once per request. The key that makes this safe has two parts:
//!
//! * the **shape** — the canonical encoding of the parsed [`LogicalPlan`]
//!   ([`LogicalPlan::encode`]): parsing already normalizes away whitespace and
//!   surface syntax, and the encoding renumbers node ids densely, so two
//!   requests whose plans are structurally identical (same patterns,
//!   predicates, projections, ordering — everything that feeds the optimizer)
//!   share one shape string. Tag names deliberately stay in the shape: the
//!   optimized physical plan embeds aliases, so a plan cached for `MATCH (a)`
//!   must never be served for `MATCH (x)`. Frontends additionally
//!   **parameterize** before keying ([`LogicalPlan::parameterize`]): comparison
//!   constants are replaced by `Expr::Param` slots, so `age > 30` and
//!   `age > 40` collapse to one shape and share one generic plan, bound back
//!   per request with `PhysicalPlan::bind_params`. The trade-off is that the
//!   CBO sees the parameter, not the constant, and falls back to its generic
//!   selectivity estimate for that predicate — one plan for the whole literal
//!   family, not the literal-specific optimum.
//! * the **stats version** — a caller-managed counter identifying the
//!   [`GraphStats`](gopt_graph::GraphStats) snapshot the optimizer
//!   saw. The CBO's choices are a function of the statistics; when they
//!   change, every cached plan derived from the old snapshot is stale (still
//!   *correct* to execute, but no longer the plan the optimizer would pick).
//!
//! The cache itself lives with its owner (see the `gopt_server` crate); this
//! module only defines the key so any frontend shares one notion of "same
//! query".

use gopt_gir::logical::LogicalPlan;
use std::sync::Arc;

/// The version counter value callers start from.
pub const INITIAL_STATS_VERSION: u64 = 0;

/// Identity of one optimizer invocation: a normalized query shape plus the
/// statistics snapshot it was (or would be) optimized under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    /// Canonical encoding of the logical plan (see [`plan_shape`]).
    pub shape: Arc<str>,
    /// Caller-managed [`GraphStats`](gopt_graph::GraphStats) snapshot
    /// counter at optimization time.
    pub stats_version: u64,
}

impl PlanCacheKey {
    /// Key for `plan` under statistics snapshot `stats_version`.
    pub fn new(plan: &LogicalPlan, stats_version: u64) -> PlanCacheKey {
        PlanCacheKey {
            shape: plan_shape(plan),
            stats_version,
        }
    }
}

/// The normalized shape of a logical plan: its canonical encoding, shared
/// behind an `Arc` because caches hold it both as map key and inside entries.
pub fn plan_shape(plan: &LogicalPlan) -> Arc<str> {
    Arc::from(plan.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_gir::expr::Expr;
    use gopt_gir::logical::LogicalOp;
    use gopt_gir::pattern::Pattern;
    use gopt_gir::types::TypeConstraint;

    fn match_plan(tag: &str) -> LogicalPlan {
        let mut pattern = Pattern::new();
        let a = pattern.add_vertex_tagged(tag, TypeConstraint::all());
        let b = pattern.add_vertex_tagged("b", TypeConstraint::all());
        pattern.add_edge(a, b, TypeConstraint::all());
        let mut plan = LogicalPlan::new();
        let m = plan.add(LogicalOp::Match { pattern }, vec![]);
        plan.add(
            LogicalOp::Project {
                items: vec![(Expr::tag(tag), tag.to_string())],
            },
            vec![m],
        );
        plan
    }

    #[test]
    fn same_shape_same_key_different_version_different_key() {
        let k1 = PlanCacheKey::new(&match_plan("a"), 0);
        let k2 = PlanCacheKey::new(&match_plan("a"), 0);
        assert_eq!(k1, k2);
        let bumped = PlanCacheKey::new(&match_plan("a"), 1);
        assert_ne!(k1, bumped);
        assert_eq!(k1.shape, bumped.shape);
    }

    #[test]
    fn parameterized_plans_share_a_shape_across_literals() {
        use gopt_gir::expr::BinOp;
        let filtered = |age: i64| {
            let mut plan = match_plan("a");
            let root = plan.root();
            plan.add(
                LogicalOp::Select {
                    predicate: Expr::binary(BinOp::Gt, Expr::prop("a", "age"), Expr::lit(age)),
                },
                vec![root],
            );
            let (parameterized, params) = plan.parameterize();
            (plan_shape(&parameterized), params)
        };
        let (s30, p30) = filtered(30);
        let (s40, p40) = filtered(40);
        assert_eq!(s30, s40, "literal variants must share one cache shape");
        assert_ne!(p30, p40, "each variant keeps its own bound constant");
        assert!(s30.contains("Param(0)"), "shape holds the slot: {s30}");
    }

    #[test]
    fn tag_renames_change_the_shape() {
        // aliases are part of the emitted physical plan, so `a` and `x`
        // must not share a cache entry even though the structure matches
        assert_ne!(
            PlanCacheKey::new(&match_plan("a"), 0).shape,
            PlanCacheKey::new(&match_plan("x"), 0).shape
        );
    }
}
