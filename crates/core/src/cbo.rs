//! Cost-based optimization of patterns (Section 6.3).
//!
//! The CBO searches over *hybrid* pattern plans combining the two strategies that
//! implement the `PatternJoin` equivalence rule:
//!
//! * **vertex expansion** (`Expand(P_s → P_t)`): bind one more pattern vertex by
//!   following all of its edges to already-bound vertices — implemented by backends as
//!   `ExpandInto` (Neo4j, flattening) or `ExpandIntersect` (GraphScope, worst-case
//!   optimal); and
//! * **binary join** (`Join(P_s1, P_s2 → P_t)`): match two sub-patterns independently
//!   and hash-join them on their common vertices.
//!
//! Backends register how much each strategy costs through the [`PhysicalSpec`]
//! interface, mirroring the paper's code snippets: `ExpandInto` costs the sum of the
//! intermediate pattern frequencies, `ExpandIntersect` costs `|P_v| × F(P_s)`, and
//! `HashJoin` costs `F(P_s1) + F(P_s2)`. The [`PatternPlanner`] then runs the top-down
//! branch-and-bound search of Algorithm 2, seeded by a greedy initial plan, over
//! cardinalities supplied by any [`CardEstimator`] (high-order `GlogueQuery` by default).

use gopt_gir::pattern::{Pattern, PatternEdgeId, PatternVertexId};
use gopt_glogue::{CardEstimator, ConstSelectivity, SelectivityEstimator};
use std::collections::{BTreeMap, BTreeSet};

/// The selectivity fallback every planner starts from: no statistics, so each
/// filtered element is priced at `gopt_glogue::DEFAULT_SELECTIVITY` (Remark
/// 7.1). Replaced by [`PatternPlanner::with_selectivity`] when property
/// statistics are available.
static CONST_SELECTIVITY: ConstSelectivity = ConstSelectivity;

/// How a backend implements the vertex-expansion strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandStrategy {
    /// Flattening expansion: one `EdgeExpand` followed by `ExpandInto` per extra edge
    /// (Neo4j).
    Flatten,
    /// Worst-case-optimal intersection of all incident adjacency lists
    /// (`ExpandIntersect`, GraphScope).
    Intersect,
}

/// Backend-registered physical operators and cost models (the paper's `PhysicalSpec`).
pub trait PhysicalSpec {
    /// Backend name.
    fn name(&self) -> &str;

    /// Which physical operator realises multi-edge vertex expansion on this backend.
    fn expand_strategy(&self) -> ExpandStrategy;

    /// Weight of the communication term (number of intermediate results) in the total
    /// cost; `0.0` for single-machine backends, `1.0` for distributed ones.
    fn comm_weight(&self) -> f64;

    /// Cost of binding `new_vertex` onto sub-pattern `ps` by expanding `edges`
    /// (all edges of `target` between `new_vertex` and `ps`). Intermediate
    /// frequencies are filter-aware: `sel` prices each element's predicate,
    /// falling back to the Remark 7.1 constant where stats are absent.
    fn expand_cost(
        &self,
        est: &dyn CardEstimator,
        sel: &dyn SelectivityEstimator,
        ps: &Pattern,
        target: &Pattern,
        new_vertex: PatternVertexId,
        edges: &[PatternEdgeId],
    ) -> f64;

    /// Cost of hash-joining the matches of `ps1` and `ps2`.
    fn join_cost(
        &self,
        est: &dyn CardEstimator,
        sel: &dyn SelectivityEstimator,
        ps1: &Pattern,
        ps2: &Pattern,
    ) -> f64;
}

/// Neo4j-like spec: flattening `ExpandInto`, no communication cost.
#[derive(Debug, Clone, Default)]
pub struct Neo4jSpec;

impl PhysicalSpec for Neo4jSpec {
    fn name(&self) -> &str {
        "neo4j"
    }

    fn expand_strategy(&self) -> ExpandStrategy {
        ExpandStrategy::Flatten
    }

    fn comm_weight(&self) -> f64 {
        0.0
    }

    fn expand_cost(
        &self,
        est: &dyn CardEstimator,
        sel: &dyn SelectivityEstimator,
        ps: &Pattern,
        target: &Pattern,
        new_vertex: PatternVertexId,
        edges: &[PatternEdgeId],
    ) -> f64 {
        // ExpandInto flattens: pay the frequency of every intermediate pattern obtained
        // by appending the edges one at a time.
        let mut vertex_ids: BTreeSet<PatternVertexId> = ps.vertex_ids().into_iter().collect();
        vertex_ids.insert(new_vertex);
        let mut edge_ids: BTreeSet<PatternEdgeId> = ps.edge_ids().into_iter().collect();
        let mut cost = 0.0;
        for e in edges {
            edge_ids.insert(*e);
            let intermediate = target.induced(&vertex_ids, &edge_ids);
            cost += est.pattern_freq_with_filters(&intermediate, sel);
        }
        cost
    }

    fn join_cost(
        &self,
        est: &dyn CardEstimator,
        sel: &dyn SelectivityEstimator,
        ps1: &Pattern,
        ps2: &Pattern,
    ) -> f64 {
        est.pattern_freq_with_filters(ps1, sel) + est.pattern_freq_with_filters(ps2, sel)
    }
}

/// GraphScope-like spec: worst-case-optimal `ExpandIntersect`, communication cost counted.
#[derive(Debug, Clone, Default)]
pub struct GraphScopeSpec;

impl PhysicalSpec for GraphScopeSpec {
    fn name(&self) -> &str {
        "graphscope"
    }

    fn expand_strategy(&self) -> ExpandStrategy {
        ExpandStrategy::Intersect
    }

    fn comm_weight(&self) -> f64 {
        1.0
    }

    fn expand_cost(
        &self,
        est: &dyn CardEstimator,
        sel: &dyn SelectivityEstimator,
        ps: &Pattern,
        _target: &Pattern,
        _new_vertex: PatternVertexId,
        edges: &[PatternEdgeId],
    ) -> f64 {
        // ExpandIntersect intersects adjacency lists without flattening: |Pv| * F(Ps)
        edges.len() as f64 * est.pattern_freq_with_filters(ps, sel)
    }

    fn join_cost(
        &self,
        est: &dyn CardEstimator,
        sel: &dyn SelectivityEstimator,
        ps1: &Pattern,
        ps2: &Pattern,
    ) -> f64 {
        est.pattern_freq_with_filters(ps1, sel) + est.pattern_freq_with_filters(ps2, sel)
    }
}

/// One step of a pattern plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternStep {
    /// Scan the candidate vertices of one pattern vertex.
    Scan {
        /// The pattern vertex bound by the scan.
        vertex: PatternVertexId,
    },
    /// Bind `new_vertex` by expanding `edges` from the input plan's bound vertices.
    Expand {
        /// Plan producing the source sub-pattern.
        input: Box<PatternPlan>,
        /// The newly bound pattern vertex.
        new_vertex: PatternVertexId,
        /// The pattern edges connecting `new_vertex` to already-bound vertices.
        edges: Vec<PatternEdgeId>,
    },
    /// Hash-join two sub-plans on their common pattern vertices.
    Join {
        /// Left sub-plan.
        left: Box<PatternPlan>,
        /// Right sub-plan.
        right: Box<PatternPlan>,
        /// Join-key pattern vertices.
        keys: Vec<PatternVertexId>,
    },
}

/// A costed plan for matching one (sub-)pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternPlan {
    /// The final step of the plan.
    pub step: PatternStep,
    /// Total estimated cost (Algorithm 2's accumulated cost).
    pub cost: f64,
    /// Estimated result cardinality of the (sub-)pattern.
    pub est_rows: f64,
}

impl PatternPlan {
    /// The order in which pattern vertices become bound (for plan-shape assertions).
    pub fn binding_order(&self) -> Vec<PatternVertexId> {
        match &self.step {
            PatternStep::Scan { vertex } => vec![*vertex],
            PatternStep::Expand {
                input, new_vertex, ..
            } => {
                let mut o = input.binding_order();
                o.push(*new_vertex);
                o
            }
            PatternStep::Join { left, right, .. } => {
                let mut o = left.binding_order();
                for v in right.binding_order() {
                    if !o.contains(&v) {
                        o.push(v);
                    }
                }
                o
            }
        }
    }

    /// Number of `Join` steps in the plan.
    pub fn join_count(&self) -> usize {
        match &self.step {
            PatternStep::Scan { .. } => 0,
            PatternStep::Expand { input, .. } => input.join_count(),
            PatternStep::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }
}

type MemoKey = (Vec<usize>, Vec<usize>);

fn memo_key(p: &Pattern) -> MemoKey {
    (
        p.vertex_ids().iter().map(|v| v.0).collect(),
        p.edge_ids().iter().map(|e| e.0).collect(),
    )
}

/// The top-down, branch-and-bound pattern planner (Algorithm 2).
pub struct PatternPlanner<'a> {
    estimator: &'a dyn CardEstimator,
    spec: &'a dyn PhysicalSpec,
    /// Prices each filtered element's predicate; defaults to the Remark 7.1
    /// constant fallback ([`ConstSelectivity`]).
    selectivity: &'a dyn SelectivityEstimator,
    /// Join decompositions are only enumerated for patterns with at most this many edges
    /// (the enumeration is exponential in the edge count).
    pub max_join_edges: usize,
    /// Disable branch-and-bound pruning (used by the planning-time ablation).
    pub disable_pruning: bool,
}

impl<'a> PatternPlanner<'a> {
    /// Create a planner over a cardinality estimator and a backend spec, with
    /// the constant-selectivity fallback for filters.
    pub fn new(estimator: &'a dyn CardEstimator, spec: &'a dyn PhysicalSpec) -> Self {
        PatternPlanner {
            estimator,
            spec,
            selectivity: &CONST_SELECTIVITY,
            max_join_edges: 10,
            disable_pruning: false,
        }
    }

    /// Use a statistics-backed selectivity estimator for filtered elements
    /// (e.g. `gopt_glogue::StatsSelectivity` over `GraphStats`), making every
    /// frequency the cost models see filter-aware.
    pub fn with_selectivity(mut self, sel: &'a dyn SelectivityEstimator) -> Self {
        self.selectivity = sel;
        self
    }

    fn freq(&self, p: &Pattern) -> f64 {
        self.estimator
            .pattern_freq_with_filters(p, self.selectivity)
    }

    /// Find the (estimated) optimal plan for `pattern`.
    pub fn plan(&self, pattern: &Pattern) -> PatternPlan {
        assert!(pattern.vertex_count() > 0, "cannot plan an empty pattern");
        let greedy = self.greedy_initial(pattern);
        let budget = greedy.cost;
        let mut memo: BTreeMap<MemoKey, PatternPlan> = BTreeMap::new();
        let searched = self.search(pattern, &mut memo, budget);
        if searched.cost <= greedy.cost {
            searched
        } else {
            greedy
        }
    }

    /// Greedy initial solution: start from the cheapest vertex and repeatedly expand the
    /// cheapest adjacent vertex. Provides the bound used to prune the exact search.
    pub fn greedy_initial(&self, pattern: &Pattern) -> PatternPlan {
        let comm = self.spec.comm_weight();
        // cheapest starting vertex
        let start = pattern
            .vertex_ids()
            .into_iter()
            .min_by(|a, b| {
                let fa = self.freq(&pattern.single_vertex(*a));
                let fb = self.freq(&pattern.single_vertex(*b));
                fa.total_cmp(&fb)
            })
            .expect("non-empty pattern");
        let mut bound: BTreeSet<PatternVertexId> = [start].into_iter().collect();
        let mut bound_edges: BTreeSet<PatternEdgeId> = BTreeSet::new();
        let single = pattern.single_vertex(start);
        let mut plan = PatternPlan {
            cost: self.freq(&single),
            est_rows: self.freq(&single),
            step: PatternStep::Scan { vertex: start },
        };
        while bound.len() < pattern.vertex_count() {
            // candidate next vertices: adjacent to the bound set
            let mut best: Option<(f64, PatternVertexId, Vec<PatternEdgeId>, Pattern)> = None;
            for v in pattern.vertex_ids() {
                if bound.contains(&v) {
                    continue;
                }
                let connecting: Vec<PatternEdgeId> = pattern
                    .adjacent_edges(v)
                    .into_iter()
                    .filter(|e| {
                        let e = pattern.edge(*e);
                        let other = if e.src == v { e.dst } else { e.src };
                        bound.contains(&other)
                    })
                    .collect();
                if connecting.is_empty() {
                    continue;
                }
                let ps = pattern.induced(&bound, &bound_edges);
                let mut new_edges = bound_edges.clone();
                new_edges.extend(connecting.iter().copied());
                let mut new_vertices = bound.clone();
                new_vertices.insert(v);
                let next = pattern.induced(&new_vertices, &new_edges);
                let op_cost = self.spec.expand_cost(
                    self.estimator,
                    self.selectivity,
                    &ps,
                    pattern,
                    v,
                    &connecting,
                );
                let step_cost = op_cost + comm * self.freq(&next);
                if best.as_ref().is_none_or(|(c, ..)| step_cost < *c) {
                    best = Some((step_cost, v, connecting, next));
                }
            }
            let (step_cost, v, connecting, next) = best.expect("pattern is connected");
            plan = PatternPlan {
                cost: plan.cost + step_cost,
                est_rows: self.freq(&next),
                step: PatternStep::Expand {
                    input: Box::new(plan),
                    new_vertex: v,
                    edges: connecting.clone(),
                },
            };
            bound.insert(v);
            bound_edges.extend(connecting);
        }
        plan
    }

    fn search(
        &self,
        pattern: &Pattern,
        memo: &mut BTreeMap<MemoKey, PatternPlan>,
        budget: f64,
    ) -> PatternPlan {
        let key = memo_key(pattern);
        if let Some(p) = memo.get(&key) {
            return p.clone();
        }
        let freq = self.freq(pattern);
        if pattern.vertex_count() == 1 {
            let plan = PatternPlan {
                cost: freq,
                est_rows: freq,
                step: PatternStep::Scan {
                    vertex: pattern.vertex_ids()[0],
                },
            };
            memo.insert(key, plan.clone());
            return plan;
        }
        let comm = self.spec.comm_weight();
        let mut best: Option<PatternPlan> = None;
        // Expand candidates: remove a vertex whose removal keeps the remainder connected
        for v in pattern.vertex_ids() {
            if pattern.degree(v) == 0 {
                continue;
            }
            let remainder = pattern.remove_vertex(v);
            if remainder.vertex_count() == 0 || !remainder.is_connected() {
                continue;
            }
            let edges = pattern.adjacent_edges(v);
            let op_cost = self.spec.expand_cost(
                self.estimator,
                self.selectivity,
                &remainder,
                pattern,
                v,
                &edges,
            );
            let noncumulative = op_cost + comm * freq;
            if !self.disable_pruning && best.is_some() && noncumulative >= budget {
                continue; // branch cannot beat the known bound
            }
            let sub = self.search(&remainder, memo, budget);
            let cost = sub.cost + noncumulative;
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(PatternPlan {
                    cost,
                    est_rows: freq,
                    step: PatternStep::Expand {
                        input: Box::new(sub),
                        new_vertex: v,
                        edges,
                    },
                });
            }
        }
        // Join candidates
        if pattern.edge_count() >= 2 && pattern.edge_count() <= self.max_join_edges {
            let edge_ids = pattern.edge_ids();
            let n = edge_ids.len();
            // iterate proper non-empty subsets that contain the first edge (dedups the
            // symmetric split)
            for mask in 1u32..(1 << (n - 1)) {
                let mut left_edges: BTreeSet<PatternEdgeId> = [edge_ids[0]].into_iter().collect();
                let mut right_edges: BTreeSet<PatternEdgeId> = BTreeSet::new();
                for (i, e) in edge_ids.iter().enumerate().skip(1) {
                    if mask & (1 << (i - 1)) != 0 {
                        left_edges.insert(*e);
                    } else {
                        right_edges.insert(*e);
                    }
                }
                if right_edges.is_empty() {
                    continue;
                }
                let left = pattern.induced_by_edges(&left_edges);
                let right = pattern.induced_by_edges(&right_edges);
                if !left.is_connected() || !right.is_connected() {
                    continue;
                }
                let keys = left.common_vertices(&right);
                if keys.is_empty() {
                    continue;
                }
                let op_cost = self
                    .spec
                    .join_cost(self.estimator, self.selectivity, &left, &right);
                let noncumulative = op_cost + comm * freq;
                if !self.disable_pruning && best.is_some() && noncumulative >= budget {
                    continue;
                }
                let sub_l = self.search(&left, memo, budget);
                let sub_r = self.search(&right, memo, budget);
                let cost = sub_l.cost + sub_r.cost + noncumulative;
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    best = Some(PatternPlan {
                        cost,
                        est_rows: freq,
                        step: PatternStep::Join {
                            left: Box::new(sub_l),
                            right: Box::new(sub_r),
                            keys,
                        },
                    });
                }
            }
        }
        let best = best.unwrap_or_else(|| self.greedy_initial(pattern));
        memo.insert(key, best.clone());
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_gir::types::TypeConstraint;
    use gopt_gir::Expr;
    use gopt_glogue::{GLogue, GlogueQuery};
    use gopt_graph::schema::fig6_schema;
    use gopt_graph::LabelId;

    struct Fixture {
        glogue: GLogue,
        person: LabelId,
        product: LabelId,
        place: LabelId,
        knows: LabelId,
        purchases: LabelId,
        located: LabelId,
        produced: LabelId,
    }

    fn fixture() -> Fixture {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let product = schema.vertex_label("Product").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let purchases = schema.edge_label("Purchases").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let produced = schema.edge_label("ProducedIn").unwrap();
        // a skewed GLogue: many persons, few places, very selective LocatedIn
        let glogue = GLogue::from_counts(
            schema,
            vec![(person, 10_000.0), (product, 2_000.0), (place, 10.0)],
            vec![
                (person, knows, person, 50_000.0),
                (person, purchases, product, 20_000.0),
                (person, located, place, 10_000.0),
                (product, produced, place, 2_000.0),
            ],
        );
        Fixture {
            glogue,
            person,
            product,
            place,
            knows,
            purchases,
            located,
            produced,
        }
    }

    /// Triangle: (p1:Person)-[:Knows]->(p2:Person), both located in (c:Place) with a
    /// filter on the place.
    fn triangle(f: &Fixture, with_filter: bool) -> Pattern {
        let mut p = Pattern::new();
        let p1 = p.add_vertex_tagged("p1", TypeConstraint::basic(f.person));
        let p2 = p.add_vertex_tagged("p2", TypeConstraint::basic(f.person));
        let c = p.add_vertex_tagged("c", TypeConstraint::basic(f.place));
        p.add_edge(p1, p2, TypeConstraint::basic(f.knows));
        p.add_edge(p1, c, TypeConstraint::basic(f.located));
        p.add_edge(p2, c, TypeConstraint::basic(f.located));
        if with_filter {
            p.vertex_mut(c).predicate = Some(Expr::prop_eq("c", "name", "China"));
        }
        p
    }

    #[test]
    fn single_vertex_and_single_edge_plans() {
        let f = fixture();
        let gq = GlogueQuery::new(&f.glogue);
        let spec = Neo4jSpec;
        let planner = PatternPlanner::new(&gq, &spec);
        let mut p = Pattern::new();
        let v = p.add_vertex_tagged("v", TypeConstraint::basic(f.place));
        let plan = planner.plan(&p);
        assert_eq!(plan.step, PatternStep::Scan { vertex: v });
        assert_eq!(plan.cost, 10.0);

        // single edge: the planner should start from the rarer endpoint (Place)
        let mut p = Pattern::new();
        let a = p.add_vertex_tagged("a", TypeConstraint::basic(f.person));
        let b = p.add_vertex_tagged("b", TypeConstraint::basic(f.place));
        p.add_edge(a, b, TypeConstraint::basic(f.located));
        let plan = planner.plan(&p);
        assert_eq!(plan.binding_order()[0], b, "scan the Place side first");
        assert_eq!(plan.join_count(), 0);
    }

    #[test]
    fn filtered_triangle_starts_from_filtered_place() {
        let f = fixture();
        let gq = GlogueQuery::new(&f.glogue);
        let spec = Neo4jSpec;
        let planner = PatternPlanner::new(&gq, &spec);
        let plan = planner.plan(&triangle(&f, true));
        // the filtered Place vertex is by far the most selective starting point
        let order = plan.binding_order();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0].0, 2, "plan starts at the place vertex");
        // with the filter the plan must be cheaper than without
        let plan_nofilter = planner.plan(&triangle(&f, false));
        assert!(plan.cost < plan_nofilter.cost);
    }

    #[test]
    fn greedy_is_an_upper_bound_of_the_search() {
        let f = fixture();
        let gq = GlogueQuery::new(&f.glogue);
        for spec in [&Neo4jSpec as &dyn PhysicalSpec, &GraphScopeSpec] {
            let planner = PatternPlanner::new(&gq, spec);
            let pattern = triangle(&f, true);
            let greedy = planner.greedy_initial(&pattern);
            let best = planner.plan(&pattern);
            assert!(
                best.cost <= greedy.cost + 1e-9,
                "search ({}) must not be worse than greedy ({}) on {}",
                best.cost,
                greedy.cost,
                spec.name()
            );
        }
    }

    #[test]
    fn pruning_does_not_change_the_chosen_plan_cost() {
        let f = fixture();
        let gq = GlogueQuery::new(&f.glogue);
        let spec = GraphScopeSpec;
        let mut planner = PatternPlanner::new(&gq, &spec);
        let pattern = triangle(&f, true);
        let with_pruning = planner.plan(&pattern);
        planner.disable_pruning = true;
        let without_pruning = planner.plan(&pattern);
        assert!((with_pruning.cost - without_pruning.cost).abs() < 1e-6);
    }

    #[test]
    fn expand_costs_follow_the_registered_models() {
        let f = fixture();
        let gq = GlogueQuery::new(&f.glogue);
        let pattern = triangle(&f, false);
        let c = pattern.vertex_ids()[2];
        let remainder = pattern.remove_vertex(c);
        let edges = pattern.adjacent_edges(c);
        // GraphScope: |Pv| * F(Ps) — two edges, F(knows edge pattern) = 50k
        let nosel = ConstSelectivity;
        let gs = GraphScopeSpec.expand_cost(&gq, &nosel, &remainder, &pattern, c, &edges);
        assert!((gs - 2.0 * 50_000.0).abs() < 1e-6);
        // Neo4j: sum of the intermediate pattern frequencies obtained by appending the
        // two closing edges one at a time
        let neo = Neo4jSpec.expand_cost(&gq, &nosel, &remainder, &pattern, c, &edges);
        let mut vids: BTreeSet<PatternVertexId> = remainder.vertex_ids().into_iter().collect();
        vids.insert(c);
        let mut eids: BTreeSet<PatternEdgeId> = remainder.edge_ids().into_iter().collect();
        eids.insert(edges[0]);
        let first_intermediate = pattern.induced(&vids, &eids);
        let expected_neo = gq.pattern_freq_with_filters(&first_intermediate, &nosel)
            + gq.pattern_freq_with_filters(&pattern, &nosel);
        assert!((neo - expected_neo).abs() < 1e-6);
        assert!(neo > 0.0);
        // join cost is symmetric and additive
        let left = pattern.induced_by_edges(&[pattern.edge_ids()[0]].into_iter().collect());
        let right = pattern.induced_by_edges(
            &pattern.edge_ids()[1..]
                .iter()
                .copied()
                .collect::<BTreeSet<_>>(),
        );
        let j1 = Neo4jSpec.join_cost(&gq, &nosel, &left, &right);
        let j2 = Neo4jSpec.join_cost(&gq, &nosel, &right, &left);
        assert!((j1 - j2).abs() < 1e-9);
        assert_eq!(Neo4jSpec.name(), "neo4j");
        assert_eq!(GraphScopeSpec.name(), "graphscope");
        assert_eq!(Neo4jSpec.comm_weight(), 0.0);
        assert_eq!(GraphScopeSpec.comm_weight(), 1.0);
        assert_eq!(Neo4jSpec.expand_strategy(), ExpandStrategy::Flatten);
        assert_eq!(GraphScopeSpec.expand_strategy(), ExpandStrategy::Intersect);
    }

    #[test]
    fn backend_specific_costs_can_change_the_plan() {
        // On a pattern where intersection is cheap but flattening is expensive, the
        // GraphScope plan should never be costlier under its own model than the plan
        // chosen with Neo4j's model evaluated under the GraphScope model (the GOpt-Neo
        // comparison of Fig. 8(c)).
        let f = fixture();
        let gq = GlogueQuery::new(&f.glogue);
        let pattern = triangle(&f, false);
        let gs_spec = GraphScopeSpec;
        let neo_spec = Neo4jSpec;
        let gs_plan = PatternPlanner::new(&gq, &gs_spec).plan(&pattern);
        let neo_plan = PatternPlanner::new(&gq, &neo_spec).plan(&pattern);
        // evaluate both plans under the GraphScope cost model by replaying their steps
        fn replay(
            plan: &PatternPlan,
            pattern: &Pattern,
            est: &dyn CardEstimator,
            spec: &dyn PhysicalSpec,
        ) -> f64 {
            fn bound(plan: &PatternPlan) -> BTreeSet<PatternVertexId> {
                plan.binding_order().into_iter().collect()
            }
            fn edges_of(plan: &PatternPlan) -> BTreeSet<PatternEdgeId> {
                match &plan.step {
                    PatternStep::Scan { .. } => BTreeSet::new(),
                    PatternStep::Expand { input, edges, .. } => {
                        let mut e = edges_of(input);
                        e.extend(edges.iter().copied());
                        e
                    }
                    PatternStep::Join { left, right, .. } => {
                        let mut e = edges_of(left);
                        e.extend(edges_of(right));
                        e
                    }
                }
            }
            let nosel = ConstSelectivity;
            match &plan.step {
                PatternStep::Scan { vertex } => {
                    est.pattern_freq_with_filters(&pattern.single_vertex(*vertex), &nosel)
                }
                PatternStep::Expand {
                    input,
                    new_vertex,
                    edges,
                } => {
                    let sub_cost = replay(input, pattern, est, spec);
                    let ps = pattern.induced(&bound(input), &edges_of(input));
                    let mut all_v = bound(input);
                    all_v.insert(*new_vertex);
                    let mut all_e = edges_of(input);
                    all_e.extend(edges.iter().copied());
                    let target = pattern.induced(&all_v, &all_e);
                    sub_cost
                        + spec.expand_cost(est, &nosel, &ps, pattern, *new_vertex, edges)
                        + spec.comm_weight() * est.pattern_freq_with_filters(&target, &nosel)
                }
                PatternStep::Join { left, right, .. } => {
                    let lc = replay(left, pattern, est, spec);
                    let rc = replay(right, pattern, est, spec);
                    let pl = pattern.induced(&bound(left), &edges_of(left));
                    let pr = pattern.induced(&bound(right), &edges_of(right));
                    lc + rc + spec.join_cost(est, &nosel, &pl, &pr)
                }
            }
        }
        let gs_cost_of_gs_plan = replay(&gs_plan, &pattern, &gq, &gs_spec);
        let gs_cost_of_neo_plan = replay(&neo_plan, &pattern, &gq, &gs_spec);
        assert!(gs_cost_of_gs_plan <= gs_cost_of_neo_plan + 1e-6);
    }

    /// 50 Persons with `age = i % 10`, 10 Places; every Person located in one
    /// Place. The filter `p.age >= 1` keeps 90% of persons — the Remark 7.1
    /// constant (0.1) wildly overestimates its selectivity.
    fn correlated_graph() -> gopt_graph::PropertyGraph {
        use gopt_graph::graph::GraphBuilder;
        use gopt_graph::PropValue;
        let mut b = GraphBuilder::new(fig6_schema());
        let mut people = Vec::new();
        for i in 0..50i64 {
            people.push(
                b.add_vertex_by_name("Person", vec![("age", PropValue::Int(i % 10))])
                    .unwrap(),
            );
        }
        let mut places = Vec::new();
        for i in 0..10 {
            places.push(
                b.add_vertex_by_name("Place", vec![("name", PropValue::str(format!("pl{i}")))])
                    .unwrap(),
            );
        }
        for (i, p) in people.iter().enumerate() {
            b.add_edge_by_name("LocatedIn", *p, places[i % 10], vec![])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn histogram_selectivity_changes_the_chosen_plan() {
        use gopt_glogue::{GLogueConfig, StatsSelectivity};
        use gopt_graph::GraphStats;
        let g = correlated_graph();
        let gl = GLogue::build(
            &g,
            &GLogueConfig {
                max_pattern_vertices: 3,
                max_anchors: None,
                seed: 0,
            },
        );
        let person = g.schema().vertex_label("Person").unwrap();
        let place = g.schema().vertex_label("Place").unwrap();
        let located = g.schema().edge_label("LocatedIn").unwrap();
        // (p:Person {age >= 1})-[:LocatedIn]->(c:Place)
        let mut pattern = Pattern::new();
        let p = pattern.add_vertex_tagged("p", TypeConstraint::basic(person));
        let c = pattern.add_vertex_tagged("c", TypeConstraint::basic(place));
        pattern.add_edge(p, c, TypeConstraint::basic(located));
        pattern.vertex_mut(p).predicate = Some(Expr::binary(
            gopt_gir::BinOp::Ge,
            Expr::prop("p", "age"),
            Expr::lit(1),
        ));
        let gq = GlogueQuery::new(&gl);
        let spec = Neo4jSpec;
        // constant selectivity: the filtered Person scan looks like 50*0.1 = 5
        // rows, cheaper than the 10 Places — the plan starts at the Person
        let const_plan = PatternPlanner::new(&gq, &spec).plan(&pattern);
        assert_eq!(
            const_plan.binding_order()[0],
            p,
            "constant picks the filtered scan"
        );
        // histogram selectivity knows the filter keeps 45 of 50 persons —
        // scanning the 10 Places first is cheaper
        let stats = GraphStats::shared(&g);
        let sel = StatsSelectivity::new(stats);
        let stats_plan = PatternPlanner::new(&gq, &spec)
            .with_selectivity(&sel)
            .plan(&pattern);
        assert_eq!(
            stats_plan.binding_order()[0],
            c,
            "stats pick the Place scan"
        );
        assert_ne!(const_plan.binding_order(), stats_plan.binding_order());
    }

    #[test]
    fn join_plans_are_considered_for_long_paths() {
        // A long path between two very selective endpoints: a bidirectional plan with a
        // join in the middle should be at least as good as any single-direction plan.
        let f = fixture();
        let gq = GlogueQuery::new(&f.glogue);
        // 4-hop person path anchored at two filtered persons
        let mut p = Pattern::new();
        let mut vs = Vec::new();
        for i in 0..5 {
            vs.push(p.add_vertex_tagged(format!("p{i}"), TypeConstraint::basic(f.person)));
        }
        for i in 0..4 {
            p.add_edge(vs[i], vs[i + 1], TypeConstraint::basic(f.knows));
        }
        p.vertex_mut(vs[0]).predicate = Some(Expr::prop_eq("p0", "id", 1));
        p.vertex_mut(vs[4]).predicate = Some(Expr::prop_eq("p4", "id", 2));
        let spec = GraphScopeSpec;
        let planner = PatternPlanner::new(&gq, &spec);
        let plan = planner.plan(&p);
        assert!(
            plan.join_count() >= 1,
            "bidirectional (join) plan expected for an s-t path, got {plan:?}"
        );
        let _ = (f.product, f.purchases, f.produced);
    }
}
