//! Optimizer errors.

use std::fmt;

/// Errors produced by the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// Type inference proved that the pattern can never match (the paper's INVALID
    /// outcome of Algorithm 1).
    InvalidPattern {
        /// Human-readable explanation of the contradiction.
        reason: String,
    },
    /// The logical plan is empty or structurally broken.
    MalformedPlan(String),
    /// A join key tag is not produced by both join inputs.
    UnknownJoinKey(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::InvalidPattern { reason } => write!(f, "INVALID pattern: {reason}"),
            OptError::MalformedPlan(m) => write!(f, "malformed plan: {m}"),
            OptError::UnknownJoinKey(k) => write!(f, "unknown join key: {k}"),
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = OptError::InvalidPattern {
            reason: "no such edge".into(),
        };
        assert!(e.to_string().contains("INVALID"));
        assert!(OptError::MalformedPlan("x".into())
            .to_string()
            .contains("x"));
        assert!(OptError::UnknownJoinKey("v1".into())
            .to_string()
            .contains("v1"));
    }
}
