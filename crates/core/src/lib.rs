//! # gopt-core — the GOpt graph-native optimizer
//!
//! This crate is the paper's primary contribution: a modular, graph-native optimizer for
//! Complex Graph Patterns (CGPs) that sits between any query front-end (Cypher, Gremlin —
//! see `gopt-parser`) and any execution backend (see `gopt-exec`), communicating through
//! the unified GIR (`gopt-gir`).
//!
//! The optimization pipeline follows Section 4 of the paper:
//!
//! 1. **Rule-based optimization** ([`rbo`]) — a fixpoint rule engine (the stand-in for
//!    Calcite's HepPlanner) with the paper's heuristic rules: `FilterIntoPattern`,
//!    `FieldTrim`, `JoinToPattern`, `ComSubPattern`, plus `LimitIntoOrder`.
//! 2. **Type inference and validation** ([`type_infer`]) — Algorithm 1: propagate schema
//!    connectivity through the pattern to replace AllType/UnionType constraints with the
//!    tightest valid constraint sets, or reject the pattern as INVALID.
//! 3. **Cost-based optimization** ([`cbo`]) — the top-down branch-and-bound search of
//!    Algorithm 2 over hybrid plans (vertex expansion + binary joins), driven by the
//!    high-order cardinality estimates of `gopt-glogue` and by backend-registered
//!    [`cbo::PhysicalSpec`] cost models (`ExpandInto` for Neo4j-like backends,
//!    `ExpandIntersect` for GraphScope-like backends).
//! 4. **Physical plan generation** ([`convert`]) — turning the chosen pattern plans and
//!    the relational operators into a [`gopt_gir::PhysicalPlan`].
//!
//! [`planner::GOpt`] wires the stages together behind one call and exposes per-stage
//! switches used by the ablation experiments. [`baseline`] contains the comparison
//! planners: a CypherPlanner-like greedy optimizer (`NeoPlanner`), a rule-only planner
//! that follows the user-written order (`GsRuleOnlyPlanner`), and a `RandomPlanner`.

pub mod baseline;
pub mod cache_key;
pub mod cbo;
pub mod convert;
pub mod error;
pub mod planner;
pub mod rbo;
pub mod type_infer;

pub use baseline::{GsRuleOnlyPlanner, NeoPlanner, RandomPlanner};
pub use cache_key::{plan_shape, PlanCacheKey, INITIAL_STATS_VERSION};
pub use cbo::{
    ExpandStrategy, GraphScopeSpec, Neo4jSpec, PatternPlan, PatternPlanner, PhysicalSpec,
};
pub use error::OptError;
pub use planner::{GOpt, GOptConfig};
pub use rbo::{HeuristicPlanner, OrderConjunctsBySelectivity, Rule};
pub use type_infer::{infer_pattern_types, TypeInference};
