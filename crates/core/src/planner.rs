//! The GOpt facade: the full optimization pipeline behind one call.
//!
//! `GIR logical plan → RBO → type inference → CBO → physical plan`, with per-stage
//! switches so the evaluation can isolate each technique (Fig. 8(a): RBO on/off,
//! Fig. 8(b): type inference on/off, Fig. 8(c)/(d): CBO and its statistics).

use crate::baseline::user_order_plan;
use crate::cbo::{PatternPlanner, PhysicalSpec};
use crate::convert::logical_to_physical;
use crate::error::OptError;
use crate::rbo::{HeuristicPlanner, OrderConjunctsBySelectivity};
use crate::type_infer::TypeInference;
use gopt_gir::logical::{LogicalOp, LogicalPlan};
use gopt_gir::physical::PhysicalPlan;
use gopt_glogue::{CardEstimator, StatsSelectivity};
use gopt_graph::{GraphSchema, GraphStats};
use std::sync::Arc;

/// Per-stage switches of the optimization pipeline.
#[derive(Debug, Clone)]
pub struct GOptConfig {
    /// Apply the heuristic rule program (Section 6.1).
    pub enable_rbo: bool,
    /// Apply type inference and validation (Section 6.2).
    pub enable_type_inference: bool,
    /// Apply cost-based pattern ordering (Section 6.3); when off, patterns are executed
    /// in the order the user wrote them.
    pub enable_cbo: bool,
    /// Upper bound on the pattern edge count for which join decompositions are
    /// enumerated during CBO.
    pub max_join_edges: usize,
}

impl Default for GOptConfig {
    fn default() -> Self {
        GOptConfig {
            enable_rbo: true,
            enable_type_inference: true,
            enable_cbo: true,
            max_join_edges: 10,
        }
    }
}

impl GOptConfig {
    /// Everything disabled (the "NoOpt" configuration of the micro-benchmarks).
    pub fn none() -> Self {
        GOptConfig {
            enable_rbo: false,
            enable_type_inference: false,
            enable_cbo: false,
            max_join_edges: 10,
        }
    }
}

/// The GOpt optimizer.
pub struct GOpt<'a> {
    schema: &'a GraphSchema,
    estimator: &'a dyn CardEstimator,
    spec: &'a dyn PhysicalSpec,
    config: GOptConfig,
    rbo: HeuristicPlanner,
    /// Property statistics; when present the CBO prices filters from typed
    /// histograms ([`StatsSelectivity`]) instead of the Remark 7.1 constant,
    /// and the RBO orders predicate conjuncts by estimated selectivity.
    stats: Option<Arc<GraphStats>>,
}

impl<'a> GOpt<'a> {
    /// Create an optimizer for the given schema, cardinality estimator and backend spec,
    /// with all stages enabled.
    pub fn new(
        schema: &'a GraphSchema,
        estimator: &'a dyn CardEstimator,
        spec: &'a dyn PhysicalSpec,
    ) -> Self {
        GOpt {
            schema,
            estimator,
            spec,
            config: GOptConfig::default(),
            rbo: HeuristicPlanner::with_default_rules(),
            stats: None,
        }
    }

    /// Replace the stage configuration.
    pub fn with_config(mut self, config: GOptConfig) -> Self {
        self.config = config;
        self
    }

    /// Provide property statistics ([`GraphStats`], built from either storage
    /// layout): the CBO's cardinalities become filter-aware and the RBO gains
    /// the conjunct-ordering phase.
    pub fn with_stats(mut self, stats: Arc<GraphStats>) -> Self {
        let mut rbo = HeuristicPlanner::with_default_rules();
        rbo.add_phase(vec![Box::new(OrderConjunctsBySelectivity::new(Arc::new(
            StatsSelectivity::new(stats.clone()),
        )))]);
        self.rbo = rbo;
        self.stats = Some(stats);
        self
    }

    /// The property statistics in use, if any.
    pub fn stats(&self) -> Option<&Arc<GraphStats>> {
        self.stats.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &GOptConfig {
        &self.config
    }

    /// The backend spec this optimizer targets.
    pub fn spec(&self) -> &dyn PhysicalSpec {
        self.spec
    }

    /// Run the optimized-logical-plan part of the pipeline (RBO + type inference),
    /// returning the rewritten logical plan. Exposed separately for inspection/EXPLAIN.
    pub fn optimize_logical(&self, plan: &LogicalPlan) -> Result<LogicalPlan, OptError> {
        if plan.is_empty() {
            return Err(OptError::MalformedPlan("empty logical plan".into()));
        }
        let mut current = if self.config.enable_rbo {
            self.rbo.optimize(plan)
        } else {
            plan.clone()
        };
        if self.config.enable_type_inference {
            let checker = TypeInference::new(self.schema);
            for id in current.node_ids() {
                let LogicalOp::Match { pattern } = current.op(id) else {
                    continue;
                };
                let inferred = checker.infer(pattern)?;
                *current.op_mut(id) = LogicalOp::Match { pattern: inferred };
            }
        }
        Ok(current)
    }

    /// Run the full pipeline, producing a physical plan for the configured backend.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<PhysicalPlan, OptError> {
        let logical = self.optimize_logical(plan)?;
        let strategy = self.spec.expand_strategy();
        if self.config.enable_cbo {
            let stats_sel = self.stats.clone().map(StatsSelectivity::new);
            let mut planner = PatternPlanner::new(self.estimator, self.spec);
            if let Some(sel) = &stats_sel {
                planner = planner.with_selectivity(sel);
            }
            planner.max_join_edges = self.config.max_join_edges;
            logical_to_physical(&logical, |p| (planner.plan(p), strategy))
        } else {
            logical_to_physical(&logical, |p| (user_order_plan(p), strategy))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbo::{GraphScopeSpec, Neo4jSpec};
    use gopt_gir::pattern::Direction;
    use gopt_gir::types::TypeConstraint;
    use gopt_gir::{AggFunc, Expr, GraphIrBuilder, PatternBuilder, SortDir};
    use gopt_glogue::{GLogue, GLogueConfig, GlogueQuery};
    use gopt_graph::generator::{random_graph, RandomGraphConfig};
    use gopt_graph::schema::fig6_schema;
    use gopt_graph::PropertyGraph;

    fn setup() -> (PropertyGraph, GLogue) {
        let schema = fig6_schema();
        let graph = random_graph(
            &schema,
            &RandomGraphConfig {
                vertices_per_label: 25,
                edges_per_endpoint: 80,
                seed: 5,
            },
        );
        let glogue = GLogue::build(&graph, &GLogueConfig::default());
        (graph, glogue)
    }

    /// The paper's running example, written without explicit types.
    fn running_example() -> LogicalPlan {
        let pattern1 = PatternBuilder::new()
            .get_v("v1", TypeConstraint::all())
            .expand_e("v1", "e1", TypeConstraint::all(), Direction::Out)
            .get_v_end("e1", "v2", TypeConstraint::all())
            .expand_e("v2", "e2", TypeConstraint::all(), Direction::Out)
            .get_v_end("e2", "v3", TypeConstraint::all())
            .finish()
            .unwrap();
        let place = fig6_schema().vertex_label("Place").unwrap();
        let pattern2 = PatternBuilder::new()
            .get_v("v1", TypeConstraint::all())
            .expand_e("v1", "e3", TypeConstraint::all(), Direction::Out)
            .get_v_end("e3", "v3", TypeConstraint::basic(place))
            .finish()
            .unwrap();
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(pattern1);
        let m2 = b.match_pattern(pattern2);
        let j = b.join(
            m1,
            m2,
            vec!["v1".into(), "v3".into()],
            gopt_gir::JoinType::Inner,
        );
        let s = b.select(j, Expr::prop_eq("v3", "name", "Place_3"));
        let g = b.group(
            s,
            vec![(Expr::tag("v2"), "v2".into())],
            vec![(AggFunc::Count, Expr::tag("v2"), "cnt".into())],
        );
        let o = b.order(g, vec![(Expr::tag("cnt"), SortDir::Desc)], Some(10));
        b.build(o)
    }

    #[test]
    fn full_pipeline_produces_a_physical_plan() {
        let (graph, glogue) = setup();
        let gq = GlogueQuery::new(&glogue);
        let spec = GraphScopeSpec;
        let gopt = GOpt::new(graph.schema(), &gq, &spec);
        assert!(gopt.config().enable_cbo);
        assert_eq!(gopt.spec().name(), "graphscope");
        let phys = gopt.optimize(&running_example()).unwrap();
        // RBO merged the two matches, so there is no HashJoin from the logical JOIN and
        // no standalone Select (the filter went into the pattern)
        assert_eq!(phys.count_op("Select"), 0);
        assert!(phys.count_op("Scan") >= 1);
        assert_eq!(phys.count_op("HashGroup"), 1);
        assert_eq!(phys.count_op("OrderLimit"), 1);
    }

    #[test]
    fn logical_stage_applies_rbo_and_type_inference() {
        let (graph, glogue) = setup();
        let gq = GlogueQuery::new(&glogue);
        let spec = Neo4jSpec;
        let gopt = GOpt::new(graph.schema(), &gq, &spec);
        let logical = gopt.optimize_logical(&running_example()).unwrap();
        assert_eq!(logical.match_nodes().len(), 1);
        let (_, pattern) = logical.match_nodes()[0];
        // v1 now has a concrete (inferred) constraint instead of AllType
        let v1 = pattern.vertex(pattern.vertex_by_tag("v1").unwrap());
        assert!(!v1.constraint.is_all());
        // disabling stages changes the outcome
        let gopt_noopt = GOpt::new(graph.schema(), &gq, &spec).with_config(GOptConfig::none());
        let logical_noopt = gopt_noopt.optimize_logical(&running_example()).unwrap();
        assert_eq!(logical_noopt.match_nodes().len(), 2);
        let (_, p0) = logical_noopt.match_nodes()[0];
        assert!(
            p0.vertices().any(|v| v.constraint.is_all()),
            "no inference without the stage"
        );
        // empty plans are rejected
        assert!(gopt.optimize_logical(&LogicalPlan::new()).is_err());
    }

    #[test]
    fn optimized_and_unoptimized_plans_return_identical_results() {
        use gopt_exec::{Backend, PartitionedBackend, SingleMachineBackend};
        let (graph, glogue) = setup();
        let gq = GlogueQuery::new(&glogue);
        let spec = GraphScopeSpec;
        let plan = running_example();

        let optimized = GOpt::new(graph.schema(), &gq, &spec)
            .optimize(&plan)
            .unwrap();
        let unoptimized = GOpt::new(graph.schema(), &gq, &spec)
            .with_config(GOptConfig::none())
            .optimize(&plan)
            .unwrap();

        let backend = PartitionedBackend::new(4).unwrap();
        let r_opt = backend.execute(&graph, &optimized).unwrap();
        let r_noopt = backend.execute(&graph, &unoptimized).unwrap();
        assert_eq!(
            r_opt.sorted_rows_for(&["v2", "cnt"]),
            r_noopt.sorted_rows_for(&["v2", "cnt"]),
            "optimization must not change results"
        );
        // the optimized plan does not produce more intermediate records
        assert!(r_opt.stats.intermediate_records <= r_noopt.stats.intermediate_records);

        // the Neo4j-targeted plan gives the same answer on the single-machine backend
        let neo_spec = Neo4jSpec;
        let neo_plan = GOpt::new(graph.schema(), &gq, &neo_spec)
            .optimize(&plan)
            .unwrap();
        let r_neo = SingleMachineBackend::new()
            .execute(&graph, &neo_plan)
            .unwrap();
        assert_eq!(
            r_neo.sorted_rows_for(&["v2", "cnt"]),
            r_opt.sorted_rows_for(&["v2", "cnt"])
        );
    }

    #[test]
    fn property_stats_change_the_plan_and_cut_executed_rows() {
        use gopt_exec::{Backend, SingleMachineBackend};
        use gopt_gir::BinOp;
        use gopt_glogue::GLogueConfig;
        use gopt_graph::graph::GraphBuilder;
        use gopt_graph::{GraphStats, PropValue};
        // Correlated graph: 50 Persons with age = i % 10, 10 Places, one
        // LocatedIn edge per person. `p.age >= 1` keeps 90% of persons, so
        // the Remark 7.1 constant (0.1) makes the filtered Person scan look
        // 9x more selective than it is.
        let mut b = GraphBuilder::new(fig6_schema());
        let mut people = Vec::new();
        for i in 0..50i64 {
            people.push(
                b.add_vertex_by_name("Person", vec![("age", PropValue::Int(i % 10))])
                    .unwrap(),
            );
        }
        let mut places = Vec::new();
        for i in 0..10 {
            places.push(
                b.add_vertex_by_name("Place", vec![("id", PropValue::Int(i))])
                    .unwrap(),
            );
        }
        for (i, p) in people.iter().enumerate() {
            b.add_edge_by_name("LocatedIn", *p, places[i % 10], vec![])
                .unwrap();
        }
        let graph = b.finish();
        let glogue = GLogue::build(
            &graph,
            &GLogueConfig {
                max_pattern_vertices: 3,
                max_anchors: None,
                seed: 0,
            },
        );
        let gq = GlogueQuery::new(&glogue);
        let place = graph.schema().vertex_label("Place").unwrap();
        let pattern = PatternBuilder::new()
            .get_v("p", TypeConstraint::all())
            .expand_e("p", "e", TypeConstraint::all(), Direction::Out)
            .get_v_end("e", "c", TypeConstraint::basic(place))
            .finish()
            .unwrap();
        let mut b = GraphIrBuilder::new();
        let m = b.match_pattern(pattern);
        let s = b.select(
            m,
            Expr::binary(BinOp::Ge, Expr::prop("p", "age"), Expr::lit(1)),
        );
        let g_node = b.group(
            s,
            vec![(Expr::tag("c"), "c".into())],
            vec![(AggFunc::Count, Expr::tag("p"), "cnt".into())],
        );
        let logical = b.build(g_node);

        let spec = Neo4jSpec;
        let const_plan = GOpt::new(graph.schema(), &gq, &spec)
            .optimize(&logical)
            .unwrap();
        let stats = GraphStats::shared(&graph);
        let gopt_stats = GOpt::new(graph.schema(), &gq, &spec).with_stats(stats.clone());
        assert!(gopt_stats.stats().is_some());
        let stats_plan = gopt_stats.optimize(&logical).unwrap();
        assert_ne!(
            const_plan.encode(),
            stats_plan.encode(),
            "histogram selectivity must change the chosen plan"
        );

        let backend = SingleMachineBackend::new();
        let r_const = backend.execute(&graph, &const_plan).unwrap();
        let r_stats = backend.execute(&graph, &stats_plan).unwrap();
        assert_eq!(
            r_const.sorted_rows_for(&["c", "cnt"]),
            r_stats.sorted_rows_for(&["c", "cnt"]),
            "plan choice must not change results"
        );
        assert!(
            r_stats.stats.intermediate_records < r_const.stats.intermediate_records,
            "stats plan should execute fewer rows: {} vs {}",
            r_stats.stats.intermediate_records,
            r_const.stats.intermediate_records
        );
    }

    #[test]
    fn invalid_patterns_are_rejected_by_the_pipeline() {
        let (graph, glogue) = setup();
        let gq = GlogueQuery::new(&glogue);
        let spec = GraphScopeSpec;
        let place = graph.schema().vertex_label("Place").unwrap();
        // (a:Place)-[]->(b): Place has no outgoing edges in this schema
        let pattern = PatternBuilder::new()
            .get_v("a", TypeConstraint::basic(place))
            .expand_e("a", "e", TypeConstraint::all(), Direction::Out)
            .get_v_end("e", "b", TypeConstraint::all())
            .finish()
            .unwrap();
        let mut b = GraphIrBuilder::new();
        let m = b.match_pattern(pattern);
        let plan = b.build(m);
        let err = GOpt::new(graph.schema(), &gq, &spec).optimize(&plan);
        assert!(matches!(err, Err(OptError::InvalidPattern { .. })));
    }
}
