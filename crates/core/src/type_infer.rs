//! Type inference and validation (Algorithm 1 of the paper).
//!
//! Patterns written without explicit type constraints (AllType) or with UnionTypes are
//! refined against the graph schema: for every pattern edge `(u)-[e]->(v)` only the
//! `(src label, edge label, dst label)` triples that (a) the schema declares and (b) the
//! current constraints of `u`, `e`, `v` admit can survive. Constraints are propagated
//! with a work-list until a fixpoint is reached, processing the most constrained vertices
//! first exactly as Algorithm 1 does. If any constraint becomes empty the pattern can
//! never match and `INVALID` is reported.
//!
//! Compared with the pseudo-code in the paper (which, for brevity, only spells out the
//! outgoing direction), the implementation propagates through both outgoing and incoming
//! adjacency and keeps the result as a UnionType rather than enumerating basic-type
//! combinations — the behaviour the paper describes in Section 6.2.

use crate::error::OptError;
use gopt_gir::pattern::{Pattern, PatternEdgeId, PatternVertexId};
use gopt_gir::types::TypeConstraint;
use gopt_graph::{GraphSchema, LabelId, PropType};
use std::collections::BTreeSet;

/// The type-inference engine (the paper's "type checker" component).
#[derive(Debug, Clone)]
pub struct TypeInference<'a> {
    schema: &'a GraphSchema,
}

impl<'a> TypeInference<'a> {
    /// Create a type checker over a schema.
    pub fn new(schema: &'a GraphSchema) -> Self {
        TypeInference { schema }
    }

    /// Infer and validate type constraints for a pattern.
    ///
    /// Returns the refined pattern, or [`OptError::InvalidPattern`] when some vertex or
    /// edge admits no label at all (the pattern can never match any data conforming to
    /// the schema).
    pub fn infer(&self, pattern: &Pattern) -> Result<Pattern, OptError> {
        let mut p = pattern.clone();
        let all_v: Vec<LabelId> = self.schema.vertex_label_ids().collect();
        let all_e: Vec<LabelId> = self.schema.edge_label_ids().collect();
        // materialise AllType into explicit label sets so intersections are meaningful
        for vid in p.vertex_ids() {
            let c = p.vertex(vid).constraint.clone();
            p.vertex_mut(vid).constraint = TypeConstraint::union(c.materialize(&all_v));
        }
        for eid in p.edge_ids() {
            let c = p.edge(eid).constraint.clone();
            p.edge_mut(eid).constraint = TypeConstraint::union(c.materialize(&all_e));
        }
        // work-list over vertices, most constrained first (Algorithm 1, line 1)
        let mut queue: BTreeSet<(usize, PatternVertexId)> = p
            .vertex_ids()
            .into_iter()
            .map(|v| (p.vertex(v).constraint.len().unwrap_or(usize::MAX), v))
            .collect();
        let mut guard = 0usize;
        let max_iterations = 4 * (p.vertex_count() + 1) * (p.edge_count() + 1).max(1) + 16;
        while let Some(&(_, u)) = queue.iter().next() {
            queue.remove(&(queue.iter().next().expect("non-empty").0, u));
            guard += 1;
            if guard > max_iterations {
                break; // fixpoint is guaranteed, but stay defensive
            }
            for eid in p.adjacent_edges(u) {
                let (changed_v, changed_e) = self.refine_edge(&mut p, eid)?;
                for v in changed_v {
                    queue.insert((p.vertex(v).constraint.len().unwrap_or(usize::MAX), v));
                }
                let _ = changed_e;
            }
        }
        Ok(p)
    }

    /// The value type of property `prop` on a pattern **vertex** constrained
    /// to `constraint`.
    ///
    /// Consults the schema's per-(label, key) property types — both the
    /// declared ones and the ones `GraphBuilder::finish` registers after
    /// inferring them from the data's typed columns — instead of giving every
    /// property access up as *Unknown*. Returns `Some(t)` exactly when every
    /// label the constraint admits agrees on `t`; a label missing the
    /// property, or two labels disagreeing, yields `None` (the access may be
    /// null or mixed-typed at runtime, so no single type is sound).
    pub fn vertex_property_type(
        &self,
        constraint: &TypeConstraint,
        prop: &str,
    ) -> Option<PropType> {
        let labels = constraint.materialize(&self.schema.vertex_label_ids().collect::<Vec<_>>());
        Self::unify_types(
            labels
                .iter()
                .map(|&l| self.schema.vertex_prop_type(l, prop)),
        )
    }

    /// The value type of property `prop` on a pattern **edge** constrained to
    /// `constraint` (see [`vertex_property_type`](Self::vertex_property_type)).
    pub fn edge_property_type(&self, constraint: &TypeConstraint, prop: &str) -> Option<PropType> {
        let labels = constraint.materialize(&self.schema.edge_label_ids().collect::<Vec<_>>());
        Self::unify_types(labels.iter().map(|&l| self.schema.edge_prop_type(l, prop)))
    }

    /// The value type of `tag.prop` for a tagged element of an inferred
    /// pattern: resolves the tag to its refined constraint (vertex first,
    /// then edge) and unifies the admitted labels' property types.
    pub fn pattern_property_type(
        &self,
        pattern: &Pattern,
        tag: &str,
        prop: &str,
    ) -> Option<PropType> {
        if let Some(v) = pattern.vertex_by_tag(tag) {
            return self.vertex_property_type(&pattern.vertex(v).constraint, prop);
        }
        if let Some(e) = pattern.edge_by_tag(tag) {
            return self.edge_property_type(&pattern.edge(e).constraint, prop);
        }
        None
    }

    /// All labels must agree on one declared/inferred type; an empty label
    /// set or any disagreement (including a label without the property) is
    /// *Unknown*.
    fn unify_types(types: impl Iterator<Item = Option<PropType>>) -> Option<PropType> {
        let mut unified: Option<PropType> = None;
        for t in types {
            let t = t?;
            match unified {
                None => unified = Some(t),
                Some(u) if u == t => {}
                Some(_) => return None,
            }
        }
        unified
    }

    /// Constrain one edge and its endpoints to the schema-consistent label triples.
    /// Returns the endpoints whose constraints changed.
    fn refine_edge(
        &self,
        p: &mut Pattern,
        eid: PatternEdgeId,
    ) -> Result<(Vec<PatternVertexId>, bool), OptError> {
        let e = p.edge(eid).clone();
        let src_c = p.vertex(e.src).constraint.clone();
        let dst_c = p.vertex(e.dst).constraint.clone();
        let mut src_new: BTreeSet<LabelId> = BTreeSet::new();
        let mut dst_new: BTreeSet<LabelId> = BTreeSet::new();
        let mut edge_new: BTreeSet<LabelId> = BTreeSet::new();
        let edge_labels = e
            .constraint
            .materialize(&self.schema.edge_label_ids().collect::<Vec<_>>());
        for el in edge_labels {
            for &(s, d) in self.schema.edge_endpoints(el) {
                if src_c.contains(s) && dst_c.contains(d) {
                    src_new.insert(s);
                    dst_new.insert(d);
                    edge_new.insert(el);
                }
            }
        }
        if src_new.is_empty() || dst_new.is_empty() || edge_new.is_empty() {
            return Err(OptError::InvalidPattern {
                reason: format!(
                    "edge {:?} admits no (src, edge, dst) label combination under the schema",
                    e.tag.clone().unwrap_or_else(|| format!("e{}", eid.0))
                ),
            });
        }
        let mut changed = Vec::new();
        let src_tc = TypeConstraint::union(src_new);
        let dst_tc = TypeConstraint::union(dst_new);
        let edge_tc = TypeConstraint::union(edge_new);
        if src_tc != src_c {
            p.vertex_mut(e.src).constraint = src_tc;
            changed.push(e.src);
        }
        if dst_tc != dst_c {
            p.vertex_mut(e.dst).constraint = dst_tc;
            changed.push(e.dst);
        }
        let edge_changed = edge_tc != e.constraint;
        if edge_changed {
            p.edge_mut(eid).constraint = edge_tc;
        }
        Ok((changed, edge_changed))
    }
}

/// Convenience wrapper: infer types for a single pattern.
pub fn infer_pattern_types(pattern: &Pattern, schema: &GraphSchema) -> Result<Pattern, OptError> {
    TypeInference::new(schema).infer(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_gir::pattern::Direction;
    use gopt_gir::PatternBuilder;
    use gopt_graph::schema::{fig5_schema, fig6_schema};

    /// The paper's Fig. 5(b) pattern: (v1)-[e1]->(v2), (v2)-[e2]->(v3:Place), (v1)-[e3]->(v3),
    /// everything else untyped. Expected result (Fig. 5(c)):
    /// v1: Person, v2: Person|Product, v3: Place,
    /// e1: Knows|Purchases, e2: LocatedIn|ProducedIn, e3: LocatedIn.
    #[test]
    fn reproduces_fig5_example() {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let product = schema.vertex_label("Product").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let purchases = schema.edge_label("Purchases").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let produced = schema.edge_label("ProducedIn").unwrap();

        let pattern = PatternBuilder::new()
            .get_v("v1", TypeConstraint::all())
            .expand_e("v1", "e1", TypeConstraint::all(), Direction::Out)
            .get_v_end("e1", "v2", TypeConstraint::all())
            .expand_e("v2", "e2", TypeConstraint::all(), Direction::Out)
            .get_v_end("e2", "v3", TypeConstraint::basic(place))
            .expand_e("v1", "e3", TypeConstraint::all(), Direction::Out)
            .get_v_end("e3", "v3", TypeConstraint::all())
            .finish()
            .unwrap();

        let inferred = infer_pattern_types(&pattern, &schema).unwrap();
        let v = |tag: &str| {
            inferred
                .vertex(inferred.vertex_by_tag(tag).unwrap())
                .constraint
                .clone()
        };
        let e = |tag: &str| {
            inferred
                .edge(inferred.edge_by_tag(tag).unwrap())
                .constraint
                .clone()
        };
        assert_eq!(v("v1"), TypeConstraint::basic(person));
        assert_eq!(v("v2"), TypeConstraint::union([person, product]));
        assert_eq!(v("v3"), TypeConstraint::basic(place));
        assert_eq!(e("e1"), TypeConstraint::union([knows, purchases]));
        assert_eq!(e("e2"), TypeConstraint::union([located, produced]));
        assert_eq!(e("e3"), TypeConstraint::basic(located));
    }

    #[test]
    fn invalid_patterns_are_rejected() {
        let schema = fig6_schema();
        let place = schema.vertex_label("Place").unwrap();
        // Place has no outgoing edges: (v1:Place)-[]->(v2) is unsatisfiable
        let pattern = PatternBuilder::new()
            .get_v("v1", TypeConstraint::basic(place))
            .expand_e("v1", "e", TypeConstraint::all(), Direction::Out)
            .get_v_end("e", "v2", TypeConstraint::all())
            .finish()
            .unwrap();
        let err = infer_pattern_types(&pattern, &schema).unwrap_err();
        assert!(matches!(err, OptError::InvalidPattern { .. }));

        // Knows cannot reach a Place
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let pattern = PatternBuilder::new()
            .get_v("a", TypeConstraint::basic(person))
            .expand_e("a", "e", TypeConstraint::basic(knows), Direction::Out)
            .get_v_end("e", "b", TypeConstraint::basic(place))
            .finish()
            .unwrap();
        assert!(infer_pattern_types(&pattern, &schema).is_err());
    }

    #[test]
    fn already_typed_patterns_are_unchanged() {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let pattern = PatternBuilder::new()
            .get_v("a", TypeConstraint::basic(person))
            .expand_e("a", "e", TypeConstraint::basic(knows), Direction::Out)
            .get_v_end("e", "b", TypeConstraint::basic(person))
            .finish()
            .unwrap();
        let inferred = infer_pattern_types(&pattern, &schema).unwrap();
        assert_eq!(
            inferred
                .vertex(inferred.vertex_by_tag("a").unwrap())
                .constraint,
            TypeConstraint::basic(person)
        );
        assert_eq!(
            inferred.edge(inferred.edge_by_tag("e").unwrap()).constraint,
            TypeConstraint::basic(knows)
        );
    }

    #[test]
    fn incoming_edges_propagate_constraints_too() {
        // In the Fig. 5(a) schema (Person, Post, Forum): an untyped vertex with an
        // incoming HasMember edge must be a Person, and the source must be a Forum.
        let schema = fig5_schema();
        let person = schema.vertex_label("Person").unwrap();
        let forum = schema.vertex_label("Forum").unwrap();
        let hasmember = schema.edge_label("HasMember").unwrap();
        let pattern = PatternBuilder::new()
            .get_v("m", TypeConstraint::all())
            .expand_e("m", "e", TypeConstraint::basic(hasmember), Direction::In)
            .get_v_end("e", "f", TypeConstraint::all())
            .finish()
            .unwrap();
        let inferred = infer_pattern_types(&pattern, &schema).unwrap();
        assert_eq!(
            inferred
                .vertex(inferred.vertex_by_tag("m").unwrap())
                .constraint,
            TypeConstraint::basic(person)
        );
        assert_eq!(
            inferred
                .vertex(inferred.vertex_by_tag("f").unwrap())
                .constraint,
            TypeConstraint::basic(forum)
        );
    }

    #[test]
    fn property_types_resolve_from_declared_and_inferred_schema() {
        use gopt_graph::graph::GraphBuilder;
        use gopt_graph::{PropType, PropValue};

        // build data over the fig6 schema carrying properties the schema does
        // NOT declare: the builder registers their inferred types
        let mut b = GraphBuilder::new(fig6_schema());
        let p0 = b
            .add_vertex_by_name(
                "Person",
                vec![
                    ("creationDate", PropValue::Date(8000)),
                    ("score", PropValue::Float(0.5)),
                ],
            )
            .unwrap();
        let p1 = b.add_vertex_by_name("Person", vec![]).unwrap();
        b.add_vertex_by_name("Product", vec![("creationDate", PropValue::Date(9000))])
            .unwrap();
        // Place disagrees on creationDate's kind → unification must fail
        b.add_vertex_by_name("Place", vec![("creationDate", PropValue::Int(1))])
            .unwrap();
        b.add_edge_by_name("Knows", p0, p1, vec![("since", PropValue::Int(2020))])
            .unwrap();
        let g = b.finish();
        let schema = g.schema();
        let ti = TypeInference::new(schema);

        let person = schema.vertex_label("Person").unwrap();
        let product = schema.vertex_label("Product").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();

        // declared types still resolve
        assert_eq!(
            ti.vertex_property_type(&TypeConstraint::basic(person), "name"),
            Some(PropType::Str)
        );
        // inferred (registered at build) types resolve instead of Unknown
        assert_eq!(
            ti.vertex_property_type(&TypeConstraint::basic(person), "creationDate"),
            Some(PropType::Date)
        );
        assert_eq!(
            ti.vertex_property_type(&TypeConstraint::basic(person), "score"),
            Some(PropType::Float)
        );
        assert_eq!(
            ti.edge_property_type(&TypeConstraint::basic(knows), "since"),
            Some(PropType::Int)
        );
        // a union whose labels agree unifies...
        assert_eq!(
            ti.vertex_property_type(&TypeConstraint::union([person, product]), "creationDate"),
            Some(PropType::Date)
        );
        // ...one whose labels disagree (Place inferred Int) stays unknown
        assert_eq!(
            ti.vertex_property_type(&TypeConstraint::union([person, place]), "creationDate"),
            None
        );
        // labels lacking the property stay unknown
        assert_eq!(
            ti.vertex_property_type(&TypeConstraint::basic(place), "score"),
            None
        );

        // end-to-end through an inferred pattern
        let pattern = PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .expand_e("a", "e", TypeConstraint::basic(knows), Direction::Out)
            .get_v_end("e", "b", TypeConstraint::all())
            .finish()
            .unwrap();
        let inferred = infer_pattern_types(&pattern, schema).unwrap();
        assert_eq!(
            ti.pattern_property_type(&inferred, "a", "creationDate"),
            Some(PropType::Date),
            "Knows pins `a` to Person, whose creationDate was inferred Date"
        );
        assert_eq!(
            ti.pattern_property_type(&inferred, "e", "since"),
            Some(PropType::Int)
        );
        assert_eq!(ti.pattern_property_type(&inferred, "ghost", "x"), None);
    }

    #[test]
    fn union_constraints_are_narrowed_not_exploded() {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let product = schema.vertex_label("Product").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        // v restricted to Person|Product|Place but has an outgoing LocatedIn edge:
        // only Person survives
        let pattern = PatternBuilder::new()
            .get_v("v", TypeConstraint::union([person, product, place]))
            .expand_e("v", "e", TypeConstraint::basic(located), Direction::Out)
            .get_v_end("e", "c", TypeConstraint::all())
            .finish()
            .unwrap();
        let inferred = infer_pattern_types(&pattern, &schema).unwrap();
        assert_eq!(
            inferred
                .vertex(inferred.vertex_by_tag("v").unwrap())
                .constraint,
            TypeConstraint::basic(person)
        );
        assert_eq!(
            inferred
                .vertex(inferred.vertex_by_tag("c").unwrap())
                .constraint,
            TypeConstraint::basic(place)
        );
    }
}
