//! Baseline planners used by the paper's evaluation as comparison points.
//!
//! * [`NeoPlanner`] — a CypherPlanner-like optimizer: it performs the conventional
//!   rule-based rewrites and a **greedy** cost-based ordering driven by whatever
//!   cardinality estimator it is given (the evaluation pairs it with low-order
//!   statistics), always lowering multi-edge expansions with the flattening
//!   `ExpandInto` strategy and never considering worst-case-optimal intersections or
//!   bidirectional join splits.
//! * [`GsRuleOnlyPlanner`] — GraphScope's native behaviour before GOpt: rule-based only,
//!   executing the pattern in the order the user wrote it (the "GS-plan" of Fig. 8(e)).
//! * [`RandomPlanner`] — random (valid) expansion orders, the red dots of Fig. 8(c).

use crate::cbo::{ExpandStrategy, Neo4jSpec, PatternPlan, PatternPlanner, PatternStep};
use crate::convert::logical_to_physical;
use crate::error::OptError;
use crate::rbo::HeuristicPlanner;
use gopt_gir::logical::LogicalPlan;
use gopt_gir::pattern::{Pattern, PatternEdgeId, PatternVertexId};
use gopt_gir::physical::PhysicalPlan;
use gopt_glogue::CardEstimator;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Build a pattern plan that binds the vertices in the given order (each vertex after
/// the first must be adjacent to an earlier one; if not, the closest valid order is
/// used). Costs are not estimated (set to 0) — these plans exist to be *executed*, not
/// to win the search.
pub fn ordered_plan(pattern: &Pattern, order: &[PatternVertexId]) -> PatternPlan {
    assert!(!order.is_empty(), "order must cover at least one vertex");
    let mut bound: BTreeSet<PatternVertexId> = BTreeSet::new();
    let mut remaining: Vec<PatternVertexId> = order.to_vec();
    let first = remaining.remove(0);
    bound.insert(first);
    let mut plan = PatternPlan {
        cost: 0.0,
        est_rows: 0.0,
        step: PatternStep::Scan { vertex: first },
    };
    while !remaining.is_empty() {
        // next vertex in the requested order that is adjacent to the bound set
        let pos = remaining
            .iter()
            .position(|v| pattern.neighbors(*v).iter().any(|n| bound.contains(n)))
            .unwrap_or(0);
        let v = remaining.remove(pos);
        let edges: Vec<PatternEdgeId> = pattern
            .adjacent_edges(v)
            .into_iter()
            .filter(|e| {
                let e = pattern.edge(*e);
                let other = if e.src == v { e.dst } else { e.src };
                bound.contains(&other)
            })
            .collect();
        bound.insert(v);
        if edges.is_empty() {
            // disconnected order (shouldn't happen for connected patterns): fall back to
            // scanning and joining on nothing is not supported, so just skip the vertex
            continue;
        }
        plan = PatternPlan {
            cost: 0.0,
            est_rows: 0.0,
            step: PatternStep::Expand {
                input: Box::new(plan),
                new_vertex: v,
                edges,
            },
        };
    }
    plan
}

/// The order in which the user wrote the pattern (ascending pattern-vertex id).
pub fn user_order_plan(pattern: &Pattern) -> PatternPlan {
    ordered_plan(pattern, &pattern.vertex_ids())
}

/// A CypherPlanner-like baseline: conventional RBO + greedy ordering + flattening
/// expansion only.
pub struct NeoPlanner<'a> {
    estimator: &'a dyn CardEstimator,
    rbo: HeuristicPlanner,
}

impl<'a> NeoPlanner<'a> {
    /// Create the baseline over a cardinality estimator (the evaluation uses low-order
    /// statistics here).
    pub fn new(estimator: &'a dyn CardEstimator) -> Self {
        NeoPlanner {
            estimator,
            rbo: HeuristicPlanner::with_default_rules(),
        }
    }

    /// Greedy, flattening-only plan for one pattern.
    pub fn plan_pattern(&self, pattern: &Pattern) -> PatternPlan {
        let spec = Neo4jSpec;
        PatternPlanner::new(self.estimator, &spec).greedy_initial(pattern)
    }

    /// Optimize a full logical plan into a physical plan.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<PhysicalPlan, OptError> {
        let rewritten = self.rbo.optimize(plan);
        logical_to_physical(&rewritten, |p| {
            (self.plan_pattern(p), ExpandStrategy::Flatten)
        })
    }
}

/// GraphScope's rule-based-only behaviour: user-written order, worst-case-optimal
/// expansion available, no cost model.
pub struct GsRuleOnlyPlanner {
    rbo: HeuristicPlanner,
}

impl Default for GsRuleOnlyPlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl GsRuleOnlyPlanner {
    /// Create the planner with GraphScope's native heuristic rules.
    pub fn new() -> Self {
        GsRuleOnlyPlanner {
            rbo: HeuristicPlanner::with_default_rules(),
        }
    }

    /// Optimize a full logical plan into a physical plan, keeping the user order.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<PhysicalPlan, OptError> {
        let rewritten = self.rbo.optimize(plan);
        logical_to_physical(&rewritten, |p| {
            (user_order_plan(p), ExpandStrategy::Intersect)
        })
    }
}

/// Random valid expansion orders (Fig. 8(c)'s randomly generated plans).
pub struct RandomPlanner {
    rng: SmallRng,
    strategy: ExpandStrategy,
}

impl RandomPlanner {
    /// Create a random planner with a deterministic seed.
    pub fn new(seed: u64, strategy: ExpandStrategy) -> Self {
        RandomPlanner {
            rng: SmallRng::seed_from_u64(seed),
            strategy,
        }
    }

    /// A random (but valid/connected) binding order for the pattern.
    pub fn plan_pattern(&mut self, pattern: &Pattern) -> PatternPlan {
        let mut order = pattern.vertex_ids();
        order.shuffle(&mut self.rng);
        // repair into a connected order: repeatedly pick the first remaining vertex
        // adjacent to the bound prefix
        let mut connected: Vec<PatternVertexId> = vec![order[0]];
        let mut remaining: Vec<PatternVertexId> = order[1..].to_vec();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|v| pattern.neighbors(*v).iter().any(|n| connected.contains(n)))
                .unwrap_or(0);
            connected.push(remaining.remove(pos));
        }
        ordered_plan(pattern, &connected)
    }

    /// Optimize a full logical plan with random pattern orders (no RBO).
    pub fn optimize(&mut self, plan: &LogicalPlan) -> Result<PhysicalPlan, OptError> {
        let strategy = self.strategy;
        // borrow self.rng mutably inside the closure via a local planner
        let mut plans: Vec<PatternPlan> = Vec::new();
        for (_, p) in plan.match_nodes() {
            plans.push(self.plan_pattern(p));
        }
        let mut iter = plans.into_iter();
        logical_to_physical(plan, |_| {
            (iter.next().expect("one plan per match node"), strategy)
        })
    }
}

/// Build a bidirectional s-t path plan that expands `left_hops` hops from the source
/// side and the remaining hops from the target side, joining in the middle — the
/// alternative plans of the Fig. 11 case study. `pattern` must be a simple directed
/// path `v0 -> v1 -> ... -> vk` (in pattern-vertex id order).
pub fn path_split_plan(pattern: &Pattern, left_hops: usize) -> PatternPlan {
    let vertices = pattern.vertex_ids();
    let k = vertices.len() - 1;
    assert!(left_hops <= k, "split position out of range");
    let left_order: Vec<PatternVertexId> = vertices[..=left_hops].to_vec();
    let right_order: Vec<PatternVertexId> = vertices[left_hops..].iter().rev().copied().collect();
    if left_hops == 0 {
        return ordered_plan(pattern, &right_order);
    }
    if left_hops == k {
        return ordered_plan(pattern, &left_order);
    }
    let left_edges: BTreeSet<PatternEdgeId> = pattern
        .edge_ids()
        .into_iter()
        .filter(|e| {
            let e = pattern.edge(*e);
            vertices[..=left_hops].contains(&e.src) && vertices[..=left_hops].contains(&e.dst)
        })
        .collect();
    let right_edges: BTreeSet<PatternEdgeId> = pattern
        .edge_ids()
        .into_iter()
        .filter(|e| !left_edges.contains(e))
        .collect();
    let left_pattern = pattern.induced_by_edges(&left_edges);
    let right_pattern = pattern.induced_by_edges(&right_edges);
    let left_plan = ordered_plan(&left_pattern, &left_order);
    let right_plan = ordered_plan(&right_pattern, &right_order);
    PatternPlan {
        cost: 0.0,
        est_rows: 0.0,
        step: PatternStep::Join {
            left: Box::new(left_plan),
            right: Box::new(right_plan),
            keys: vec![vertices[left_hops]],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_gir::pattern::Direction;
    use gopt_gir::types::TypeConstraint;
    use gopt_gir::{Expr, GraphIrBuilder, PatternBuilder};
    use gopt_glogue::{GLogue, LowOrderEstimator};
    use gopt_graph::schema::fig6_schema;

    fn chain(n: usize) -> Pattern {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let mut b = PatternBuilder::new().get_v("p0", TypeConstraint::basic(person));
        for i in 1..n {
            b = b
                .expand_e(
                    &format!("p{}", i - 1),
                    &format!("e{i}"),
                    TypeConstraint::basic(knows),
                    Direction::Out,
                )
                .get_v_end(
                    &format!("e{i}"),
                    &format!("p{i}"),
                    TypeConstraint::basic(person),
                );
        }
        b.finish().unwrap()
    }

    fn small_glogue() -> GLogue {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        GLogue::from_counts(
            schema,
            vec![(person, 100.0)],
            vec![(person, knows, person, 500.0)],
        )
    }

    #[test]
    fn user_order_plan_binds_in_id_order() {
        let p = chain(4);
        let plan = user_order_plan(&p);
        let order = plan.binding_order();
        assert_eq!(order, p.vertex_ids());
        assert_eq!(plan.join_count(), 0);
    }

    #[test]
    fn ordered_plan_accepts_arbitrary_connected_orders() {
        let p = chain(4);
        let ids = p.vertex_ids();
        let reversed: Vec<_> = ids.iter().rev().copied().collect();
        let plan = ordered_plan(&p, &reversed);
        assert_eq!(plan.binding_order(), reversed);
    }

    #[test]
    fn random_planner_is_deterministic_per_seed_and_valid() {
        let p = chain(5);
        let mut r1 = RandomPlanner::new(7, ExpandStrategy::Flatten);
        let mut r2 = RandomPlanner::new(7, ExpandStrategy::Flatten);
        let o1 = r1.plan_pattern(&p).binding_order();
        let o2 = r2.plan_pattern(&p).binding_order();
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 5);
        // every prefix is connected
        for i in 1..o1.len() {
            let set: BTreeSet<_> = o1[..=i].iter().copied().collect();
            let edges: BTreeSet<_> = p
                .edge_ids()
                .into_iter()
                .filter(|e| {
                    let e = p.edge(*e);
                    set.contains(&e.src) && set.contains(&e.dst)
                })
                .collect();
            assert!(p.induced(&set, &edges).is_connected());
        }
        // different seeds usually differ
        let mut r3 = RandomPlanner::new(99, ExpandStrategy::Flatten);
        let differs = (0..5).any(|_| r3.plan_pattern(&p).binding_order() != o1);
        assert!(differs);
    }

    #[test]
    fn baseline_planners_produce_executable_physical_plans() {
        let gl = small_glogue();
        let lo = LowOrderEstimator::new(&gl);
        let mut b = GraphIrBuilder::new();
        let m = b.match_pattern(chain(3));
        let s = b.select(m, Expr::prop_eq("p2", "name", "x"));
        let plan = b.build(s);

        let neo = NeoPlanner::new(&lo).optimize(&plan).unwrap();
        assert!(neo.count_op("Scan") >= 1);
        assert_eq!(neo.count_op("ExpandIntersect"), 0, "Neo4j never intersects");

        let gs = GsRuleOnlyPlanner::new().optimize(&plan).unwrap();
        assert!(gs.count_op("Scan") >= 1);

        let mut rnd = RandomPlanner::new(1, ExpandStrategy::Intersect);
        let r = rnd.optimize(&plan).unwrap();
        assert!(r.count_op("Scan") >= 1);
    }

    #[test]
    fn path_split_plan_joins_at_requested_position() {
        let p = chain(7); // 6 hops
        for split in 0..=6 {
            let plan = path_split_plan(&p, split);
            if split == 0 || split == 6 {
                assert_eq!(plan.join_count(), 0);
            } else {
                assert_eq!(plan.join_count(), 1);
                let PatternStep::Join { keys, .. } = &plan.step else {
                    panic!("expected a join at the top");
                };
                assert_eq!(keys, &vec![p.vertex_ids()[split]]);
            }
            // the plan binds every vertex exactly once
            let order = plan.binding_order();
            assert_eq!(order.len(), 7);
            let set: BTreeSet<_> = order.into_iter().collect();
            assert_eq!(set.len(), 7);
        }
    }
}
