//! Rule-based optimization (RBO).
//!
//! The [`HeuristicPlanner`] is the stand-in for Calcite's HepPlanner used by the paper:
//! it applies a program of [`Rule`]s in phases, each phase running its rules to a
//! fixpoint. The default program contains the four heuristic rules of Section 6.1 plus a
//! conventional relational rule:
//!
//! * [`FilterIntoPattern`] — push `SELECT` conjuncts that reference a single pattern
//!   element into the pattern, so matching applies them while expanding (Fig. 4);
//! * [`JoinToPattern`] — merge two `MATCH_PATTERN`s connected by an inner `JOIN` on
//!   their common vertex tags into one pattern (valid under homomorphism semantics);
//! * [`LimitIntoOrder`] — fuse `ORDER` + `LIMIT` into a top-k `ORDER`;
//! * [`ComSubPattern`] — factor out the common sub-pattern of the branches of a `UNION`
//!   so it is matched only once and each branch joins its residual onto it;
//! * [`FieldTrim`] — record, per pattern vertex, the property columns actually used
//!   downstream (`COLUMNS`), so the physical plan only materialises those.

use gopt_gir::expr::Expr;
use gopt_gir::logical::{JoinType, LogicalOp, LogicalPlan};
use gopt_gir::pattern::Pattern;
use gopt_glogue::{SelectivityEstimator, DEFAULT_SELECTIVITY};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A rewrite rule over logical plans.
///
/// `apply` attempts a single rewrite anywhere in the plan, returning the rewritten plan
/// when something changed. The planner drives rules to a fixpoint.
pub trait Rule {
    /// Rule name (for explain output and tests).
    fn name(&self) -> &'static str;
    /// Try to apply the rule once; `None` when nothing matched.
    fn apply(&self, plan: &LogicalPlan) -> Option<LogicalPlan>;
}

/// A HepPlanner-like driver: phases of rules, each run to a fixpoint.
pub struct HeuristicPlanner {
    phases: Vec<Vec<Box<dyn Rule>>>,
    max_iterations: usize,
}

impl Default for HeuristicPlanner {
    fn default() -> Self {
        Self::with_default_rules()
    }
}

impl HeuristicPlanner {
    /// A planner with no rules; add phases with [`HeuristicPlanner::add_phase`].
    pub fn empty() -> Self {
        HeuristicPlanner {
            phases: Vec::new(),
            max_iterations: 64,
        }
    }

    /// The default rule program used by GOpt.
    pub fn with_default_rules() -> Self {
        let mut p = Self::empty();
        p.add_phase(vec![
            Box::new(FilterIntoPattern),
            Box::new(JoinToPattern),
            Box::new(LimitIntoOrder),
        ]);
        p.add_phase(vec![Box::new(ComSubPattern)]);
        p.add_phase(vec![Box::new(FieldTrim)]);
        p
    }

    /// Append a phase of rules (run to fixpoint after the previous phases).
    pub fn add_phase(&mut self, rules: Vec<Box<dyn Rule>>) -> &mut Self {
        self.phases.push(rules);
        self
    }

    /// Names of all registered rules, in program order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.phases
            .iter()
            .flat_map(|p| p.iter().map(|r| r.name()))
            .collect()
    }

    /// Run the rule program.
    pub fn optimize(&self, plan: &LogicalPlan) -> LogicalPlan {
        let mut current = plan.clone();
        for phase in &self.phases {
            let mut iterations = 0;
            loop {
                let mut changed = false;
                for rule in phase {
                    if let Some(next) = rule.apply(&current) {
                        current = next;
                        changed = true;
                    }
                }
                iterations += 1;
                if !changed || iterations >= self.max_iterations {
                    break;
                }
            }
        }
        current
    }
}

/// Push single-element filters from a `SELECT` into the upstream `MATCH_PATTERN`.
pub struct FilterIntoPattern;

impl Rule for FilterIntoPattern {
    fn name(&self) -> &'static str {
        "FilterIntoPattern"
    }

    fn apply(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        for id in plan.node_ids() {
            let LogicalOp::Select { predicate } = plan.op(id) else {
                continue;
            };
            let inputs = plan.inputs(id);
            if inputs.len() != 1 {
                continue;
            }
            let input = inputs[0];
            let LogicalOp::Match { pattern } = plan.op(input) else {
                continue;
            };
            let mut pushable: Vec<Expr> = Vec::new();
            let mut remaining: Vec<Expr> = Vec::new();
            for conjunct in predicate.conjuncts() {
                let tags = conjunct.referenced_tags();
                let single = tags.len() == 1
                    && tags.iter().next().is_some_and(|t| {
                        pattern.vertex_by_tag(t).is_some() || pattern.edge_by_tag(t).is_some()
                    });
                if single {
                    pushable.push(conjunct);
                } else {
                    remaining.push(conjunct);
                }
            }
            if pushable.is_empty() {
                continue;
            }
            let mut new_plan = plan.clone();
            // push each conjunct into the owning pattern element
            {
                let LogicalOp::Match { pattern } = new_plan.op_mut(input) else {
                    unreachable!("checked above")
                };
                for c in pushable {
                    let tag = c.referenced_tags().into_iter().next().expect("one tag");
                    if let Some(v) = pattern.vertex_by_tag(&tag) {
                        let pv = pattern.vertex_mut(v);
                        pv.predicate = Some(match pv.predicate.take() {
                            Some(p) => p.and(c),
                            None => c,
                        });
                    } else if let Some(e) = pattern.edge_by_tag(&tag) {
                        let pe = pattern.edge_mut(e);
                        pe.predicate = Some(match pe.predicate.take() {
                            Some(p) => p.and(c),
                            None => c,
                        });
                    }
                }
            }
            match Expr::conjunction(remaining) {
                Some(rest) => {
                    *new_plan.op_mut(id) = LogicalOp::Select { predicate: rest };
                }
                None => new_plan.bypass(id),
            }
            return Some(new_plan.compact());
        }
        None
    }
}

/// Merge `Match ⋈ Match` (inner join on all common vertex tags) into a single pattern.
pub struct JoinToPattern;

impl Rule for JoinToPattern {
    fn name(&self) -> &'static str {
        "JoinToPattern"
    }

    fn apply(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        for id in plan.node_ids() {
            let LogicalOp::Join { kind, keys } = plan.op(id) else {
                continue;
            };
            if *kind != JoinType::Inner {
                continue;
            }
            let inputs = plan.inputs(id).to_vec();
            if inputs.len() != 2 {
                continue;
            }
            let (l, r) = (inputs[0], inputs[1]);
            let (LogicalOp::Match { pattern: pl }, LogicalOp::Match { pattern: pr }) =
                (plan.op(l), plan.op(r))
            else {
                continue;
            };
            // only merge when the matches feed this join exclusively (otherwise the
            // shared match is intentionally computed once, e.g. after ComSubPattern)
            if plan.consumers(l).len() != 1 || plan.consumers(r).len() != 1 {
                continue;
            }
            // the join keys must be exactly the common vertex tags of the two patterns
            let tags_l: BTreeSet<String> = pl.vertices().filter_map(|v| v.tag.clone()).collect();
            let tags_r: BTreeSet<String> = pr.vertices().filter_map(|v| v.tag.clone()).collect();
            let common: BTreeSet<String> = tags_l.intersection(&tags_r).cloned().collect();
            let keyset: BTreeSet<String> = keys.iter().cloned().collect();
            if common.is_empty() || keyset != common {
                continue;
            }
            let (merged, _) = pl.merge_by_tag(pr);
            let mut new_plan = plan.clone();
            *new_plan.op_mut(id) = LogicalOp::Match { pattern: merged };
            new_plan.set_inputs(id, vec![]);
            return Some(new_plan.compact());
        }
        None
    }
}

/// Fuse `ORDER` (without a limit) followed by `LIMIT` into a top-k `ORDER`.
pub struct LimitIntoOrder;

impl Rule for LimitIntoOrder {
    fn name(&self) -> &'static str {
        "LimitIntoOrder"
    }

    fn apply(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        for id in plan.node_ids() {
            let LogicalOp::Limit { count } = plan.op(id) else {
                continue;
            };
            let count = *count;
            let inputs = plan.inputs(id);
            if inputs.len() != 1 {
                continue;
            }
            let input = inputs[0];
            let LogicalOp::Order { keys, limit } = plan.op(input) else {
                continue;
            };
            if plan.consumers(input).len() != 1 {
                continue;
            }
            let new_limit = Some(limit.map_or(count, |l| l.min(count)));
            if *limit == new_limit {
                continue;
            }
            let keys = keys.clone();
            let mut new_plan = plan.clone();
            *new_plan.op_mut(input) = LogicalOp::Order {
                keys,
                limit: new_limit,
            };
            new_plan.bypass(id);
            return Some(new_plan.compact());
        }
        None
    }
}

/// Factor the common sub-pattern out of the `MATCH` branches of a `UNION`, computing it
/// once and joining each branch's residual pattern back onto it.
pub struct ComSubPattern;

impl ComSubPattern {
    /// The common sub-pattern of a list of patterns, identified by vertex/edge tags.
    fn common_subpattern(patterns: &[&Pattern]) -> Pattern {
        let first = patterns[0];
        let mut common = Pattern::new();
        let mut vertex_map = BTreeMap::new();
        // common vertices: same tag and same constraint in every branch
        for v in first.vertices() {
            let Some(tag) = &v.tag else { continue };
            let in_all = patterns.iter().all(|p| {
                p.vertex_by_tag(tag)
                    .map(|id| p.vertex(id).constraint == v.constraint)
                    .unwrap_or(false)
            });
            if in_all {
                let nv = common.add_vertex_full(
                    Some(tag.clone()),
                    v.constraint.clone(),
                    v.predicate.clone(),
                );
                vertex_map.insert(tag.clone(), nv);
            }
        }
        // common edges: both endpoint tags common, and an edge with the same endpoints
        // and constraint exists in every branch
        for e in first.edges() {
            let (Some(st), Some(dt)) = (
                first.vertex(e.src).tag.clone(),
                first.vertex(e.dst).tag.clone(),
            ) else {
                continue;
            };
            if !vertex_map.contains_key(&st) || !vertex_map.contains_key(&dt) {
                continue;
            }
            let in_all = patterns.iter().all(|p| {
                let (Some(s), Some(d)) = (p.vertex_by_tag(&st), p.vertex_by_tag(&dt)) else {
                    return false;
                };
                p.edges().any(|pe| {
                    pe.src == s && pe.dst == d && pe.constraint == e.constraint && pe.path == e.path
                })
            });
            if in_all {
                common.add_edge_full(
                    vertex_map[&st],
                    vertex_map[&dt],
                    e.tag.clone(),
                    e.constraint.clone(),
                    e.predicate.clone(),
                    e.path,
                );
            }
        }
        common
    }

    /// The residual of `branch` after removing the common edges; keeps every vertex that
    /// still has an incident edge plus nothing else.
    fn residual(branch: &Pattern, common: &Pattern) -> Pattern {
        let mut keep: BTreeSet<gopt_gir::PatternEdgeId> = branch.edge_ids().into_iter().collect();
        for ce in common.edges() {
            let (Some(st), Some(dt)) = (
                common.vertex(ce.src).tag.clone(),
                common.vertex(ce.dst).tag.clone(),
            ) else {
                continue;
            };
            let (Some(s), Some(d)) = (branch.vertex_by_tag(&st), branch.vertex_by_tag(&dt)) else {
                continue;
            };
            if let Some(be) = branch
                .edges()
                .find(|be| be.src == s && be.dst == d && be.constraint == ce.constraint)
            {
                keep.remove(&be.id);
            }
        }
        branch.induced_by_edges(&keep)
    }
}

impl Rule for ComSubPattern {
    fn name(&self) -> &'static str {
        "ComSubPattern"
    }

    fn apply(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        for id in plan.node_ids() {
            let LogicalOp::Union { .. } = plan.op(id) else {
                continue;
            };
            let inputs = plan.inputs(id).to_vec();
            if inputs.len() < 2 {
                continue;
            }
            let mut patterns = Vec::new();
            for i in &inputs {
                match plan.op(*i) {
                    LogicalOp::Match { pattern } if plan.consumers(*i).len() == 1 => {
                        patterns.push(pattern)
                    }
                    _ => {
                        patterns.clear();
                        break;
                    }
                }
            }
            if patterns.len() != inputs.len() {
                continue;
            }
            let common = Self::common_subpattern(&patterns);
            if common.edge_count() == 0 || !common.is_connected() {
                continue;
            }
            // every branch must have a residual (otherwise the branches are identical
            // and the union itself already deduplicates)
            let residuals: Vec<Pattern> = patterns
                .iter()
                .map(|p| Self::residual(p, &common))
                .collect();
            if residuals.iter().any(|r| r.edge_count() == 0) {
                continue;
            }
            let mut new_plan = plan.clone();
            let common_node = new_plan.add(
                LogicalOp::Match {
                    pattern: common.clone(),
                },
                vec![],
            );
            let mut new_inputs = Vec::new();
            for (i, residual) in residuals.into_iter().enumerate() {
                let keys: Vec<String> = residual
                    .vertices()
                    .filter_map(|v| v.tag.clone())
                    .filter(|t| common.vertex_by_tag(t).is_some())
                    .collect();
                let branch_match = new_plan.add(LogicalOp::Match { pattern: residual }, vec![]);
                let join = new_plan.add(
                    LogicalOp::Join {
                        kind: JoinType::Inner,
                        keys,
                    },
                    vec![common_node, branch_match],
                );
                new_inputs.push(join);
                let _ = i;
            }
            new_plan.set_inputs(id, new_inputs);
            // keep the union as root if it was; compact drops the detached old matches
            let root = plan.root();
            new_plan.set_root(if root == id { id } else { root });
            return Some(new_plan.compact());
        }
        None
    }
}

/// Order the conjuncts of every pushed-down element predicate by estimated
/// selectivity, most selective first — the filter-pushdown sanity check that
/// property statistics enable: evaluating the cheapest-to-fail conjunct first
/// is the conventional ordering, and the rewritten conjunction documents in
/// the plan which conjunct the optimizer believes filters hardest. Conjuncts
/// whose selectivity the statistics cannot estimate are priced at the
/// Remark 7.1 constant ([`DEFAULT_SELECTIVITY`]); ties keep the user's order
/// (stable sort), so the rule is a fixpoint.
pub struct OrderConjunctsBySelectivity {
    sel: Arc<dyn SelectivityEstimator>,
}

impl OrderConjunctsBySelectivity {
    /// Create the rule over a selectivity estimator (normally
    /// `gopt_glogue::StatsSelectivity` over shared `GraphStats`).
    pub fn new(sel: Arc<dyn SelectivityEstimator>) -> Self {
        OrderConjunctsBySelectivity { sel }
    }

    /// Reorder one predicate; `None` when it is already ordered.
    fn reorder(
        &self,
        constraint: &gopt_gir::types::TypeConstraint,
        predicate: &Expr,
        is_vertex: bool,
    ) -> Option<Expr> {
        let conjuncts = predicate.conjuncts();
        if conjuncts.len() < 2 {
            return None;
        }
        let mut keyed: Vec<(f64, usize, Expr)> = conjuncts
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let s = if is_vertex {
                    self.sel.vertex_predicate(constraint, &c)
                } else {
                    self.sel.edge_predicate(constraint, &c)
                }
                .unwrap_or(DEFAULT_SELECTIVITY);
                (s, i, c)
            })
            .collect();
        let before: Vec<usize> = keyed.iter().map(|(_, i, _)| *i).collect();
        keyed.sort_by(|(a, ai, _), (b, bi, _)| a.total_cmp(b).then(ai.cmp(bi)));
        let after: Vec<usize> = keyed.iter().map(|(_, i, _)| *i).collect();
        if before == after {
            return None;
        }
        Expr::conjunction(keyed.into_iter().map(|(_, _, c)| c).collect())
    }
}

impl Rule for OrderConjunctsBySelectivity {
    fn name(&self) -> &'static str {
        "OrderConjunctsBySelectivity"
    }

    fn apply(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        for id in plan.node_ids() {
            let LogicalOp::Match { pattern } = plan.op(id) else {
                continue;
            };
            for vid in pattern.vertex_ids() {
                let v = pattern.vertex(vid);
                let Some(pred) = &v.predicate else { continue };
                if let Some(reordered) = self.reorder(&v.constraint, pred, true) {
                    let mut new_plan = plan.clone();
                    let LogicalOp::Match { pattern } = new_plan.op_mut(id) else {
                        unreachable!("match node")
                    };
                    pattern.vertex_mut(vid).predicate = Some(reordered);
                    return Some(new_plan);
                }
            }
            for eid in pattern.edge_ids() {
                let e = pattern.edge(eid);
                let Some(pred) = &e.predicate else { continue };
                if let Some(reordered) = self.reorder(&e.constraint, pred, false) {
                    let mut new_plan = plan.clone();
                    let LogicalOp::Match { pattern } = new_plan.op_mut(id) else {
                        unreachable!("match node")
                    };
                    pattern.edge_mut(eid).predicate = Some(reordered);
                    return Some(new_plan);
                }
            }
        }
        None
    }
}

/// Record, per pattern vertex, the property columns required by downstream operators.
pub struct FieldTrim;

impl FieldTrim {
    /// All `(tag, property)` pairs and bare tags referenced by non-Match operators.
    fn downstream_usage(plan: &LogicalPlan) -> (BTreeSet<(String, String)>, BTreeSet<String>) {
        let mut props = BTreeSet::new();
        let mut tags = BTreeSet::new();
        let visit_expr =
            |e: &Expr, props: &mut BTreeSet<(String, String)>, tags: &mut BTreeSet<String>| {
                props.extend(e.referenced_props());
                tags.extend(e.referenced_tags());
            };
        for id in plan.node_ids() {
            match plan.op(id) {
                LogicalOp::Match { pattern } => {
                    // predicates already pushed into the pattern still need their columns
                    for v in pattern.vertices() {
                        if let Some(p) = &v.predicate {
                            visit_expr(p, &mut props, &mut tags);
                        }
                    }
                    for e in pattern.edges() {
                        if let Some(p) = &e.predicate {
                            visit_expr(p, &mut props, &mut tags);
                        }
                    }
                }
                LogicalOp::Select { predicate } => visit_expr(predicate, &mut props, &mut tags),
                LogicalOp::Project { items } => {
                    for (e, _) in items {
                        visit_expr(e, &mut props, &mut tags);
                    }
                }
                LogicalOp::Group { keys, aggs } => {
                    for (e, _) in keys {
                        visit_expr(e, &mut props, &mut tags);
                    }
                    for (_, e, _) in aggs {
                        visit_expr(e, &mut props, &mut tags);
                    }
                }
                LogicalOp::Order { keys, .. } => {
                    for (e, _) in keys {
                        visit_expr(e, &mut props, &mut tags);
                    }
                }
                LogicalOp::Dedup { keys } => {
                    for e in keys {
                        visit_expr(e, &mut props, &mut tags);
                    }
                }
                LogicalOp::Join { keys, .. } => tags.extend(keys.iter().cloned()),
                LogicalOp::Limit { .. } | LogicalOp::Union { .. } => {}
            }
        }
        (props, tags)
    }
}

impl Rule for FieldTrim {
    fn name(&self) -> &'static str {
        "FieldTrim"
    }

    fn apply(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        // if the final operator is a bare MATCH the full result is returned to the user,
        // so nothing can be trimmed
        if matches!(plan.op(plan.root()), LogicalOp::Match { .. }) {
            return None;
        }
        let (used_props, _used_tags) = Self::downstream_usage(plan);
        let mut new_plan = plan.clone();
        let mut changed = false;
        for (id, _) in plan.match_nodes() {
            let LogicalOp::Match { pattern } = new_plan.op_mut(id) else {
                unreachable!("match node")
            };
            for vid in pattern.vertex_ids() {
                let tag = pattern.vertex(vid).tag.clone();
                let needed: BTreeSet<String> = match &tag {
                    Some(t) => used_props
                        .iter()
                        .filter(|(tag, _)| tag == t)
                        .map(|(_, p)| p.clone())
                        .collect(),
                    None => BTreeSet::new(),
                };
                let v = pattern.vertex_mut(vid);
                if v.columns.as_ref() != Some(&needed) {
                    v.columns = Some(needed);
                    changed = true;
                }
            }
        }
        if changed {
            Some(new_plan)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_gir::expr::{AggFunc, SortDir};
    use gopt_gir::pattern::Direction;
    use gopt_gir::types::TypeConstraint;
    use gopt_gir::{GraphIrBuilder, PatternBuilder};
    use gopt_graph::LabelId;

    const PERSON: LabelId = LabelId(0);
    const PRODUCT: LabelId = LabelId(1);
    const PLACE: LabelId = LabelId(2);

    fn chain_pattern(tags: &[&str]) -> Pattern {
        let mut b = PatternBuilder::new().get_v(tags[0], TypeConstraint::all());
        for w in tags.windows(2) {
            let e = format!("e_{}_{}", w[0], w[1]);
            b = b
                .expand_e(w[0], &e, TypeConstraint::all(), Direction::Out)
                .get_v_end(&e, w[1], TypeConstraint::all());
        }
        b.finish().unwrap()
    }

    /// The paper's Fig. 3/4 running example as a logical plan.
    fn running_example() -> LogicalPlan {
        let p1 = chain_pattern(&["v1", "v2", "v3"]);
        let p2 = PatternBuilder::new()
            .get_v("v1", TypeConstraint::all())
            .expand_e("v1", "e3", TypeConstraint::all(), Direction::Out)
            .get_v_end("e3", "v3", TypeConstraint::basic(PLACE))
            .finish()
            .unwrap();
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(p1);
        let m2 = b.match_pattern(p2);
        let j = b.join(m1, m2, vec!["v1".into(), "v3".into()], JoinType::Inner);
        let s = b.select(j, Expr::prop_eq("v3", "name", "China"));
        let g = b.group(
            s,
            vec![(Expr::tag("v2"), "v2".into())],
            vec![(AggFunc::Count, Expr::tag("v2"), "cnt".into())],
        );
        let o = b.order(g, vec![(Expr::tag("cnt"), SortDir::Asc)], None);
        let l = b.limit(o, 10);
        b.build(l)
    }

    #[test]
    fn filter_into_pattern_pushes_single_tag_conjuncts() {
        let p = chain_pattern(&["a", "b"]);
        let mut b = GraphIrBuilder::new();
        let m = b.match_pattern(p);
        let s = b.select(
            m,
            Expr::prop_eq("b", "name", "China").and(Expr::binary(
                gopt_gir::BinOp::Eq,
                Expr::prop("a", "id"),
                Expr::prop("b", "id"),
            )),
        );
        let plan = b.build(s);
        let out = FilterIntoPattern.apply(&plan).expect("applies");
        // the single-tag conjunct was pushed; the two-tag conjunct remains in the SELECT
        let (_, pattern) = out.match_nodes()[0];
        let bv = pattern.vertex(pattern.vertex_by_tag("b").unwrap());
        assert!(bv.predicate.is_some());
        assert!(matches!(out.op(out.root()), LogicalOp::Select { .. }));
        // applying again finds nothing new
        assert!(FilterIntoPattern.apply(&out).is_none());

        // a select with only a pushable predicate disappears entirely
        let p = chain_pattern(&["a", "b"]);
        let mut b = GraphIrBuilder::new();
        let m = b.match_pattern(p);
        let s = b.select(m, Expr::prop_eq("b", "name", "China"));
        let plan = b.build(s);
        let out = FilterIntoPattern.apply(&plan).expect("applies");
        assert_eq!(out.len(), 1);
        assert!(matches!(out.op(out.root()), LogicalOp::Match { .. }));
    }

    #[test]
    fn join_to_pattern_merges_matches() {
        let plan = running_example();
        let out = JoinToPattern.apply(&plan).expect("applies");
        assert_eq!(out.match_nodes().len(), 1, "one merged pattern");
        let (_, merged) = out.match_nodes()[0];
        assert_eq!(merged.vertex_count(), 3);
        assert_eq!(merged.edge_count(), 3);
        assert!(JoinToPattern.apply(&out).is_none());
    }

    #[test]
    fn join_with_partial_keys_is_not_merged() {
        let p1 = chain_pattern(&["v1", "v2", "v3"]);
        let p2 = chain_pattern(&["v1", "v3"]);
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(p1);
        let m2 = b.match_pattern(p2);
        // join keys do not cover the common tags {v1, v3}
        let j = b.join(m1, m2, vec!["v1".into()], JoinType::Inner);
        let plan = b.build(j);
        assert!(JoinToPattern.apply(&plan).is_none());
        // outer joins are never merged
        let p1 = chain_pattern(&["v1", "v2"]);
        let p2 = chain_pattern(&["v1", "v4"]);
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(p1);
        let m2 = b.match_pattern(p2);
        let j = b.join(m1, m2, vec!["v1".into()], JoinType::LeftOuter);
        let plan = b.build(j);
        assert!(JoinToPattern.apply(&plan).is_none());
    }

    #[test]
    fn limit_into_order_fuses() {
        let plan = running_example();
        let out = LimitIntoOrder.apply(&plan).expect("applies");
        let LogicalOp::Order { limit, .. } = out.op(out.root()) else {
            panic!(
                "root should be the fused ORDER, got {}",
                out.op(out.root()).name()
            );
        };
        assert_eq!(*limit, Some(10));
        assert!(LimitIntoOrder.apply(&out).is_none());
    }

    #[test]
    fn com_sub_pattern_factors_union_branches() {
        // (v1:Person)-[]->(v2:Person)-[]->(:Product)  UNION  (v1:Person)-[]->(v2:Person)-[]->(:Place)
        let mk = |leaf: LabelId| {
            PatternBuilder::new()
                .get_v("v1", TypeConstraint::basic(PERSON))
                .expand_e("v1", "e1", TypeConstraint::all(), Direction::Out)
                .get_v_end("e1", "v2", TypeConstraint::basic(PERSON))
                .expand_e("v2", "e2", TypeConstraint::all(), Direction::Out)
                .get_v_end("e2", "leaf", TypeConstraint::basic(leaf))
                .finish()
                .unwrap()
        };
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(mk(PRODUCT));
        let m2 = b.match_pattern(mk(PLACE));
        let u = b.union(vec![m1, m2], true);
        let plan = b.build(u);
        let out = ComSubPattern.apply(&plan).expect("applies");
        // the union's inputs are now joins over a shared common match
        let union_id = out.root();
        assert!(matches!(out.op(union_id), LogicalOp::Union { .. }));
        let join_inputs = out.inputs(union_id).to_vec();
        assert_eq!(join_inputs.len(), 2);
        for j in &join_inputs {
            assert!(matches!(out.op(*j), LogicalOp::Join { .. }));
        }
        // both joins share the same common-match node
        let shared: BTreeSet<_> = join_inputs.iter().map(|j| out.inputs(*j)[0]).collect();
        assert_eq!(shared.len(), 1);
        let common_id = *shared.iter().next().unwrap();
        let LogicalOp::Match { pattern } = out.op(common_id) else {
            panic!("shared input is a match");
        };
        assert_eq!(pattern.edge_count(), 1, "the common (v1)->(v2) edge");
        // JoinToPattern must not undo the sharing (the common match has two consumers)
        assert!(JoinToPattern.apply(&out).is_none());
        // and ComSubPattern itself does not re-apply
        assert!(ComSubPattern.apply(&out).is_none());
    }

    #[test]
    fn com_sub_pattern_skips_identical_or_disjoint_branches() {
        let mk = || chain_pattern(&["a", "b"]);
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(mk());
        let m2 = b.match_pattern(mk());
        let u = b.union(vec![m1, m2], true);
        let plan = b.build(u);
        // identical branches: residual would be empty, rule does not fire
        assert!(ComSubPattern.apply(&plan).is_none());
        // disjoint branches: no common sub-pattern
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(chain_pattern(&["a", "b"]));
        let m2 = b.match_pattern(chain_pattern(&["x", "y"]));
        let u = b.union(vec![m1, m2], true);
        let plan = b.build(u);
        assert!(ComSubPattern.apply(&plan).is_none());
    }

    #[test]
    fn conjuncts_are_ordered_by_estimated_selectivity() {
        use gopt_gir::BinOp;
        use gopt_glogue::StatsSelectivity;
        use gopt_graph::graph::GraphBuilder;
        use gopt_graph::schema::fig6_schema;
        use gopt_graph::{GraphStats, PropValue};
        use std::sync::Arc;
        // 40 persons: age 0..40 dense, name in a 4-value domain
        let mut b = GraphBuilder::new(fig6_schema());
        for i in 0..40i64 {
            b.add_vertex_by_name(
                "Person",
                vec![
                    ("age", PropValue::Int(i)),
                    ("name", PropValue::str(format!("n{}", i % 4))),
                ],
            )
            .unwrap();
        }
        let g = b.finish();
        let person = g.schema().vertex_label("Person").unwrap();
        let rule = OrderConjunctsBySelectivity::new(Arc::new(StatsSelectivity::new(
            GraphStats::shared(&g),
        )));
        // user order: unselective range (sel 1.0) before selective equality
        // (sel 0.25) — the rule must swap them
        let range = Expr::binary(BinOp::Ge, Expr::prop("a", "age"), Expr::lit(0));
        let eq = Expr::prop_eq("a", "name", "n0");
        let mut pattern = PatternBuilder::new()
            .get_v("a", TypeConstraint::basic(person))
            .finish()
            .unwrap();
        let a = pattern.vertex_by_tag("a").unwrap();
        pattern.vertex_mut(a).predicate = Some(range.clone().and(eq.clone()));
        let mut builder = GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let plan = builder.build(m);
        let out = rule.apply(&plan).expect("rule fires");
        let (_, p) = out.match_nodes()[0];
        let reordered = p
            .vertex(p.vertex_by_tag("a").unwrap())
            .predicate
            .clone()
            .unwrap();
        assert_eq!(reordered.conjuncts(), vec![eq.clone(), range.clone()]);
        // fixpoint: the sorted predicate is not touched again
        assert!(rule.apply(&out).is_none());
        // an unestimable conjunct is priced at the Remark 7.1 constant (0.1),
        // sorting between the 0.25 equality and the 1.0 range
        let opaque = Expr::binary(BinOp::Lt, Expr::prop("a", "age"), Expr::prop("a", "name"));
        let mut pattern = PatternBuilder::new()
            .get_v("a", TypeConstraint::basic(person))
            .finish()
            .unwrap();
        let a = pattern.vertex_by_tag("a").unwrap();
        pattern.vertex_mut(a).predicate = Some(range.clone().and(opaque.clone()).and(eq.clone()));
        let mut builder = GraphIrBuilder::new();
        let m = builder.match_pattern(pattern);
        let plan = builder.build(m);
        let out = rule.apply(&plan).expect("rule fires");
        let (_, p) = out.match_nodes()[0];
        let reordered = p
            .vertex(p.vertex_by_tag("a").unwrap())
            .predicate
            .clone()
            .unwrap();
        assert_eq!(reordered.conjuncts(), vec![opaque, eq, range]);
        assert_eq!(rule.name(), "OrderConjunctsBySelectivity");
    }

    #[test]
    fn field_trim_records_used_columns() {
        let plan = running_example();
        let out = FieldTrim.apply(&plan).expect("applies");
        let (_, pattern) = out.match_nodes()[0];
        let v3 = pattern.vertex(pattern.vertex_by_tag("v3").unwrap());
        assert_eq!(v3.columns, Some(["name".to_string()].into_iter().collect()));
        let v2 = pattern.vertex(pattern.vertex_by_tag("v2").unwrap());
        assert_eq!(
            v2.columns,
            Some(BTreeSet::new()),
            "v2 is grouped on, no properties needed"
        );
        // idempotent
        assert!(FieldTrim.apply(&out).is_none());
        // a bare match as root is never trimmed
        let mut b = GraphIrBuilder::new();
        let m = b.match_pattern(chain_pattern(&["a", "b"]));
        let plan = b.build(m);
        assert!(FieldTrim.apply(&plan).is_none());
    }

    #[test]
    fn default_program_optimizes_running_example_like_fig4() {
        let plan = running_example();
        let planner = HeuristicPlanner::with_default_rules();
        assert!(planner.rule_names().contains(&"FilterIntoPattern"));
        let out = planner.optimize(&plan);
        // one merged pattern, filter pushed into v3, order with fused limit, no JOIN/SELECT left
        assert_eq!(out.match_nodes().len(), 1);
        let (_, pattern) = out.match_nodes()[0];
        assert_eq!(pattern.vertex_count(), 3);
        let v3 = pattern.vertex(pattern.vertex_by_tag("v3").unwrap());
        assert!(v3.predicate.is_some(), "filter pushed into the pattern");
        assert_eq!(v3.columns, Some(["name".to_string()].into_iter().collect()));
        let names: Vec<&str> = out
            .topo_order()
            .iter()
            .map(|id| out.op(*id).name())
            .collect();
        assert!(!names.contains(&"JOIN"));
        assert!(!names.contains(&"SELECT"));
        assert!(!names.contains(&"LIMIT"));
        let LogicalOp::Order { limit, .. } = out.op(out.root()) else {
            panic!("root is the fused order");
        };
        assert_eq!(*limit, Some(10));
        // the planner is a fixpoint: re-optimizing changes nothing
        let again = planner.optimize(&out);
        assert_eq!(again.explain(), out.explain());
        // an empty planner is the identity
        assert_eq!(
            HeuristicPlanner::empty().optimize(&plan).explain(),
            plan.explain()
        );
    }
}
