//! Physical plan generation (the paper's `PhysicalConvertor`).
//!
//! Converts an optimized logical plan into a [`PhysicalPlan`]: every `MATCH_PATTERN`
//! node is lowered according to a chosen [`PatternPlan`] (from the CBO, from a baseline
//! planner, or from the user-written order), with multi-edge vertex expansions realised
//! either as `EdgeExpand` + `ExpandInto` (flattening backends) or as a single
//! `ExpandIntersect` (worst-case-optimal backends); relational operators are lowered
//! one-to-one.
//!
//! After a pattern is matched, `PropertyFetch` operators materialise the property columns
//! recorded by `FieldTrim` (or *all* declared columns when the rule did not run), which
//! is how the paper's `COLUMNS` annotation reaches the execution engine.

use crate::cbo::{ExpandStrategy, PatternPlan, PatternStep};
use crate::error::OptError;
use gopt_gir::logical::{LogicalOp, LogicalPlan};
use gopt_gir::pattern::{Direction, Pattern, PatternEdgeId, PatternVertexId};
use gopt_gir::physical::{IntersectStep, PhysicalNodeId, PhysicalOp, PhysicalPlan};

/// The alias under which a pattern vertex is bound in the physical plan: its user tag,
/// or a synthetic `@v<i>` alias when untagged.
pub fn vertex_alias(pattern: &Pattern, v: PatternVertexId) -> String {
    pattern
        .vertex(v)
        .tag
        .clone()
        .unwrap_or_else(|| format!("@v{}", v.0))
}

/// The alias of a pattern edge (user tag only; untagged edges are not bound).
pub fn edge_alias(pattern: &Pattern, e: PatternEdgeId) -> Option<String> {
    pattern.edge(e).tag.clone()
}

fn bound_endpoint_and_direction(
    pattern: &Pattern,
    edge: PatternEdgeId,
    new_vertex: PatternVertexId,
) -> (PatternVertexId, Direction) {
    let e = pattern.edge(edge);
    if e.dst == new_vertex {
        (e.src, Direction::Out)
    } else {
        (e.dst, Direction::In)
    }
}

/// Lower one pattern plan into physical operators appended to `phys`; returns the id of
/// the last operator.
pub fn pattern_plan_to_physical(
    pattern: &Pattern,
    plan: &PatternPlan,
    strategy: ExpandStrategy,
    phys: &mut PhysicalPlan,
) -> PhysicalNodeId {
    let id = pattern_step_to_physical(pattern, plan, strategy, phys);
    // Surface the CBO's cardinality estimate in the plan dump. Baseline planners
    // carry no statistics (est_rows == 0.0) and stay unannotated.
    if plan.est_rows > 0.0 {
        phys.set_est_rows(id, plan.est_rows);
    }
    id
}

fn pattern_step_to_physical(
    pattern: &Pattern,
    plan: &PatternPlan,
    strategy: ExpandStrategy,
    phys: &mut PhysicalPlan,
) -> PhysicalNodeId {
    match &plan.step {
        PatternStep::Scan { vertex } => {
            let v = pattern.vertex(*vertex);
            phys.add(
                PhysicalOp::Scan {
                    alias: vertex_alias(pattern, *vertex),
                    constraint: v.constraint.clone(),
                    predicate: v.predicate.clone(),
                },
                vec![],
            )
        }
        PatternStep::Expand {
            input,
            new_vertex,
            edges,
        } => {
            let mut last = pattern_plan_to_physical(pattern, input, strategy, phys);
            let nv = pattern.vertex(*new_vertex);
            let dst_alias = vertex_alias(pattern, *new_vertex);
            // split edges into the first (always a flattening EdgeExpand / PathExpand)
            // and the rest (ExpandInto or folded into an ExpandIntersect)
            if strategy == ExpandStrategy::Intersect && edges.len() > 1 {
                let steps: Vec<IntersectStep> = edges
                    .iter()
                    .map(|eid| {
                        let (bound, dir) = bound_endpoint_and_direction(pattern, *eid, *new_vertex);
                        IntersectStep {
                            src: vertex_alias(pattern, bound),
                            edge_constraint: pattern.edge(*eid).constraint.clone(),
                            direction: dir,
                            edge_alias: edge_alias(pattern, *eid),
                        }
                    })
                    .collect();
                return phys.add(
                    PhysicalOp::ExpandIntersect {
                        steps,
                        dst_alias,
                        dst_constraint: nv.constraint.clone(),
                        dst_predicate: nv.predicate.clone(),
                    },
                    vec![last],
                );
            }
            // flattening lowering: first edge binds the vertex, the rest close edges
            let (first, rest) = edges.split_first().expect("expand has at least one edge");
            let e = pattern.edge(*first);
            let (bound, dir) = bound_endpoint_and_direction(pattern, *first, *new_vertex);
            let first_op = if let Some(spec) = e.path {
                PhysicalOp::PathExpand {
                    src: vertex_alias(pattern, bound),
                    dst_alias: dst_alias.clone(),
                    edge_constraint: e.constraint.clone(),
                    direction: dir,
                    min_hops: spec.min_hops,
                    max_hops: spec.max_hops,
                    semantics: spec.semantics,
                    path_alias: edge_alias(pattern, *first),
                }
            } else {
                PhysicalOp::EdgeExpand {
                    src: vertex_alias(pattern, bound),
                    edge_alias: edge_alias(pattern, *first),
                    edge_constraint: e.constraint.clone(),
                    direction: dir,
                    dst_alias: dst_alias.clone(),
                    dst_constraint: nv.constraint.clone(),
                    dst_predicate: nv.predicate.clone(),
                    edge_predicate: e.predicate.clone(),
                }
            };
            last = phys.add(first_op, vec![last]);
            for eid in rest {
                let e = pattern.edge(*eid);
                let (bound, dir) = bound_endpoint_and_direction(pattern, *eid, *new_vertex);
                last = phys.add(
                    PhysicalOp::ExpandInto {
                        src: vertex_alias(pattern, bound),
                        dst: dst_alias.clone(),
                        edge_constraint: e.constraint.clone(),
                        direction: dir,
                        edge_alias: edge_alias(pattern, *eid),
                        edge_predicate: e.predicate.clone(),
                    },
                    vec![last],
                );
            }
            last
        }
        PatternStep::Join { left, right, keys } => {
            let l = pattern_plan_to_physical(pattern, left, strategy, phys);
            let r = pattern_plan_to_physical(pattern, right, strategy, phys);
            phys.add(
                PhysicalOp::HashJoin {
                    keys: keys.iter().map(|k| vertex_alias(pattern, *k)).collect(),
                    kind: gopt_gir::JoinType::Inner,
                },
                vec![l, r],
            )
        }
    }
}

/// Append `PropertyFetch` operators for every tagged pattern vertex, following the
/// `COLUMNS` recorded by `FieldTrim` (`None` = fetch everything).
pub fn append_property_fetch(
    pattern: &Pattern,
    mut last: PhysicalNodeId,
    phys: &mut PhysicalPlan,
) -> PhysicalNodeId {
    for v in pattern.vertices() {
        let Some(tag) = &v.tag else { continue };
        let props = match &v.columns {
            None => None,
            Some(cols) if cols.is_empty() => continue,
            Some(cols) => Some(cols.iter().cloned().collect::<Vec<_>>()),
        };
        last = phys.add(
            PhysicalOp::PropertyFetch {
                tag: tag.clone(),
                props,
            },
            vec![last],
        );
    }
    last
}

/// Lower a full logical plan to a physical plan. `plan_pattern` supplies, per
/// `MATCH_PATTERN`, the chosen pattern plan and the expansion strategy of the target
/// backend.
pub fn logical_to_physical(
    plan: &LogicalPlan,
    mut plan_pattern: impl FnMut(&Pattern) -> (PatternPlan, ExpandStrategy),
) -> Result<PhysicalPlan, OptError> {
    if plan.is_empty() {
        return Err(OptError::MalformedPlan("empty logical plan".into()));
    }
    let mut phys = PhysicalPlan::new();
    let mut mapping: Vec<Option<PhysicalNodeId>> = vec![None; plan.len()];
    for id in plan.topo_order() {
        let inputs: Vec<PhysicalNodeId> = plan
            .inputs(id)
            .iter()
            .map(|i| mapping[i.0].expect("producers lowered first"))
            .collect();
        let node = match plan.op(id) {
            LogicalOp::Match { pattern } => {
                let (pplan, strategy) = plan_pattern(pattern);
                let last = pattern_plan_to_physical(pattern, &pplan, strategy, &mut phys);
                append_property_fetch(pattern, last, &mut phys)
            }
            LogicalOp::Select { predicate } => phys.add(
                PhysicalOp::Select {
                    predicate: predicate.clone(),
                },
                inputs,
            ),
            LogicalOp::Project { items } => phys.add(
                PhysicalOp::Project {
                    items: items.clone(),
                },
                inputs,
            ),
            LogicalOp::Group { keys, aggs } => phys.add(
                PhysicalOp::HashGroup {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                },
                inputs,
            ),
            LogicalOp::Order { keys, limit } => phys.add(
                PhysicalOp::OrderLimit {
                    keys: keys.clone(),
                    limit: *limit,
                },
                inputs,
            ),
            LogicalOp::Limit { count } => phys.add(PhysicalOp::Limit { count: *count }, inputs),
            LogicalOp::Dedup { keys } => phys.add(PhysicalOp::Dedup { keys: keys.clone() }, inputs),
            LogicalOp::Join { kind, keys } => {
                if inputs.len() != 2 {
                    return Err(OptError::MalformedPlan(format!(
                        "JOIN expects 2 inputs, got {}",
                        inputs.len()
                    )));
                }
                phys.add(
                    PhysicalOp::HashJoin {
                        keys: keys.clone(),
                        kind: *kind,
                    },
                    inputs,
                )
            }
            LogicalOp::Union { .. } => phys.add(PhysicalOp::Union, inputs),
        };
        mapping[id.0] = Some(node);
    }
    phys.set_root(mapping[plan.root().0].expect("root lowered"));
    Ok(phys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbo::{GraphScopeSpec, Neo4jSpec, PatternPlanner, PhysicalSpec};
    use gopt_gir::pattern::PathSpec;
    use gopt_gir::types::TypeConstraint;
    use gopt_gir::{AggFunc, Expr, GraphIrBuilder, SortDir};
    use gopt_glogue::{GLogue, GlogueQuery};
    use gopt_graph::schema::fig6_schema;

    fn glogue() -> GLogue {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let product = schema.vertex_label("Product").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let purchases = schema.edge_label("Purchases").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let produced = schema.edge_label("ProducedIn").unwrap();
        GLogue::from_counts(
            schema,
            vec![(person, 1000.0), (product, 200.0), (place, 10.0)],
            vec![
                (person, knows, person, 5000.0),
                (person, purchases, product, 2000.0),
                (person, located, place, 1000.0),
                (product, produced, place, 200.0),
            ],
        )
    }

    fn triangle() -> Pattern {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let mut p = Pattern::new();
        let a = p.add_vertex_tagged("a", TypeConstraint::basic(person));
        let b = p.add_vertex_tagged("b", TypeConstraint::basic(person));
        let c = p.add_vertex_tagged("c", TypeConstraint::basic(place));
        p.add_edge_tagged(a, b, "k", TypeConstraint::basic(knows));
        p.add_edge(a, c, TypeConstraint::basic(located));
        p.add_edge(b, c, TypeConstraint::basic(located));
        p
    }

    #[test]
    fn flatten_strategy_emits_expand_into() {
        let gl = glogue();
        let gq = GlogueQuery::new(&gl);
        let spec = Neo4jSpec;
        let pattern = triangle();
        let pplan = PatternPlanner::new(&gq, &spec).plan(&pattern);
        let mut phys = PhysicalPlan::new();
        pattern_plan_to_physical(&pattern, &pplan, spec.expand_strategy(), &mut phys);
        assert_eq!(
            phys.count_op("Scan") + phys.count_op("HashJoin") / 2,
            phys.count_op("Scan")
        );
        assert!(phys.count_op("Scan") >= 1);
        assert!(
            phys.count_op("ExpandInto") >= 1 || phys.count_op("HashJoin") >= 1,
            "closing the triangle needs ExpandInto (or a join): {}",
            phys.encode()
        );
        assert_eq!(phys.count_op("ExpandIntersect"), 0);
    }

    #[test]
    fn intersect_strategy_emits_expand_intersect() {
        let gl = glogue();
        let gq = GlogueQuery::new(&gl);
        let spec = GraphScopeSpec;
        let pattern = triangle();
        let pplan = PatternPlanner::new(&gq, &spec).plan(&pattern);
        let mut phys = PhysicalPlan::new();
        pattern_plan_to_physical(&pattern, &pplan, spec.expand_strategy(), &mut phys);
        assert!(
            phys.count_op("ExpandIntersect") >= 1 || phys.count_op("HashJoin") >= 1,
            "multi-edge expansion should use ExpandIntersect: {}",
            phys.encode()
        );
        assert_eq!(phys.count_op("ExpandInto"), 0);
    }

    #[test]
    fn cbo_estimates_surface_in_plan_dump() {
        let gl = glogue();
        let gq = GlogueQuery::new(&gl);
        let spec = Neo4jSpec;
        let pattern = triangle();
        let pplan = PatternPlanner::new(&gq, &spec).plan(&pattern);
        assert!(pplan.est_rows > 0.0, "CBO plans carry cardinalities");
        let mut phys = PhysicalPlan::new();
        let root = pattern_plan_to_physical(&pattern, &pplan, spec.expand_strategy(), &mut phys);
        assert_eq!(phys.est_rows(root), Some(pplan.est_rows));
        assert!(
            phys.encode().contains("est_rows="),
            "plan dump should show CBO estimates: {}",
            phys.encode()
        );
    }

    #[test]
    fn property_fetch_follows_columns() {
        let mut pattern = triangle();
        let a = pattern.vertex_by_tag("a").unwrap();
        let c = pattern.vertex_by_tag("c").unwrap();
        pattern.vertex_mut(a).columns = Some(["name".to_string()].into_iter().collect());
        pattern.vertex_mut(c).columns = Some(Default::default());
        // b keeps None -> fetch all
        let mut phys = PhysicalPlan::new();
        let scan = phys.add(
            PhysicalOp::Scan {
                alias: "a".into(),
                constraint: TypeConstraint::all(),
                predicate: None,
            },
            vec![],
        );
        append_property_fetch(&pattern, scan, &mut phys);
        assert_eq!(
            phys.count_op("PropertyFetch"),
            2,
            "a (trimmed) and b (all), not c"
        );
        let enc = phys.encode();
        assert!(enc.contains("a.[name]"));
        assert!(enc.contains("b.*"));
    }

    #[test]
    fn path_edges_lower_to_path_expand() {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let mut p = Pattern::new();
        let a = p.add_vertex_tagged("a", TypeConstraint::basic(person));
        let b = p.add_vertex_tagged("b", TypeConstraint::basic(person));
        p.add_edge_full(
            a,
            b,
            Some("path".into()),
            TypeConstraint::basic(knows),
            None,
            Some(PathSpec::exact(3)),
        );
        let gl = glogue();
        let gq = GlogueQuery::new(&gl);
        let spec = Neo4jSpec;
        let pplan = PatternPlanner::new(&gq, &spec).plan(&p);
        let mut phys = PhysicalPlan::new();
        pattern_plan_to_physical(&p, &pplan, spec.expand_strategy(), &mut phys);
        assert_eq!(phys.count_op("PathExpand"), 1);
    }

    #[test]
    fn full_logical_plan_lowering() {
        let gl = glogue();
        let gq = GlogueQuery::new(&gl);
        let spec = GraphScopeSpec;
        let mut b = GraphIrBuilder::new();
        let m = b.match_pattern(triangle());
        let s = b.select(m, Expr::prop_eq("c", "name", "China"));
        let g = b.group(
            s,
            vec![(Expr::tag("a"), "a".into())],
            vec![(AggFunc::Count, Expr::tag("b"), "cnt".into())],
        );
        let o = b.order(g, vec![(Expr::tag("cnt"), SortDir::Desc)], Some(5));
        let plan = b.build(o);
        let phys = logical_to_physical(&plan, |p| {
            (
                PatternPlanner::new(&gq, &spec).plan(p),
                spec.expand_strategy(),
            )
        })
        .unwrap();
        assert!(phys.count_op("Scan") >= 1);
        assert_eq!(phys.count_op("Select"), 1);
        assert_eq!(phys.count_op("HashGroup"), 1);
        assert_eq!(phys.count_op("OrderLimit"), 1);
        // untrimmed pattern: every tagged vertex fetches all columns
        assert_eq!(phys.count_op("PropertyFetch"), 3);
        assert_eq!(phys.op(phys.root()).name(), "OrderLimit");
        // empty plans are rejected
        assert!(logical_to_physical(&LogicalPlan::new(), |_| unreachable!()).is_err());
    }
}
