//! # gopt-server — a concurrent query-serving frontend over GOpt
//!
//! The other crates in this workspace answer "given one query, what is the
//! best plan and what does it produce?". This crate answers the serving
//! question: many clients submitting queries *at the same time* against one
//! graph, one optimizer, and one bounded worker pool.
//!
//! A [`Server`] owns the shared machinery:
//!
//! * one [`PartitionedBackend`] and one shared
//!   [`MorselPool`](gopt_exec::MorselPool) — every admitted query's morsels
//!   are drained round-robin from the same pool, so concurrent queries
//!   interleave instead of serializing behind each other;
//! * a [plan cache](CacheMetrics) keyed by normalized query shape
//!   ([`gopt_core::plan_shape`]) and the current statistics version — repeat
//!   shapes skip the RBO/CBO pipeline entirely, and a statistics update
//!   ([`Server::update_stats`]) invalidates every plan optimized under the
//!   old snapshot;
//! * an [admission layer](AdmissionMetrics) bounding how many queries execute
//!   concurrently (FIFO wait queue, typed [`ServerError::Overloaded`] beyond
//!   its capacity).
//!
//! Clients interact through [`Session`]s ([`Server::session`]). A session
//! submits query text and gets back a [`QueryOutcome`] carrying the rows,
//! per-query [`ExecStats`](gopt_exec::ExecStats), and whether the plan came
//! from the cache — or a typed [`ServerError`]. Sessions track their
//! in-flight queries so [`Session::cancel_all`] can revoke them, whether they
//! are executing or still waiting for admission.
//!
//! ```
//! use gopt_server::{Server, ServerConfig};
//! use gopt_glogue::{GLogue, GLogueConfig};
//! use gopt_workloads::{generate_ldbc_graph, LdbcScale};
//! use std::sync::Arc;
//!
//! let graph = Arc::new(generate_ldbc_graph(&LdbcScale::tiny()));
//! let glogue = Arc::new(GLogue::build(&graph, &GLogueConfig::default()));
//! let server = Server::new(graph, glogue, ServerConfig::default()).unwrap();
//! let session = server.session();
//! let q = "MATCH (p:Person)-[:Knows]->(f:Person) RETURN p, f";
//! let cold = session.submit(q).unwrap();
//! let warm = session.submit(q).unwrap();
//! assert!(!cold.cache_hit);
//! assert!(warm.cache_hit);
//! assert_eq!(cold.result.rows(), warm.result.rows());
//! ```

#![warn(missing_docs)]

mod admission;
mod cache;

pub use admission::AdmissionMetrics;
pub use cache::CacheMetrics;

use admission::Admission;
use cache::PlanCache;
use gopt_core::{plan_shape, GOpt, GOptConfig, GraphScopeSpec, OptError, INITIAL_STATS_VERSION};
use gopt_exec::{Backend, ExecError, ExecMode, ExecResult, PartitionedBackend, QueryContext};
use gopt_gir::physical::PhysicalPlan;
use gopt_glogue::{GLogue, GLogueConfig, GlogueQuery};
use gopt_graph::{GraphStats, PartitionerSpec, PropertyGraph};
use gopt_parser::{parse_cypher, ParseError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything that can go wrong serving one query, typed by pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The optimizer rejected the logical plan.
    Optimize(OptError),
    /// Execution failed (limit exceeded, fault injected, worker panicked, …).
    Exec(ExecError),
    /// The concurrency limit and its wait queue were both full; the query was
    /// rejected without executing. Safe to retry later.
    Overloaded {
        /// The server's concurrent-execution limit.
        max_concurrent: usize,
        /// The wait-queue capacity that was exhausted.
        queue_capacity: usize,
    },
    /// The server was constructed with an unusable configuration.
    Config(String),
    /// A graph image failed to load (bad magic, wrong version, truncation,
    /// checksum mismatch, …); the server keeps serving its current graph.
    /// Carries the rendered [`gopt_graph::ImageError`] ([`ServerError`] is
    /// `Clone + Eq`; the underlying error holds an `io::Error` and is not).
    Image(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Parse(e) => write!(f, "parse error: {e}"),
            ServerError::Optimize(e) => write!(f, "optimizer error: {e}"),
            ServerError::Exec(e) => write!(f, "execution error: {e}"),
            ServerError::Overloaded {
                max_concurrent,
                queue_capacity,
            } => write!(
                f,
                "server overloaded: {max_concurrent} queries running and \
                 {queue_capacity} waiting"
            ),
            ServerError::Config(msg) => write!(f, "invalid server config: {msg}"),
            ServerError::Image(e) => write!(f, "graph image error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Graph partitions of the backing [`PartitionedBackend`].
    pub partitions: usize,
    /// Vertex placement strategy for the backing shards (the
    /// `GOPT_PARTITIONER` environment variable overrides this).
    pub partitioner: PartitionerSpec,
    /// Replicate the out-adjacency of this many highest-degree vertices into
    /// every shard (0 = no replication).
    pub replicate_hubs: usize,
    /// Threads of the shared morsel pool (1 = inline execution).
    pub threads: usize,
    /// Rows per batch for the vectorized engine; `None` keeps the engine
    /// default.
    pub batch_size: Option<usize>,
    /// Maximum queries executing at once.
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot before new ones are rejected with
    /// [`ServerError::Overloaded`].
    pub queue_capacity: usize,
    /// Plan-cache entries to keep (0 disables caching).
    pub plan_cache_capacity: usize,
    /// Intermediate-record limit applied to queries that don't set their own
    /// via [`SubmitOptions::record_limit`].
    pub default_record_limit: Option<u64>,
    /// Optimizer pipeline switches, applied to every plan the server builds.
    pub opt: GOptConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            partitions: 2,
            partitioner: PartitionerSpec::default(),
            replicate_hubs: 0,
            threads: 2,
            batch_size: None,
            max_concurrent: 8,
            queue_capacity: 16,
            plan_cache_capacity: 64,
            default_record_limit: None,
            opt: GOptConfig::default(),
        }
    }
}

/// Per-query knobs a client may set when submitting.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Intermediate-record limit; overrides the server default when set.
    pub record_limit: Option<u64>,
    /// Wall-clock deadline in milliseconds, enforced while queued and while
    /// executing.
    pub deadline_millis: Option<u64>,
    /// Intermediate-state memory budget in bytes.
    pub budget_bytes: Option<u64>,
}

/// What a successful submission returns.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Rows, tag map and per-query [`ExecStats`](gopt_exec::ExecStats).
    pub result: ExecResult,
    /// Whether the physical plan came from the plan cache.
    pub cache_hit: bool,
    /// The statistics version the plan was optimized under.
    pub stats_version: u64,
    /// The generic (parameterized) physical plan, shared with the cache.
    /// Comparison constants appear as [`Expr::Param`](gopt_gir::Expr) slots.
    pub plan: Arc<PhysicalPlan>,
    /// The plan that was actually executed: [`plan`](Self::plan) with this
    /// query's constants bound back in. The same `Arc` as `plan` when the
    /// query has no extractable constants.
    pub exec_plan: Arc<PhysicalPlan>,
}

/// The swappable serving state: which graph is being served, the glogue
/// built over it, and the statistics snapshot + version the optimizer uses.
/// Held behind one mutex so a graph swap ([`Server::load_image`]) and its
/// stats-version bump are atomic — a concurrent submit can never observe the
/// new graph with the old version (which would let the plan cache serve plans
/// optimized for the previous graph).
struct ServerState {
    graph: Arc<PropertyGraph>,
    glogue: Arc<GLogue>,
    stats_version: u64,
    stats: Option<Arc<GraphStats>>,
}

struct ServerInner {
    state: Mutex<ServerState>,
    spec: GraphScopeSpec,
    config: ServerConfig,
    backend: PartitionedBackend,
    cache: Mutex<PlanCache>,
    admission: Admission,
    next_session: AtomicU64,
}

/// The shared serving frontend: one optimizer + backend + worker pool,
/// many concurrent [`Session`]s.
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Stand up a server over `graph` using `glogue` for cardinality
    /// estimation. Builds the partitioned backend and warms the shared worker
    /// pool so the first query doesn't pay setup cost.
    pub fn new(
        graph: Arc<PropertyGraph>,
        glogue: Arc<GLogue>,
        config: ServerConfig,
    ) -> Result<Server, ServerError> {
        let mut backend = PartitionedBackend::new(config.partitions)
            .map_err(|e| ServerError::Config(format!("bad partition count: {e}")))?
            .with_threads(config.threads)
            .with_partitioner(config.partitioner)
            .with_hub_replication(config.replicate_hubs);
        if let Some(batch_size) = config.batch_size {
            backend = backend.with_mode(ExecMode::Batched { batch_size });
        }
        // shard the graph and spin up the worker pool ahead of the first
        // query; an invalid GOPT_PARTITIONER surfaces here, at startup
        backend.prepare(&graph).map_err(ServerError::Exec)?;
        let _ = backend.pool();
        let inner = ServerInner {
            state: Mutex::new(ServerState {
                graph,
                glogue,
                stats_version: INITIAL_STATS_VERSION,
                stats: None,
            }),
            spec: GraphScopeSpec,
            admission: Admission::new(config.max_concurrent, config.queue_capacity),
            cache: Mutex::new(PlanCache::new(config.plan_cache_capacity)),
            backend,
            config,
            next_session: AtomicU64::new(0),
        };
        Ok(Server {
            inner: Arc::new(inner),
        })
    }

    /// Boot a server directly from a graph image written by
    /// [`gopt_graph::write_image`]: the graph, the pre-built partitioning and
    /// the statistics all come out of the image, so startup skips sharding,
    /// property scattering and stats scans. The glogue is rebuilt over the
    /// loaded graph with `glogue_cfg` (it is sampling-based and cheap at the
    /// pattern sizes the optimizer uses). The image's statistics are
    /// installed under a bumped version, exactly as [`Server::update_stats`]
    /// would — so the stats version of an image-booted server is never
    /// [`INITIAL_STATS_VERSION`].
    pub fn from_image(
        path: &std::path::Path,
        glogue_cfg: &GLogueConfig,
        config: ServerConfig,
    ) -> Result<Server, ServerError> {
        let img = gopt_graph::load_image(path).map_err(|e| ServerError::Image(e.to_string()))?;
        let glogue = Arc::new(GLogue::build(&img.graph, glogue_cfg));
        let server = Server::new(Arc::clone(&img.graph), glogue, config)?;
        // replace the freshly built shards with the image's (same layout,
        // but avoids paying the shard build twice on mismatched partitions)
        if img.partitioned.partitions() == server.inner.config.partitions {
            server
                .inner
                .backend
                .install_sharded(Arc::clone(&img.partitioned))
                .map_err(ServerError::Exec)?;
        }
        server.update_stats(img.stats);
        Ok(server)
    }

    /// Swap the served graph for one loaded from a graph image, atomically
    /// with a statistics-version bump: every plan cached for the previous
    /// graph becomes stale (dropped lazily on its next lookup) and queries
    /// already executing finish against the graph they started on. Returns
    /// the new statistics version.
    pub fn load_image(
        &self,
        path: &std::path::Path,
        glogue_cfg: &GLogueConfig,
    ) -> Result<u64, ServerError> {
        let img = gopt_graph::load_image(path).map_err(|e| ServerError::Image(e.to_string()))?;
        let glogue = Arc::new(GLogue::build(&img.graph, glogue_cfg));
        if img.partitioned.partitions() == self.inner.config.partitions {
            self.inner
                .backend
                .install_sharded(Arc::clone(&img.partitioned))
                .map_err(ServerError::Exec)?;
        } else {
            // layouts differ: fall back to re-sharding the loaded graph so
            // the backend's cache is primed for it either way
            self.inner
                .backend
                .prepare(&img.graph)
                .map_err(ServerError::Exec)?;
        }
        let mut state = self.inner.state.lock();
        state.graph = img.graph;
        state.glogue = glogue;
        state.stats = Some(img.stats);
        state.stats_version += 1;
        Ok(state.stats_version)
    }

    /// Open a new session. Sessions are cheap and independently cancellable.
    pub fn session(&self) -> Session {
        Session {
            inner: Arc::clone(&self.inner),
            id: self.inner.next_session.fetch_add(1, Ordering::Relaxed),
            active: Arc::new(Mutex::new(Vec::new())),
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Install a new statistics snapshot for the optimizer and bump the
    /// statistics version, invalidating every cached plan lazily (each is
    /// dropped on its next lookup). Returns the new version.
    pub fn update_stats(&self, stats: Arc<GraphStats>) -> u64 {
        let mut state = self.inner.state.lock();
        state.stats_version += 1;
        state.stats = Some(stats);
        state.stats_version
    }

    /// Bump the statistics version without installing a snapshot — every
    /// cached plan becomes stale, as after [`Server::update_stats`]. Returns
    /// the new version.
    pub fn bump_stats_version(&self) -> u64 {
        let mut state = self.inner.state.lock();
        state.stats_version += 1;
        state.stats_version
    }

    /// The current statistics version (starts at
    /// [`INITIAL_STATS_VERSION`]).
    pub fn stats_version(&self) -> u64 {
        self.inner.state.lock().stats_version
    }

    /// Drop every cached plan.
    pub fn clear_plan_cache(&self) {
        self.inner.cache.lock().clear();
    }

    /// Plan-cache hit/miss/invalidation counters and occupancy.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.inner.cache.lock().metrics()
    }

    /// Admission counters: running, queued, admitted, rejected, …
    pub fn admission_metrics(&self) -> AdmissionMetrics {
        self.inner.admission.metrics()
    }

    /// The graph this server currently serves (swappable via
    /// [`Server::load_image`], hence returned by clone).
    pub fn graph(&self) -> Arc<PropertyGraph> {
        Arc::clone(&self.inner.state.lock().graph)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.inner.config)
            .field("stats_version", &self.stats_version())
            .field("cache", &self.cache_metrics())
            .field("admission", &self.admission_metrics())
            .finish()
    }
}

type ActiveList = Arc<Mutex<Vec<(u64, QueryContext)>>>;

/// Removes a query from its session's active list when the query finishes,
/// on every path (success, typed error, panic unwinding through `submit`).
struct ActiveGuard<'a> {
    list: &'a ActiveList,
    qid: u64,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.list.lock().retain(|(qid, _)| *qid != self.qid);
    }
}

/// A client handle onto a [`Server`]: submit queries, observe and cancel the
/// session's in-flight work. Clones share the same session identity.
#[derive(Clone)]
pub struct Session {
    inner: Arc<ServerInner>,
    id: u64,
    active: ActiveList,
    seq: Arc<AtomicU64>,
}

impl Session {
    /// This session's server-assigned id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Queries of this session currently queued or executing.
    pub fn in_flight(&self) -> usize {
        self.active.lock().len()
    }

    /// Cancel every queued or executing query of this session. Each affected
    /// submission returns a typed cancellation error; queries of other
    /// sessions are untouched.
    pub fn cancel_all(&self) {
        for (_, ctx) in self.active.lock().iter() {
            ctx.cancel();
        }
        // wake queued queries so they notice the cancellation immediately
        self.inner.admission.poke();
    }

    /// Submit a Cypher query with default per-query options.
    pub fn submit(&self, text: &str) -> Result<QueryOutcome, ServerError> {
        self.submit_with(text, &SubmitOptions::default())
    }

    /// Submit a Cypher query: parse → plan-cache lookup (optimizing on a
    /// miss) → admission → execution on the shared pool.
    pub fn submit_with(
        &self,
        text: &str,
        opts: &SubmitOptions,
    ) -> Result<QueryOutcome, ServerError> {
        let inner = &*self.inner;
        // capture the graph, glogue, statistics snapshot and stats version
        // atomically so the cache entry we read or write is tagged with the
        // state we optimize under — a concurrent update_stats() or
        // load_image() can't slip between them
        let (graph, glogue, stats_version, stats_snapshot) = {
            let state = inner.state.lock();
            (
                Arc::clone(&state.graph),
                Arc::clone(&state.glogue),
                state.stats_version,
                state.stats.clone(),
            )
        };
        let logical = parse_cypher(text, graph.schema()).map_err(ServerError::Parse)?;
        // normalize comparison constants into parameter slots so queries
        // differing only in a constant share one cache entry; the extracted
        // values are bound back into a clone of the cached plan below
        let (parameterized, params) = logical.parameterize();
        let shape = plan_shape(&parameterized);

        let cached = inner.cache.lock().lookup(&shape, stats_version);
        let cache_hit = cached.is_some();
        let plan = match cached {
            Some(plan) => plan,
            None => {
                // optimize outside the cache lock: planning is the expensive
                // part and must not serialize concurrent cache users
                let gq = GlogueQuery::new(&glogue);
                let mut gopt = GOpt::new(graph.schema(), &gq, &inner.spec)
                    .with_config(inner.config.opt.clone());
                if let Some(stats) = stats_snapshot {
                    gopt = gopt.with_stats(stats);
                }
                let plan = Arc::new(
                    gopt.optimize(&parameterized)
                        .map_err(ServerError::Optimize)?,
                );
                inner
                    .cache
                    .lock()
                    .insert(shape, stats_version, Arc::clone(&plan));
                plan
            }
        };
        // bind this query's constants into the generic plan (cheap clone);
        // constant-free queries execute the cached plan directly
        let exec_plan = if params.is_empty() {
            Arc::clone(&plan)
        } else {
            Arc::new(plan.bind_params(&params))
        };

        let mut ctx = QueryContext::new()
            .with_record_limit(opts.record_limit.or(inner.config.default_record_limit));
        if let Some(millis) = opts.deadline_millis {
            ctx = ctx.with_deadline_millis(millis);
        }
        if let Some(bytes) = opts.budget_bytes {
            ctx = ctx.with_budget_bytes(bytes);
        }

        let qid = self.seq.fetch_add(1, Ordering::Relaxed);
        self.active.lock().push((qid, ctx.clone()));
        let _guard = ActiveGuard {
            list: &self.active,
            qid,
        };

        let _permit = inner.admission.acquire(&ctx)?;
        let result = inner
            .backend
            .execute_with_ctx(&graph, &exec_plan, &ctx)
            .map_err(ServerError::Exec)?;
        Ok(QueryOutcome {
            result,
            cache_hit,
            stats_version,
            plan,
            exec_plan,
        })
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_glogue::GLogueConfig;
    use gopt_workloads::{generate_ldbc_graph, LdbcScale};

    fn test_server(config: ServerConfig) -> Server {
        let graph = Arc::new(generate_ldbc_graph(&LdbcScale::tiny()));
        let glogue = Arc::new(GLogue::build(
            &graph,
            &GLogueConfig {
                max_pattern_vertices: 3,
                max_anchors: Some(300),
                seed: 3,
            },
        ));
        Server::new(graph, glogue, config).unwrap()
    }

    const Q: &str = "MATCH (p:Person)-[:Knows]->(f:Person) RETURN p, f";

    #[test]
    fn cache_serves_identical_plans_and_update_stats_invalidates() {
        let server = test_server(ServerConfig::default());
        let session = server.session();
        let cold = session.submit(Q).unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.stats_version, 0);
        assert!(!cold.result.is_empty());

        let warm = session.submit(Q).unwrap();
        assert!(warm.cache_hit);
        // the very same optimized plan object is reused
        assert!(Arc::ptr_eq(&cold.plan, &warm.plan));
        assert_eq!(cold.result.rows(), warm.result.rows());
        let m = server.cache_metrics();
        assert_eq!((m.hits, m.misses, m.len), (1, 1, 1));

        // a stats bump makes the cached plan stale: next submit re-optimizes
        let v = server.update_stats(GraphStats::shared(&server.graph()));
        assert_eq!(v, 1);
        let reopt = session.submit(Q).unwrap();
        assert!(!reopt.cache_hit);
        assert_eq!(reopt.stats_version, 1);
        assert_eq!(reopt.result.rows(), cold.result.rows());
        assert_eq!(server.cache_metrics().invalidations, 1);
    }

    #[test]
    fn literal_variants_share_one_cache_entry_with_correct_rows() {
        let server = test_server(ServerConfig::default());
        let session = server.session();
        let q = |cutoff: i64| format!("MATCH (p:Person) WHERE p.birthday > {cutoff} RETURN p");

        // low cutoff admits more people than a high one; both must answer
        // correctly even though only the first submission runs the optimizer
        let cold = session.submit(&q(8000)).unwrap();
        assert!(!cold.cache_hit);
        let variant = session.submit(&q(20000)).unwrap();
        assert!(variant.cache_hit, "literal variant must hit the cache");
        assert!(Arc::ptr_eq(&cold.plan, &variant.plan));
        assert!(cold.plan.has_params(), "cached plan stays generic");
        // what actually ran is the bound copy, fully concrete
        assert!(!cold.exec_plan.has_params(), "executed plan is fully bound");
        assert!(!Arc::ptr_eq(&cold.plan, &cold.exec_plan));
        assert!(
            cold.result.rows().len() > variant.result.rows().len(),
            "each variant must be answered with its own constant: {} vs {}",
            cold.result.rows().len(),
            variant.result.rows().len()
        );
        let replay = session.submit(&q(8000)).unwrap();
        assert!(replay.cache_hit);
        assert_eq!(replay.result.rows(), cold.result.rows());

        let m = server.cache_metrics();
        assert_eq!((m.hits, m.misses, m.len), (2, 1, 1));
    }

    #[test]
    fn typed_errors_for_parse_optimize_and_execution_failures() {
        let server = test_server(ServerConfig {
            plan_cache_capacity: 0,
            ..ServerConfig::default()
        });
        let session = server.session();
        match session.submit("MATCH (p:NoSuchLabel) RETURN p") {
            Err(ServerError::Parse(_)) => {}
            other => panic!("expected Parse error, got {other:?}"),
        }
        let tight = SubmitOptions {
            record_limit: Some(1),
            ..SubmitOptions::default()
        };
        match session.submit_with(Q, &tight) {
            Err(ServerError::Exec(ExecError::LimitExceeded(_))) => {}
            other => panic!("expected a limit error, got {other:?}"),
        }
        // the failed query released its slot and left the session's registry
        assert_eq!(session.in_flight(), 0);
        assert_eq!(server.admission_metrics().running, 0);
        // and the server still serves queries afterwards
        assert!(!session.submit(Q).unwrap().result.is_empty());
    }

    #[test]
    fn cancel_all_revokes_only_this_sessions_queries() {
        let server = test_server(ServerConfig::default());
        let victim = server.session();
        let bystander = server.session();
        victim.cancel_all(); // no-op on an idle session
        let baseline = bystander.submit(Q).unwrap();

        // pre-cancel the victim's context path by cancelling mid-flight is
        // racy on one CPU; instead verify the registry bookkeeping directly:
        // a cancelled context registered as active fails with the typed error
        let out = std::thread::scope(|s| {
            let v = &victim;
            let h = s.spawn(move || {
                // cancel from another thread while this submit runs; the
                // query either completes first or reports Cancelled — both
                // leave the session clean
                v.submit(Q)
            });
            victim.cancel_all();
            h.join().unwrap()
        });
        match out {
            Ok(outcome) => assert_eq!(outcome.result.rows(), baseline.result.rows()),
            Err(ServerError::Exec(ExecError::LimitExceeded(_))) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
        assert_eq!(victim.in_flight(), 0);
        // the bystander session was never affected
        assert_eq!(
            bystander.submit(Q).unwrap().result.rows(),
            baseline.result.rows()
        );
    }
}
