//! LRU plan cache keyed by query shape, invalidated by statistics version.
//!
//! The cache stores one optimized [`PhysicalPlan`] per normalized query shape
//! (see [`gopt_core::plan_shape`]). Each entry remembers the
//! [`GraphStats`](gopt_glogue::stats::GraphStats) snapshot version it was
//! optimized under; a lookup whose current version differs evicts the entry
//! and reports a miss, so a stale plan is never served after statistics
//! change. Capacity is bounded with least-recently-used eviction.

use gopt_gir::physical::PhysicalPlan;
use std::collections::HashMap;
use std::sync::Arc;

/// Point-in-time cache counters, exposed for tests and monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups that returned a plan optimized under the current statistics.
    pub hits: u64,
    /// Lookups that found nothing usable (absent or stale).
    pub misses: u64,
    /// Entries dropped because their statistics snapshot was outdated.
    pub invalidations: u64,
    /// Entries dropped to make room under the capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum number of entries the cache may hold.
    pub capacity: usize,
}

struct Entry {
    plan: Arc<PhysicalPlan>,
    stats_version: u64,
    last_used: u64,
}

pub(crate) struct PlanCache {
    capacity: usize,
    entries: HashMap<Arc<str>, Entry>,
    stamp: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            entries: HashMap::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        }
    }

    /// Fetch the cached plan for `shape` if it was optimized under
    /// `stats_version`; a version mismatch drops the stale entry.
    pub(crate) fn lookup(&mut self, shape: &str, stats_version: u64) -> Option<Arc<PhysicalPlan>> {
        match self.entries.get_mut(shape) {
            Some(e) if e.stats_version == stats_version => {
                self.stamp += 1;
                e.last_used = self.stamp;
                self.hits += 1;
                Some(Arc::clone(&e.plan))
            }
            Some(_) => {
                self.entries.remove(shape);
                self.invalidations += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Cache `plan` for `shape` as optimized under `stats_version`, evicting
    /// the least-recently-used entry if the cache is full.
    pub(crate) fn insert(&mut self, shape: Arc<str>, stats_version: u64, plan: Arc<PhysicalPlan>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&shape) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| Arc::clone(k))
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.stamp += 1;
        self.entries.insert(
            shape,
            Entry {
                plan,
                stats_version,
                last_used: self.stamp,
            },
        );
    }

    /// Drop every entry (explicit invalidation, e.g. after a schema change).
    pub(crate) fn clear(&mut self) {
        self.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }

    pub(crate) fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan::new())
    }

    fn shape(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn version_mismatch_invalidates_instead_of_serving_stale() {
        let mut c = PlanCache::new(4);
        assert!(c.lookup("q1", 0).is_none());
        c.insert(shape("q1"), 0, plan());
        assert!(c.lookup("q1", 0).is_some());
        // stats moved on: the old entry must not be served, and is dropped
        assert!(c.lookup("q1", 1).is_none());
        let m = c.metrics();
        assert_eq!((m.hits, m.misses, m.invalidations, m.len), (1, 2, 1, 0));
    }

    #[test]
    fn lru_eviction_keeps_len_within_capacity() {
        let mut c = PlanCache::new(2);
        c.insert(shape("a"), 0, plan());
        c.insert(shape("b"), 0, plan());
        // touch `a` so `b` becomes the LRU victim
        assert!(c.lookup("a", 0).is_some());
        c.insert(shape("c"), 0, plan());
        assert_eq!(c.metrics().len, 2);
        assert_eq!(c.metrics().evictions, 1);
        assert!(c.lookup("a", 0).is_some());
        assert!(c.lookup("b", 0).is_none());
        assert!(c.lookup("c", 0).is_some());
        // re-inserting an existing shape replaces in place, no eviction
        c.insert(shape("c"), 0, plan());
        assert_eq!(c.metrics().evictions, 1);
        // zero capacity never stores anything
        let mut z = PlanCache::new(0);
        z.insert(shape("a"), 0, plan());
        assert_eq!(z.metrics().len, 0);
    }
}
