//! Admission control: a concurrency limit with a bounded FIFO wait queue.
//!
//! The server multiplexes every admitted query over one shared
//! [`MorselPool`](gopt_exec::MorselPool); the pool already schedules admitted
//! queries fairly (round-robin over their morsel phases), so admission's job
//! is only to bound *how many* queries run at once and *how many* may wait.
//! Tickets are FIFO: the queue head is admitted as soon as a slot frees.
//! Beyond `queue_capacity` waiters, new queries are rejected immediately with
//! a typed overload error instead of piling up.
//!
//! A queued query keeps honouring its [`QueryContext`]: cancellation or an
//! expired deadline while waiting removes the ticket from the queue (the
//! queries behind it move up) and surfaces the same typed error the engines
//! would raise mid-flight.

use crate::ServerError;
use gopt_exec::{ExecError, QueryContext};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Cadence at which a queued query re-checks its context while no slot has
/// been signalled; bounds how stale a cancellation/deadline can go unnoticed.
const WAIT_TICK: Duration = Duration::from_millis(1);

#[derive(Debug, Default)]
struct AdmState {
    running: usize,
    queue: VecDeque<u64>,
    next_ticket: u64,
    admitted: u64,
    rejected: u64,
    enqueued: u64,
    abandoned: u64,
    peak_queued: usize,
}

/// Point-in-time admission counters, exposed for tests and monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionMetrics {
    /// Queries currently executing.
    pub running: usize,
    /// Queries currently waiting for a slot.
    pub queued: usize,
    /// Total queries ever admitted.
    pub admitted: u64,
    /// Total queries rejected because the wait queue was full.
    pub rejected: u64,
    /// Total queries that had to wait in the queue before admission.
    pub enqueued: u64,
    /// Total queued queries that left the queue unadmitted (cancelled or
    /// deadline-expired while waiting).
    pub abandoned: u64,
    /// High-water mark of the wait-queue length.
    pub peak_queued: usize,
}

pub(crate) struct Admission {
    limit: usize,
    queue_capacity: usize,
    state: Mutex<AdmState>,
    cv: Condvar,
}

/// RAII slot: dropping it frees the slot and wakes the queue head.
pub(crate) struct Permit<'a>(&'a Admission);

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock();
        st.running -= 1;
        drop(st);
        self.0.cv.notify_all();
    }
}

impl Admission {
    pub(crate) fn new(limit: usize, queue_capacity: usize) -> Admission {
        Admission {
            limit: limit.max(1),
            queue_capacity,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        }
    }

    /// Wake every waiter so it re-checks its context — called after a
    /// session-level cancellation so queued queries notice promptly.
    pub(crate) fn poke(&self) {
        self.cv.notify_all();
    }

    pub(crate) fn metrics(&self) -> AdmissionMetrics {
        let st = self.state.lock();
        AdmissionMetrics {
            running: st.running,
            queued: st.queue.len(),
            admitted: st.admitted,
            rejected: st.rejected,
            enqueued: st.enqueued,
            abandoned: st.abandoned,
            peak_queued: st.peak_queued,
        }
    }

    /// Acquire an execution slot, waiting FIFO behind earlier arrivals.
    ///
    /// Fails fast with [`ServerError::Overloaded`] when the wait queue is
    /// already at capacity, and with the context's typed limit error if `ctx`
    /// is cancelled or expires while queued.
    pub(crate) fn acquire(&self, ctx: &QueryContext) -> Result<Permit<'_>, ServerError> {
        let mut st = self.state.lock();
        // fast path: a free slot and nobody waiting ahead of us
        if st.running < self.limit && st.queue.is_empty() {
            st.running += 1;
            st.admitted += 1;
            return Ok(Permit(self));
        }
        if st.queue.len() >= self.queue_capacity {
            st.rejected += 1;
            return Err(ServerError::Overloaded {
                max_concurrent: self.limit,
                queue_capacity: self.queue_capacity,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        st.enqueued += 1;
        st.peak_queued = st.peak_queued.max(st.queue.len());
        loop {
            if st.running < self.limit && st.queue.front() == Some(&ticket) {
                st.queue.pop_front();
                st.running += 1;
                st.admitted += 1;
                drop(st);
                // a second slot may be free for the next ticket
                self.cv.notify_all();
                return Ok(Permit(self));
            }
            if let Err(reason) = ctx.check() {
                st.queue.retain(|t| *t != ticket);
                st.abandoned += 1;
                drop(st);
                self.cv.notify_all();
                return Err(ServerError::Exec(ExecError::LimitExceeded(reason)));
            }
            // bounded wait so cancellation/deadline are honoured even without
            // a wake-up; a shorter remaining deadline shortens the tick
            let tick = match ctx.time_left() {
                Some(left) if left < WAIT_TICK => left.max(Duration::from_micros(100)),
                _ => WAIT_TICK,
            };
            (st, _) = self.cv.wait_for(st, tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn slots_hand_over_fifo_and_metrics_track() {
        let adm = Arc::new(Admission::new(1, 4));
        let ctx = QueryContext::new();
        let p1 = adm.acquire(&ctx).unwrap();
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || {
            let ctx = QueryContext::new();
            let _p = adm2.acquire(&ctx).unwrap();
        });
        // the waiter queues; releasing our permit admits it
        while adm.metrics().queued == 0 {
            std::thread::yield_now();
        }
        drop(p1);
        waiter.join().unwrap();
        let m = adm.metrics();
        assert_eq!(m.admitted, 2);
        assert_eq!(m.enqueued, 1);
        assert_eq!(m.running, 0);
        assert_eq!(m.rejected, 0);
    }

    #[test]
    fn full_queue_rejects_and_cancelled_waiters_leave() {
        let adm = Admission::new(1, 0);
        let ctx = QueryContext::new();
        let _p = adm.acquire(&ctx).unwrap();
        // zero queue capacity: a second query is rejected immediately
        match adm.acquire(&ctx) {
            Err(ServerError::Overloaded { queue_capacity, .. }) => assert_eq!(queue_capacity, 0),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // a cancelled context never admits and reports the typed error
        let adm2 = Admission::new(1, 4);
        let _hold = adm2.acquire(&QueryContext::new()).unwrap();
        let cancelled = QueryContext::new();
        cancelled.cancel();
        match adm2.acquire(&cancelled) {
            Err(ServerError::Exec(ExecError::LimitExceeded(_))) => {}
            other => panic!("expected a limit error, got {other:?}"),
        }
        assert_eq!(adm2.metrics().abandoned, 1);
    }
}
