//! A small shared tokenizer used by both front-ends.

use crate::error::ParseError;

/// Token kinds shared by the Cypher and Gremlin grammars.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`MATCH`, `Person`, `v1`, `out`, ...).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single- or double-quoted string literal.
    Str(String),
    /// Any punctuation / operator symbol (`(`, `)`, `-`, `->`, `<=`, `..`, ...).
    Sym(String),
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A token with its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the input.
    pub pos: usize,
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' || c == '$' || c == '@' {
            let mut j = i + 1;
            while j < bytes.len()
                && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
            {
                j += 1;
            }
            out.push(Spanned {
                token: Token::Ident(input[i..j].to_string()),
                pos: start,
            });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut is_float = false;
            while j < bytes.len() {
                let cj = bytes[j] as char;
                if cj.is_ascii_digit() {
                    j += 1;
                } else if cj == '.'
                    && !is_float
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                } else {
                    break;
                }
            }
            let text = &input[i..j];
            let token = if is_float {
                Token::Float(
                    text.parse()
                        .map_err(|_| ParseError::new("bad float", start))?,
                )
            } else {
                Token::Int(
                    text.parse()
                        .map_err(|_| ParseError::new("bad integer", start))?,
                )
            };
            out.push(Spanned { token, pos: start });
            i = j;
        } else if c == '\'' || c == '"' {
            let quote = c;
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] as char != quote {
                j += 1;
            }
            if j >= bytes.len() {
                return Err(ParseError::new("unterminated string literal", start));
            }
            out.push(Spanned {
                token: Token::Str(input[i + 1..j].to_string()),
                pos: start,
            });
            i = j + 1;
        } else {
            // multi-character symbols first
            let two = if i + 1 < bytes.len() {
                &input[i..i + 2]
            } else {
                ""
            };
            let sym = match two {
                "->" | "<-" | "<=" | ">=" | "<>" | ".." | "!=" => two.to_string(),
                _ => c.to_string(),
            };
            i += sym.len();
            out.push(Spanned {
                token: Token::Sym(sym),
                pos: start,
            });
        }
    }
    Ok(out)
}

/// A cursor over tokens with convenience accessors used by both parsers.
#[derive(Debug, Clone)]
pub struct Cursor {
    tokens: Vec<Spanned>,
    index: usize,
}

impl Cursor {
    /// Create a cursor over the tokens of `input`.
    pub fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Cursor {
            tokens: tokenize(input)?,
            index: 0,
        })
    }

    /// Byte position of the current token (or end of input).
    pub fn pos(&self) -> usize {
        self.tokens.get(self.index).map_or(usize::MAX, |t| t.pos)
    }

    /// Whether all tokens have been consumed.
    pub fn at_end(&self) -> bool {
        self.index >= self.tokens.len()
    }

    /// Peek at the current token.
    pub fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|t| &t.token)
    }

    /// Peek `n` tokens ahead.
    pub fn peek_ahead(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.index + n).map(|t| &t.token)
    }

    #[allow(clippy::should_implement_trait)]
    /// Consume and return the current token.
    pub fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.index).map(|t| t.token.clone());
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    /// Whether the current token is the given keyword (case-insensitive identifier).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword if present; returns whether it was consumed.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.index += 1;
            true
        } else {
            false
        }
    }

    /// Whether the current token is the given symbol.
    pub fn is_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Token::Sym(s)) if s == sym)
    }

    /// Consume the given symbol if present; returns whether it was consumed.
    pub fn eat_sym(&mut self, sym: &str) -> bool {
        if self.is_sym(sym) {
            self.index += 1;
            true
        } else {
            false
        }
    }

    /// Consume the given symbol or fail.
    pub fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected '{sym}', found {:?}", self.peek()),
                self.pos(),
            ))
        }
    }

    /// Consume an identifier or fail.
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(
                format!("expected identifier, found {other:?}"),
                self.pos(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_cypher_fragments() {
        let toks = tokenize("MATCH (a:Person)-[e:KNOWS*1..3]->(b) WHERE a.id >= 10.5").unwrap();
        let kinds: Vec<String> = toks
            .iter()
            .map(|t| match &t.token {
                Token::Ident(s) => format!("I:{s}"),
                Token::Int(i) => format!("N:{i}"),
                Token::Float(f) => format!("F:{f}"),
                Token::Str(s) => format!("S:{s}"),
                Token::Sym(s) => format!("Y:{s}"),
            })
            .collect();
        assert!(kinds.contains(&"I:MATCH".to_string()));
        assert!(kinds.contains(&"Y:->".to_string()));
        assert!(kinds.contains(&"Y:..".to_string()));
        assert!(kinds.contains(&"Y:>=".to_string()));
        assert!(kinds.contains(&"F:10.5".to_string()));
    }

    #[test]
    fn tokenizes_strings_and_detects_errors() {
        let toks = tokenize("has('name', \"China\")").unwrap();
        assert!(toks.iter().any(|t| t.token == Token::Str("name".into())));
        assert!(toks.iter().any(|t| t.token == Token::Str("China".into())));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn cursor_navigation() {
        let mut c = Cursor::new("MATCH (a) RETURN a").unwrap();
        assert!(c.is_keyword("match"));
        assert!(c.eat_keyword("MATCH"));
        assert!(c.eat_sym("("));
        assert_eq!(c.expect_ident().unwrap(), "a");
        assert!(c.expect_sym(")").is_ok());
        assert!(c.expect_sym("(").is_err());
        assert!(c.eat_keyword("RETURN"));
        assert_eq!(c.peek(), Some(&Token::Ident("a".into())));
        assert_eq!(c.peek_ahead(1), None);
        assert!(!c.at_end());
        c.next();
        assert!(c.at_end());
        assert_eq!(c.next(), None);
        assert_eq!(Token::Ident("x".into()).as_ident(), Some("x"));
    }
}
