//! Cypher front-end.
//!
//! Parses the Cypher subset used throughout the paper and its workloads and lowers it to
//! a GIR [`LogicalPlan`]:
//!
//! * one or more `MATCH` clauses, each with comma-separated path patterns; node and
//!   relationship patterns with labels (including `|` unions), inline property maps and
//!   variable-length relationships (`*min..max`);
//! * `WHERE` with boolean/comparison expressions, property access and `IN [..]` lists;
//! * `WITH` / `RETURN` items with aggregates (`count`, `sum`, `min`, `max`, `avg`,
//!   `count(DISTINCT ..)`) and `AS` aliases;
//! * `ORDER BY ... [ASC|DESC]`, `LIMIT n`, and `UNION [ALL]` between query blocks.
//!
//! Multiple `MATCH` clauses in one block become separate `MATCH_PATTERN`s joined on
//! their shared aliases — exactly the structure of the paper's Fig. 3 example — which
//! the optimizer's `JoinToPattern` rule may later merge.

use crate::error::ParseError;
use crate::lexer::{Cursor, Token};
use gopt_gir::expr::{AggFunc, BinOp, Expr, SortDir, UnaryOp};
use gopt_gir::logical::{JoinType, LogicalNodeId, LogicalPlan};
use gopt_gir::pattern::{PathSemantics, PathSpec, Pattern};
use gopt_gir::types::TypeConstraint;
use gopt_gir::GraphIrBuilder;
use gopt_graph::{GraphSchema, PropValue};

/// Parse a Cypher query into a logical plan, resolving labels against `schema`.
pub fn parse_cypher(query: &str, schema: &GraphSchema) -> Result<LogicalPlan, ParseError> {
    let mut parser = CypherParser {
        cur: Cursor::new(query)?,
        schema,
        anon: 0,
        builder: GraphIrBuilder::new(),
    };
    parser.parse_query()
}

struct CypherParser<'a> {
    cur: Cursor,
    schema: &'a GraphSchema,
    anon: usize,
    builder: GraphIrBuilder,
}

/// A parsed projection item.
enum ReturnItem {
    Plain(Expr, String),
    Agg(AggFunc, Expr, String),
}

impl<'a> CypherParser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.cur.pos())
    }

    fn fresh_anon(&mut self) -> String {
        self.anon += 1;
        format!("_anon{}", self.anon)
    }

    fn parse_query(&mut self) -> Result<LogicalPlan, ParseError> {
        let mut roots = vec![self.parse_block()?];
        let mut all = true;
        while self.cur.eat_keyword("UNION") {
            all = self.cur.eat_keyword("ALL");
            roots.push(self.parse_block()?);
        }
        if !self.cur.at_end() {
            return Err(self.err(format!("unexpected trailing token {:?}", self.cur.peek())));
        }
        let root = if roots.len() == 1 {
            roots[0]
        } else {
            self.builder.union(roots, all)
        };
        Ok(std::mem::take(&mut self.builder).build(root))
    }

    /// One query block: MATCH+ [WHERE] (WITH items [WHERE])* RETURN items [ORDER BY] [LIMIT]
    fn parse_block(&mut self) -> Result<LogicalNodeId, ParseError> {
        let mut patterns: Vec<Pattern> = Vec::new();
        let mut wheres: Vec<Expr> = Vec::new();
        loop {
            if self.cur.eat_keyword("MATCH") {
                patterns.push(self.parse_match()?);
            } else if self.cur.eat_keyword("WHERE") {
                wheres.push(self.parse_expr()?);
            } else if self.cur.is_keyword("WITH") || self.cur.is_keyword("RETURN") {
                break;
            } else {
                return Err(self.err(format!(
                    "expected MATCH, WHERE, WITH or RETURN, found {:?}",
                    self.cur.peek()
                )));
            }
        }
        if patterns.is_empty() {
            return Err(self.err("query has no MATCH clause"));
        }
        // combine patterns: join consecutive matches on their shared vertex aliases
        let mut node = self.builder.match_pattern(patterns[0].clone());
        let mut seen = patterns[0].clone();
        for p in &patterns[1..] {
            let shared: Vec<String> = p
                .vertices()
                .filter_map(|v| v.tag.clone())
                .filter(|t| !t.starts_with("_anon") && seen.vertex_by_tag(t).is_some())
                .collect();
            let m = self.builder.match_pattern(p.clone());
            if shared.is_empty() {
                return Err(self.err("MATCH clauses must share at least one alias"));
            }
            node = self.builder.join(node, m, shared, JoinType::Inner);
            let (merged, _) = seen.merge_by_tag(p);
            seen = merged;
        }
        if let Some(predicate) = Expr::conjunction(wheres) {
            node = self.builder.select(node, predicate);
        }
        // WITH* then RETURN
        loop {
            if self.cur.eat_keyword("WITH") {
                node = self.parse_projection(node)?;
                node = self.parse_order_limit(node)?;
                while self.cur.eat_keyword("WHERE") {
                    let e = self.parse_expr()?;
                    node = self.builder.select(node, e);
                }
            } else if self.cur.eat_keyword("RETURN") {
                if self.cur.eat_keyword("DISTINCT") {
                    node = self.parse_projection(node)?;
                    node = self.builder.dedup(node, vec![]);
                } else {
                    node = self.parse_projection(node)?;
                }
                node = self.parse_order_limit(node)?;
                return Ok(node);
            } else {
                return Err(self.err("expected WITH or RETURN"));
            }
        }
    }

    fn parse_order_limit(&mut self, mut node: LogicalNodeId) -> Result<LogicalNodeId, ParseError> {
        if self.cur.eat_keyword("ORDER") {
            if !self.cur.eat_keyword("BY") {
                return Err(self.err("expected BY after ORDER"));
            }
            let mut keys = Vec::new();
            loop {
                let e = self.parse_expr()?;
                let dir = if self.cur.eat_keyword("DESC") {
                    SortDir::Desc
                } else {
                    self.cur.eat_keyword("ASC");
                    SortDir::Asc
                };
                keys.push((e, dir));
                if !self.cur.eat_sym(",") {
                    break;
                }
            }
            let limit = if self.cur.eat_keyword("LIMIT") {
                Some(self.parse_usize()?)
            } else {
                None
            };
            node = self.builder.order(node, keys, limit);
        } else if self.cur.eat_keyword("LIMIT") {
            let n = self.parse_usize()?;
            node = self.builder.limit(node, n);
        }
        Ok(node)
    }

    fn parse_usize(&mut self) -> Result<usize, ParseError> {
        match self.cur.next() {
            Some(Token::Int(i)) if i >= 0 => Ok(i as usize),
            other => Err(self.err(format!("expected a non-negative integer, found {other:?}"))),
        }
    }

    fn parse_projection(&mut self, node: LogicalNodeId) -> Result<LogicalNodeId, ParseError> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_return_item()?);
            if !self.cur.eat_sym(",") {
                break;
            }
        }
        let has_agg = items.iter().any(|i| matches!(i, ReturnItem::Agg(..)));
        if has_agg {
            let mut keys = Vec::new();
            let mut aggs = Vec::new();
            for item in items {
                match item {
                    ReturnItem::Plain(e, a) => keys.push((e, a)),
                    ReturnItem::Agg(f, e, a) => aggs.push((f, e, a)),
                }
            }
            Ok(self.builder.group(node, keys, aggs))
        } else {
            let items = items
                .into_iter()
                .map(|i| match i {
                    ReturnItem::Plain(e, a) => (e, a),
                    ReturnItem::Agg(..) => unreachable!("no aggregates in this branch"),
                })
                .collect();
            Ok(self.builder.project(node, items))
        }
    }

    fn parse_return_item(&mut self) -> Result<ReturnItem, ParseError> {
        // aggregate?
        if let Some(Token::Ident(name)) = self.cur.peek() {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                "avg" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(mut func) = func {
                if matches!(self.cur.peek_ahead(1), Some(Token::Sym(s)) if s == "(") {
                    self.cur.next(); // function name
                    self.cur.next(); // '('
                    if self.cur.eat_keyword("DISTINCT") && func == AggFunc::Count {
                        func = AggFunc::CountDistinct;
                    }
                    let arg = if self.cur.eat_sym("*") {
                        Expr::lit(1)
                    } else {
                        self.parse_expr()?
                    };
                    self.cur.expect_sym(")")?;
                    let alias = if self.cur.eat_keyword("AS") {
                        self.cur.expect_ident()?
                    } else {
                        func_name(func).to_string()
                    };
                    return Ok(ReturnItem::Agg(func, arg, alias));
                }
            }
        }
        let e = self.parse_expr()?;
        let alias = if self.cur.eat_keyword("AS") {
            self.cur.expect_ident()?
        } else {
            default_alias(&e)
        };
        Ok(ReturnItem::Plain(e, alias))
    }

    // ---- MATCH pattern parsing -------------------------------------------------

    fn parse_match(&mut self) -> Result<Pattern, ParseError> {
        let mut pattern = Pattern::new();
        loop {
            self.parse_path(&mut pattern)?;
            if !self.cur.eat_sym(",") {
                break;
            }
        }
        Ok(pattern)
    }

    fn parse_path(&mut self, pattern: &mut Pattern) -> Result<(), ParseError> {
        let mut prev = self.parse_node(pattern)?;
        loop {
            // relationship?
            let (direction_in, present) = if self.cur.is_sym("<-") {
                (true, true)
            } else if self.cur.is_sym("-") {
                (false, true)
            } else {
                (false, false)
            };
            if !present {
                break;
            }
            self.cur.next();
            let (alias, constraint, path) = if self.cur.eat_sym("[") {
                let r = self.parse_rel_body()?;
                self.cur.expect_sym("]")?;
                r
            } else {
                (None, TypeConstraint::all(), None)
            };
            // closing arrow
            let outgoing = if self.cur.eat_sym("->") {
                true
            } else if self.cur.eat_sym("-") {
                // undirected in the query; modelled as outgoing from the left node
                !direction_in
            } else {
                return Err(self.err("expected '->' or '-' to close the relationship"));
            };
            let next = self.parse_node(pattern)?;
            let (src, dst) = if direction_in || !outgoing {
                (next, prev)
            } else {
                (prev, next)
            };
            pattern.add_edge_full(src, dst, alias, constraint, None, path);
            prev = next;
        }
        Ok(())
    }

    /// `[alias][:TYPE1|TYPE2][*min..max]`
    #[allow(clippy::type_complexity)]
    fn parse_rel_body(
        &mut self,
    ) -> Result<(Option<String>, TypeConstraint, Option<PathSpec>), ParseError> {
        let mut alias = None;
        if let Some(Token::Ident(name)) = self.cur.peek() {
            alias = Some(name.clone());
            self.cur.next();
        }
        let mut constraint = TypeConstraint::all();
        if self.cur.eat_sym(":") {
            constraint = self.parse_label_union(false)?;
        }
        let mut path = None;
        if self.cur.eat_sym("*") {
            let min = match self.cur.peek() {
                Some(Token::Int(i)) => {
                    let v = *i as u32;
                    self.cur.next();
                    v
                }
                _ => 1,
            };
            let max = if self.cur.eat_sym("..") {
                match self.cur.next() {
                    Some(Token::Int(i)) => i as u32,
                    other => return Err(self.err(format!("expected hop bound, found {other:?}"))),
                }
            } else {
                min.max(1)
            };
            path = Some(PathSpec {
                min_hops: min.max(1),
                max_hops: max.max(min.max(1)),
                semantics: PathSemantics::Arbitrary,
            });
        }
        Ok((alias, constraint, path))
    }

    /// `(alias?:Label1|Label2? {prop: value, ...}?)`
    fn parse_node(
        &mut self,
        pattern: &mut Pattern,
    ) -> Result<gopt_gir::PatternVertexId, ParseError> {
        self.cur.expect_sym("(")?;
        let alias = if let Some(Token::Ident(name)) = self.cur.peek() {
            let a = name.clone();
            self.cur.next();
            a
        } else {
            self.fresh_anon()
        };
        let mut constraint = TypeConstraint::all();
        if self.cur.eat_sym(":") {
            constraint = self.parse_label_union(true)?;
        }
        // inline property map { key: literal, ... } becomes an equality predicate
        let mut predicate = None;
        if self.cur.eat_sym("{") {
            loop {
                let key = self.cur.expect_ident()?;
                self.cur.expect_sym(":")?;
                let value = self.parse_literal()?;
                let eq = Expr::binary(BinOp::Eq, Expr::prop(&alias, &key), Expr::Literal(value));
                predicate = Some(match predicate.take() {
                    None => eq,
                    Some(p) => Expr::and(p, eq),
                });
                if !self.cur.eat_sym(",") {
                    break;
                }
            }
            self.cur.expect_sym("}")?;
        }
        self.cur.expect_sym(")")?;
        // reuse the vertex if the alias is already bound in this pattern
        let id = match pattern.vertex_by_tag(&alias) {
            Some(v) => {
                let pv = pattern.vertex_mut(v);
                pv.constraint = pv.constraint.intersect(&constraint);
                v
            }
            None => pattern.add_vertex_tagged(alias.clone(), constraint),
        };
        if let Some(p) = predicate {
            let pv = pattern.vertex_mut(id);
            pv.predicate = Some(match pv.predicate.take() {
                None => p,
                Some(old) => old.and(p),
            });
        }
        Ok(id)
    }

    fn parse_label_union(&mut self, vertex: bool) -> Result<TypeConstraint, ParseError> {
        let mut labels = Vec::new();
        loop {
            let name = self.cur.expect_ident()?;
            let id = if vertex {
                self.schema.vertex_label(&name)
            } else {
                self.schema.edge_label(&name)
            };
            match id {
                Some(l) => labels.push(l),
                None => {
                    return Err(self.err(format!(
                        "unknown {} label '{name}'",
                        if vertex { "vertex" } else { "edge" }
                    )))
                }
            }
            if !self.cur.eat_sym("|") {
                break;
            }
        }
        Ok(TypeConstraint::union(labels))
    }

    // ---- expressions -------------------------------------------------------------

    fn parse_literal(&mut self) -> Result<PropValue, ParseError> {
        match self.cur.next() {
            Some(Token::Int(i)) => Ok(PropValue::Int(i)),
            Some(Token::Float(f)) => Ok(PropValue::Float(f)),
            Some(Token::Str(s)) => Ok(PropValue::str(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(PropValue::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(PropValue::Bool(false)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(PropValue::Null),
            Some(Token::Sym(s)) if s == "-" => match self.cur.next() {
                Some(Token::Int(i)) => Ok(PropValue::Int(-i)),
                Some(Token::Float(f)) => Ok(PropValue::Float(-f)),
                other => Err(self.err(format!("expected number after '-', found {other:?}"))),
            },
            other => Err(self.err(format!("expected a literal, found {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.cur.eat_keyword("OR") {
            let rhs = self.parse_and()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.cur.eat_keyword("AND") {
            let rhs = self.parse_not()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.cur.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        if self.cur.eat_keyword("IN") {
            self.cur.expect_sym("[")?;
            let mut list = Vec::new();
            if !self.cur.is_sym("]") {
                loop {
                    list.push(self.parse_literal()?);
                    if !self.cur.eat_sym(",") {
                        break;
                    }
                }
            }
            self.cur.expect_sym("]")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
            });
        }
        if self.cur.eat_keyword("IS") {
            let not = self.cur.eat_keyword("NOT");
            if !self.cur.eat_keyword("NULL") {
                return Err(self.err("expected NULL after IS [NOT]"));
            }
            return Ok(Expr::Unary {
                op: if not {
                    UnaryOp::IsNotNull
                } else {
                    UnaryOp::IsNull
                },
                operand: Box::new(lhs),
            });
        }
        let op = if self.cur.eat_sym("=") {
            Some(BinOp::Eq)
        } else if self.cur.eat_sym("<>") || self.cur.eat_sym("!=") {
            Some(BinOp::Ne)
        } else if self.cur.eat_sym("<=") {
            Some(BinOp::Le)
        } else if self.cur.eat_sym(">=") {
            Some(BinOp::Ge)
        } else if self.cur.eat_sym("<") {
            Some(BinOp::Lt)
        } else if self.cur.eat_sym(">") {
            Some(BinOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let rhs = self.parse_additive()?;
                Ok(Expr::binary(op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            if self.cur.eat_sym("+") {
                lhs = Expr::binary(BinOp::Add, lhs, self.parse_multiplicative()?);
            } else if self.cur.is_sym("-") {
                self.cur.next();
                lhs = Expr::binary(BinOp::Sub, lhs, self.parse_multiplicative()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_primary()?;
        loop {
            if self.cur.eat_sym("*") {
                lhs = Expr::binary(BinOp::Mul, lhs, self.parse_primary()?);
            } else if self.cur.eat_sym("/") {
                lhs = Expr::binary(BinOp::Div, lhs, self.parse_primary()?);
            } else if self.cur.eat_sym("%") {
                lhs = Expr::binary(BinOp::Mod, lhs, self.parse_primary()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.cur.peek().cloned() {
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                Ok(Expr::Literal(self.parse_literal()?))
            }
            Some(Token::Sym(s)) if s == "-" => Ok(Expr::Literal(self.parse_literal()?)),
            Some(Token::Sym(s)) if s == "(" => {
                self.cur.next();
                let e = self.parse_expr()?;
                self.cur.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("true")
                    || name.eq_ignore_ascii_case("false")
                    || name.eq_ignore_ascii_case("null")
                {
                    return Ok(Expr::Literal(self.parse_literal()?));
                }
                self.cur.next();
                if self.cur.eat_sym(".") {
                    let prop = self.cur.expect_ident()?;
                    Ok(Expr::prop(name, prop))
                } else {
                    Ok(Expr::tag(name))
                }
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

fn func_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "count",
        AggFunc::CountDistinct => "count_distinct",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
    }
}

fn default_alias(e: &Expr) -> String {
    match e {
        Expr::Tag(t) => t.clone(),
        Expr::Property { tag, prop } => format!("{tag}_{prop}"),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_gir::logical::LogicalOp;
    use gopt_graph::schema::fig6_schema;

    fn schema() -> GraphSchema {
        fig6_schema()
    }

    #[test]
    fn parses_the_paper_running_example() {
        let q = "MATCH (v1)-[e1]->(v2), (v2)-[e2]->(v3)\n\
                 MATCH (v1)-[e3]->(v3:Place)\n\
                 WHERE v3.name = 'China'\n\
                 WITH v2, COUNT(v2) as cnt\n\
                 RETURN v2, cnt ORDER BY cnt LIMIT 10";
        let plan = parse_cypher(q, &schema()).unwrap();
        assert_eq!(plan.match_nodes().len(), 2);
        let names: Vec<&str> = plan
            .topo_order()
            .iter()
            .map(|id| plan.op(*id).name())
            .collect();
        assert!(names.contains(&"JOIN"));
        assert!(names.contains(&"SELECT"));
        assert!(names.contains(&"GROUP"));
        assert!(names.contains(&"ORDER"));
        // the first pattern has 3 vertices, shared alias v2 reused
        let (_, p1) = plan.match_nodes()[0];
        assert_eq!(p1.vertex_count(), 3);
        assert_eq!(p1.edge_count(), 2);
        // the second pattern constrains v3 to Place
        let (_, p2) = plan.match_nodes()[1];
        let place = schema().vertex_label("Place").unwrap();
        assert_eq!(
            p2.vertex(p2.vertex_by_tag("v3").unwrap()).constraint,
            TypeConstraint::basic(place)
        );
    }

    #[test]
    fn parses_labels_property_maps_and_directions() {
        let q = "MATCH (a:Person {name: 'alice'})<-[k:Knows]-(b:Person|Product) RETURN a";
        let plan = parse_cypher(q, &schema()).unwrap();
        let (_, p) = plan.match_nodes()[0];
        let a = p.vertex(p.vertex_by_tag("a").unwrap());
        assert!(a.predicate.is_some());
        let person = schema().vertex_label("Person").unwrap();
        let product = schema().vertex_label("Product").unwrap();
        assert_eq!(a.constraint, TypeConstraint::basic(person));
        let b = p.vertex(p.vertex_by_tag("b").unwrap());
        assert_eq!(b.constraint, TypeConstraint::union([person, product]));
        // the edge direction is b -> a because of the incoming arrow
        let e = p.edge(p.edge_by_tag("k").unwrap());
        assert_eq!(p.vertex(e.src).tag.as_deref(), Some("b"));
        assert_eq!(p.vertex(e.dst).tag.as_deref(), Some("a"));
        // root is a projection of a
        assert!(matches!(plan.op(plan.root()), LogicalOp::Project { .. }));
    }

    #[test]
    fn parses_variable_length_paths_and_in_lists() {
        let q = "MATCH (p1:Person)-[p:Knows*6]->(p2:Person)\n\
                 WHERE p1.id IN [1, 2] AND p2.id IN [3]\n\
                 RETURN p";
        let plan = parse_cypher(q, &schema()).unwrap();
        let (_, pat) = plan.match_nodes()[0];
        let e = pat.edge(pat.edge_by_tag("p").unwrap());
        assert_eq!(e.path.unwrap().min_hops, 6);
        assert_eq!(e.path.unwrap().max_hops, 6);
        let q2 = "MATCH (a)-[*1..3]->(b) RETURN a";
        let plan2 = parse_cypher(q2, &schema()).unwrap();
        let (_, pat2) = plan2.match_nodes()[0];
        assert_eq!(pat2.edges().next().unwrap().path.unwrap().max_hops, 3);
    }

    #[test]
    fn parses_aggregates_distinct_and_union() {
        let q = "MATCH (a:Person)-[:Knows]->(b:Person) RETURN a, count(DISTINCT b) AS friends, sum(b.id) AS total \
                 UNION ALL MATCH (a:Person)-[:Purchases]->(c:Product) RETURN a, count(*) AS friends, sum(c.id) AS total";
        let plan = parse_cypher(q, &schema()).unwrap();
        assert!(matches!(
            plan.op(plan.root()),
            LogicalOp::Union { all: true }
        ));
        assert_eq!(plan.match_nodes().len(), 2);
        let groups: Vec<_> = plan
            .topo_order()
            .into_iter()
            .filter(|id| matches!(plan.op(*id), LogicalOp::Group { .. }))
            .collect();
        assert_eq!(groups.len(), 2);
        let LogicalOp::Group { keys, aggs } = plan.op(groups[0]) else {
            unreachable!()
        };
        assert_eq!(keys.len(), 1);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].0, AggFunc::CountDistinct);
        assert_eq!(aggs[1].0, AggFunc::Sum);
    }

    #[test]
    fn parses_return_distinct_order_desc_and_where_expressions() {
        let q = "MATCH (a:Person)-[e:LocatedIn]->(c:Place)\n\
                 WHERE (a.age >= 18 OR a.name <> 'bob') AND NOT c.name = 'Mars' AND a.id IS NOT NULL\n\
                 RETURN DISTINCT a.name AS name, c.name AS place ORDER BY name DESC, place ASC LIMIT 5";
        let plan = parse_cypher(q, &schema()).unwrap();
        let names: Vec<&str> = plan
            .topo_order()
            .iter()
            .map(|id| plan.op(*id).name())
            .collect();
        assert!(names.contains(&"DEDUP"));
        let LogicalOp::Order { keys, limit } = plan.op(plan.root()) else {
            panic!("root should be ORDER, got {}", plan.op(plan.root()).name());
        };
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].1, SortDir::Desc);
        assert_eq!(*limit, Some(5));
    }

    #[test]
    fn rejects_malformed_queries() {
        let s = schema();
        assert!(parse_cypher("RETURN 1", &s).is_err());
        assert!(parse_cypher("MATCH (a:Alien) RETURN a", &s).is_err());
        assert!(parse_cypher("MATCH (a)-[:Flies]->(b) RETURN a", &s).is_err());
        assert!(parse_cypher("MATCH (a RETURN a", &s).is_err());
        assert!(parse_cypher("MATCH (a)->(b) RETURN a", &s).is_err());
        assert!(
            parse_cypher("MATCH (a) MATCH (b) RETURN a", &s).is_err(),
            "no shared alias"
        );
        assert!(parse_cypher("MATCH (a) WHERE a.x = RETURN a", &s).is_err());
        assert!(parse_cypher("MATCH (a) RETURN a LIMIT -1", &s).is_err());
        assert!(parse_cypher("MATCH (a) RETURN a garbage", &s).is_err());
    }

    #[test]
    fn arithmetic_and_parentheses_in_projections() {
        let q = "MATCH (a:Person) RETURN (a.id + 1) * 2 AS x, a.id % 3 AS m, a.id / 2 AS h, a.id - 1 AS d";
        let plan = parse_cypher(q, &schema()).unwrap();
        let LogicalOp::Project { items } = plan.op(plan.root()) else {
            panic!("expected projection");
        };
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].1, "x");
    }
}
