//! # gopt-parser — query language front-ends
//!
//! GOpt supports multiple query languages by lowering each of them into the same unified
//! GIR (`gopt-gir`). The paper builds its front-ends with ANTLR; this crate substitutes
//! hand-written recursive-descent parsers covering the language subsets exercised by the
//! paper's examples and workloads (see DESIGN.md):
//!
//! * [`cypher`] — `MATCH` patterns (including variable-length paths), `WHERE`, `WITH`,
//!   `RETURN` (with aggregates), `ORDER BY`, `LIMIT`, `UNION`;
//! * [`gremlin`] — `g.V()` traversals with `hasLabel`/`has`/`as`/`out`/`in`/`both`,
//!   `match(..)`, `select`, `values`, `groupCount().by(..)`, `count`, `order().by(..)`,
//!   `dedup`, `limit`.
//!
//! Both parsers resolve label names against a [`gopt_graph::GraphSchema`] and produce a
//! [`gopt_gir::LogicalPlan`]; the same query written in either language produces an
//! equivalent plan, which is what enables GOpt to optimize both identically.

pub mod cypher;
pub mod error;
pub mod gremlin;
pub mod lexer;

pub use cypher::parse_cypher;
pub use error::ParseError;
pub use gremlin::parse_gremlin;
