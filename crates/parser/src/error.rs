//! Parse errors.

use std::fmt;

/// An error encountered while parsing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the query text where the problem was detected.
    pub position: usize,
}

impl ParseError {
    /// Create a parse error.
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position_and_message() {
        let e = ParseError::new("unexpected token", 17);
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("unexpected token"));
    }
}
