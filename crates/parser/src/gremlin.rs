//! Gremlin front-end.
//!
//! Parses the Gremlin traversal subset used by the paper's workloads and lowers it to
//! the same GIR as the Cypher front-end. Supported steps:
//!
//! * `g.V()` start, `hasLabel('L' [, 'L2'...])`, `has('prop', value)`, `as('tag')`,
//!   `out('T'...)`, `in('T'...)`, `both('T'...)` — pattern construction;
//! * `match(__.as('a')...out()...as('b'), ...)` — multi-fragment pattern construction;
//! * `select('tag')` — refocus on a tagged element (pattern phase) or project (after);
//! * `values('prop')` — project a property of the current element;
//! * `groupCount().by('tag')`, `group().by('tag').by(count())`, `count()` — aggregation
//!   (counts are exposed under the alias `values`, matching `order().by(values)`);
//! * `order().by(key [, asc|desc|incr|decr])`, `dedup()`, `limit(n)`.
//!
//! A traversal such as the paper's Fig. 3(b) therefore produces a logical plan with the
//! same `MATCH_PATTERN` / `GROUP` / `ORDER` structure as its Cypher counterpart in
//! Fig. 3(a).

use crate::error::ParseError;
use crate::lexer::{Cursor, Token};
use gopt_gir::expr::{AggFunc, BinOp, Expr, SortDir};
use gopt_gir::logical::{LogicalNodeId, LogicalPlan};
use gopt_gir::pattern::{Direction, Pattern, PatternVertexId};
use gopt_gir::types::TypeConstraint;
use gopt_gir::GraphIrBuilder;
use gopt_graph::{GraphSchema, PropValue};

/// Parse a Gremlin traversal into a logical plan, resolving labels against `schema`.
pub fn parse_gremlin(query: &str, schema: &GraphSchema) -> Result<LogicalPlan, ParseError> {
    let mut cur = Cursor::new(query)?;
    // expect `g.V()`
    if !cur.eat_keyword("g") {
        return Err(ParseError::new(
            "traversal must start with g.V()",
            cur.pos(),
        ));
    }
    cur.expect_sym(".")?;
    let v = cur.expect_ident()?;
    if v != "V" {
        return Err(ParseError::new(
            "traversal must start with g.V()",
            cur.pos(),
        ));
    }
    cur.expect_sym("(")?;
    cur.expect_sym(")")?;
    let steps = parse_steps(&mut cur)?;
    if !cur.at_end() {
        return Err(ParseError::new(
            format!("unexpected trailing token {:?}", cur.peek()),
            cur.pos(),
        ));
    }
    Lowerer::new(schema).lower(&steps)
}

/// One parsed step: name plus arguments.
#[derive(Debug, Clone)]
struct Step {
    name: String,
    args: Vec<Arg>,
}

/// A step argument.
#[derive(Debug, Clone)]
enum Arg {
    Str(String),
    Int(i64),
    Float(f64),
    Ident(String),
    /// An anonymous sub-traversal (`__.as('a').out()...`).
    Traversal(Vec<Step>),
    /// A nested call such as `count()` or `eq(5)`; only its presence matters to the
    /// lowering (e.g. `group().by(count())` keeps the default count aggregate).
    #[allow(dead_code)]
    Call(String, Vec<Arg>),
}

/// Parse a dotted chain of steps: `.name(args).name(args)...`
fn parse_steps(cur: &mut Cursor) -> Result<Vec<Step>, ParseError> {
    let mut steps = Vec::new();
    while cur.eat_sym(".") {
        let name = cur.expect_ident()?;
        cur.expect_sym("(")?;
        let args = parse_args(cur)?;
        cur.expect_sym(")")?;
        steps.push(Step { name, args });
    }
    Ok(steps)
}

fn parse_args(cur: &mut Cursor) -> Result<Vec<Arg>, ParseError> {
    let mut args = Vec::new();
    if cur.is_sym(")") {
        return Ok(args);
    }
    loop {
        args.push(parse_arg(cur)?);
        if !cur.eat_sym(",") {
            break;
        }
    }
    Ok(args)
}

fn parse_arg(cur: &mut Cursor) -> Result<Arg, ParseError> {
    match cur.peek().cloned() {
        Some(Token::Str(s)) => {
            cur.next();
            Ok(Arg::Str(s))
        }
        Some(Token::Int(i)) => {
            cur.next();
            Ok(Arg::Int(i))
        }
        Some(Token::Float(f)) => {
            cur.next();
            Ok(Arg::Float(f))
        }
        Some(Token::Ident(name)) => {
            cur.next();
            if name == "__" {
                // anonymous traversal
                let steps = parse_steps(cur)?;
                Ok(Arg::Traversal(steps))
            } else if cur.is_sym("(") {
                cur.next();
                let args = parse_args(cur)?;
                cur.expect_sym(")")?;
                Ok(Arg::Call(name, args))
            } else {
                Ok(Arg::Ident(name))
            }
        }
        other => Err(ParseError::new(
            format!("unexpected token in step arguments: {other:?}"),
            cur.pos(),
        )),
    }
}

struct Lowerer<'a> {
    schema: &'a GraphSchema,
    builder: GraphIrBuilder,
    pattern: Pattern,
    current: Option<PatternVertexId>,
    anon: usize,
    /// The logical node produced once the pattern phase has been flushed.
    flushed: Option<LogicalNodeId>,
    /// Tag of the "current" value after aggregation/projection steps.
    current_tag: Option<String>,
}

impl<'a> Lowerer<'a> {
    fn new(schema: &'a GraphSchema) -> Self {
        Lowerer {
            schema,
            builder: GraphIrBuilder::new(),
            pattern: Pattern::new(),
            current: None,
            anon: 0,
            flushed: None,
            current_tag: None,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, 0)
    }

    fn fresh(&mut self) -> String {
        self.anon += 1;
        format!("_g{}", self.anon)
    }

    fn arg_str(&self, step: &Step, i: usize) -> Result<String, ParseError> {
        match step.args.get(i) {
            Some(Arg::Str(s)) => Ok(s.clone()),
            Some(Arg::Ident(s)) => Ok(s.clone()),
            other => Err(self.err(format!(
                "{}: expected a string argument, found {other:?}",
                step.name
            ))),
        }
    }

    fn vertex_labels(&self, step: &Step) -> Result<TypeConstraint, ParseError> {
        if step.args.is_empty() {
            return Ok(TypeConstraint::all());
        }
        let mut labels = Vec::new();
        for (i, _) in step.args.iter().enumerate() {
            let name = self.arg_str(step, i)?;
            labels.push(
                self.schema
                    .vertex_label(&name)
                    .ok_or_else(|| self.err(format!("unknown vertex label '{name}'")))?,
            );
        }
        Ok(TypeConstraint::union(labels))
    }

    fn edge_labels(&self, step: &Step) -> Result<TypeConstraint, ParseError> {
        if step.args.is_empty() {
            return Ok(TypeConstraint::all());
        }
        let mut labels = Vec::new();
        for (i, _) in step.args.iter().enumerate() {
            let name = self.arg_str(step, i)?;
            labels.push(
                self.schema
                    .edge_label(&name)
                    .ok_or_else(|| self.err(format!("unknown edge label '{name}'")))?,
            );
        }
        Ok(TypeConstraint::union(labels))
    }

    fn literal(&self, arg: &Arg) -> Result<PropValue, ParseError> {
        match arg {
            Arg::Str(s) => Ok(PropValue::str(s)),
            Arg::Int(i) => Ok(PropValue::Int(*i)),
            Arg::Float(f) => Ok(PropValue::Float(*f)),
            Arg::Ident(s) if s == "true" => Ok(PropValue::Bool(true)),
            Arg::Ident(s) if s == "false" => Ok(PropValue::Bool(false)),
            other => Err(self.err(format!("expected a literal argument, found {other:?}"))),
        }
    }

    fn ensure_start(&mut self) -> PatternVertexId {
        match self.current {
            Some(v) => v,
            None => {
                let tag = self.fresh();
                let v = self.pattern.add_vertex_tagged(tag, TypeConstraint::all());
                self.current = Some(v);
                v
            }
        }
    }

    fn current_tag_name(&mut self) -> String {
        match (self.current, &self.current_tag) {
            (_, Some(t)) => t.clone(),
            (Some(v), None) => self
                .pattern
                .vertex(v)
                .tag
                .clone()
                .expect("pattern vertices built here always carry a tag"),
            (None, None) => {
                let v = self.ensure_start();
                self.pattern.vertex(v).tag.clone().expect("tagged")
            }
        }
    }

    /// Finish the pattern phase, producing (or returning) the MATCH node.
    fn flush(&mut self) -> Result<LogicalNodeId, ParseError> {
        if let Some(node) = self.flushed {
            return Ok(node);
        }
        if self.pattern.is_empty() {
            self.ensure_start();
        }
        if !self.pattern.is_connected() {
            return Err(self.err("traversal builds a disconnected pattern"));
        }
        let node = self.builder.match_pattern(self.pattern.clone());
        self.flushed = Some(node);
        Ok(node)
    }

    fn lower(mut self, steps: &[Step]) -> Result<LogicalPlan, ParseError> {
        let mut i = 0;
        let mut root: Option<LogicalNodeId> = None;
        while i < steps.len() {
            let step = &steps[i];
            match step.name.as_str() {
                // ---- pattern phase steps ----
                "hasLabel" => {
                    let c = self.vertex_labels(step)?;
                    let v = self.ensure_start();
                    let pv = self.pattern.vertex_mut(v);
                    pv.constraint = pv.constraint.intersect(&c);
                }
                "has" if self.flushed.is_none() => {
                    let prop = self.arg_str(step, 0)?;
                    let value = self.literal(
                        step.args
                            .get(1)
                            .ok_or_else(|| self.err("has: missing value"))?,
                    )?;
                    let v = self.ensure_start();
                    let tag = self.pattern.vertex(v).tag.clone().expect("tagged");
                    let pred =
                        Expr::binary(BinOp::Eq, Expr::prop(&tag, &prop), Expr::Literal(value));
                    let pv = self.pattern.vertex_mut(v);
                    pv.predicate = Some(match pv.predicate.take() {
                        None => pred,
                        Some(p) => p.and(pred),
                    });
                }
                "as" if self.flushed.is_none() => {
                    let tag = self.arg_str(step, 0)?;
                    let v = self.ensure_start();
                    // if the tag already exists, unify the two vertices is not supported;
                    // instead just rename when unused, or move focus when it exists
                    if let Some(existing) = self.pattern.vertex_by_tag(&tag) {
                        self.current = Some(existing);
                    } else {
                        self.pattern.vertex_mut(v).tag = Some(tag);
                    }
                }
                "out" | "in" | "both" if self.flushed.is_none() => {
                    let c = self.edge_labels(step)?;
                    let v = self.ensure_start();
                    let tag = self.fresh();
                    let nv = self.pattern.add_vertex_tagged(tag, TypeConstraint::all());
                    let dir = match step.name.as_str() {
                        "out" => Direction::Out,
                        "in" => Direction::In,
                        _ => Direction::Both,
                    };
                    match dir {
                        Direction::Out | Direction::Both => {
                            self.pattern.add_edge(v, nv, c);
                        }
                        Direction::In => {
                            self.pattern.add_edge(nv, v, c);
                        }
                    }
                    self.current = Some(nv);
                }
                "match" if self.flushed.is_none() => {
                    for arg in &step.args {
                        let Arg::Traversal(fragment) = arg else {
                            return Err(self.err("match: arguments must be anonymous traversals"));
                        };
                        self.lower_fragment(fragment)?;
                    }
                }
                "select" if self.flushed.is_none() && step.args.len() == 1 => {
                    let tag = self.arg_str(step, 0)?;
                    match self.pattern.vertex_by_tag(&tag) {
                        Some(v) => self.current = Some(v),
                        None => return Err(self.err(format!("select: unknown tag '{tag}'"))),
                    }
                }
                // ---- relational steps ----
                "has" => {
                    let node = self.flush()?;
                    let prop = self.arg_str(step, 0)?;
                    let value = self.literal(
                        step.args
                            .get(1)
                            .ok_or_else(|| self.err("has: missing value"))?,
                    )?;
                    let tag = self.current_tag_name();
                    let pred =
                        Expr::binary(BinOp::Eq, Expr::prop(&tag, &prop), Expr::Literal(value));
                    root = Some(self.builder.select(root.unwrap_or(node), pred));
                }
                "select" => {
                    let node = root.unwrap_or(self.flush()?);
                    let mut items = Vec::new();
                    for (idx, _) in step.args.iter().enumerate() {
                        let tag = self.arg_str(step, idx)?;
                        items.push((Expr::tag(&tag), tag));
                    }
                    if items.len() == 1 {
                        // refocus only; no projection necessary
                        self.current_tag = Some(items[0].1.clone());
                        root = Some(node);
                    } else {
                        root = Some(self.builder.project(node, items));
                    }
                }
                "values" => {
                    let node = root.unwrap_or(self.flush()?);
                    let prop = self.arg_str(step, 0)?;
                    let tag = self.current_tag_name();
                    root = Some(self.builder.project(
                        node,
                        vec![(Expr::prop(&tag, &prop), format!("{tag}_{prop}"))],
                    ));
                    self.current_tag = Some(format!("{tag}_{prop}"));
                }
                "groupCount" | "group" => {
                    let node = root.unwrap_or(self.flush()?);
                    // consume the following by(...) steps
                    let mut key_tag = self.current_tag_name();
                    let mut j = i + 1;
                    while j < steps.len() && steps[j].name == "by" {
                        if let Some(Arg::Str(s) | Arg::Ident(s)) = steps[j].args.first() {
                            key_tag = s.clone();
                        }
                        // `.by(count())` and similar nested calls keep the default count
                        j += 1;
                    }
                    i = j - 1;
                    root = Some(self.builder.group(
                        node,
                        vec![(Expr::tag(&key_tag), key_tag.clone())],
                        vec![(AggFunc::Count, Expr::tag(&key_tag), "values".to_string())],
                    ));
                    self.current_tag = Some("values".to_string());
                }
                "count" => {
                    let node = root.unwrap_or(self.flush()?);
                    let tag = self.current_tag_name();
                    root = Some(self.builder.group(
                        node,
                        vec![],
                        vec![(AggFunc::Count, Expr::tag(&tag), "count".to_string())],
                    ));
                    self.current_tag = Some("count".to_string());
                }
                "order" => {
                    let node = root.unwrap_or(self.flush()?);
                    let mut keys = Vec::new();
                    let mut j = i + 1;
                    while j < steps.len() && steps[j].name == "by" {
                        let by = &steps[j];
                        let key = match by.args.first() {
                            Some(Arg::Str(s)) => Expr::tag(s),
                            Some(Arg::Ident(s)) if s == "values" => Expr::tag("values"),
                            Some(Arg::Ident(s)) if s == "keys" => {
                                Expr::tag(self.current_tag_name())
                            }
                            Some(Arg::Ident(s)) => Expr::tag(s),
                            _ => Expr::tag(self.current_tag_name()),
                        };
                        let dir = match by.args.get(1) {
                            Some(Arg::Ident(d)) if d == "desc" || d == "decr" => SortDir::Desc,
                            _ => SortDir::Asc,
                        };
                        keys.push((key, dir));
                        j += 1;
                    }
                    if keys.is_empty() {
                        keys.push((Expr::tag(self.current_tag_name()), SortDir::Asc));
                    }
                    i = j - 1;
                    root = Some(self.builder.order(node, keys, None));
                }
                "limit" => {
                    let node = root.unwrap_or(self.flush()?);
                    let n = match step.args.first() {
                        Some(Arg::Int(n)) if *n >= 0 => *n as usize,
                        other => {
                            return Err(
                                self.err(format!("limit: expected a count, found {other:?}"))
                            )
                        }
                    };
                    root = Some(self.builder.limit(node, n));
                }
                "dedup" => {
                    let node = root.unwrap_or(self.flush()?);
                    let keys = if step.args.is_empty() {
                        vec![]
                    } else {
                        (0..step.args.len())
                            .map(|idx| self.arg_str(step, idx).map(Expr::tag))
                            .collect::<Result<Vec<_>, _>>()?
                    };
                    root = Some(self.builder.dedup(node, keys));
                }
                other => return Err(self.err(format!("unsupported Gremlin step '{other}'"))),
            }
            i += 1;
        }
        let root = match root {
            Some(r) => r,
            None => self.flush()?,
        };
        Ok(self.builder.build(root))
    }

    /// Lower one `__....` fragment of a `match(...)` step into the shared pattern.
    fn lower_fragment(&mut self, steps: &[Step]) -> Result<(), ParseError> {
        let mut current: Option<PatternVertexId> = None;
        for step in steps {
            match step.name.as_str() {
                "as" => {
                    let tag = self.arg_str(step, 0)?;
                    match current {
                        None => {
                            // starting tag: reuse or create
                            current = Some(match self.pattern.vertex_by_tag(&tag) {
                                Some(v) => v,
                                None => self.pattern.add_vertex_tagged(tag, TypeConstraint::all()),
                            });
                        }
                        Some(v) => {
                            // closing tag: rename or unify with an existing vertex
                            if let Some(existing) = self.pattern.vertex_by_tag(&tag) {
                                if existing != v {
                                    // unify: redirect edges that touch `v` to `existing`
                                    let edges: Vec<_> = self.pattern.adjacent_edges(v);
                                    for eid in edges {
                                        let e = self.pattern.edge_mut(eid);
                                        if e.src == v {
                                            e.src = existing;
                                        }
                                        if e.dst == v {
                                            e.dst = existing;
                                        }
                                    }
                                    let merged = self.pattern.clone();
                                    // drop the now-isolated placeholder vertex
                                    let keep: std::collections::BTreeSet<_> = merged
                                        .vertex_ids()
                                        .into_iter()
                                        .filter(|x| *x != v)
                                        .collect();
                                    let edge_ids: std::collections::BTreeSet<_> =
                                        merged.edge_ids().into_iter().collect();
                                    self.pattern = merged.induced(&keep, &edge_ids);
                                    current = Some(existing);
                                } else {
                                    current = Some(existing);
                                }
                            } else {
                                self.pattern.vertex_mut(v).tag = Some(tag);
                                current = Some(v);
                            }
                        }
                    }
                }
                "out" | "in" | "both" => {
                    let c = self.edge_labels(step)?;
                    let v = current.ok_or_else(|| self.err("fragment must start with as()"))?;
                    let tag = self.fresh();
                    let nv = self.pattern.add_vertex_tagged(tag, TypeConstraint::all());
                    if step.name == "in" {
                        self.pattern.add_edge(nv, v, c);
                    } else {
                        self.pattern.add_edge(v, nv, c);
                    }
                    current = Some(nv);
                }
                "hasLabel" => {
                    let c = self.vertex_labels(step)?;
                    let v = current.ok_or_else(|| self.err("fragment must start with as()"))?;
                    let pv = self.pattern.vertex_mut(v);
                    pv.constraint = pv.constraint.intersect(&c);
                }
                "has" => {
                    let v = current.ok_or_else(|| self.err("fragment must start with as()"))?;
                    let prop = self.arg_str(step, 0)?;
                    let value = self.literal(
                        step.args
                            .get(1)
                            .ok_or_else(|| self.err("has: missing value"))?,
                    )?;
                    let tag = self
                        .pattern
                        .vertex(v)
                        .tag
                        .clone()
                        .expect("fragment vertices are tagged");
                    let pred =
                        Expr::binary(BinOp::Eq, Expr::prop(&tag, &prop), Expr::Literal(value));
                    let pv = self.pattern.vertex_mut(v);
                    pv.predicate = Some(match pv.predicate.take() {
                        None => pred,
                        Some(p) => p.and(pred),
                    });
                }
                other => return Err(self.err(format!("unsupported step '{other}' inside match()"))),
            }
        }
        if let Some(v) = current {
            self.current = Some(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_gir::logical::LogicalOp;
    use gopt_graph::schema::fig6_schema;

    fn schema() -> GraphSchema {
        fig6_schema()
    }

    #[test]
    fn parses_the_paper_fig3b_traversal() {
        let q = "g.V().match(__.as('v1').out().as('v2'), __.as('v2').out().as('v3')) \
                 .match(__.as('v1').out().as('v3')) \
                 .select('v3').has('name', 'China').hasLabel('Place') \
                 .groupCount().by('v2').order().by(values).limit(10)";
        let plan = parse_gremlin(q, &schema()).unwrap();
        // one pattern (fragments merged by tags), with 3 vertices and 3 edges
        assert_eq!(plan.match_nodes().len(), 1);
        let (_, p) = plan.match_nodes()[0];
        assert_eq!(p.vertex_count(), 3, "{p}");
        assert_eq!(p.edge_count(), 3);
        // the has()/hasLabel() steps applied while still in the pattern phase, so the
        // filter and the Place constraint live on v3 inside the pattern
        let place = schema().vertex_label("Place").unwrap();
        let v3 = p.vertex(p.vertex_by_tag("v3").unwrap());
        assert!(v3.predicate.is_some());
        assert_eq!(v3.constraint, TypeConstraint::basic(place));
        let names: Vec<&str> = plan
            .topo_order()
            .iter()
            .map(|id| plan.op(*id).name())
            .collect();
        assert!(names.contains(&"GROUP"));
        assert!(names.contains(&"ORDER"));
        assert!(names.contains(&"LIMIT"));
    }

    #[test]
    fn linear_traversal_builds_a_chain_pattern() {
        let q = "g.V().hasLabel('Person').as('a').out('Knows').as('b').out('LocatedIn').as('c').hasLabel('Place').count()";
        let plan = parse_gremlin(q, &schema()).unwrap();
        let (_, p) = plan.match_nodes()[0];
        assert_eq!(p.vertex_count(), 3);
        assert_eq!(p.edge_count(), 2);
        let person = schema().vertex_label("Person").unwrap();
        let place = schema().vertex_label("Place").unwrap();
        assert_eq!(
            p.vertex(p.vertex_by_tag("a").unwrap()).constraint,
            TypeConstraint::basic(person)
        );
        assert_eq!(
            p.vertex(p.vertex_by_tag("c").unwrap()).constraint,
            TypeConstraint::basic(place)
        );
        assert!(matches!(plan.op(plan.root()), LogicalOp::Group { .. }));
    }

    #[test]
    fn has_before_and_after_pattern_phase() {
        // `has` during the pattern phase becomes a vertex predicate; after an
        // aggregation it becomes a SELECT
        let q = "g.V().hasLabel('Place').as('c').has('name', 'China') \
                 .in('LocatedIn').as('p').groupCount().by('p').has('values', 2)";
        let plan = parse_gremlin(q, &schema()).unwrap();
        let (_, p) = plan.match_nodes()[0];
        let c = p.vertex(p.vertex_by_tag("c").unwrap());
        assert!(c.predicate.is_some());
        // the in() step produced an edge p -> c
        let e = p.edges().next().unwrap();
        assert_eq!(p.vertex(e.dst).tag.as_deref(), Some("c"));
        let names: Vec<&str> = plan
            .topo_order()
            .iter()
            .map(|id| plan.op(*id).name())
            .collect();
        assert!(names.contains(&"SELECT"));
    }

    #[test]
    fn values_select_dedup_and_order_desc() {
        let q = "g.V().hasLabel('Person').as('a').out('Knows').as('b') \
                 .select('b').values('name').dedup().order().by('b_name', desc).limit(3)";
        let plan = parse_gremlin(q, &schema()).unwrap();
        let names: Vec<&str> = plan
            .topo_order()
            .iter()
            .map(|id| plan.op(*id).name())
            .collect();
        assert!(names.contains(&"PROJECT"));
        assert!(names.contains(&"DEDUP"));
        let LogicalOp::Order { keys, .. } = plan
            .topo_order()
            .into_iter()
            .find_map(|id| match plan.op(id) {
                LogicalOp::Order { keys, limit } => Some(LogicalOp::Order {
                    keys: keys.clone(),
                    limit: *limit,
                }),
                _ => None,
            })
            .unwrap()
        else {
            unreachable!()
        };
        assert_eq!(keys[0].1, SortDir::Desc);
    }

    #[test]
    fn multi_tag_select_projects() {
        let q = "g.V().hasLabel('Person').as('a').out('Knows').as('b').select('a', 'b').dedup()";
        let plan = parse_gremlin(q, &schema()).unwrap();
        let names: Vec<&str> = plan
            .topo_order()
            .iter()
            .map(|id| plan.op(*id).name())
            .collect();
        assert!(names.contains(&"PROJECT"));
    }

    #[test]
    fn bare_traversal_returns_the_pattern() {
        let q = "g.V().hasLabel('Person').as('a').out('Knows').as('b')";
        let plan = parse_gremlin(q, &schema()).unwrap();
        assert!(matches!(plan.op(plan.root()), LogicalOp::Match { .. }));
    }

    #[test]
    fn rejects_malformed_traversals() {
        let s = schema();
        assert!(parse_gremlin("h.V().count()", &s).is_err());
        assert!(parse_gremlin("g.V().hasLabel('Alien')", &s).is_err());
        assert!(parse_gremlin("g.V().out('Flies')", &s).is_err());
        assert!(parse_gremlin("g.V().teleport()", &s).is_err());
        assert!(parse_gremlin("g.V().limit('x')", &s).is_err());
        assert!(parse_gremlin("g.V().select('ghost').count()", &s).is_err());
        assert!(parse_gremlin("g.V().count() trailing", &s).is_err());
    }
}
