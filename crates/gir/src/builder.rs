//! `GraphIrBuilder` — the high-level interface for constructing GIR plans.
//!
//! This mirrors the builder shown in Section 5.2 of the paper: language front-ends
//! (or applications embedding GOpt directly) call `pattern_start()`-style methods to
//! describe patterns and then chain relational operators, producing a
//! language-independent [`LogicalPlan`].
//!
//! ```
//! use gopt_gir::{GraphIrBuilder, PatternBuilder, TypeConstraint, Direction, Expr, AggFunc, SortDir};
//! use gopt_graph::LabelId;
//!
//! // MATCH (v1)-[e1]->(v2), (v2)-[e2]->(v3:Place) WHERE v3.name = 'China'
//! // RETURN v2, count(v2) AS cnt ORDER BY cnt LIMIT 10
//! let pattern = PatternBuilder::new()
//!     .get_v("v1", TypeConstraint::all())
//!     .expand_e("v1", "e1", TypeConstraint::all(), Direction::Out)
//!     .get_v_end("e1", "v2", TypeConstraint::all())
//!     .expand_e("v2", "e2", TypeConstraint::all(), Direction::Out)
//!     .get_v_end("e2", "v3", TypeConstraint::basic(LabelId(2)))
//!     .finish()
//!     .unwrap();
//!
//! let mut b = GraphIrBuilder::new();
//! let m = b.match_pattern(pattern);
//! let s = b.select(m, Expr::prop_eq("v3", "name", "China"));
//! let g = b.group(s, vec![(Expr::tag("v2"), "v2".into())],
//!                 vec![(AggFunc::Count, Expr::tag("v2"), "cnt".into())]);
//! let o = b.order(g, vec![(Expr::tag("cnt"), SortDir::Asc)], Some(10));
//! let plan = b.build(o);
//! assert_eq!(plan.len(), 4);
//! ```

use crate::expr::{AggFunc, Expr, SortDir};
use crate::logical::{JoinType, LogicalNodeId, LogicalOp, LogicalPlan};
use crate::pattern::{Direction, PathSemantics, PathSpec, Pattern, PatternVertexId};
use crate::types::TypeConstraint;
use std::collections::HashMap;
use std::fmt;

/// Error produced while building a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern build error: {}", self.0)
    }
}
impl std::error::Error for BuildError {}

#[derive(Debug, Clone)]
struct PendingEdge {
    from: PatternVertexId,
    alias: String,
    constraint: TypeConstraint,
    direction: Direction,
    path: Option<PathSpec>,
    predicate: Option<Expr>,
}

/// Fluent builder for [`Pattern`]s, mirroring the paper's
/// `patternStart().getV(..).expandE(..).getV(..).patternEnd()` API.
///
/// Misuse (e.g. closing an edge that was never opened) is recorded and reported by
/// [`PatternBuilder::finish`], so the chain itself stays ergonomic.
#[derive(Debug, Clone, Default)]
pub struct PatternBuilder {
    pattern: Pattern,
    tags: HashMap<String, PatternVertexId>,
    pending: HashMap<String, PendingEdge>,
    error: Option<String>,
}

impl PatternBuilder {
    /// Start building a pattern (`patternStart()`).
    pub fn new() -> Self {
        Self::default()
    }

    fn fail(mut self, msg: impl Into<String>) -> Self {
        if self.error.is_none() {
            self.error = Some(msg.into());
        }
        self
    }

    fn vertex_for(&mut self, alias: &str, constraint: &TypeConstraint) -> PatternVertexId {
        if let Some(&v) = self.tags.get(alias) {
            let existing = self.pattern.vertex_mut(v);
            existing.constraint = existing.constraint.intersect(constraint);
            v
        } else {
            let v = self
                .pattern
                .add_vertex_tagged(alias.to_string(), constraint.clone());
            self.tags.insert(alias.to_string(), v);
            v
        }
    }

    /// Declare (or refine) a vertex with the given alias and type constraint
    /// (`getV(Alias(..), Type)`).
    pub fn get_v(mut self, alias: &str, constraint: TypeConstraint) -> Self {
        self.vertex_for(alias, &constraint);
        self
    }

    /// Attach a predicate to an already-declared vertex.
    pub fn where_v(mut self, alias: &str, predicate: Expr) -> Self {
        match self.tags.get(alias) {
            Some(&v) => {
                let pv = self.pattern.vertex_mut(v);
                pv.predicate = match pv.predicate.take() {
                    Some(p) => Some(p.and(predicate)),
                    None => Some(predicate),
                };
                self
            }
            None => self.fail(format!("where_v: unknown vertex alias {alias}")),
        }
    }

    /// Open an edge expansion from the vertex tagged `from_tag`
    /// (`expandE(Tag(..), Alias(..), Type, Dir)`). The edge is completed by
    /// [`get_v_end`](Self::get_v_end).
    pub fn expand_e(
        mut self,
        from_tag: &str,
        edge_alias: &str,
        constraint: TypeConstraint,
        direction: Direction,
    ) -> Self {
        let from = match self.tags.get(from_tag) {
            Some(&v) => v,
            None => return self.fail(format!("expand_e: unknown source vertex {from_tag}")),
        };
        if self.pending.contains_key(edge_alias) {
            return self.fail(format!("expand_e: edge alias {edge_alias} already pending"));
        }
        self.pending.insert(
            edge_alias.to_string(),
            PendingEdge {
                from,
                alias: edge_alias.to_string(),
                constraint,
                direction,
                path: None,
                predicate: None,
            },
        );
        self
    }

    #[allow(clippy::too_many_arguments)]
    /// Open a variable-length path expansion (`EXPAND_PATH`) from `from_tag`.
    pub fn expand_path(
        mut self,
        from_tag: &str,
        path_alias: &str,
        constraint: TypeConstraint,
        direction: Direction,
        min_hops: u32,
        max_hops: u32,
        semantics: PathSemantics,
    ) -> Self {
        let from = match self.tags.get(from_tag) {
            Some(&v) => v,
            None => return self.fail(format!("expand_path: unknown source vertex {from_tag}")),
        };
        if min_hops == 0 || max_hops < min_hops {
            return self.fail("expand_path: invalid hop bounds".to_string());
        }
        self.pending.insert(
            path_alias.to_string(),
            PendingEdge {
                from,
                alias: path_alias.to_string(),
                constraint,
                direction,
                path: Some(PathSpec {
                    min_hops,
                    max_hops,
                    semantics,
                }),
                predicate: None,
            },
        );
        self
    }

    /// Close a pending edge (or path) at a vertex with the given alias and constraint
    /// (`getV(Tag(edge), Alias(v), Type, Vertex.END)`).
    pub fn get_v_end(
        mut self,
        edge_tag: &str,
        vertex_alias: &str,
        constraint: TypeConstraint,
    ) -> Self {
        let pending = match self.pending.remove(edge_tag) {
            Some(p) => p,
            None => return self.fail(format!("get_v_end: no pending edge {edge_tag}")),
        };
        let to = self.vertex_for(vertex_alias, &constraint);
        let (src, dst) = match pending.direction {
            Direction::Out | Direction::Both => (pending.from, to),
            Direction::In => (to, pending.from),
        };
        self.pattern.add_edge_full(
            src,
            dst,
            Some(pending.alias),
            pending.constraint,
            pending.predicate,
            pending.path,
        );
        self
    }

    /// Finish the pattern (`patternEnd()`): all opened edges must have been closed and
    /// the pattern must be connected (the paper treats disconnected patterns as separate
    /// `MATCH_PATTERN`s combined with a join/product).
    pub fn finish(self) -> Result<Pattern, BuildError> {
        if let Some(e) = self.error {
            return Err(BuildError(e));
        }
        if !self.pending.is_empty() {
            let mut names: Vec<_> = self.pending.keys().cloned().collect();
            names.sort();
            return Err(BuildError(format!(
                "unclosed edge expansion(s): {}",
                names.join(", ")
            )));
        }
        if self.pattern.is_empty() {
            return Err(BuildError("empty pattern".to_string()));
        }
        if !self.pattern.is_connected() {
            return Err(BuildError(
                "pattern is not connected; build separate patterns and JOIN them".to_string(),
            ));
        }
        Ok(self.pattern)
    }
}

/// The high-level GIR construction interface.
///
/// Each method appends one logical operator and returns its node id; ids are then used
/// as inputs to downstream operators, so arbitrary DAGs (joins, unions) can be expressed.
#[derive(Debug, Clone, Default)]
pub struct GraphIrBuilder {
    plan: LogicalPlan,
}

impl GraphIrBuilder {
    /// Create a new builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a fresh [`PatternBuilder`] (convenience; equivalent to `PatternBuilder::new()`).
    pub fn pattern(&self) -> PatternBuilder {
        PatternBuilder::new()
    }

    /// Add a `MATCH_PATTERN` operator.
    pub fn match_pattern(&mut self, pattern: Pattern) -> LogicalNodeId {
        self.plan.add(LogicalOp::Match { pattern }, vec![])
    }

    /// Add a `SELECT` operator over `input`.
    pub fn select(&mut self, input: LogicalNodeId, predicate: Expr) -> LogicalNodeId {
        self.plan.add(LogicalOp::Select { predicate }, vec![input])
    }

    /// Add a `PROJECT` operator over `input`.
    pub fn project(&mut self, input: LogicalNodeId, items: Vec<(Expr, String)>) -> LogicalNodeId {
        self.plan.add(LogicalOp::Project { items }, vec![input])
    }

    /// Add a `GROUP` operator over `input`.
    pub fn group(
        &mut self,
        input: LogicalNodeId,
        keys: Vec<(Expr, String)>,
        aggs: Vec<(AggFunc, Expr, String)>,
    ) -> LogicalNodeId {
        self.plan.add(LogicalOp::Group { keys, aggs }, vec![input])
    }

    /// Add an `ORDER` operator (optionally top-k) over `input`.
    pub fn order(
        &mut self,
        input: LogicalNodeId,
        keys: Vec<(Expr, SortDir)>,
        limit: Option<usize>,
    ) -> LogicalNodeId {
        self.plan.add(LogicalOp::Order { keys, limit }, vec![input])
    }

    /// Add a `LIMIT` operator over `input`.
    pub fn limit(&mut self, input: LogicalNodeId, count: usize) -> LogicalNodeId {
        self.plan.add(LogicalOp::Limit { count }, vec![input])
    }

    /// Add a `DEDUP` operator over `input`.
    pub fn dedup(&mut self, input: LogicalNodeId, keys: Vec<Expr>) -> LogicalNodeId {
        self.plan.add(LogicalOp::Dedup { keys }, vec![input])
    }

    /// Add a `JOIN` of `left` and `right` on the given tags.
    pub fn join(
        &mut self,
        left: LogicalNodeId,
        right: LogicalNodeId,
        keys: Vec<String>,
        kind: JoinType,
    ) -> LogicalNodeId {
        self.plan
            .add(LogicalOp::Join { kind, keys }, vec![left, right])
    }

    /// Add a `UNION` of the given inputs.
    pub fn union(&mut self, inputs: Vec<LogicalNodeId>, all: bool) -> LogicalNodeId {
        self.plan.add(LogicalOp::Union { all }, inputs)
    }

    /// Finish, declaring `root` as the final operator.
    pub fn build(mut self, root: LogicalNodeId) -> LogicalPlan {
        self.plan.set_root(root);
        self.plan
    }

    /// Finish with the most recently added operator as root.
    pub fn build_last(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_graph::LabelId;

    const PLACE: LabelId = LabelId(2);

    /// Build the running example of the paper (Fig. 3): two patterns joined on (v1, v3),
    /// a filter on v3.name, grouping by v2 with COUNT and an ordered LIMIT 10.
    fn paper_running_example() -> LogicalPlan {
        let pattern1 = PatternBuilder::new()
            .get_v("v1", TypeConstraint::all())
            .expand_e("v1", "e1", TypeConstraint::all(), Direction::Out)
            .get_v_end("e1", "v2", TypeConstraint::all())
            .expand_e("v2", "e2", TypeConstraint::all(), Direction::Out)
            .get_v_end("e2", "v3", TypeConstraint::all())
            .finish()
            .unwrap();
        let pattern2 = PatternBuilder::new()
            .get_v("v1", TypeConstraint::all())
            .expand_e("v1", "e3", TypeConstraint::all(), Direction::Out)
            .get_v_end("e3", "v3", TypeConstraint::basic(PLACE))
            .finish()
            .unwrap();
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(pattern1);
        let m2 = b.match_pattern(pattern2);
        let j = b.join(m1, m2, vec!["v1".into(), "v3".into()], JoinType::Inner);
        let s = b.select(j, Expr::prop_eq("v3", "name", "China"));
        let g = b.group(
            s,
            vec![(Expr::tag("v2"), "v2".into())],
            vec![(AggFunc::Count, Expr::tag("v2"), "cnt".into())],
        );
        let o = b.order(g, vec![(Expr::tag("cnt"), SortDir::Asc)], Some(10));
        b.build(o)
    }

    #[test]
    fn running_example_has_expected_shape() {
        let plan = paper_running_example();
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.match_nodes().len(), 2);
        assert_eq!(plan.op(plan.root()).name(), "ORDER");
        let text = plan.explain();
        assert!(text.contains("JOIN"));
        assert!(text.contains("China"));
    }

    #[test]
    fn pattern_builder_reuses_tagged_vertices() {
        let p = PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .expand_e("a", "e1", TypeConstraint::all(), Direction::Out)
            .get_v_end("e1", "b", TypeConstraint::all())
            .expand_e("b", "e2", TypeConstraint::all(), Direction::Out)
            .get_v_end("e2", "a", TypeConstraint::all()) // cycle back to a
            .finish()
            .unwrap();
        assert_eq!(p.vertex_count(), 2);
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn incoming_direction_flips_edge() {
        let p = PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .expand_e("a", "e", TypeConstraint::all(), Direction::In)
            .get_v_end("e", "b", TypeConstraint::all())
            .finish()
            .unwrap();
        let e = p.edge(p.edge_ids()[0]);
        // a expanded along incoming edges, so the pattern edge is b -> a
        assert_eq!(p.vertex(e.src).tag.as_deref(), Some("b"));
        assert_eq!(p.vertex(e.dst).tag.as_deref(), Some("a"));
    }

    #[test]
    fn builder_misuse_is_reported() {
        // unknown source vertex
        assert!(PatternBuilder::new()
            .expand_e("ghost", "e", TypeConstraint::all(), Direction::Out)
            .get_v_end("e", "b", TypeConstraint::all())
            .finish()
            .is_err());
        // unclosed edge
        assert!(PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .expand_e("a", "e", TypeConstraint::all(), Direction::Out)
            .finish()
            .is_err());
        // empty pattern
        assert!(PatternBuilder::new().finish().is_err());
        // closing a non-existent edge
        assert!(PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .get_v_end("e", "b", TypeConstraint::all())
            .finish()
            .is_err());
        // duplicate pending edge alias
        assert!(PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .expand_e("a", "e", TypeConstraint::all(), Direction::Out)
            .expand_e("a", "e", TypeConstraint::all(), Direction::Out)
            .get_v_end("e", "b", TypeConstraint::all())
            .finish()
            .is_err());
        // where_v on unknown alias
        assert!(PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .where_v("zzz", Expr::prop_eq("zzz", "x", 1))
            .finish()
            .is_err());
        // disconnected pattern
        assert!(PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .get_v("b", TypeConstraint::all())
            .finish()
            .is_err());
        // invalid hop bounds
        assert!(PatternBuilder::new()
            .get_v("a", TypeConstraint::all())
            .expand_path(
                "a",
                "p",
                TypeConstraint::all(),
                Direction::Out,
                3,
                2,
                PathSemantics::Arbitrary
            )
            .get_v_end("p", "b", TypeConstraint::all())
            .finish()
            .is_err());
    }

    #[test]
    fn predicates_and_paths_are_recorded() {
        let p = PatternBuilder::new()
            .get_v("p1", TypeConstraint::all())
            .where_v("p1", Expr::prop_eq("p1", "name", "alice"))
            .where_v("p1", Expr::prop_eq("p1", "active", true))
            .expand_path(
                "p1",
                "path",
                TypeConstraint::all(),
                Direction::Out,
                1,
                6,
                PathSemantics::Arbitrary,
            )
            .get_v_end("path", "p2", TypeConstraint::all())
            .finish()
            .unwrap();
        let v = p.vertex(p.vertex_by_tag("p1").unwrap());
        assert_eq!(v.predicate.as_ref().unwrap().conjuncts().len(), 2);
        assert!(p.has_path_edges());
        let e = p.edge(p.edge_ids()[0]);
        assert_eq!(e.path.unwrap().max_hops, 6);
    }

    #[test]
    fn union_and_dedup_and_project_and_limit() {
        let mk = || {
            PatternBuilder::new()
                .get_v("a", TypeConstraint::all())
                .expand_e("a", "e", TypeConstraint::all(), Direction::Out)
                .get_v_end("e", "b", TypeConstraint::all())
                .finish()
                .unwrap()
        };
        let mut b = GraphIrBuilder::new();
        let m1 = b.match_pattern(mk());
        let m2 = b.match_pattern(mk());
        let u = b.union(vec![m1, m2], true);
        let d = b.dedup(u, vec![Expr::tag("a")]);
        let p = b.project(d, vec![(Expr::prop("a", "name"), "name".into())]);
        let l = b.limit(p, 3);
        let plan = b.build(l);
        assert_eq!(plan.op(plan.root()).name(), "LIMIT");
        assert_eq!(plan.topo_order().len(), 6);
        let b2 = GraphIrBuilder::new();
        let _ = b2.pattern();
    }

    #[test]
    fn build_error_display() {
        let err = PatternBuilder::new().finish().unwrap_err();
        assert!(err.to_string().contains("pattern build error"));
    }
}
