//! # gopt-gir — the unified Graph Intermediate Representation
//!
//! GIR is the language-independent plan representation at the heart of GOpt
//! (Section 5 of the paper). Queries written in Cypher or Gremlin are lowered by the
//! front-ends in `gopt-parser` into the same GIR, which the optimizer in `gopt-core`
//! rewrites and finally converts into a backend-specific [`physical::PhysicalPlan`].
//!
//! The crate provides:
//!
//! * [`types::TypeConstraint`] — BasicType / UnionType / AllType constraints on pattern
//!   vertices and edges (Section 3),
//! * [`pattern::Pattern`] — the pattern graph underlying `MATCH_PATTERN`, with canonical
//!   encoding, sub-pattern extraction and connectivity utilities used by both the CBO and
//!   the GLogue statistics store,
//! * [`expr::Expr`] — the expression language used by `SELECT`, `PROJECT`, `GROUP`
//!   and `ORDER`,
//! * [`logical`] — the logical operators and the [`logical::LogicalPlan`] DAG built by
//!   [`builder::GraphIrBuilder`],
//! * [`physical`] — backend-tagged physical operators registered via `PhysicalSpec`
//!   (ExpandInto for Neo4j-like backends, ExpandIntersect for GraphScope-like backends,
//!   HashJoin, plus relational operators) and a plain-text plan encoding that stands in
//!   for the paper's protobuf output format.

pub mod builder;
pub mod expr;
pub mod logical;
pub mod pattern;
pub mod physical;
pub mod types;

pub use builder::{GraphIrBuilder, PatternBuilder};
pub use expr::{AggFunc, BinOp, EvalContext, Expr, SortDir, UnaryOp};
pub use logical::{JoinType, LogicalNodeId, LogicalOp, LogicalPlan};
pub use pattern::{
    Direction, PathSemantics, Pattern, PatternEdge, PatternEdgeId, PatternVertex, PatternVertexId,
};
pub use physical::{PhysicalNodeId, PhysicalOp, PhysicalPlan};
pub use types::TypeConstraint;
