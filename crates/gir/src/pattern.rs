//! Pattern graphs — the `MATCH_PATTERN` payload of the GIR.
//!
//! A [`Pattern`] is a small connected directed graph whose vertices and edges carry
//! [`TypeConstraint`]s, optional tags (user aliases), optional predicates (pushed in by
//! the `FilterIntoPattern` rule) and optional column lists (pruned by `FieldTrim`).
//!
//! The CBO reasons entirely in terms of patterns and their sub-patterns, so this module
//! also provides the structural utilities that the optimizer and the GLogue statistics
//! store rely on: sub-pattern extraction with **stable element ids**, connectivity tests,
//! canonical encoding (used as the statistics key), and tag-based merging (used by the
//! `JoinToPattern` and `ComSubPattern` rules).

use crate::expr::Expr;
use crate::types::TypeConstraint;
use gopt_graph::PropValue;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a vertex inside one [`Pattern`]. Stable across sub-pattern extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternVertexId(pub usize);

/// Identifier of an edge inside one [`Pattern`]. Stable across sub-pattern extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternEdgeId(pub usize);

/// Direction of an expansion step relative to the source vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow outgoing edges.
    Out,
    /// Follow incoming edges.
    In,
    /// Follow both directions.
    Both,
}

/// Path-matching semantics for variable-length (path) edges, following the paper's
/// `EXPAND_PATH` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathSemantics {
    /// No constraint on repeated vertices/edges.
    Arbitrary,
    /// No repeated vertex.
    Simple,
    /// No repeated edge.
    Trail,
}

/// Hop bounds and semantics of a variable-length path edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathSpec {
    /// Minimum number of hops (>= 1).
    pub min_hops: u32,
    /// Maximum number of hops (inclusive).
    pub max_hops: u32,
    /// Path semantics.
    pub semantics: PathSemantics,
}

impl PathSpec {
    /// A fixed-length path of exactly `hops` hops with arbitrary semantics.
    pub fn exact(hops: u32) -> Self {
        PathSpec {
            min_hops: hops,
            max_hops: hops,
            semantics: PathSemantics::Arbitrary,
        }
    }
}

/// A pattern vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternVertex {
    /// Stable id within the owning pattern.
    pub id: PatternVertexId,
    /// User-visible alias (`Alias("v1")`), if any.
    pub tag: Option<String>,
    /// Type constraint (`τ_P(v)`).
    pub constraint: TypeConstraint,
    /// Predicate pushed into the pattern (e.g. by `FilterIntoPattern`).
    pub predicate: Option<Expr>,
    /// Properties to retain for this vertex (`COLUMNS`), `None` meaning "all".
    /// Set by the `FieldTrim` rule; an empty set means no properties are needed.
    pub columns: Option<BTreeSet<String>>,
}

/// A pattern edge, directed from `src` to `dst`.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternEdge {
    /// Stable id within the owning pattern.
    pub id: PatternEdgeId,
    /// Source pattern vertex.
    pub src: PatternVertexId,
    /// Destination pattern vertex.
    pub dst: PatternVertexId,
    /// User-visible alias, if any.
    pub tag: Option<String>,
    /// Type constraint (`τ_P(e)`).
    pub constraint: TypeConstraint,
    /// Predicate on the edge.
    pub predicate: Option<Expr>,
    /// When `Some`, this edge is a variable-length path edge (`EXPAND_PATH`).
    pub path: Option<PathSpec>,
}

/// A pattern graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pattern {
    vertices: BTreeMap<PatternVertexId, PatternVertex>,
    edges: BTreeMap<PatternEdgeId, PatternEdge>,
    next_vertex: usize,
    next_edge: usize,
}

impl Pattern {
    /// Create an empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an untagged vertex with the given type constraint; returns its id.
    pub fn add_vertex(&mut self, constraint: TypeConstraint) -> PatternVertexId {
        self.add_vertex_full(None, constraint, None)
    }

    /// Add a tagged vertex.
    pub fn add_vertex_tagged(
        &mut self,
        tag: impl Into<String>,
        constraint: TypeConstraint,
    ) -> PatternVertexId {
        self.add_vertex_full(Some(tag.into()), constraint, None)
    }

    /// Add a vertex with all attributes.
    pub fn add_vertex_full(
        &mut self,
        tag: Option<String>,
        constraint: TypeConstraint,
        predicate: Option<Expr>,
    ) -> PatternVertexId {
        let id = PatternVertexId(self.next_vertex);
        self.next_vertex += 1;
        self.vertices.insert(
            id,
            PatternVertex {
                id,
                tag,
                constraint,
                predicate,
                columns: None,
            },
        );
        id
    }

    /// Add an untagged edge; returns its id.
    pub fn add_edge(
        &mut self,
        src: PatternVertexId,
        dst: PatternVertexId,
        constraint: TypeConstraint,
    ) -> PatternEdgeId {
        self.add_edge_full(src, dst, None, constraint, None, None)
    }

    /// Add a tagged edge.
    pub fn add_edge_tagged(
        &mut self,
        src: PatternVertexId,
        dst: PatternVertexId,
        tag: impl Into<String>,
        constraint: TypeConstraint,
    ) -> PatternEdgeId {
        self.add_edge_full(src, dst, Some(tag.into()), constraint, None, None)
    }

    /// Add an edge with all attributes (including an optional variable-length path spec).
    pub fn add_edge_full(
        &mut self,
        src: PatternVertexId,
        dst: PatternVertexId,
        tag: Option<String>,
        constraint: TypeConstraint,
        predicate: Option<Expr>,
        path: Option<PathSpec>,
    ) -> PatternEdgeId {
        debug_assert!(self.vertices.contains_key(&src) && self.vertices.contains_key(&dst));
        let id = PatternEdgeId(self.next_edge);
        self.next_edge += 1;
        self.edges.insert(
            id,
            PatternEdge {
                id,
                src,
                dst,
                tag,
                constraint,
                predicate,
                path,
            },
        );
        id
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the pattern has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Access a vertex.
    pub fn vertex(&self, id: PatternVertexId) -> &PatternVertex {
        &self.vertices[&id]
    }

    /// Mutable access to a vertex.
    pub fn vertex_mut(&mut self, id: PatternVertexId) -> &mut PatternVertex {
        self.vertices.get_mut(&id).expect("vertex id in pattern")
    }

    /// Access an edge.
    pub fn edge(&self, id: PatternEdgeId) -> &PatternEdge {
        &self.edges[&id]
    }

    /// Mutable access to an edge.
    pub fn edge_mut(&mut self, id: PatternEdgeId) -> &mut PatternEdge {
        self.edges.get_mut(&id).expect("edge id in pattern")
    }

    /// Iterate over vertices (in id order).
    pub fn vertices(&self) -> impl Iterator<Item = &PatternVertex> {
        self.vertices.values()
    }

    /// Iterate over edges (in id order).
    pub fn edges(&self) -> impl Iterator<Item = &PatternEdge> {
        self.edges.values()
    }

    /// Vertex ids (in order).
    pub fn vertex_ids(&self) -> Vec<PatternVertexId> {
        self.vertices.keys().copied().collect()
    }

    /// Edge ids (in order).
    pub fn edge_ids(&self) -> Vec<PatternEdgeId> {
        self.edges.keys().copied().collect()
    }

    /// Normalize comparison constants in every vertex and edge predicate into
    /// parameter slots (vertices first, then edges, both in id order). See
    /// [`Expr::parameterize_into`].
    pub fn parameterize_into(&mut self, params: &mut Vec<PropValue>) {
        for v in self.vertices.values_mut() {
            if let Some(p) = &mut v.predicate {
                p.parameterize_into(params);
            }
        }
        for e in self.edges.values_mut() {
            if let Some(p) = &mut e.predicate {
                p.parameterize_into(params);
            }
        }
    }

    /// Whether the pattern contains the given vertex id.
    pub fn contains_vertex(&self, id: PatternVertexId) -> bool {
        self.vertices.contains_key(&id)
    }

    /// Edges incident to `v` (either endpoint).
    pub fn adjacent_edges(&self, v: PatternVertexId) -> Vec<PatternEdgeId> {
        self.edges
            .values()
            .filter(|e| e.src == v || e.dst == v)
            .map(|e| e.id)
            .collect()
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: PatternVertexId) -> Vec<PatternEdgeId> {
        self.edges
            .values()
            .filter(|e| e.src == v)
            .map(|e| e.id)
            .collect()
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: PatternVertexId) -> Vec<PatternEdgeId> {
        self.edges
            .values()
            .filter(|e| e.dst == v)
            .map(|e| e.id)
            .collect()
    }

    /// Degree (number of incident edges) of `v`.
    pub fn degree(&self, v: PatternVertexId) -> usize {
        self.adjacent_edges(v).len()
    }

    /// Undirected neighbours of `v`.
    pub fn neighbors(&self, v: PatternVertexId) -> Vec<PatternVertexId> {
        let mut out: Vec<PatternVertexId> = self
            .edges
            .values()
            .filter_map(|e| {
                if e.src == v {
                    Some(e.dst)
                } else if e.dst == v {
                    Some(e.src)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All edges connecting `u` and `v` (in either direction).
    pub fn edges_between(&self, u: PatternVertexId, v: PatternVertexId) -> Vec<PatternEdgeId> {
        self.edges
            .values()
            .filter(|e| (e.src == u && e.dst == v) || (e.src == v && e.dst == u))
            .map(|e| e.id)
            .collect()
    }

    /// Find a vertex by tag.
    pub fn vertex_by_tag(&self, tag: &str) -> Option<PatternVertexId> {
        self.vertices
            .values()
            .find(|v| v.tag.as_deref() == Some(tag))
            .map(|v| v.id)
    }

    /// Find an edge by tag.
    pub fn edge_by_tag(&self, tag: &str) -> Option<PatternEdgeId> {
        self.edges
            .values()
            .find(|e| e.tag.as_deref() == Some(tag))
            .map(|e| e.id)
    }

    /// All tags used in the pattern (vertices and edges).
    pub fn tags(&self) -> BTreeSet<String> {
        self.vertices
            .values()
            .filter_map(|v| v.tag.clone())
            .chain(self.edges.values().filter_map(|e| e.tag.clone()))
            .collect()
    }

    /// Whether the pattern contains any variable-length path edge.
    pub fn has_path_edges(&self) -> bool {
        self.edges.values().any(|e| e.path.is_some())
    }

    /// Whether the pattern (viewed as an undirected graph) is connected.
    /// The empty pattern is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.vertices.len() <= 1 {
            return true;
        }
        let start = *self.vertices.keys().next().expect("non-empty");
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(v) = stack.pop() {
            for n in self.neighbors(v) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == self.vertices.len()
    }

    /// The sub-pattern induced by a set of edge ids: contains exactly those edges and
    /// the vertices they touch. Element ids are preserved.
    pub fn induced_by_edges(&self, edge_ids: &BTreeSet<PatternEdgeId>) -> Pattern {
        let mut p = Pattern {
            vertices: BTreeMap::new(),
            edges: BTreeMap::new(),
            next_vertex: self.next_vertex,
            next_edge: self.next_edge,
        };
        for eid in edge_ids {
            let e = &self.edges[eid];
            p.edges.insert(*eid, e.clone());
            for vid in [e.src, e.dst] {
                p.vertices
                    .entry(vid)
                    .or_insert_with(|| self.vertices[&vid].clone());
            }
        }
        p
    }

    /// The sub-pattern induced by explicit vertex and edge id sets (edges must have both
    /// endpoints in the vertex set, which is extended automatically). Ids are preserved.
    pub fn induced(
        &self,
        vertex_ids: &BTreeSet<PatternVertexId>,
        edge_ids: &BTreeSet<PatternEdgeId>,
    ) -> Pattern {
        let mut p = self.induced_by_edges(edge_ids);
        for vid in vertex_ids {
            if !p.contains_vertex(*vid) {
                p.vertices.insert(*vid, self.vertices[vid].clone());
            }
        }
        p
    }

    /// The sub-pattern obtained by removing vertex `v` and all its incident edges.
    /// Element ids are preserved.
    pub fn remove_vertex(&self, v: PatternVertexId) -> Pattern {
        let mut p = self.clone();
        p.vertices.remove(&v);
        p.edges.retain(|_, e| e.src != v && e.dst != v);
        p
    }

    /// A single-vertex pattern containing only `v` (id preserved).
    pub fn single_vertex(&self, v: PatternVertexId) -> Pattern {
        let mut p = Pattern {
            vertices: BTreeMap::new(),
            edges: BTreeMap::new(),
            next_vertex: self.next_vertex,
            next_edge: self.next_edge,
        };
        p.vertices.insert(v, self.vertices[&v].clone());
        p
    }

    /// Vertex ids shared with another sub-pattern of the *same* original pattern
    /// (ids are comparable because sub-pattern extraction preserves them).
    pub fn common_vertices(&self, other: &Pattern) -> Vec<PatternVertexId> {
        self.vertices
            .keys()
            .filter(|id| other.vertices.contains_key(id))
            .copied()
            .collect()
    }

    /// Edge ids shared with another sub-pattern of the same original pattern.
    pub fn common_edges(&self, other: &Pattern) -> Vec<PatternEdgeId> {
        self.edges
            .keys()
            .filter(|id| other.edges.contains_key(id))
            .copied()
            .collect()
    }

    /// The intersection sub-pattern (`P_s1 ∩ P_s2` in Eq. 1): common edges plus common
    /// vertices.
    pub fn intersection(&self, other: &Pattern) -> Pattern {
        let mut p = Pattern {
            vertices: BTreeMap::new(),
            edges: BTreeMap::new(),
            next_vertex: self.next_vertex,
            next_edge: self.next_edge,
        };
        for (id, v) in &self.vertices {
            if other.vertices.contains_key(id) {
                p.vertices.insert(*id, v.clone());
            }
        }
        for (id, e) in &self.edges {
            if other.edges.contains_key(id) {
                p.edges.insert(*id, e.clone());
            }
        }
        p
    }

    /// Merge another pattern into this one, unifying vertices **by tag**: a vertex of
    /// `other` whose tag matches a vertex here is mapped onto it (type constraints are
    /// intersected); all other elements are appended with fresh ids.
    ///
    /// This is the structural operation behind the `JoinToPattern` rule: two
    /// `MATCH_PATTERN`s joined on their common tags collapse into one pattern.
    /// Returns the merged pattern and the vertex-id mapping from `other` into the result.
    pub fn merge_by_tag(
        &self,
        other: &Pattern,
    ) -> (Pattern, BTreeMap<PatternVertexId, PatternVertexId>) {
        let mut merged = self.clone();
        let mut vmap: BTreeMap<PatternVertexId, PatternVertexId> = BTreeMap::new();
        for v in other.vertices.values() {
            let target = v.tag.as_deref().and_then(|t| merged.vertex_by_tag(t));
            match target {
                Some(existing) => {
                    let mv = merged.vertex_mut(existing);
                    mv.constraint = mv.constraint.intersect(&v.constraint);
                    if mv.predicate.is_none() {
                        mv.predicate = v.predicate.clone();
                    } else if let Some(p) = &v.predicate {
                        mv.predicate = Some(mv.predicate.clone().expect("checked").and(p.clone()));
                    }
                    vmap.insert(v.id, existing);
                }
                None => {
                    let nid = merged.add_vertex_full(
                        v.tag.clone(),
                        v.constraint.clone(),
                        v.predicate.clone(),
                    );
                    merged.vertex_mut(nid).columns = v.columns.clone();
                    vmap.insert(v.id, nid);
                }
            }
        }
        for e in other.edges.values() {
            merged.add_edge_full(
                vmap[&e.src],
                vmap[&e.dst],
                e.tag.clone(),
                e.constraint.clone(),
                e.predicate.clone(),
                e.path,
            );
        }
        (merged, vmap)
    }

    /// Canonical encoding of the pattern structure and type constraints, invariant under
    /// renaming (re-identification) of pattern vertices and edges.
    ///
    /// Tags, predicates and column lists are deliberately **not** part of the code: the
    /// code identifies the statistical object (which labelled structure is being counted),
    /// which is what GLogue keys on. Computed by brute force over vertex orderings, which
    /// is fine for the small patterns (≤ 8 vertices) the optimizer and GLogue deal with.
    pub fn canonical_code(&self) -> String {
        let ids = self.vertex_ids();
        let n = ids.len();
        if n == 0 {
            return "()".to_string();
        }
        let mut best: Option<String> = None;
        let mut perm: Vec<usize> = (0..n).collect();
        permute(&mut perm, 0, &mut |perm| {
            // position[i] = rank of vertex ids[i] under this permutation
            let mut rank = BTreeMap::new();
            for (i, &p) in perm.iter().enumerate() {
                rank.insert(ids[i], p);
            }
            let mut vcodes: Vec<(usize, String)> = self
                .vertices
                .values()
                .map(|v| (rank[&v.id], constraint_code(&v.constraint)))
                .collect();
            vcodes.sort();
            let mut ecodes: Vec<String> = self
                .edges
                .values()
                .map(|e| {
                    format!(
                        "{}->{}:{}:{}",
                        rank[&e.src],
                        rank[&e.dst],
                        constraint_code(&e.constraint),
                        match e.path {
                            None => "1".to_string(),
                            Some(p) => format!("{}..{}", p.min_hops, p.max_hops),
                        }
                    )
                })
                .collect();
            ecodes.sort();
            let code = format!(
                "V[{}]E[{}]",
                vcodes
                    .iter()
                    .map(|(r, c)| format!("{r}:{c}"))
                    .collect::<Vec<_>>()
                    .join(","),
                ecodes.join(",")
            );
            match &best {
                Some(b) if *b <= code => {}
                _ => best = Some(code),
            }
        });
        best.expect("non-empty pattern has a code")
    }

    /// Render the pattern using label names from a naming function.
    pub fn render(
        &self,
        vertex_name: impl Fn(gopt_graph::LabelId) -> String,
        edge_name: impl Fn(gopt_graph::LabelId) -> String,
    ) -> String {
        let vs: Vec<String> = self
            .vertices
            .values()
            .map(|v| {
                format!(
                    "({}:{})",
                    v.tag.clone().unwrap_or_else(|| format!("_{}", v.id.0)),
                    v.constraint.render(&vertex_name)
                )
            })
            .collect();
        let es: Vec<String> = self
            .edges
            .values()
            .map(|e| {
                format!(
                    "(_{})-[{}:{}]->(_{})",
                    e.src.0,
                    e.tag.clone().unwrap_or_else(|| format!("_{}", e.id.0)),
                    e.constraint.render(&edge_name),
                    e.dst.0
                )
            })
            .collect();
        format!("Pattern{{ {} ; {} }}", vs.join(", "), es.join(", "))
    }
}

fn constraint_code(c: &TypeConstraint) -> String {
    match c {
        TypeConstraint::All => "*".to_string(),
        TypeConstraint::Labels(v) => v
            .iter()
            .map(|l| l.0.to_string())
            .collect::<Vec<_>>()
            .join("|"),
    }
}

/// Enumerate all permutations of `items[at..]`, invoking `f` on each complete permutation.
fn permute(items: &mut Vec<usize>, at: usize, f: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        f(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, f);
        items.swap(at, i);
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            self.render(|l| format!("{}", l.0), |l| format!("{}", l.0))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopt_graph::LabelId;

    const PERSON: LabelId = LabelId(0);
    const PRODUCT: LabelId = LabelId(1);
    const PLACE: LabelId = LabelId(2);
    const KNOWS: LabelId = LabelId(0);
    const LOCATED: LabelId = LabelId(2);

    /// The paper's Fig. 4(b) triangle: v1 -> v2 -> v3 <- v1.
    fn triangle() -> (Pattern, PatternVertexId, PatternVertexId, PatternVertexId) {
        let mut p = Pattern::new();
        let v1 = p.add_vertex_tagged("v1", TypeConstraint::all());
        let v2 = p.add_vertex_tagged("v2", TypeConstraint::all());
        let v3 = p.add_vertex_tagged("v3", TypeConstraint::basic(PLACE));
        p.add_edge_tagged(v1, v2, "e1", TypeConstraint::all());
        p.add_edge_tagged(v2, v3, "e2", TypeConstraint::all());
        p.add_edge_tagged(v1, v3, "e3", TypeConstraint::basic(LOCATED));
        (p, v1, v2, v3)
    }

    #[test]
    fn structure_accessors() {
        let (p, v1, v2, v3) = triangle();
        assert_eq!(p.vertex_count(), 3);
        assert_eq!(p.edge_count(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.degree(v1), 2);
        assert_eq!(p.neighbors(v1), vec![v2, v3]);
        assert_eq!(p.out_edges(v1).len(), 2);
        assert_eq!(p.in_edges(v3).len(), 2);
        assert_eq!(p.adjacent_edges(v2).len(), 2);
        assert_eq!(p.edges_between(v1, v3).len(), 1);
        assert_eq!(p.edges_between(v3, v1).len(), 1);
        assert_eq!(p.vertex_by_tag("v2"), Some(v2));
        assert!(p.vertex_by_tag("nope").is_none());
        assert!(p.edge_by_tag("e3").is_some());
        assert_eq!(p.tags().len(), 6);
        assert!(p.is_connected());
        assert!(!p.has_path_edges());
        assert!(p.contains_vertex(v1));
    }

    #[test]
    fn subpattern_extraction_preserves_ids() {
        let (p, v1, v2, v3) = triangle();
        let e_ids = p.edge_ids();
        // sub-pattern with only e1 (v1->v2)
        let sub = p.induced_by_edges(&[e_ids[0]].into_iter().collect());
        assert_eq!(sub.vertex_count(), 2);
        assert!(sub.contains_vertex(v1) && sub.contains_vertex(v2) && !sub.contains_vertex(v3));
        // removing v3 leaves the v1->v2 edge
        let no_v3 = p.remove_vertex(v3);
        assert_eq!(no_v3.vertex_count(), 2);
        assert_eq!(no_v3.edge_count(), 1);
        assert!(no_v3.is_connected());
        // single vertex
        let sv = p.single_vertex(v2);
        assert_eq!(sv.vertex_count(), 1);
        assert_eq!(sv.edge_count(), 0);
        assert!(sv.is_connected());
        // common vertices / intersection between two sub-patterns
        let left = p.induced_by_edges(&[e_ids[0]].into_iter().collect()); // v1-v2
        let right = p.induced_by_edges(&[e_ids[1]].into_iter().collect()); // v2-v3
        assert_eq!(left.common_vertices(&right), vec![v2]);
        assert!(left.common_edges(&right).is_empty());
        let inter = left.intersection(&right);
        assert_eq!(inter.vertex_count(), 1);
        assert_eq!(inter.edge_count(), 0);
    }

    #[test]
    fn disconnected_pattern_detected() {
        let mut p = Pattern::new();
        let a = p.add_vertex(TypeConstraint::basic(PERSON));
        let b = p.add_vertex(TypeConstraint::basic(PERSON));
        let c = p.add_vertex(TypeConstraint::basic(PRODUCT));
        p.add_edge(a, b, TypeConstraint::basic(KNOWS));
        assert!(!p.is_connected());
        p.add_edge(b, c, TypeConstraint::all());
        assert!(p.is_connected());
        assert!(Pattern::new().is_connected());
    }

    #[test]
    fn canonical_code_invariant_under_relabelling() {
        // same triangle built with vertices inserted in a different order
        let (p1, ..) = triangle();
        let mut p2 = Pattern::new();
        let v3 = p2.add_vertex_tagged("x3", TypeConstraint::basic(PLACE));
        let v1 = p2.add_vertex_tagged("x1", TypeConstraint::all());
        let v2 = p2.add_vertex_tagged("x2", TypeConstraint::all());
        p2.add_edge(v1, v3, TypeConstraint::basic(LOCATED));
        p2.add_edge(v2, v3, TypeConstraint::all());
        p2.add_edge(v1, v2, TypeConstraint::all());
        assert_eq!(p1.canonical_code(), p2.canonical_code());
        // but a structurally different pattern (path instead of triangle) differs
        let mut p3 = Pattern::new();
        let a = p3.add_vertex(TypeConstraint::all());
        let b = p3.add_vertex(TypeConstraint::all());
        let c = p3.add_vertex(TypeConstraint::basic(PLACE));
        p3.add_edge(a, b, TypeConstraint::all());
        p3.add_edge(b, c, TypeConstraint::all());
        assert_ne!(p1.canonical_code(), p3.canonical_code());
        // and different labels differ
        let mut p4 = Pattern::new();
        let a = p4.add_vertex(TypeConstraint::all());
        let b = p4.add_vertex(TypeConstraint::all());
        let c = p4.add_vertex(TypeConstraint::basic(PERSON));
        p4.add_edge(a, b, TypeConstraint::all());
        p4.add_edge(b, c, TypeConstraint::all());
        assert_ne!(p3.canonical_code(), p4.canonical_code());
    }

    #[test]
    fn merge_by_tag_unifies_common_vertices() {
        // pattern1: (v1)-[e1]->(v2)-[e2]->(v3)   pattern2: (v1)-[e3]->(v3:Place)
        let mut p1 = Pattern::new();
        let a1 = p1.add_vertex_tagged("v1", TypeConstraint::all());
        let b1 = p1.add_vertex_tagged("v2", TypeConstraint::all());
        let c1 = p1.add_vertex_tagged("v3", TypeConstraint::all());
        p1.add_edge_tagged(a1, b1, "e1", TypeConstraint::all());
        p1.add_edge_tagged(b1, c1, "e2", TypeConstraint::all());

        let mut p2 = Pattern::new();
        let a2 = p2.add_vertex_tagged("v1", TypeConstraint::all());
        let c2 = p2.add_vertex_tagged("v3", TypeConstraint::basic(PLACE));
        p2.add_edge_tagged(a2, c2, "e3", TypeConstraint::basic(LOCATED));

        let (merged, vmap) = p1.merge_by_tag(&p2);
        assert_eq!(merged.vertex_count(), 3, "v1 and v3 unified by tag");
        assert_eq!(merged.edge_count(), 3);
        assert_eq!(vmap[&a2], a1);
        assert_eq!(vmap[&c2], c1);
        // the constraint of the unified v3 is the intersection (Place)
        assert_eq!(merged.vertex(c1).constraint, TypeConstraint::basic(PLACE));
        assert!(merged.is_connected());
    }

    #[test]
    fn merge_by_tag_appends_unmatched_vertices_and_predicates() {
        let mut p1 = Pattern::new();
        let a1 = p1.add_vertex_tagged("a", TypeConstraint::all());
        p1.vertex_mut(a1).predicate = Some(Expr::prop_eq("a", "x", 1));
        let mut p2 = Pattern::new();
        let a2 = p2.add_vertex_tagged("a", TypeConstraint::all());
        p2.vertex_mut(a2).predicate = Some(Expr::prop_eq("a", "y", 2));
        let b2 = p2.add_vertex_tagged("b", TypeConstraint::basic(PERSON));
        p2.add_edge(a2, b2, TypeConstraint::all());
        let (merged, _) = p1.merge_by_tag(&p2);
        assert_eq!(merged.vertex_count(), 2);
        // predicates are conjoined
        let pred = merged.vertex(a1).predicate.clone().unwrap();
        assert_eq!(pred.conjuncts().len(), 2);
    }

    #[test]
    fn path_edges_and_pathspec() {
        let mut p = Pattern::new();
        let a = p.add_vertex_tagged("p1", TypeConstraint::basic(PERSON));
        let b = p.add_vertex_tagged("p2", TypeConstraint::basic(PERSON));
        p.add_edge_full(
            a,
            b,
            Some("path".into()),
            TypeConstraint::all(),
            None,
            Some(PathSpec::exact(6)),
        );
        assert!(p.has_path_edges());
        assert_eq!(p.edge(p.edge_ids()[0]).path.unwrap().max_hops, 6);
        let code = p.canonical_code();
        assert!(code.contains("6..6"));
    }

    #[test]
    fn display_and_render() {
        let (p, ..) = triangle();
        let s = p.to_string();
        assert!(s.contains("v1") && s.contains("e3"));
        let named = p.render(
            |l| ["Person", "Product", "Place"][l.index()].to_string(),
            |l| ["Knows", "Purchases", "LocatedIn"][l.index()].to_string(),
        );
        assert!(named.contains("Place") && named.contains("LocatedIn"));
    }
}
