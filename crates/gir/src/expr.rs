//! The expression language of the GIR.
//!
//! Expressions appear in `SELECT` predicates, `PROJECT` items, `GROUP` keys and
//! aggregate arguments, and `ORDER` keys. They reference query elements by **tag**
//! (the alias assigned with `Alias(..)` in the builder, e.g. `v3`) and access their
//! properties (`v3.name`).
//!
//! Evaluation is decoupled from the runtime record layout through the [`EvalContext`]
//! trait, so the same expression tree is used by the optimizer (e.g. for constant
//! folding and required-column analysis in the `FieldTrim` rule) and by the execution
//! engines.

use gopt_graph::PropValue;
use std::collections::BTreeSet;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// logical AND
    And,
    /// logical OR
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// logical NOT
    Not,
    /// numeric negation
    Neg,
    /// `IS NULL`
    IsNull,
    /// `IS NOT NULL`
    IsNotNull,
}

/// Aggregate functions usable in `GROUP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(expr)` (nulls excluded) / `COUNT(*)` when the argument is a bare tag.
    Count,
    /// `COUNT(DISTINCT expr)`
    CountDistinct,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

/// Sort direction for `ORDER`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortDir {
    /// ascending
    Asc,
    /// descending
    Desc,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(PropValue),
    /// A whole query element referenced by tag (vertex, edge, path or projected value).
    Tag(String),
    /// A property of a tagged element, e.g. `v3.name`.
    Property {
        /// Tag of the element.
        tag: String,
        /// Property name.
        prop: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Membership test against a literal list, e.g. `p1.id IN $S1`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<PropValue>,
    },
    /// A bound parameter slot, produced by
    /// [`parameterize_into`](Expr::parameterize_into): stands for a
    /// comparison constant normalized out of the expression so that queries
    /// differing only in that constant share one plan shape. Substituted
    /// back with [`bind_params`](Expr::bind_params) before execution; an
    /// unbound parameter evaluates to `Null` (falsy), like a missing
    /// property.
    Param(u32),
}

/// Context against which expressions are evaluated.
///
/// The execution engine implements this over its record layout; tests implement it
/// over simple maps.
pub trait EvalContext {
    /// The value bound to a bare tag (for vertices/edges this is an opaque id value; for
    /// projected columns it is the column value).
    fn tag_value(&self, tag: &str) -> Option<PropValue>;
    /// The value of `tag.prop`.
    fn prop_value(&self, tag: &str, prop: &str) -> Option<PropValue>;
}

impl Expr {
    /// Convenience constructor: `lhs op rhs`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor: `tag.prop`.
    pub fn prop(tag: impl Into<String>, prop: impl Into<String>) -> Expr {
        Expr::Property {
            tag: tag.into(),
            prop: prop.into(),
        }
    }

    /// Convenience constructor: a bare tag reference.
    pub fn tag(tag: impl Into<String>) -> Expr {
        Expr::Tag(tag.into())
    }

    /// Convenience constructor: a literal.
    pub fn lit(v: impl Into<PropValue>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience constructor: `tag.prop = literal`.
    pub fn prop_eq(tag: &str, prop: &str, v: impl Into<PropValue>) -> Expr {
        Expr::binary(BinOp::Eq, Expr::prop(tag, prop), Expr::lit(v))
    }

    /// Conjunction of two expressions.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// Normalize comparison constants into parameter slots: a `Literal`
    /// operand of a comparison (`= <> < <= > >=`) whose *other* operand is
    /// not itself a literal is replaced by [`Expr::Param`] and its value
    /// appended to `params`. Literal-vs-literal comparisons and values in
    /// other positions (arithmetic, `IN` lists, projections) keep their
    /// identity — they shape the plan. Traversal order is deterministic
    /// (left to right, depth first), so equal expressions always yield the
    /// same slots.
    pub fn parameterize_into(&mut self, params: &mut Vec<PropValue>) {
        match self {
            Expr::Binary { op, lhs, rhs } => {
                let comparison = matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                );
                if comparison {
                    let lhs_lit = matches!(**lhs, Expr::Literal(_));
                    let rhs_lit = matches!(**rhs, Expr::Literal(_));
                    if lhs_lit != rhs_lit {
                        let slot = params.len() as u32;
                        let target = if lhs_lit { &mut **lhs } else { &mut **rhs };
                        if let Expr::Literal(v) = std::mem::replace(target, Expr::Param(slot)) {
                            params.push(v);
                        }
                    }
                }
                lhs.parameterize_into(params);
                rhs.parameterize_into(params);
            }
            Expr::Unary { operand, .. } => operand.parameterize_into(params),
            Expr::InList { expr, .. } => expr.parameterize_into(params),
            Expr::Literal(_) | Expr::Tag(_) | Expr::Property { .. } | Expr::Param(_) => {}
        }
    }

    /// Substitute every [`Expr::Param`] with the matching value from
    /// `params` (out-of-range slots become `Null` literals).
    pub fn bind_params(&mut self, params: &[PropValue]) {
        match self {
            Expr::Param(i) => {
                *self = Expr::Literal(params.get(*i as usize).cloned().unwrap_or(PropValue::Null));
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.bind_params(params);
                rhs.bind_params(params);
            }
            Expr::Unary { operand, .. } => operand.bind_params(params),
            Expr::InList { expr, .. } => expr.bind_params(params),
            Expr::Literal(_) | Expr::Tag(_) | Expr::Property { .. } => {}
        }
    }

    /// All tags referenced anywhere in the expression.
    pub fn referenced_tags(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_tags(&mut out);
        out
    }

    fn collect_tags(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Tag(t) => {
                out.insert(t.clone());
            }
            Expr::Property { tag, .. } => {
                out.insert(tag.clone());
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_tags(out);
                rhs.collect_tags(out);
            }
            Expr::Unary { operand, .. } => operand.collect_tags(out),
            Expr::InList { expr, .. } => expr.collect_tags(out),
            Expr::Param(_) => {}
        }
    }

    /// All `(tag, property)` pairs referenced in the expression, used by `FieldTrim`
    /// to compute the required columns of each pattern element.
    pub fn referenced_props(&self) -> BTreeSet<(String, String)> {
        let mut out = BTreeSet::new();
        self.collect_props(&mut out);
        out
    }

    fn collect_props(&self, out: &mut BTreeSet<(String, String)>) {
        match self {
            Expr::Property { tag, prop } => {
                out.insert((tag.clone(), prop.clone()));
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_props(out);
                rhs.collect_props(out);
            }
            Expr::Unary { operand, .. } => operand.collect_props(out),
            Expr::InList { expr, .. } => expr.collect_props(out),
            Expr::Literal(_) | Expr::Tag(_) | Expr::Param(_) => {}
        }
    }

    /// Split a conjunction into its conjuncts (`a AND b AND c` → `[a, b, c]`).
    pub fn conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut v = lhs.conjuncts();
                v.extend(rhs.conjuncts());
                v
            }
            other => vec![other.clone()],
        }
    }

    /// Rebuild a conjunction from conjuncts; `None` if the list is empty.
    pub fn conjunction(mut exprs: Vec<Expr>) -> Option<Expr> {
        if exprs.is_empty() {
            return None;
        }
        let first = exprs.remove(0);
        Some(exprs.into_iter().fold(first, |acc, e| acc.and(e)))
    }

    /// Evaluate the expression against a context. Missing tags/properties evaluate to
    /// `Null`, which is falsy; comparisons against `Null` yield `Null`.
    pub fn evaluate(&self, ctx: &dyn EvalContext) -> PropValue {
        match self {
            Expr::Literal(v) => v.clone(),
            Expr::Tag(t) => ctx.tag_value(t).unwrap_or(PropValue::Null),
            Expr::Property { tag, prop } => ctx.prop_value(tag, prop).unwrap_or(PropValue::Null),
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.evaluate(ctx);
                let r = rhs.evaluate(ctx);
                op.apply(&l, &r)
            }
            Expr::Unary { op, operand } => op.apply(operand.evaluate(ctx)),
            Expr::InList { expr, list } => {
                let v = expr.evaluate(ctx);
                if v.is_null() {
                    PropValue::Null
                } else {
                    PropValue::Bool(list.contains(&v))
                }
            }
            // an unbound parameter behaves like a missing property
            Expr::Param(_) => PropValue::Null,
        }
    }

    /// Evaluate as a boolean predicate (Null → false).
    pub fn evaluate_predicate(&self, ctx: &dyn EvalContext) -> bool {
        self.evaluate(ctx).truthy()
    }
}

impl BinOp {
    /// Apply the operator to two already-evaluated values.
    ///
    /// This is the single source of truth for binary-operator semantics (null
    /// propagation, integer vs float arithmetic, division by zero): both the
    /// tree-walking [`Expr::evaluate`] and the execution engines' slot-resolved
    /// compiled evaluator go through it, so the two evaluators cannot drift.
    pub fn apply(&self, l: &PropValue, r: &PropValue) -> PropValue {
        use BinOp::*;
        match self {
            And => return PropValue::Bool(l.truthy() && r.truthy()),
            Or => return PropValue::Bool(l.truthy() || r.truthy()),
            _ => {}
        }
        if l.is_null() || r.is_null() {
            return PropValue::Null;
        }
        match self {
            Eq => PropValue::Bool(l == r),
            Ne => PropValue::Bool(l != r),
            Lt => PropValue::Bool(l < r),
            Le => PropValue::Bool(l <= r),
            Gt => PropValue::Bool(l > r),
            Ge => PropValue::Bool(l >= r),
            Add | Sub | Mul | Div | Mod => eval_arith(*self, l, r),
            And | Or => unreachable!("handled above"),
        }
    }
}

impl UnaryOp {
    /// Apply the operator to an already-evaluated value (see [`BinOp::apply`]).
    pub fn apply(&self, v: PropValue) -> PropValue {
        match self {
            UnaryOp::Not => PropValue::Bool(!v.truthy()),
            UnaryOp::Neg => match v {
                PropValue::Int(i) => PropValue::Int(-i),
                PropValue::Float(f) => PropValue::Float(-f),
                _ => PropValue::Null,
            },
            UnaryOp::IsNull => PropValue::Bool(v.is_null()),
            UnaryOp::IsNotNull => PropValue::Bool(!v.is_null()),
        }
    }
}

fn eval_arith(op: BinOp, l: &PropValue, r: &PropValue) -> PropValue {
    // integer arithmetic when both sides are integers, float otherwise
    if let (PropValue::Int(a), PropValue::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => PropValue::Int(a.wrapping_add(*b)),
            BinOp::Sub => PropValue::Int(a.wrapping_sub(*b)),
            BinOp::Mul => PropValue::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    PropValue::Null
                } else {
                    PropValue::Int(a / b)
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    PropValue::Null
                } else {
                    PropValue::Int(a % b)
                }
            }
            _ => unreachable!(),
        };
    }
    match (l.as_float(), r.as_float()) {
        (Some(a), Some(b)) => match op {
            BinOp::Add => PropValue::Float(a + b),
            BinOp::Sub => PropValue::Float(a - b),
            BinOp::Mul => PropValue::Float(a * b),
            BinOp::Div => {
                if b == 0.0 {
                    PropValue::Null
                } else {
                    PropValue::Float(a / b)
                }
            }
            BinOp::Mod => PropValue::Float(a % b),
            _ => unreachable!(),
        },
        _ => PropValue::Null,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                PropValue::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Tag(t) => write!(f, "{t}"),
            Expr::Property { tag, prop } => write!(f, "{tag}.{prop}"),
            Expr::Binary { op, lhs, rhs } => {
                let sym = match op {
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                };
                write!(f, "({lhs} {sym} {rhs})")
            }
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not => write!(f, "NOT ({operand})"),
                UnaryOp::Neg => write!(f, "-({operand})"),
                UnaryOp::IsNull => write!(f, "({operand}) IS NULL"),
                UnaryOp::IsNotNull => write!(f, "({operand}) IS NOT NULL"),
            },
            Expr::InList { expr, list } => {
                let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
                write!(f, "{expr} IN [{}]", items.join(", "))
            }
            Expr::Param(i) => write!(f, "${i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapCtx {
        tags: HashMap<String, PropValue>,
        props: HashMap<(String, String), PropValue>,
    }

    impl EvalContext for MapCtx {
        fn tag_value(&self, tag: &str) -> Option<PropValue> {
            self.tags.get(tag).cloned()
        }
        fn prop_value(&self, tag: &str, prop: &str) -> Option<PropValue> {
            self.props
                .get(&(tag.to_string(), prop.to_string()))
                .cloned()
        }
    }

    fn ctx() -> MapCtx {
        let mut tags = HashMap::new();
        tags.insert("cnt".to_string(), PropValue::Int(7));
        let mut props = HashMap::new();
        props.insert(
            ("v3".to_string(), "name".to_string()),
            PropValue::str("China"),
        );
        props.insert(("v1".to_string(), "age".to_string()), PropValue::Int(30));
        MapCtx { tags, props }
    }

    #[test]
    fn predicate_evaluation() {
        let c = ctx();
        let e = Expr::prop_eq("v3", "name", "China");
        assert!(e.evaluate_predicate(&c));
        let e = Expr::prop_eq("v3", "name", "India");
        assert!(!e.evaluate_predicate(&c));
        let e = Expr::binary(BinOp::Gt, Expr::prop("v1", "age"), Expr::lit(18));
        assert!(e.evaluate_predicate(&c));
        // missing property -> Null -> falsy
        let e = Expr::prop_eq("v1", "missing", 1);
        assert!(!e.evaluate_predicate(&c));
        // conjunction / disjunction
        let both = Expr::prop_eq("v3", "name", "China").and(Expr::prop_eq("v1", "age", 30));
        assert!(both.evaluate_predicate(&c));
        let either = Expr::binary(
            BinOp::Or,
            Expr::prop_eq("v3", "name", "India"),
            Expr::prop_eq("v1", "age", 30),
        );
        assert!(either.evaluate_predicate(&c));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let c = ctx();
        let e = Expr::binary(BinOp::Add, Expr::prop("v1", "age"), Expr::lit(12));
        assert_eq!(e.evaluate(&c), PropValue::Int(42));
        let e = Expr::binary(BinOp::Div, Expr::lit(7), Expr::lit(2));
        assert_eq!(e.evaluate(&c), PropValue::Int(3));
        let e = Expr::binary(BinOp::Div, Expr::lit(7), Expr::lit(0));
        assert!(e.evaluate(&c).is_null());
        let e = Expr::binary(BinOp::Mul, Expr::lit(2.5), Expr::lit(2));
        assert_eq!(e.evaluate(&c), PropValue::Float(5.0));
        let e = Expr::binary(BinOp::Mod, Expr::lit(7), Expr::lit(3));
        assert_eq!(e.evaluate(&c), PropValue::Int(1));
        let e = Expr::binary(BinOp::Le, Expr::tag("cnt"), Expr::lit(7));
        assert!(e.evaluate_predicate(&c));
    }

    #[test]
    fn unary_and_in_list() {
        let c = ctx();
        let e = Expr::Unary {
            op: UnaryOp::Not,
            operand: Box::new(Expr::prop_eq("v3", "name", "India")),
        };
        assert!(e.evaluate_predicate(&c));
        let e = Expr::Unary {
            op: UnaryOp::Neg,
            operand: Box::new(Expr::lit(5)),
        };
        assert_eq!(e.evaluate(&c), PropValue::Int(-5));
        let e = Expr::Unary {
            op: UnaryOp::IsNull,
            operand: Box::new(Expr::prop("v1", "missing")),
        };
        assert!(e.evaluate_predicate(&c));
        let e = Expr::Unary {
            op: UnaryOp::IsNotNull,
            operand: Box::new(Expr::prop("v1", "age")),
        };
        assert!(e.evaluate_predicate(&c));
        let e = Expr::InList {
            expr: Box::new(Expr::prop("v1", "age")),
            list: vec![PropValue::Int(29), PropValue::Int(30)],
        };
        assert!(e.evaluate_predicate(&c));
        let e = Expr::InList {
            expr: Box::new(Expr::prop("v1", "age")),
            list: vec![PropValue::Int(1)],
        };
        assert!(!e.evaluate_predicate(&c));
    }

    #[test]
    fn tag_and_prop_analysis() {
        let e = Expr::prop_eq("v3", "name", "China").and(Expr::binary(
            BinOp::Gt,
            Expr::tag("cnt"),
            Expr::lit(1),
        ));
        let tags = e.referenced_tags();
        assert!(tags.contains("v3") && tags.contains("cnt"));
        let props = e.referenced_props();
        assert!(props.contains(&("v3".to_string(), "name".to_string())));
        assert_eq!(props.len(), 1);
    }

    #[test]
    fn conjunct_splitting_roundtrip() {
        let a = Expr::prop_eq("a", "x", 1);
        let b = Expr::prop_eq("b", "y", 2);
        let cexp = Expr::prop_eq("c", "z", 3);
        let all = a.clone().and(b.clone()).and(cexp.clone());
        let parts = all.conjuncts();
        assert_eq!(parts, vec![a, b, cexp]);
        let rebuilt = Expr::conjunction(parts.clone()).unwrap();
        assert_eq!(rebuilt.conjuncts(), parts);
        assert!(Expr::conjunction(vec![]).is_none());
    }

    #[test]
    fn display_formats() {
        let e = Expr::prop_eq("v3", "name", "China");
        assert_eq!(e.to_string(), "(v3.name = 'China')");
        let e = Expr::InList {
            expr: Box::new(Expr::prop("p", "id")),
            list: vec![PropValue::Int(1), PropValue::Int(2)],
        };
        assert_eq!(e.to_string(), "p.id IN [1, 2]");
    }
}
