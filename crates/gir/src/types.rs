//! Type constraints on pattern vertices and edges.
//!
//! The paper distinguishes three categories (Section 3):
//!
//! * **BasicType** — a single label; matches exactly that label,
//! * **UnionType** — a set of labels; matches any of them (e.g. `{Post, Comment}`),
//! * **AllType** — matches any label in the data graph.
//!
//! [`TypeConstraint`] represents all three with one enum. The label-set algebra
//! (intersection, membership, materialisation against a schema universe) is what the
//! type-inference algorithm (Algorithm 1) and the cardinality estimator operate on.

use gopt_graph::LabelId;
use std::fmt;

/// A type constraint: AllType or an explicit, sorted, de-duplicated label set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum TypeConstraint {
    /// Matches any label (the paper's AllType).
    #[default]
    All,
    /// Matches any label in the (sorted, deduplicated) set.
    /// A singleton set is a BasicType; a larger set is a UnionType; an **empty set is
    /// unsatisfiable** and signals an INVALID pattern during type inference.
    Labels(Vec<LabelId>),
}

impl TypeConstraint {
    /// A BasicType constraint.
    pub fn basic(label: LabelId) -> Self {
        TypeConstraint::Labels(vec![label])
    }

    /// A UnionType constraint built from any iterator of labels.
    pub fn union(labels: impl IntoIterator<Item = LabelId>) -> Self {
        let mut v: Vec<LabelId> = labels.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        TypeConstraint::Labels(v)
    }

    /// The AllType constraint.
    pub fn all() -> Self {
        TypeConstraint::All
    }

    /// Whether this is AllType.
    pub fn is_all(&self) -> bool {
        matches!(self, TypeConstraint::All)
    }

    /// Whether this is a BasicType (exactly one label).
    pub fn is_basic(&self) -> bool {
        matches!(self, TypeConstraint::Labels(v) if v.len() == 1)
    }

    /// Whether this is a UnionType (two or more labels).
    pub fn is_union(&self) -> bool {
        matches!(self, TypeConstraint::Labels(v) if v.len() > 1)
    }

    /// Whether the constraint is unsatisfiable (empty label set).
    pub fn is_empty(&self) -> bool {
        matches!(self, TypeConstraint::Labels(v) if v.is_empty())
    }

    /// The single label of a BasicType constraint, if any.
    pub fn as_basic(&self) -> Option<LabelId> {
        match self {
            TypeConstraint::Labels(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// The explicit label set, if not AllType.
    pub fn as_labels(&self) -> Option<&[LabelId]> {
        match self {
            TypeConstraint::Labels(v) => Some(v),
            TypeConstraint::All => None,
        }
    }

    /// Number of labels, or `None` for AllType (unbounded until materialised).
    pub fn len(&self) -> Option<usize> {
        self.as_labels().map(|v| v.len())
    }

    /// Whether the constraint admits the given label.
    pub fn contains(&self, label: LabelId) -> bool {
        match self {
            TypeConstraint::All => true,
            TypeConstraint::Labels(v) => v.binary_search(&label).is_ok(),
        }
    }

    /// Materialise the constraint into an explicit label list, resolving AllType against
    /// the given universe of labels.
    pub fn materialize(&self, universe: &[LabelId]) -> Vec<LabelId> {
        match self {
            TypeConstraint::All => universe.to_vec(),
            TypeConstraint::Labels(v) => v.clone(),
        }
    }

    /// Intersection of two constraints. `All ∩ x = x`.
    pub fn intersect(&self, other: &TypeConstraint) -> TypeConstraint {
        match (self, other) {
            (TypeConstraint::All, x) => x.clone(),
            (x, TypeConstraint::All) => x.clone(),
            (TypeConstraint::Labels(a), TypeConstraint::Labels(b)) => TypeConstraint::Labels(
                a.iter()
                    .copied()
                    .filter(|l| b.binary_search(l).is_ok())
                    .collect(),
            ),
        }
    }

    /// Intersection with an explicit (unsorted) candidate label set.
    pub fn intersect_labels(&self, candidates: &[LabelId]) -> TypeConstraint {
        let mut c = candidates.to_vec();
        c.sort_unstable();
        c.dedup();
        self.intersect(&TypeConstraint::Labels(c))
    }

    /// Union of two constraints. `All ∪ x = All`.
    pub fn union_with(&self, other: &TypeConstraint) -> TypeConstraint {
        match (self, other) {
            (TypeConstraint::All, _) | (_, TypeConstraint::All) => TypeConstraint::All,
            (TypeConstraint::Labels(a), TypeConstraint::Labels(b)) => {
                TypeConstraint::union(a.iter().copied().chain(b.iter().copied()))
            }
        }
    }

    /// Human-readable rendering using a label-name lookup function.
    pub fn render(&self, name_of: impl Fn(LabelId) -> String) -> String {
        match self {
            TypeConstraint::All => "AllType".to_string(),
            TypeConstraint::Labels(v) if v.is_empty() => "∅".to_string(),
            TypeConstraint::Labels(v) => {
                v.iter().map(|l| name_of(*l)).collect::<Vec<_>>().join("|")
            }
        }
    }
}

impl fmt::Display for TypeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeConstraint::All => write!(f, "AllType"),
            TypeConstraint::Labels(v) if v.is_empty() => write!(f, "∅"),
            TypeConstraint::Labels(v) => {
                let s: Vec<String> = v.iter().map(|l| format!("{}", l.0)).collect();
                write!(f, "{}", s.join("|"))
            }
        }
    }
}

impl From<LabelId> for TypeConstraint {
    fn from(l: LabelId) -> Self {
        TypeConstraint::basic(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LabelId = LabelId(0);
    const B: LabelId = LabelId(1);
    const C: LabelId = LabelId(2);

    #[test]
    fn classification() {
        assert!(TypeConstraint::all().is_all());
        assert!(TypeConstraint::basic(A).is_basic());
        assert!(TypeConstraint::union([A, B]).is_union());
        assert!(TypeConstraint::union([A, A]).is_basic());
        assert!(TypeConstraint::Labels(vec![]).is_empty());
        assert_eq!(TypeConstraint::basic(B).as_basic(), Some(B));
        assert_eq!(TypeConstraint::all().as_basic(), None);
        assert_eq!(TypeConstraint::union([B, A]).len(), Some(2));
        assert_eq!(TypeConstraint::all().len(), None);
        assert_eq!(TypeConstraint::default(), TypeConstraint::All);
        assert_eq!(TypeConstraint::from(C), TypeConstraint::basic(C));
    }

    #[test]
    fn union_sorts_and_dedups() {
        let t = TypeConstraint::union([C, A, B, A]);
        assert_eq!(t.as_labels().unwrap(), &[A, B, C]);
    }

    #[test]
    fn contains_and_materialize() {
        let t = TypeConstraint::union([A, C]);
        assert!(t.contains(A));
        assert!(!t.contains(B));
        assert!(TypeConstraint::all().contains(B));
        let uni = vec![A, B, C];
        assert_eq!(TypeConstraint::all().materialize(&uni), uni);
        assert_eq!(t.materialize(&uni), vec![A, C]);
    }

    #[test]
    fn intersection_and_union_algebra() {
        let ab = TypeConstraint::union([A, B]);
        let bc = TypeConstraint::union([B, C]);
        assert_eq!(ab.intersect(&bc), TypeConstraint::basic(B));
        assert_eq!(ab.intersect(&TypeConstraint::all()), ab);
        assert_eq!(TypeConstraint::all().intersect(&bc), bc);
        assert!(ab.intersect(&TypeConstraint::basic(C)).is_empty());
        assert_eq!(ab.union_with(&bc), TypeConstraint::union([A, B, C]));
        assert!(ab.union_with(&TypeConstraint::all()).is_all());
        assert_eq!(ab.intersect_labels(&[B, C, B]), TypeConstraint::basic(B));
    }

    #[test]
    fn rendering() {
        let names = |l: LabelId| ["Person", "Post", "Comment"][l.index()].to_string();
        assert_eq!(TypeConstraint::all().render(names), "AllType");
        assert_eq!(
            TypeConstraint::union([B, C])
                .render(|l| ["Person", "Post", "Comment"][l.index()].to_string()),
            "Post|Comment"
        );
        assert_eq!(
            TypeConstraint::Labels(vec![])
                .render(|_| unreachable!("empty set renders without names")),
            "∅"
        );
        assert_eq!(TypeConstraint::union([A, B]).to_string(), "0|1");
    }
}
