//! Physical operators and physical plans.
//!
//! The physical plan is what GOpt hands to a backend for execution. Its pattern-matching
//! operators correspond to the strategies discussed in Section 6.3 of the paper:
//!
//! * [`PhysicalOp::Scan`] — scan the vertices admitted by a type constraint (optionally
//!   filtered), binding the first pattern vertex;
//! * [`PhysicalOp::EdgeExpand`] — expand to a **new** vertex along one pattern edge,
//!   flattening the intermediate results (the basic `Expand` of both backends);
//! * [`PhysicalOp::ExpandInto`] — close a pattern edge between two **already bound**
//!   vertices by checking edge existence (Neo4j's implementation of vertex expansion);
//! * [`PhysicalOp::ExpandIntersect`] — bind a new vertex by intersecting the adjacency
//!   lists of several already-bound vertices (GraphScope's worst-case-optimal
//!   implementation);
//! * [`PhysicalOp::HashJoin`] — binary join of two sub-plans on common tags;
//! * [`PhysicalOp::PathExpand`] — variable-length path expansion;
//! * plus the relational operators (`Select`, `Project`, `HashGroup`, `OrderLimit`,
//!   `Limit`, `Dedup`, `Union`).
//!
//! The paper serialises physical plans with Protocol Buffers to ship them to backends;
//! here [`PhysicalPlan::encode`] produces an equivalent line-oriented textual encoding
//! (see DESIGN.md, substitution table).

use crate::expr::{AggFunc, Expr, SortDir};
use crate::logical::JoinType;
use crate::pattern::{Direction, PathSemantics};
use crate::types::TypeConstraint;
use gopt_graph::PropValue;
use std::fmt;

/// Identifier of a node within one [`PhysicalPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysicalNodeId(pub usize);

/// One adjacency-intersection step of an [`PhysicalOp::ExpandIntersect`].
#[derive(Debug, Clone, PartialEq)]
pub struct IntersectStep {
    /// Tag of the already-bound source vertex.
    pub src: String,
    /// Edge type constraint.
    pub edge_constraint: TypeConstraint,
    /// Expansion direction relative to `src`.
    pub direction: Direction,
    /// Optional alias under which the matched edge is recorded.
    pub edge_alias: Option<String>,
}

/// A physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalOp {
    /// Scan all vertices admitted by `constraint`, binding them to `alias`.
    Scan {
        /// Output tag.
        alias: String,
        /// Vertex type constraint.
        constraint: TypeConstraint,
        /// Optional pushed-down predicate.
        predicate: Option<Expr>,
    },
    /// Expand from `src` along edges admitted by `edge_constraint` to a new vertex
    /// bound to `dst_alias`, flattening results.
    EdgeExpand {
        /// Tag of the bound source vertex.
        src: String,
        /// Optional output tag for the traversed edge.
        edge_alias: Option<String>,
        /// Edge type constraint.
        edge_constraint: TypeConstraint,
        /// Expansion direction relative to `src`.
        direction: Direction,
        /// Output tag of the newly bound vertex.
        dst_alias: String,
        /// Type constraint on the destination vertex.
        dst_constraint: TypeConstraint,
        /// Optional predicate on the destination vertex.
        dst_predicate: Option<Expr>,
        /// Optional predicate on the traversed edge.
        edge_predicate: Option<Expr>,
    },
    /// Close an edge between two already-bound vertices (`src`, `dst`) by checking edge
    /// existence. This is Neo4j's `ExpandInto`.
    ExpandInto {
        /// Tag of the bound source vertex.
        src: String,
        /// Tag of the bound destination vertex.
        dst: String,
        /// Edge type constraint.
        edge_constraint: TypeConstraint,
        /// Direction of the pattern edge relative to `src`.
        direction: Direction,
        /// Optional output tag for the matched edge.
        edge_alias: Option<String>,
        /// Optional predicate on the matched edge.
        edge_predicate: Option<Expr>,
    },
    /// Bind a new vertex `dst_alias` by intersecting adjacency lists from several bound
    /// vertices. This is GraphScope's worst-case-optimal `ExpandIntersect`.
    ExpandIntersect {
        /// The adjacency lists to intersect (one per pattern edge incident to the new vertex).
        steps: Vec<IntersectStep>,
        /// Output tag of the newly bound vertex.
        dst_alias: String,
        /// Type constraint on the new vertex.
        dst_constraint: TypeConstraint,
        /// Optional predicate on the new vertex.
        dst_predicate: Option<Expr>,
    },
    /// Variable-length path expansion from `src` to a new vertex.
    PathExpand {
        /// Tag of the bound source vertex.
        src: String,
        /// Output tag of the reached vertex.
        dst_alias: String,
        /// Edge type constraint applied to every hop.
        edge_constraint: TypeConstraint,
        /// Direction of every hop.
        direction: Direction,
        /// Minimum number of hops.
        min_hops: u32,
        /// Maximum number of hops.
        max_hops: u32,
        /// Path semantics (arbitrary / simple / trail).
        semantics: PathSemantics,
        /// Optional output tag for the whole path.
        path_alias: Option<String>,
    },
    /// Hash join of the two inputs on equality of the given tags.
    HashJoin {
        /// Join keys (tags bound on both sides).
        keys: Vec<String>,
        /// Join semantics.
        kind: JoinType,
    },
    /// Materialise properties of a bound element into the record (the paper's `COLUMNS`).
    ///
    /// Without the `FieldTrim` rule the optimizer materialises **all** declared
    /// properties of every tagged pattern element; with the rule only the columns that
    /// later operators actually reference are fetched.
    PropertyFetch {
        /// Tag of the bound vertex or edge.
        tag: String,
        /// Properties to fetch; `None` means all properties declared for the element's label.
        props: Option<Vec<String>>,
    },
    /// Filter.
    Select {
        /// Predicate.
        predicate: Expr,
    },
    /// Projection (keeps only the produced columns).
    Project {
        /// `(expr, alias)` items.
        items: Vec<(Expr, String)>,
    },
    /// Hash aggregation.
    HashGroup {
        /// Grouping keys.
        keys: Vec<(Expr, String)>,
        /// Aggregates.
        aggs: Vec<(AggFunc, Expr, String)>,
    },
    /// Sort (optionally top-k).
    OrderLimit {
        /// Sort keys.
        keys: Vec<(Expr, SortDir)>,
        /// Optional row limit.
        limit: Option<usize>,
    },
    /// Row limit.
    Limit {
        /// Number of rows to keep.
        count: usize,
    },
    /// Duplicate elimination on the given keys.
    Dedup {
        /// Deduplication keys.
        keys: Vec<Expr>,
    },
    /// Concatenation of all inputs.
    Union,
}

impl PhysicalOp {
    /// Operator name in CamelCase (physical operators use CamelCase in the paper's figures).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::Scan { .. } => "Scan",
            PhysicalOp::EdgeExpand { .. } => "EdgeExpand",
            PhysicalOp::ExpandInto { .. } => "ExpandInto",
            PhysicalOp::ExpandIntersect { .. } => "ExpandIntersect",
            PhysicalOp::PathExpand { .. } => "PathExpand",
            PhysicalOp::HashJoin { .. } => "HashJoin",
            PhysicalOp::PropertyFetch { .. } => "PropertyFetch",
            PhysicalOp::Select { .. } => "Select",
            PhysicalOp::Project { .. } => "Project",
            PhysicalOp::HashGroup { .. } => "HashGroup",
            PhysicalOp::OrderLimit { .. } => "OrderLimit",
            PhysicalOp::Limit { .. } => "Limit",
            PhysicalOp::Dedup { .. } => "Dedup",
            PhysicalOp::Union => "Union",
        }
    }

    /// Whether this is one of the pattern-matching (graph) operators.
    pub fn is_graph_op(&self) -> bool {
        matches!(
            self,
            PhysicalOp::Scan { .. }
                | PhysicalOp::EdgeExpand { .. }
                | PhysicalOp::ExpandInto { .. }
                | PhysicalOp::ExpandIntersect { .. }
                | PhysicalOp::PathExpand { .. }
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
struct PhysicalNode {
    op: PhysicalOp,
    inputs: Vec<PhysicalNodeId>,
    /// Optimizer cardinality estimate for this operator's output, when known.
    est_rows: Option<f64>,
}

/// A physical plan: an arena of physical operators with producer links and a root.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhysicalPlan {
    nodes: Vec<PhysicalNode>,
    root: Option<PhysicalNodeId>,
}

impl PhysicalPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an operator; the most recently added node becomes the root.
    pub fn add(&mut self, op: PhysicalOp, inputs: Vec<PhysicalNodeId>) -> PhysicalNodeId {
        debug_assert!(inputs.iter().all(|i| i.0 < self.nodes.len()));
        let id = PhysicalNodeId(self.nodes.len());
        self.nodes.push(PhysicalNode {
            op,
            inputs,
            est_rows: None,
        });
        self.root = Some(id);
        id
    }

    /// Append an operator consuming the current root (convenience for linear plans).
    pub fn push(&mut self, op: PhysicalOp) -> PhysicalNodeId {
        let inputs = match self.root {
            Some(r) => vec![r],
            None => vec![],
        };
        self.add(op, inputs)
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root (final) operator id.
    pub fn root(&self) -> PhysicalNodeId {
        self.root.expect("physical plan has at least one operator")
    }

    /// Set the root operator explicitly.
    pub fn set_root(&mut self, id: PhysicalNodeId) {
        assert!(id.0 < self.nodes.len());
        self.root = Some(id);
    }

    /// The operator at `id`.
    pub fn op(&self, id: PhysicalNodeId) -> &PhysicalOp {
        &self.nodes[id.0].op
    }

    /// Inputs of the operator at `id`.
    pub fn inputs(&self, id: PhysicalNodeId) -> &[PhysicalNodeId] {
        &self.nodes[id.0].inputs
    }

    /// Optimizer cardinality estimate attached to the operator at `id`, if any.
    pub fn est_rows(&self, id: PhysicalNodeId) -> Option<f64> {
        self.nodes[id.0].est_rows
    }

    /// Attach an optimizer cardinality estimate to the operator at `id`.
    ///
    /// The estimate is carried through [`PhysicalPlan::graft`] and surfaced in
    /// [`PhysicalPlan::encode`] as `est_rows=<n>` so that plan dumps show what
    /// the cost-based optimizer predicted for each operator.
    pub fn set_est_rows(&mut self, id: PhysicalNodeId, rows: f64) {
        self.nodes[id.0].est_rows = Some(rows);
    }

    /// Node ids in topological order (producers first), restricted to nodes reachable
    /// from the root.
    pub fn topo_order(&self) -> Vec<PhysicalNodeId> {
        let mut order = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        fn visit(
            plan: &PhysicalPlan,
            id: PhysicalNodeId,
            visited: &mut [bool],
            order: &mut Vec<PhysicalNodeId>,
        ) {
            if visited[id.0] {
                return;
            }
            visited[id.0] = true;
            for &i in plan.inputs(id) {
                visit(plan, i, visited, order);
            }
            order.push(id);
        }
        if let Some(root) = self.root {
            visit(self, root, &mut visited, &mut order);
        }
        order
    }

    /// Count of operators by name (useful for plan-shape assertions in tests).
    pub fn count_op(&self, name: &str) -> usize {
        self.topo_order()
            .into_iter()
            .filter(|id| self.op(*id).name() == name)
            .count()
    }

    /// Graft another plan into this one: all nodes of `other` are copied with fresh
    /// ids and the id of (the copy of) `other`'s root is returned. The current root is
    /// left unchanged.
    pub fn graft(&mut self, other: &PhysicalPlan) -> PhysicalNodeId {
        let order = other.topo_order();
        let mut mapping = vec![None; other.nodes.len()];
        let saved_root = self.root;
        let mut last = None;
        for id in order {
            let inputs = other
                .inputs(id)
                .iter()
                .map(|i| mapping[i.0].expect("topo order"))
                .collect();
            let new_id = self.add(other.nodes[id.0].op.clone(), inputs);
            self.nodes[new_id.0].est_rows = other.nodes[id.0].est_rows;
            mapping[id.0] = Some(new_id);
            last = Some(new_id);
        }
        self.root = saved_root.or(last);
        last.expect("other plan is non-empty")
    }

    /// Whether any operator still holds an unbound [`Expr::Param`] slot.
    /// Cached parameterized plans answer `true`; a plan returned by
    /// [`bind_params`](Self::bind_params) answers `false`.
    pub fn has_params(&self) -> bool {
        fn expr_has(e: &Expr) -> bool {
            match e {
                Expr::Param(_) => true,
                Expr::Binary { lhs, rhs, .. } => expr_has(lhs) || expr_has(rhs),
                Expr::Unary { operand, .. } => expr_has(operand),
                Expr::InList { expr, .. } => expr_has(expr),
                Expr::Literal(_) | Expr::Tag(_) | Expr::Property { .. } => false,
            }
        }
        self.nodes
            .iter()
            .any(|n| for_each_expr(&n.op, &mut |e| expr_has(e)))
    }

    /// Clone the plan with every [`Expr::Param`] substituted by the matching
    /// value from `params` (the vector produced by
    /// `LogicalPlan::parameterize` on the plan this one was optimized from).
    /// This is how one cached generic plan serves many constants: bind is a
    /// plain clone-and-substitute, no re-optimization.
    pub fn bind_params(&self, params: &[PropValue]) -> PhysicalPlan {
        let mut plan = self.clone();
        for node in &mut plan.nodes {
            for_each_expr_mut(&mut node.op, &mut |e| e.bind_params(params));
        }
        plan
    }

    /// Line-oriented textual encoding of the plan (the protobuf substitute). One line
    /// per operator: `#id Name [input ids] {details}`.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        for id in self.topo_order() {
            let node = &self.nodes[id.0];
            let inputs: Vec<String> = node.inputs.iter().map(|i| format!("#{}", i.0)).collect();
            let est = match node.est_rows {
                Some(rows) => format!(" est_rows={rows:.1}"),
                None => String::new(),
            };
            s.push_str(&format!(
                "#{} {} [{}] {}{est}\n",
                id.0,
                node.op.name(),
                inputs.join(","),
                op_detail(&node.op)
            ));
        }
        s
    }
}

/// Visit every expression held by `op`; short-circuits (and returns true) as
/// soon as `f` does.
fn for_each_expr(op: &PhysicalOp, f: &mut impl FnMut(&Expr) -> bool) -> bool {
    let mut exprs: Vec<&Expr> = Vec::new();
    collect_op_exprs(op, &mut exprs);
    exprs.into_iter().any(f)
}

/// Apply `f` to every expression held by `op`.
fn for_each_expr_mut(op: &mut PhysicalOp, f: &mut impl FnMut(&mut Expr)) {
    match op {
        PhysicalOp::Scan { predicate, .. } => {
            if let Some(p) = predicate {
                f(p);
            }
        }
        PhysicalOp::EdgeExpand {
            dst_predicate,
            edge_predicate,
            ..
        } => {
            if let Some(p) = dst_predicate {
                f(p);
            }
            if let Some(p) = edge_predicate {
                f(p);
            }
        }
        PhysicalOp::ExpandInto { edge_predicate, .. } => {
            if let Some(p) = edge_predicate {
                f(p);
            }
        }
        PhysicalOp::ExpandIntersect { dst_predicate, .. } => {
            if let Some(p) = dst_predicate {
                f(p);
            }
        }
        PhysicalOp::Select { predicate } => f(predicate),
        PhysicalOp::Project { items } => {
            for (e, _) in items {
                f(e);
            }
        }
        PhysicalOp::HashGroup { keys, aggs } => {
            for (e, _) in keys {
                f(e);
            }
            for (_, e, _) in aggs {
                f(e);
            }
        }
        PhysicalOp::OrderLimit { keys, .. } => {
            for (e, _) in keys {
                f(e);
            }
        }
        PhysicalOp::Dedup { keys } => {
            for e in keys {
                f(e);
            }
        }
        PhysicalOp::PathExpand { .. }
        | PhysicalOp::HashJoin { .. }
        | PhysicalOp::PropertyFetch { .. }
        | PhysicalOp::Limit { .. }
        | PhysicalOp::Union => {}
    }
}

fn collect_op_exprs<'a>(op: &'a PhysicalOp, out: &mut Vec<&'a Expr>) {
    match op {
        PhysicalOp::Scan { predicate, .. } => out.extend(predicate.iter()),
        PhysicalOp::EdgeExpand {
            dst_predicate,
            edge_predicate,
            ..
        } => {
            out.extend(dst_predicate.iter());
            out.extend(edge_predicate.iter());
        }
        PhysicalOp::ExpandInto { edge_predicate, .. } => out.extend(edge_predicate.iter()),
        PhysicalOp::ExpandIntersect { dst_predicate, .. } => out.extend(dst_predicate.iter()),
        PhysicalOp::Select { predicate } => out.push(predicate),
        PhysicalOp::Project { items } => out.extend(items.iter().map(|(e, _)| e)),
        PhysicalOp::HashGroup { keys, aggs } => {
            out.extend(keys.iter().map(|(e, _)| e));
            out.extend(aggs.iter().map(|(_, e, _)| e));
        }
        PhysicalOp::OrderLimit { keys, .. } => out.extend(keys.iter().map(|(e, _)| e)),
        PhysicalOp::Dedup { keys } => out.extend(keys.iter()),
        PhysicalOp::PathExpand { .. }
        | PhysicalOp::HashJoin { .. }
        | PhysicalOp::PropertyFetch { .. }
        | PhysicalOp::Limit { .. }
        | PhysicalOp::Union => {}
    }
}

fn op_detail(op: &PhysicalOp) -> String {
    match op {
        PhysicalOp::Scan {
            alias,
            constraint,
            predicate,
        } => format!(
            "{alias}:{constraint}{}",
            predicate
                .as_ref()
                .map(|p| format!(" where {p}"))
                .unwrap_or_default()
        ),
        PhysicalOp::EdgeExpand {
            src,
            dst_alias,
            edge_constraint,
            direction,
            ..
        } => format!("{src} -[{edge_constraint} {direction:?}]-> {dst_alias}"),
        PhysicalOp::ExpandInto {
            src,
            dst,
            edge_constraint,
            direction,
            ..
        } => format!("({src},{dst}) close [{edge_constraint} {direction:?}]"),
        PhysicalOp::ExpandIntersect {
            steps, dst_alias, ..
        } => format!(
            "intersect[{}] -> {dst_alias}",
            steps
                .iter()
                .map(|s| format!("{}:{}", s.src, s.edge_constraint))
                .collect::<Vec<_>>()
                .join(" ∩ ")
        ),
        PhysicalOp::PathExpand {
            src,
            dst_alias,
            min_hops,
            max_hops,
            ..
        } => format!("{src} -[*{min_hops}..{max_hops}]-> {dst_alias}"),
        PhysicalOp::HashJoin { keys, kind } => format!("{kind:?} on [{}]", keys.join(",")),
        PhysicalOp::PropertyFetch { tag, props } => match props {
            None => format!("{tag}.*"),
            Some(ps) => format!("{tag}.[{}]", ps.join(",")),
        },
        PhysicalOp::Select { predicate } => format!("{predicate}"),
        PhysicalOp::Project { items } => items
            .iter()
            .map(|(e, a)| format!("{e} AS {a}"))
            .collect::<Vec<_>>()
            .join(", "),
        PhysicalOp::HashGroup { keys, aggs } => format!(
            "keys=[{}] aggs=[{}]",
            keys.iter()
                .map(|(e, a)| format!("{e} AS {a}"))
                .collect::<Vec<_>>()
                .join(","),
            aggs.iter()
                .map(|(f, e, a)| format!("{f:?}({e}) AS {a}"))
                .collect::<Vec<_>>()
                .join(",")
        ),
        PhysicalOp::OrderLimit { keys, limit } => format!(
            "keys=[{}] limit={limit:?}",
            keys.iter()
                .map(|(e, d)| format!("{e} {d:?}"))
                .collect::<Vec<_>>()
                .join(",")
        ),
        PhysicalOp::Limit { count } => format!("{count}"),
        PhysicalOp::Dedup { keys } => keys
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(","),
        PhysicalOp::Union => String::new(),
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(alias: &str) -> PhysicalOp {
        PhysicalOp::Scan {
            alias: alias.into(),
            constraint: TypeConstraint::all(),
            predicate: None,
        }
    }

    fn expand(src: &str, dst: &str) -> PhysicalOp {
        PhysicalOp::EdgeExpand {
            src: src.into(),
            edge_alias: None,
            edge_constraint: TypeConstraint::all(),
            direction: Direction::Out,
            dst_alias: dst.into(),
            dst_constraint: TypeConstraint::all(),
            dst_predicate: None,
            edge_predicate: None,
        }
    }

    #[test]
    fn linear_plan_construction() {
        let mut plan = PhysicalPlan::new();
        plan.push(scan("v3"));
        plan.push(expand("v3", "v1"));
        plan.push(PhysicalOp::ExpandInto {
            src: "v1".into(),
            dst: "v2".into(),
            edge_constraint: TypeConstraint::all(),
            direction: Direction::Out,
            edge_alias: None,
            edge_predicate: None,
        });
        plan.push(PhysicalOp::HashGroup {
            keys: vec![(Expr::tag("v2"), "v2".into())],
            aggs: vec![(AggFunc::Count, Expr::tag("v2"), "cnt".into())],
        });
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(plan.op(plan.root()).name(), "HashGroup");
        assert_eq!(plan.count_op("Scan"), 1);
        assert_eq!(plan.count_op("ExpandInto"), 1);
        assert!(plan.op(PhysicalNodeId(0)).is_graph_op());
        assert!(!plan.op(plan.root()).is_graph_op());
        let text = plan.encode();
        assert!(text.contains("Scan") && text.contains("ExpandInto") && text.contains("HashGroup"));
        assert_eq!(plan.to_string(), text);
    }

    #[test]
    fn est_rows_survive_graft_and_show_in_encode() {
        let mut plan = PhysicalPlan::new();
        let s = plan.push(scan("a"));
        plan.push(expand("a", "b"));
        assert_eq!(plan.est_rows(s), None);
        plan.set_est_rows(s, 42.5);
        assert_eq!(plan.est_rows(s), Some(42.5));
        assert!(plan.encode().contains("est_rows=42.5"));
        // nodes without an estimate stay unannotated
        assert_eq!(plan.encode().matches("est_rows").count(), 1);

        let mut host = PhysicalPlan::new();
        host.push(scan("x"));
        let grafted_root = host.graft(&plan);
        // the grafted copy of the scan keeps its estimate; the expand copy stays bare
        assert_eq!(host.est_rows(PhysicalNodeId(1)), Some(42.5));
        assert_eq!(host.est_rows(grafted_root), None);
    }

    #[test]
    fn join_plan_with_graft() {
        let mut left = PhysicalPlan::new();
        left.push(scan("a"));
        left.push(expand("a", "b"));
        let mut right = PhysicalPlan::new();
        right.push(scan("c"));
        right.push(expand("c", "b"));

        let mut plan = left.clone();
        let lroot = plan.root();
        let rroot = plan.graft(&right);
        plan.add(
            PhysicalOp::HashJoin {
                keys: vec!["b".into()],
                kind: JoinType::Inner,
            },
            vec![lroot, rroot],
        );
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.op(plan.root()).name(), "HashJoin");
        assert_eq!(plan.count_op("Scan"), 2);
        let topo = plan.topo_order();
        assert_eq!(*topo.last().unwrap(), plan.root());
    }

    #[test]
    fn intersect_and_path_ops_encode() {
        let mut plan = PhysicalPlan::new();
        plan.push(scan("v1"));
        plan.push(expand("v1", "v2"));
        plan.push(PhysicalOp::ExpandIntersect {
            steps: vec![
                IntersectStep {
                    src: "v1".into(),
                    edge_constraint: TypeConstraint::all(),
                    direction: Direction::Out,
                    edge_alias: None,
                },
                IntersectStep {
                    src: "v2".into(),
                    edge_constraint: TypeConstraint::all(),
                    direction: Direction::Out,
                    edge_alias: None,
                },
            ],
            dst_alias: "v3".into(),
            dst_constraint: TypeConstraint::all(),
            dst_predicate: None,
        });
        plan.push(PhysicalOp::PathExpand {
            src: "v3".into(),
            dst_alias: "v4".into(),
            edge_constraint: TypeConstraint::all(),
            direction: Direction::Out,
            min_hops: 1,
            max_hops: 3,
            semantics: PathSemantics::Arbitrary,
            path_alias: Some("p".into()),
        });
        plan.push(PhysicalOp::Select {
            predicate: Expr::prop_eq("v4", "name", "x"),
        });
        plan.push(PhysicalOp::OrderLimit {
            keys: vec![(Expr::tag("v4"), SortDir::Asc)],
            limit: Some(5),
        });
        plan.push(PhysicalOp::Limit { count: 5 });
        plan.push(PhysicalOp::Dedup {
            keys: vec![Expr::tag("v4")],
        });
        plan.push(PhysicalOp::Project {
            items: vec![(Expr::prop("v4", "name"), "name".into())],
        });
        let enc = plan.encode();
        assert!(enc.contains("ExpandIntersect"));
        assert!(enc.contains("PathExpand"));
        assert!(enc.contains("*1..3"));
        assert!(enc.contains("OrderLimit"));
        // union as a separate plan
        let mut u = PhysicalPlan::new();
        let a = u.push(scan("x"));
        let mut other = PhysicalPlan::new();
        other.push(scan("y"));
        let b = u.graft(&other);
        u.add(PhysicalOp::Union, vec![a, b]);
        assert_eq!(u.count_op("Union"), 1);
        assert!(u.encode().contains("Union"));
    }
}
