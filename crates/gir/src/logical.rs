//! Logical operators and the logical plan DAG.
//!
//! A [`LogicalPlan`] is a small arena-allocated DAG: each node holds a [`LogicalOp`] and
//! the ids of its input (producer) nodes. The final operator is the plan root. The
//! `GraphIrBuilder` constructs these plans; the rule-based optimizer rewrites them; the
//! cost-based optimizer converts the `Match` nodes into physical pattern plans.
//!
//! Following the paper, graph operators (`GET_VERTEX`, `EXPAND_EDGE`, `EXPAND_PATH`)
//! appearing between `MATCH_START` and `MATCH_END` are folded into a composite
//! [`LogicalOp::Match`] node that carries the [`Pattern`] graph; the remaining operators
//! are the relational ones (`SELECT`, `PROJECT`, `GROUP`, `ORDER`, `LIMIT`, `JOIN`,
//! `UNION`, `DEDUP`).

use crate::expr::{AggFunc, Expr, SortDir};
use crate::pattern::Pattern;
use gopt_graph::PropValue;
use std::fmt;

/// Identifier of a node within one [`LogicalPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalNodeId(pub usize);

/// Join semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with nulls).
    LeftOuter,
    /// Semi join (left rows with at least one match).
    Semi,
    /// Anti join (left rows with no match).
    Anti,
}

/// A logical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    /// `MATCH_PATTERN`: match a pattern graph; produces one record per homomorphism.
    Match {
        /// The pattern to match.
        pattern: Pattern,
    },
    /// `SELECT`: keep records satisfying the predicate.
    Select {
        /// Filter predicate.
        predicate: Expr,
    },
    /// `PROJECT`: compute `(expr AS alias)*`, dropping all other fields.
    Project {
        /// Projection items.
        items: Vec<(Expr, String)>,
    },
    /// `GROUP`: group by keys and compute aggregates.
    Group {
        /// Grouping keys `(expr AS alias)`.
        keys: Vec<(Expr, String)>,
        /// Aggregates `(function, argument, alias)`.
        aggs: Vec<(AggFunc, Expr, String)>,
    },
    /// `ORDER`: sort by keys, optionally keeping only the first `limit` records.
    Order {
        /// Sort keys with direction.
        keys: Vec<(Expr, SortDir)>,
        /// Optional row limit (top-k).
        limit: Option<usize>,
    },
    /// `LIMIT`: keep the first `count` records.
    Limit {
        /// Number of records to keep.
        count: usize,
    },
    /// `DEDUP`: remove duplicate records w.r.t. the given keys.
    Dedup {
        /// Deduplication keys.
        keys: Vec<Expr>,
    },
    /// `JOIN`: join the two inputs on equality of the given tags.
    Join {
        /// Join semantics.
        kind: JoinType,
        /// Tags that must match between the two sides.
        keys: Vec<String>,
    },
    /// `UNION`: concatenate the inputs (UNION ALL when `all` is true, else distinct).
    Union {
        /// Whether duplicates are kept.
        all: bool,
    },
}

impl LogicalOp {
    /// Short operator name (upper-case, as in the paper's figures).
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Match { .. } => "MATCH_PATTERN",
            LogicalOp::Select { .. } => "SELECT",
            LogicalOp::Project { .. } => "PROJECT",
            LogicalOp::Group { .. } => "GROUP",
            LogicalOp::Order { .. } => "ORDER",
            LogicalOp::Limit { .. } => "LIMIT",
            LogicalOp::Dedup { .. } => "DEDUP",
            LogicalOp::Join { .. } => "JOIN",
            LogicalOp::Union { .. } => "UNION",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct LogicalNode {
    op: LogicalOp,
    inputs: Vec<LogicalNodeId>,
}

/// A logical plan: an arena of operators with producer links and a root (final) operator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogicalPlan {
    nodes: Vec<LogicalNode>,
    root: Option<LogicalNodeId>,
}

impl LogicalPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an operator with the given inputs; returns its id. The most recently added
    /// node becomes the root.
    pub fn add(&mut self, op: LogicalOp, inputs: Vec<LogicalNodeId>) -> LogicalNodeId {
        debug_assert!(inputs.iter().all(|i| i.0 < self.nodes.len()));
        let id = LogicalNodeId(self.nodes.len());
        self.nodes.push(LogicalNode { op, inputs });
        self.root = Some(id);
        id
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root (final) operator.
    pub fn root(&self) -> LogicalNodeId {
        self.root.expect("plan has at least one operator")
    }

    /// Explicitly set the root operator.
    pub fn set_root(&mut self, id: LogicalNodeId) {
        assert!(id.0 < self.nodes.len());
        self.root = Some(id);
    }

    /// The operator at `id`.
    pub fn op(&self, id: LogicalNodeId) -> &LogicalOp {
        &self.nodes[id.0].op
    }

    /// Mutable access to the operator at `id`.
    pub fn op_mut(&mut self, id: LogicalNodeId) -> &mut LogicalOp {
        &mut self.nodes[id.0].op
    }

    /// Input (producer) nodes of `id`.
    pub fn inputs(&self, id: LogicalNodeId) -> &[LogicalNodeId] {
        &self.nodes[id.0].inputs
    }

    /// Replace the inputs of a node.
    pub fn set_inputs(&mut self, id: LogicalNodeId, inputs: Vec<LogicalNodeId>) {
        self.nodes[id.0].inputs = inputs;
    }

    /// Ids of all nodes that consume the output of `id`.
    pub fn consumers(&self, id: LogicalNodeId) -> Vec<LogicalNodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| LogicalNodeId(i))
            .collect()
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = LogicalNodeId> {
        (0..self.nodes.len()).map(LogicalNodeId)
    }

    /// Node ids in topological order (producers before consumers), restricted to nodes
    /// reachable from the root.
    pub fn topo_order(&self) -> Vec<LogicalNodeId> {
        let mut order = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        fn visit(
            plan: &LogicalPlan,
            id: LogicalNodeId,
            visited: &mut [bool],
            order: &mut Vec<LogicalNodeId>,
        ) {
            if visited[id.0] {
                return;
            }
            visited[id.0] = true;
            for &i in plan.inputs(id) {
                visit(plan, i, visited, order);
            }
            order.push(id);
        }
        if let Some(root) = self.root {
            visit(self, root, &mut visited, &mut order);
        }
        order
    }

    /// Bypass a single-input node: its consumers now read from its input directly.
    /// If the node was the root, the root becomes its input.
    pub fn bypass(&mut self, id: LogicalNodeId) {
        assert_eq!(
            self.nodes[id.0].inputs.len(),
            1,
            "only single-input nodes can be bypassed"
        );
        let input = self.nodes[id.0].inputs[0];
        for n in &mut self.nodes {
            for i in &mut n.inputs {
                if *i == id {
                    *i = input;
                }
            }
        }
        if self.root == Some(id) {
            self.root = Some(input);
        }
    }

    /// Rebuild the plan keeping only nodes reachable from the root (compacting ids).
    /// Returns the compacted plan.
    pub fn compact(&self) -> LogicalPlan {
        let order = self.topo_order();
        let mut mapping = vec![None; self.nodes.len()];
        let mut out = LogicalPlan::new();
        for id in order {
            let inputs = self
                .inputs(id)
                .iter()
                .map(|i| mapping[i.0].expect("topological order"))
                .collect();
            let new_id = out.add(self.nodes[id.0].op.clone(), inputs);
            mapping[id.0] = Some(new_id);
        }
        if let Some(r) = self.root {
            out.root = mapping[r.0];
        }
        out
    }

    /// All `Match` nodes (id, pattern).
    pub fn match_nodes(&self) -> Vec<(LogicalNodeId, &Pattern)> {
        self.node_ids()
            .filter_map(|id| match self.op(id) {
                LogicalOp::Match { pattern } => Some((id, pattern)),
                _ => None,
            })
            .collect()
    }

    /// Canonical line-oriented encoding of the plan: one line per operator
    /// reachable from the root, in topological order, with node ids
    /// renumbered densely — so structurally identical plans encode
    /// identically regardless of arena insertion order or unreachable
    /// leftovers. Unlike [`explain`](Self::explain) (a human rendering that
    /// elides detail), every operator field participates via `Debug`, which
    /// is deterministic here: plan types hold no hash-ordered containers.
    /// This is the normalized query shape plan caches key on.
    pub fn encode(&self) -> String {
        let order = self.topo_order();
        let mut renum = vec![usize::MAX; self.nodes.len()];
        let mut s = String::new();
        for (new_id, id) in order.iter().enumerate() {
            renum[id.0] = new_id;
            let node = &self.nodes[id.0];
            let inputs: Vec<String> = node.inputs.iter().map(|i| renum[i.0].to_string()).collect();
            s.push_str(&format!(
                "#{new_id} {} [{}] {:?}\n",
                node.op.name(),
                inputs.join(","),
                node.op
            ));
        }
        s
    }

    /// Normalize comparison constants out of the plan: every `Literal`
    /// operand of a comparison whose other side is not a literal (in operator
    /// predicates, projection/grouping/sort/dedup expressions, and `Match`
    /// pattern vertex/edge predicates) is replaced by an [`Expr::Param`]
    /// slot, and the extracted values are returned in slot order. Operators
    /// are visited in topological order — the same order [`encode`](LogicalPlan::encode)
    /// (Self::encode) serializes them — so two queries differing only in
    /// those constants produce the *same* parameterized plan (hence the same
    /// cache shape) with parameter vectors that line up slot for slot.
    pub fn parameterize(&self) -> (LogicalPlan, Vec<PropValue>) {
        let mut plan = self.clone();
        let mut params = Vec::new();
        for id in plan.topo_order() {
            match plan.op_mut(id) {
                LogicalOp::Match { pattern } => pattern.parameterize_into(&mut params),
                LogicalOp::Select { predicate } => predicate.parameterize_into(&mut params),
                LogicalOp::Project { items } => {
                    for (e, _) in items {
                        e.parameterize_into(&mut params);
                    }
                }
                LogicalOp::Group { keys, aggs } => {
                    for (e, _) in keys {
                        e.parameterize_into(&mut params);
                    }
                    for (_, e, _) in aggs {
                        e.parameterize_into(&mut params);
                    }
                }
                LogicalOp::Order { keys, .. } => {
                    for (e, _) in keys {
                        e.parameterize_into(&mut params);
                    }
                }
                LogicalOp::Dedup { keys } => {
                    for e in keys {
                        e.parameterize_into(&mut params);
                    }
                }
                LogicalOp::Limit { .. } | LogicalOp::Join { .. } | LogicalOp::Union { .. } => {}
            }
        }
        (plan, params)
    }

    /// Multi-line textual rendering of the plan (root last), for debugging and EXPLAIN
    /// output.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        for id in self.topo_order() {
            let node = &self.nodes[id.0];
            let inputs: Vec<String> = node.inputs.iter().map(|i| format!("#{}", i.0)).collect();
            let detail = match &node.op {
                LogicalOp::Match { pattern } => format!("{pattern}"),
                LogicalOp::Select { predicate } => format!("{predicate}"),
                LogicalOp::Project { items } => items
                    .iter()
                    .map(|(e, a)| format!("{e} AS {a}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                LogicalOp::Group { keys, aggs } => format!(
                    "keys=[{}] aggs=[{}]",
                    keys.iter()
                        .map(|(e, a)| format!("{e} AS {a}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    aggs.iter()
                        .map(|(f, e, a)| format!("{f:?}({e}) AS {a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                LogicalOp::Order { keys, limit } => format!(
                    "keys=[{}] limit={limit:?}",
                    keys.iter()
                        .map(|(e, d)| format!("{e} {d:?}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                LogicalOp::Limit { count } => format!("{count}"),
                LogicalOp::Dedup { keys } => keys
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                LogicalOp::Join { kind, keys } => format!("{kind:?} ON [{}]", keys.join(", ")),
                LogicalOp::Union { all } => format!("all={all}"),
            };
            s.push_str(&format!(
                "#{} {} [{}] {}\n",
                id.0,
                node.op.name(),
                inputs.join(","),
                detail
            ));
        }
        s
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeConstraint;

    fn simple_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_vertex_tagged("v1", TypeConstraint::all());
        let b = p.add_vertex_tagged("v2", TypeConstraint::all());
        p.add_edge(a, b, TypeConstraint::all());
        p
    }

    fn simple_plan() -> LogicalPlan {
        let mut plan = LogicalPlan::new();
        let m = plan.add(
            LogicalOp::Match {
                pattern: simple_pattern(),
            },
            vec![],
        );
        let s = plan.add(
            LogicalOp::Select {
                predicate: Expr::prop_eq("v2", "name", "China"),
            },
            vec![m],
        );
        let g = plan.add(
            LogicalOp::Group {
                keys: vec![(Expr::tag("v1"), "v1".into())],
                aggs: vec![(AggFunc::Count, Expr::tag("v2"), "cnt".into())],
            },
            vec![s],
        );
        plan.add(
            LogicalOp::Order {
                keys: vec![(Expr::tag("cnt"), SortDir::Desc)],
                limit: Some(10),
            },
            vec![g],
        );
        plan
    }

    #[test]
    fn plan_construction_and_accessors() {
        let plan = simple_plan();
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        let root = plan.root();
        assert_eq!(plan.op(root).name(), "ORDER");
        assert_eq!(plan.inputs(root).len(), 1);
        assert_eq!(plan.consumers(LogicalNodeId(0)), vec![LogicalNodeId(1)]);
        assert_eq!(plan.match_nodes().len(), 1);
        let topo = plan.topo_order();
        assert_eq!(topo.len(), 4);
        assert_eq!(topo[0], LogicalNodeId(0));
        assert_eq!(topo[3], root);
    }

    #[test]
    fn bypass_removes_select() {
        let mut plan = simple_plan();
        plan.bypass(LogicalNodeId(1));
        // the group node now reads directly from the match node
        assert_eq!(plan.inputs(LogicalNodeId(2)), &[LogicalNodeId(0)]);
        let compacted = plan.compact();
        assert_eq!(compacted.len(), 3);
        assert_eq!(compacted.op(compacted.root()).name(), "ORDER");
    }

    #[test]
    fn bypass_root_moves_root() {
        let mut plan = LogicalPlan::new();
        let m = plan.add(
            LogicalOp::Match {
                pattern: simple_pattern(),
            },
            vec![],
        );
        let l = plan.add(LogicalOp::Limit { count: 5 }, vec![m]);
        assert_eq!(plan.root(), l);
        plan.bypass(l);
        assert_eq!(plan.root(), m);
    }

    #[test]
    fn explain_mentions_operators() {
        let plan = simple_plan();
        let text = plan.explain();
        assert!(text.contains("MATCH_PATTERN"));
        assert!(text.contains("SELECT"));
        assert!(text.contains("GROUP"));
        assert!(text.contains("ORDER"));
        assert_eq!(plan.to_string(), text);
    }

    #[test]
    fn encode_is_insensitive_to_arena_layout_but_not_to_content() {
        let plan = simple_plan();
        // same structure built with a dead node in the arena: same encoding
        let mut padded = LogicalPlan::new();
        padded.add(LogicalOp::Limit { count: 99 }, vec![]); // unreachable
        let m = padded.add(
            LogicalOp::Match {
                pattern: simple_pattern(),
            },
            vec![],
        );
        let s = padded.add(
            LogicalOp::Select {
                predicate: Expr::prop_eq("v2", "name", "China"),
            },
            vec![m],
        );
        let g = padded.add(
            LogicalOp::Group {
                keys: vec![(Expr::tag("v1"), "v1".into())],
                aggs: vec![(AggFunc::Count, Expr::tag("v2"), "cnt".into())],
            },
            vec![s],
        );
        padded.add(
            LogicalOp::Order {
                keys: vec![(Expr::tag("cnt"), SortDir::Desc)],
                limit: Some(10),
            },
            vec![g],
        );
        assert_eq!(plan.encode(), padded.encode());
        // any semantic difference must change the encoding
        let mut other = simple_plan();
        if let LogicalOp::Order { limit, .. } = other.op_mut(other.root()) {
            *limit = Some(11);
        }
        assert_ne!(plan.encode(), other.encode());
        let mut pred = simple_plan();
        if let LogicalOp::Select { predicate } = pred.op_mut(LogicalNodeId(1)) {
            *predicate = Expr::prop_eq("v2", "name", "India");
        }
        assert_ne!(plan.encode(), pred.encode());
    }

    #[test]
    fn join_and_union_ops() {
        let mut plan = LogicalPlan::new();
        let m1 = plan.add(
            LogicalOp::Match {
                pattern: simple_pattern(),
            },
            vec![],
        );
        let m2 = plan.add(
            LogicalOp::Match {
                pattern: simple_pattern(),
            },
            vec![],
        );
        let j = plan.add(
            LogicalOp::Join {
                kind: JoinType::Inner,
                keys: vec!["v1".into()],
            },
            vec![m1, m2],
        );
        let u = plan.add(LogicalOp::Union { all: true }, vec![j, m1]);
        assert_eq!(plan.inputs(j).len(), 2);
        assert_eq!(plan.inputs(u).len(), 2);
        assert_eq!(plan.op(j).name(), "JOIN");
        assert_eq!(plan.op(u).name(), "UNION");
        // consumers of m1: the join and the union
        assert_eq!(plan.consumers(m1).len(), 2);
    }
}
