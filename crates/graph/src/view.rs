//! The read API shared by every graph storage backend.
//!
//! [`GraphView`] abstracts exactly the surface the execution operators touch:
//! label-restricted CSR adjacency slices, label columns, O(1) property access
//! and schema lookup. Two storage layouts implement it:
//!
//! * [`crate::PropertyGraph`] — the monolithic single-machine CSR layout;
//! * [`crate::PartitionedGraph`] — vertex-partitioned storage where each
//!   partition owns an independent CSR shard ([`crate::GraphShard`]) plus the
//!   property columns of its local vertices.
//!
//! Operators written against `GraphView` run unchanged on either layout, which
//! is what lets the scalar engine act as the behavioural oracle for the
//! partitioned morsel executor: same operator code, different storage.
//!
//! The adjacency contract is inherited from the compressed CSR layout (see
//! [`crate::graph`]): `{out,in}_edges_with_label(v, l)` returns an
//! [`AdjSegment`] over a contiguous neighbour slice sorted by
//! `(neighbor, edge)` without allocating, regardless of which physical shard
//! the segment lives in.

use crate::column::ColumnRef;
use crate::graph::AdjSegment;
use crate::ids::{EdgeId, LabelId, PropKeyId, VertexId};
use crate::schema::GraphSchema;
use crate::value::PropValue;
use crate::PropertyGraph;

/// Read access to a property graph, independent of the physical layout.
///
/// All methods must behave exactly like the corresponding
/// [`PropertyGraph`] inherent methods; the partitioned implementation routes
/// each call to the shard owning the vertex.
pub trait GraphView: Sync {
    /// The schema the graph conforms to.
    fn schema(&self) -> &GraphSchema;

    /// Total number of vertices.
    fn vertex_count(&self) -> usize;

    /// Total number of edges.
    fn edge_count(&self) -> usize;

    /// Label of a vertex.
    fn vertex_label(&self, v: VertexId) -> LabelId;

    /// Label of an edge.
    fn edge_label(&self, e: EdgeId) -> LabelId;

    /// (source, destination) endpoints of an edge.
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId);

    /// Ids of all vertices with the given label (insertion order).
    fn vertices_with_label(&self, label: LabelId) -> &[VertexId];

    /// Outgoing adjacency of `v` restricted to one edge label: a compressed
    /// segment over a contiguous neighbour slice sorted by
    /// `(neighbor, edge)`, zero allocation.
    fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_>;

    /// Incoming adjacency of `v` restricted to one edge label.
    fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_>;

    /// All edges with label `label` from `src` to `dst`, sorted by edge id.
    fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> AdjSegment<'_>;

    /// The smallest-id edge with label `label` from `src` to `dst`, if any.
    fn first_edge_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> Option<EdgeId> {
        self.edges_between(src, label, dst).first().map(|a| a.edge)
    }

    /// Whether at least one `label` edge connects `src` to `dst`.
    fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        !self.edges_between(src, label, dst).is_empty()
    }

    /// Look up an interned property key by name.
    fn prop_key(&self, name: &str) -> Option<PropKeyId>;

    /// The typed cell holding `v`'s `key` property: the owning storage's
    /// per-(label, key) [`crate::TypedColumn`] plus the vertex's row within
    /// it. `None` when no vertex of `v`'s label carries the key (in whatever
    /// shard owns `v`). This is the zero-clone accessor the batch kernels
    /// resolve column slices through.
    fn vertex_prop_cell(&self, v: VertexId, key: PropKeyId) -> Option<ColumnRef<'_>>;

    /// The typed cell holding `e`'s `key` property.
    fn edge_prop_cell(&self, e: EdgeId, key: PropKeyId) -> Option<ColumnRef<'_>>;

    /// Look up a vertex property by interned key (owned value; strings are
    /// `Arc`-shared, so this never copies string bytes).
    fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<PropValue> {
        self.vertex_prop_cell(v, key).and_then(|c| c.value())
    }

    /// Look up an edge property by interned key.
    fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<PropValue> {
        self.edge_prop_cell(e, key).and_then(|c| c.value())
    }

    /// Look up a vertex property by name.
    fn vertex_prop_by_name(&self, v: VertexId, name: &str) -> Option<PropValue> {
        self.prop_key(name).and_then(|k| self.vertex_prop(v, k))
    }

    /// Look up an edge property by name.
    fn edge_prop_by_name(&self, e: EdgeId, name: &str) -> Option<PropValue> {
        self.prop_key(name).and_then(|k| self.edge_prop(e, k))
    }
}

impl GraphView for PropertyGraph {
    fn schema(&self) -> &GraphSchema {
        PropertyGraph::schema(self)
    }

    fn vertex_count(&self) -> usize {
        PropertyGraph::vertex_count(self)
    }

    fn edge_count(&self) -> usize {
        PropertyGraph::edge_count(self)
    }

    fn vertex_label(&self, v: VertexId) -> LabelId {
        PropertyGraph::vertex_label(self, v)
    }

    fn edge_label(&self, e: EdgeId) -> LabelId {
        PropertyGraph::edge_label(self, e)
    }

    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        PropertyGraph::edge_endpoints(self, e)
    }

    fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        PropertyGraph::vertices_with_label(self, label)
    }

    fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        PropertyGraph::out_edges_with_label(self, v, label)
    }

    fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        PropertyGraph::in_edges_with_label(self, v, label)
    }

    fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> AdjSegment<'_> {
        PropertyGraph::edges_between(self, src, label, dst)
    }

    fn first_edge_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> Option<EdgeId> {
        PropertyGraph::first_edge_between(self, src, label, dst)
    }

    fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        PropertyGraph::has_edge(self, src, label, dst)
    }

    fn prop_key(&self, name: &str) -> Option<PropKeyId> {
        PropertyGraph::prop_key(self, name)
    }

    fn vertex_prop_cell(&self, v: VertexId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        PropertyGraph::vertex_prop_cell(self, v, key)
    }

    fn edge_prop_cell(&self, e: EdgeId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        PropertyGraph::edge_prop_cell(self, e, key)
    }

    fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<PropValue> {
        PropertyGraph::vertex_prop(self, v, key)
    }

    fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<PropValue> {
        PropertyGraph::edge_prop(self, e, key)
    }

    fn vertex_prop_by_name(&self, v: VertexId, name: &str) -> Option<PropValue> {
        PropertyGraph::vertex_prop_by_name(self, v, name)
    }

    fn edge_prop_by_name(&self, e: EdgeId, name: &str) -> Option<PropValue> {
        PropertyGraph::edge_prop_by_name(self, e, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::schema::fig6_schema;

    fn view_roundtrip<G: GraphView>(g: &G) {
        let person = g.schema().vertex_label("Person").unwrap();
        let knows = g.schema().edge_label("Knows").unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.vertices_with_label(person).len(), 2);
        let (s, d) = g.edge_endpoints(EdgeId(0));
        assert_eq!(g.vertex_label(s), person);
        assert_eq!(g.edge_label(EdgeId(0)), knows);
        assert_eq!(g.out_edges_with_label(s, knows).len(), 1);
        assert_eq!(g.in_edges_with_label(d, knows).len(), 1);
        assert!(g.has_edge(s, knows, d));
        assert_eq!(g.first_edge_between(s, knows, d), Some(EdgeId(0)));
        assert_eq!(g.edges_between(s, knows, d).len(), 1);
        assert_eq!(
            g.vertex_prop_by_name(s, "name"),
            Some(PropValue::str("alice"))
        );
        assert_eq!(
            g.edge_prop_by_name(EdgeId(0), "since"),
            Some(PropValue::Int(7))
        );
        let key = g.prop_key("name").unwrap();
        assert_eq!(g.vertex_prop(s, key), Some(PropValue::str("alice")));
        assert!(g.edge_prop(EdgeId(0), key).is_none());
        // typed cell accessors agree with the scalar reads
        let cell = g.vertex_prop_cell(s, key).unwrap();
        assert!(cell.is_valid());
        assert_eq!(cell.value(), Some(PropValue::str("alice")));
        let since = g.prop_key("since").unwrap();
        let ecell = g.edge_prop_cell(EdgeId(0), since).unwrap();
        assert_eq!(ecell.value(), Some(PropValue::Int(7)));
        assert!(g.edge_prop_cell(EdgeId(0), key).is_none());
    }

    #[test]
    fn property_graph_implements_the_view() {
        let mut b = GraphBuilder::new(fig6_schema());
        let a = b
            .add_vertex_by_name("Person", vec![("name", PropValue::str("alice"))])
            .unwrap();
        let c = b.add_vertex_by_name("Person", vec![]).unwrap();
        b.add_edge_by_name("Knows", a, c, vec![("since", PropValue::Int(7))])
            .unwrap();
        let g = b.finish();
        view_roundtrip(&g);
    }
}
