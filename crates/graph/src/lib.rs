//! # gopt-graph
//!
//! In-memory property graph substrate for the GOpt query optimization framework.
//!
//! This crate provides the data-graph side of the system described in the paper
//! *"A Modular Graph-Native Query Optimization Framework"*:
//!
//! * typed identifiers for vertices, edges, labels and property keys ([`ids`]),
//! * property values ([`value`]),
//! * the graph **schema** (vertex/edge labels and their connectivity, used heavily by
//!   the optimizer's type-inference stage) ([`schema`]),
//! * a CSR-style in-memory [`PropertyGraph`] with label-partitioned vertex sets and
//!   per-label sorted adjacency ([`graph`]),
//! * low-order statistics (vertex/edge counts per label, degrees) ([`stats`]), and
//! * a small random graph generator used by unit and property tests ([`generator`]).
//!
//! The graph model follows the property graph model used by the paper: every vertex and
//! edge carries exactly one label (type) and a set of key/value properties; edges are
//! directed. Properties are stored as typed columns with null bitmaps
//! ([`mod@column`]): per-(label, key) value vectors the vectorized execution
//! pipeline reads as slices, with a `Mixed` fallback preserving boxed-cell
//! semantics for heterogeneous columns.

#![warn(missing_docs)]

pub mod column;
pub mod error;
pub mod generator;
pub mod graph;
pub mod ids;
pub mod image;
pub mod partition;
pub mod reference;
pub mod schema;
pub mod stats;
pub mod value;
pub mod view;

pub use column::{ColumnRef, NullBitmap, StrColumn, TypedColumn};
pub use error::GraphError;
pub use graph::{Adj, AdjSegment, CsrAdjacency, EdgeCodes, GraphBuilder, PropertyGraph};
pub use ids::{EdgeId, LabelId, PropKeyId, VertexId};
pub use image::{load_image, load_image_bytes, write_image, ImageError, LoadedImage};
pub use partition::{
    GraphShard, GreedyPartitioner, HashPartitioner, HubReplicas, PartitionMap, PartitionedGraph,
    Partitioner, PartitionerSpec,
};
pub use schema::{EdgeLabelDef, GraphSchema, PropType, PropertyDef, VertexLabelDef};
pub use stats::{
    CmpKind, ColumnDetail, ColumnStats, GraphStats, Histogram, LowOrderStats, NdvSketch, PropStats,
};
pub use value::PropValue;
pub use view::GraphView;
