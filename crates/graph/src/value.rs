//! Property values carried by vertices and edges, and flowing through query results.
//!
//! [`PropValue`] implements a *total* order (floats use `total_cmp`) and `Hash`
//! so that values can be used directly as grouping keys and ordering keys in the
//! execution engine without wrapper types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A property value in the property-graph data model.
///
/// The supported data types mirror the "general datatypes (Primitives)" of the
/// paper's GIR data model: 64-bit integers, 64-bit floats, strings, booleans,
/// dates (days since epoch) and `Null`.
#[derive(Debug, Clone)]
pub enum PropValue {
    /// Absence of a value (also produced by accessing a missing property).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (cheaply cloneable).
    Str(Arc<str>),
    /// Date, encoded as days since the Unix epoch.
    Date(i64),
}

impl PropValue {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        PropValue::Str(Arc::from(s.as_ref()))
    }

    /// Returns `true` for [`PropValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, PropValue::Null)
    }

    /// Interpret the value as a boolean (for predicate evaluation).
    /// `Null` is falsy; numbers are truthy when non-zero.
    pub fn truthy(&self) -> bool {
        match self {
            PropValue::Null => false,
            PropValue::Bool(b) => *b,
            PropValue::Int(i) => *i != 0,
            PropValue::Float(f) => *f != 0.0,
            PropValue::Str(s) => !s.is_empty(),
            PropValue::Date(_) => true,
        }
    }

    /// Interpret the value as an integer when possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropValue::Int(i) => Some(*i),
            PropValue::Date(d) => Some(*d),
            PropValue::Bool(b) => Some(*b as i64),
            PropValue::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Interpret the value as a float when possible.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropValue::Int(i) => Some(*i as f64),
            PropValue::Float(f) => Some(*f),
            PropValue::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Interpret the value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A small integer identifying the variant, used for cross-type ordering.
    fn kind_rank(&self) -> u8 {
        match self {
            PropValue::Null => 0,
            PropValue::Bool(_) => 1,
            PropValue::Int(_) => 2,
            PropValue::Float(_) => 2, // ints and floats compare numerically
            PropValue::Date(_) => 3,
            PropValue::Str(_) => 4,
        }
    }
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}
impl From<i32> for PropValue {
    fn from(v: i32) -> Self {
        PropValue::Int(v as i64)
    }
}
impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Float(v)
    }
}
impl From<bool> for PropValue {
    fn from(v: bool) -> Self {
        PropValue::Bool(v)
    }
}
impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::str(v)
    }
}
impl From<String> for PropValue {
    fn from(v: String) -> Self {
        PropValue::Str(Arc::from(v.as_str()))
    }
}

impl PartialEq for PropValue {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PropValue {}

impl PartialOrd for PropValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PropValue {
    fn cmp(&self, other: &Self) -> Ordering {
        use PropValue::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            // cross-type: order by variant rank so that sorting mixed columns is stable
            (a, b) => a.kind_rank().cmp(&b.kind_rank()),
        }
    }
}

impl Hash for PropValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            PropValue::Null => 0u8.hash(state),
            PropValue::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            PropValue::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            PropValue::Float(f) => {
                // hash equal ints and floats identically when they're whole numbers is NOT
                // attempted; floats hash by bit pattern which is consistent with total_cmp
                // equality for identical bit patterns.
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            PropValue::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            PropValue::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropValue::Null => write!(f, "null"),
            PropValue::Bool(b) => write!(f, "{b}"),
            PropValue::Int(i) => write!(f, "{i}"),
            PropValue::Float(x) => write!(f, "{x}"),
            PropValue::Str(s) => write!(f, "{s}"),
            PropValue::Date(d) => write!(f, "date({d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &PropValue) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(PropValue::Int(3), PropValue::Float(3.0));
        assert!(PropValue::Int(3) < PropValue::Float(3.5));
        assert!(PropValue::Float(2.5) < PropValue::Int(3));
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert!(PropValue::str("China") < PropValue::str("India"));
        assert_eq!(PropValue::str("x"), PropValue::from("x"));
    }

    #[test]
    fn nulls_sort_first_and_are_falsy() {
        let mut vals = [PropValue::Int(1), PropValue::Null, PropValue::str("a")];
        vals.sort();
        assert!(vals[0].is_null());
        assert!(!PropValue::Null.truthy());
        assert!(PropValue::Int(1).truthy());
        assert!(!PropValue::Int(0).truthy());
        assert!(PropValue::str("a").truthy());
        assert!(!PropValue::str("").truthy());
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(PropValue::from(7i64).as_int(), Some(7));
        assert_eq!(PropValue::from(7i32).as_int(), Some(7));
        assert_eq!(PropValue::from(2.5f64).as_float(), Some(2.5));
        assert_eq!(PropValue::from(true).as_int(), Some(1));
        assert_eq!(PropValue::from("hi").as_str(), Some("hi"));
        assert_eq!(PropValue::from(String::from("hi")).as_str(), Some("hi"));
        assert_eq!(PropValue::Int(2).as_float(), Some(2.0));
        assert_eq!(PropValue::Date(10).as_int(), Some(10));
        assert!(PropValue::Null.as_int().is_none());
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(
            hash_of(&PropValue::str("abc")),
            hash_of(&PropValue::str("abc"))
        );
        assert_eq!(hash_of(&PropValue::Int(5)), hash_of(&PropValue::Int(5)));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(PropValue::Int(5).to_string(), "5");
        assert_eq!(PropValue::str("x").to_string(), "x");
        assert_eq!(PropValue::Null.to_string(), "null");
        assert_eq!(PropValue::Bool(true).to_string(), "true");
        assert_eq!(PropValue::Date(3).to_string(), "date(3)");
    }
}
