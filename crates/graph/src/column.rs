//! Typed property columns with null bitmaps.
//!
//! Property storage before this module kept every cell as a boxed
//! `Option<PropValue>`: one enum tag plus one `Option` discriminant per cell,
//! and a full `PropValue` clone on every read. [`TypedColumn`] replaces that
//! with the Arrow-style layout used by vectorized executors: one primitive
//! value vector per column plus a packed validity bitmap ([`NullBitmap`]),
//! with the column's type inferred once at build time from the cells it
//! actually stores:
//!
//! ```text
//! boxed:  [ Some(Int(7)) | None | Some(Int(9)) | ... ]   24 B/cell, clone per read
//!
//! typed:  values   [ 7 | _ | 9 | ... ]                   8 B/cell (i64)
//!         validity [ 1   0   1   ... ]                   1 bit/cell
//! ```
//!
//! # Type inference and the `Mixed` fallback
//!
//! [`TypedColumn::from_cells`] scans the non-null cells once:
//!
//! * all cells share one primitive kind → the matching typed variant
//!   ([`TypedColumn::Int`], [`TypedColumn::Float`], [`TypedColumn::Bool`],
//!   [`TypedColumn::Date`], [`TypedColumn::Str`]);
//! * the cells mix kinds (or the column is entirely null, so no kind is
//!   observable) → [`TypedColumn::Mixed`], which keeps the original
//!   `Option<PropValue>` cells and therefore the exact pre-typed semantics.
//!
//! Correctness never depends on a column being typed — [`TypedColumn::get`]
//! answers identically for every variant, and the execution engines keep the
//! row-wise evaluator as the oracle for `Mixed` columns. Only performance
//! depends on it: typed variants expose their value slices
//! ([`TypedColumn::ints`], [`TypedColumn::floats`], …) so batch kernels can
//! compare `&[i64]` directly with zero `PropValue` construction or cloning.
//!
//! # Dictionary-encoded strings
//!
//! String columns do not store one `Arc<str>` per row. [`StrColumn`] keeps a
//! **sorted, deduplicated dictionary** of the distinct strings plus one `u32`
//! code per row (the index of the row's string in the dictionary):
//!
//! ```text
//! boxed:  [ "tokyo" | "oslo" | "tokyo" | ... ]     16 B ptr + heap per cell
//!
//! dict:   codes [ 1 | 0 | 1 | ... ]                4 B/cell
//!         dict  [ "oslo" | "tokyo" ]               one Arc<str> per DISTINCT value
//!         validity [ 1 1 1 ... ]                   1 bit/cell
//! ```
//!
//! Because the dictionary is sorted, code order within one column equals
//! lexicographic order, so equality/range predicates against a literal reduce
//! to one `partition_point` over the dictionary followed by primitive-width
//! `u32` compares per row (see `gopt-exec`'s typed predicate kernels).
//! Dictionaries are **per column**: codes from different columns (or the same
//! column on different shards) are never comparable with each other.
//!
//! # Null-bitmap semantics
//!
//! Bit `i` of the [`NullBitmap`] is set when row `i` holds a value. An unset
//! bit means the record does not carry the property: reads return `None`,
//! exactly like the absent-cell behaviour of the boxed layout. The value
//! vector holds an arbitrary placeholder at invalid rows; kernels must test
//! the bitmap before touching the value (`Bitmap AND`/`OR` combining is done
//! by the executor, see `gopt-exec`'s typed predicate kernels).

use crate::schema::PropType;
use crate::value::PropValue;
use std::sync::Arc;

/// A packed validity bitmap: bit `i` is set when row `i` holds a value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` bits, all valid.
    pub fn all_valid(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        NullBitmap { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    #[inline]
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// The bit at `i` (false when out of range).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set (valid) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed bit words (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap from its packed words and bit length (for
    /// deserialization). Returns `None` when `words` cannot hold `len` bits.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        Some(NullBitmap { words, len })
    }

    /// Heap bytes held by the bitmap.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A dictionary-encoded string column: one `u32` code per row indexing into a
/// sorted, deduplicated dictionary of `Arc<str>` values. See the
/// [module documentation](self) for the layout and ordering guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrColumn {
    codes: Vec<u32>,
    dict: Vec<Arc<str>>,
    validity: NullBitmap,
}

impl StrColumn {
    /// Build a column from per-row optional strings (`None` = null row).
    /// The dictionary is the sorted set of distinct present strings; null
    /// rows get code 0 as a placeholder.
    pub fn from_rows(rows: Vec<Option<Arc<str>>>) -> StrColumn {
        let mut dict: Vec<Arc<str>> = rows.iter().flatten().cloned().collect();
        dict.sort_unstable_by(|a, b| a.as_ref().cmp(b.as_ref()));
        dict.dedup_by(|a, b| a.as_ref() == b.as_ref());
        assert!(
            dict.len() <= u32::MAX as usize,
            "string dictionary exceeds u32 code space"
        );
        let mut codes = Vec::with_capacity(rows.len());
        let mut validity = NullBitmap::new();
        for row in &rows {
            match row {
                Some(s) => {
                    validity.push(true);
                    let code = dict
                        .binary_search_by(|d| d.as_ref().cmp(s.as_ref()))
                        .expect("dictionary contains every present string");
                    codes.push(code as u32);
                }
                None => {
                    validity.push(false);
                    codes.push(0);
                }
            }
        }
        StrColumn {
            codes,
            dict,
            validity,
        }
    }

    /// Reassemble a column from its parts (for deserialization). Validates
    /// the invariants the kernels rely on: sorted unique dictionary, in-range
    /// codes, matching lengths.
    pub fn from_parts(
        codes: Vec<u32>,
        dict: Vec<Arc<str>>,
        validity: NullBitmap,
    ) -> Option<StrColumn> {
        if codes.len() != validity.len() {
            return None;
        }
        if !dict.windows(2).all(|w| w[0].as_ref() < w[1].as_ref()) {
            return None;
        }
        let n_dict = dict.len() as u32;
        for (row, &code) in codes.iter().enumerate() {
            if validity.get(row) && code >= n_dict {
                return None;
            }
        }
        Some(StrColumn {
            codes,
            dict,
            validity,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The per-row dictionary codes (placeholder 0 at null rows).
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The sorted, deduplicated dictionary.
    #[inline]
    pub fn dict(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// The validity bitmap.
    #[inline]
    pub fn validity(&self) -> &NullBitmap {
        &self.validity
    }

    /// The string at `row` (`None` when the row is null/absent).
    #[inline]
    pub fn value(&self, row: usize) -> Option<&Arc<str>> {
        self.validity
            .get(row)
            .then(|| &self.dict[self.codes[row] as usize])
    }

    /// The rank of `needle` in the dictionary: the number of dictionary
    /// entries strictly below it, plus whether it is present. A row's string
    /// compares to `needle` exactly as its code compares to the rank (with
    /// equality only when `exact`), which is what turns string comparisons
    /// into `u32` compares.
    pub fn rank_of(&self, needle: &str) -> (u32, bool) {
        let p = self.dict.partition_point(|d| d.as_ref() < needle);
        let exact = self.dict.get(p).is_some_and(|d| d.as_ref() == needle);
        (p as u32, exact)
    }

    /// Heap bytes held by codes, dictionary headers and dictionary string
    /// payloads, plus the validity bitmap.
    pub fn heap_bytes(&self) -> usize {
        self.codes.len() * 4
            + self
                .dict
                .iter()
                .map(|s| std::mem::size_of::<Arc<str>>() + s.len())
                .sum::<usize>()
            + self.validity.heap_bytes()
    }
}

/// One typed per-(label, key) property column. See the
/// [module documentation](self) for the layout, the inference rules and the
/// `Mixed` fallback semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum TypedColumn {
    /// 64-bit integers plus validity.
    Int(Vec<i64>, NullBitmap),
    /// 64-bit floats plus validity.
    Float(Vec<f64>, NullBitmap),
    /// Booleans plus validity.
    Bool(Vec<bool>, NullBitmap),
    /// Dates (days since epoch) plus validity.
    Date(Vec<i64>, NullBitmap),
    /// Dictionary-encoded strings: `u32` codes into a sorted per-column
    /// dictionary (validity lives inside the [`StrColumn`]).
    Str(StrColumn),
    /// Fallback preserving the boxed-cell semantics for columns that mix
    /// value kinds across rows (or are entirely null, leaving no kind to
    /// infer).
    Mixed(Box<[Option<PropValue>]>),
}

impl TypedColumn {
    /// Build a column from boxed cells, inferring the narrowest typed layout
    /// that represents them (see the module documentation).
    pub fn from_cells(cells: Vec<Option<PropValue>>) -> TypedColumn {
        let mut kind: Option<PropType> = None;
        for cell in cells.iter().flatten() {
            let k = match cell {
                PropValue::Int(_) => PropType::Int,
                PropValue::Float(_) => PropType::Float,
                PropValue::Bool(_) => PropType::Bool,
                PropValue::Date(_) => PropType::Date,
                PropValue::Str(_) => PropType::Str,
                // an explicit Null value stored in a cell defeats typing:
                // Some(Null) and None must stay distinguishable only through
                // the Mixed fallback (typed validity cannot encode both)
                PropValue::Null => return TypedColumn::Mixed(cells.into_boxed_slice()),
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => return TypedColumn::Mixed(cells.into_boxed_slice()),
            }
        }
        let Some(kind) = kind else {
            // entirely null: no observable kind
            return TypedColumn::Mixed(cells.into_boxed_slice());
        };
        let mut validity = NullBitmap::new();
        match kind {
            PropType::Int | PropType::Date => {
                let mut vals = Vec::with_capacity(cells.len());
                for cell in &cells {
                    validity.push(cell.is_some());
                    vals.push(match cell {
                        Some(PropValue::Int(i)) | Some(PropValue::Date(i)) => *i,
                        _ => 0,
                    });
                }
                if kind == PropType::Int {
                    TypedColumn::Int(vals, validity)
                } else {
                    TypedColumn::Date(vals, validity)
                }
            }
            PropType::Float => {
                let mut vals = Vec::with_capacity(cells.len());
                for cell in &cells {
                    validity.push(cell.is_some());
                    vals.push(match cell {
                        Some(PropValue::Float(f)) => *f,
                        _ => 0.0,
                    });
                }
                TypedColumn::Float(vals, validity)
            }
            PropType::Bool => {
                let mut vals = Vec::with_capacity(cells.len());
                for cell in &cells {
                    validity.push(cell.is_some());
                    vals.push(matches!(cell, Some(PropValue::Bool(true))));
                }
                TypedColumn::Bool(vals, validity)
            }
            PropType::Str => {
                let rows = cells
                    .into_iter()
                    .map(|cell| match cell {
                        Some(PropValue::Str(s)) => Some(s),
                        _ => None,
                    })
                    .collect();
                TypedColumn::Str(StrColumn::from_rows(rows))
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            TypedColumn::Int(v, _) | TypedColumn::Date(v, _) => v.len(),
            TypedColumn::Float(v, _) => v.len(),
            TypedColumn::Bool(v, _) => v.len(),
            TypedColumn::Str(s) => s.len(),
            TypedColumn::Mixed(cells) => cells.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The inferred value type; `None` for the [`TypedColumn::Mixed`]
    /// fallback.
    pub fn kind(&self) -> Option<PropType> {
        match self {
            TypedColumn::Int(..) => Some(PropType::Int),
            TypedColumn::Float(..) => Some(PropType::Float),
            TypedColumn::Bool(..) => Some(PropType::Bool),
            TypedColumn::Date(..) => Some(PropType::Date),
            TypedColumn::Str(..) => Some(PropType::Str),
            TypedColumn::Mixed(_) => None,
        }
    }

    /// Whether row `row` holds a value.
    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        match self {
            TypedColumn::Int(_, n)
            | TypedColumn::Date(_, n)
            | TypedColumn::Float(_, n)
            | TypedColumn::Bool(_, n) => n.get(row),
            TypedColumn::Str(s) => s.validity().get(row),
            TypedColumn::Mixed(cells) => cells.get(row).is_some_and(|c| c.is_some()),
        }
    }

    /// The value at `row` (`None` when the row is null/absent) — the scalar
    /// read path, identical in behaviour to the boxed layout.
    #[inline]
    pub fn get(&self, row: usize) -> Option<PropValue> {
        match self {
            TypedColumn::Int(v, n) => n.get(row).then(|| PropValue::Int(v[row])),
            TypedColumn::Date(v, n) => n.get(row).then(|| PropValue::Date(v[row])),
            TypedColumn::Float(v, n) => n.get(row).then(|| PropValue::Float(v[row])),
            TypedColumn::Bool(v, n) => n.get(row).then(|| PropValue::Bool(v[row])),
            TypedColumn::Str(s) => s.value(row).map(|v| PropValue::Str(v.clone())),
            TypedColumn::Mixed(cells) => cells.get(row).and_then(|c| c.clone()),
        }
    }

    /// The integer value slice and validity bitmap of an [`TypedColumn::Int`]
    /// column.
    pub fn ints(&self) -> Option<(&[i64], &NullBitmap)> {
        match self {
            TypedColumn::Int(v, n) => Some((v, n)),
            _ => None,
        }
    }

    /// The date value slice and validity bitmap of a [`TypedColumn::Date`]
    /// column.
    pub fn dates(&self) -> Option<(&[i64], &NullBitmap)> {
        match self {
            TypedColumn::Date(v, n) => Some((v, n)),
            _ => None,
        }
    }

    /// The float value slice and validity bitmap of a [`TypedColumn::Float`]
    /// column.
    pub fn floats(&self) -> Option<(&[f64], &NullBitmap)> {
        match self {
            TypedColumn::Float(v, n) => Some((v, n)),
            _ => None,
        }
    }

    /// The boolean value slice and validity bitmap of a [`TypedColumn::Bool`]
    /// column.
    pub fn bools(&self) -> Option<(&[bool], &NullBitmap)> {
        match self {
            TypedColumn::Bool(v, n) => Some((v, n)),
            _ => None,
        }
    }

    /// The dictionary-encoded string column of a [`TypedColumn::Str`] column.
    pub fn strs(&self) -> Option<&StrColumn> {
        match self {
            TypedColumn::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The raw cells of a [`TypedColumn::Mixed`] column.
    pub fn mixed(&self) -> Option<&[Option<PropValue>]> {
        match self {
            TypedColumn::Mixed(cells) => Some(cells),
            _ => None,
        }
    }
}

/// A borrowed reference to one cell of a [`TypedColumn`]: the column plus the
/// row index of the record within it. This is what the [`crate::GraphView`]
/// typed accessors hand to execution kernels — the kernel resolves the
/// column's value slice once and then indexes it per row, instead of paying a
/// `PropValue` clone per read.
#[derive(Debug, Clone, Copy)]
pub struct ColumnRef<'a> {
    /// The typed column holding the cell.
    pub column: &'a TypedColumn,
    /// Row of the cell within the column (the record's in-label offset).
    pub row: usize,
}

impl ColumnRef<'_> {
    /// The cell's value (`None` when null/absent).
    #[inline]
    pub fn value(&self) -> Option<PropValue> {
        self.column.get(self.row)
    }

    /// Whether the cell holds a value.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.column.is_valid(self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get_count() {
        let mut b = NullBitmap::new();
        assert!(b.is_empty());
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0) && !b.get(1) && b.get(129));
        assert!(!b.get(500), "out of range is invalid");
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        let all = NullBitmap::all_valid(70);
        assert_eq!(all.len(), 70);
        assert_eq!(all.count_valid(), 70);
        assert!(all.get(69) && !all.get(70));
    }

    #[test]
    fn dense_int_column_is_typed() {
        let cells = vec![Some(PropValue::Int(1)), None, Some(PropValue::Int(3))];
        let c = TypedColumn::from_cells(cells);
        assert_eq!(c.kind(), Some(PropType::Int));
        assert_eq!(c.len(), 3);
        let (vals, nulls) = c.ints().unwrap();
        assert_eq!(vals, &[1, 0, 3]);
        assert!(nulls.get(0) && !nulls.get(1) && nulls.get(2));
        assert_eq!(c.get(0), Some(PropValue::Int(1)));
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(PropValue::Int(3)));
        assert_eq!(c.get(99), None);
        assert!(c.is_valid(0) && !c.is_valid(1));
    }

    #[test]
    fn each_primitive_kind_gets_its_own_variant() {
        let f = TypedColumn::from_cells(vec![Some(PropValue::Float(2.5)), None]);
        assert_eq!(f.kind(), Some(PropType::Float));
        assert_eq!(f.floats().unwrap().0, &[2.5, 0.0]);
        assert_eq!(f.get(0), Some(PropValue::Float(2.5)));

        let b = TypedColumn::from_cells(vec![Some(PropValue::Bool(true)), None]);
        assert_eq!(b.kind(), Some(PropType::Bool));
        assert_eq!(b.bools().unwrap().0, &[true, false]);
        assert_eq!(b.get(0), Some(PropValue::Bool(true)));

        let d = TypedColumn::from_cells(vec![Some(PropValue::Date(7)), None]);
        assert_eq!(d.kind(), Some(PropType::Date));
        assert_eq!(d.dates().unwrap().0, &[7, 0]);
        assert_eq!(d.get(0), Some(PropValue::Date(7)));
        assert!(d.ints().is_none(), "dates are not ints");

        let s = TypedColumn::from_cells(vec![Some(PropValue::str("x")), None]);
        assert_eq!(s.kind(), Some(PropType::Str));
        assert_eq!(s.strs().unwrap().value(0).unwrap().as_ref(), "x");
        assert_eq!(s.get(0), Some(PropValue::str("x")));
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn str_columns_are_dictionary_encoded() {
        let c = TypedColumn::from_cells(vec![
            Some(PropValue::str("tokyo")),
            Some(PropValue::str("oslo")),
            None,
            Some(PropValue::str("tokyo")),
            Some(PropValue::str("lima")),
        ]);
        let s = c.strs().unwrap();
        // dictionary is sorted and deduplicated
        let dict: Vec<&str> = s.dict().iter().map(|d| d.as_ref()).collect();
        assert_eq!(dict, ["lima", "oslo", "tokyo"]);
        assert_eq!(s.codes(), &[2, 1, 0, 2, 0]);
        assert!(!s.validity().get(2));
        assert_eq!(s.value(2), None);
        assert_eq!(s.value(3).unwrap().as_ref(), "tokyo");
        // rank_of turns string compares into u32 compares
        assert_eq!(s.rank_of("oslo"), (1, true));
        assert_eq!(s.rank_of("nara"), (1, false));
        assert_eq!(s.rank_of("zurich"), (3, false));
        // duplicate rows share one dictionary entry
        assert!(Arc::ptr_eq(s.value(0).unwrap(), s.value(3).unwrap()));
        // reads stay identical to the boxed layout
        assert_eq!(c.get(1), Some(PropValue::str("oslo")));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn str_column_from_parts_validates_invariants() {
        let good = StrColumn::from_rows(vec![Some(Arc::from("b")), None, Some(Arc::from("a"))]);
        let rebuilt = StrColumn::from_parts(
            good.codes().to_vec(),
            good.dict().to_vec(),
            good.validity().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt, good);
        // unsorted dictionary
        assert!(StrColumn::from_parts(
            vec![0, 0],
            vec![Arc::from("b"), Arc::from("a")],
            NullBitmap::all_valid(2),
        )
        .is_none());
        // out-of-range code on a valid row
        assert!(
            StrColumn::from_parts(vec![5], vec![Arc::from("a")], NullBitmap::all_valid(1))
                .is_none()
        );
        // length mismatch between codes and validity
        assert!(
            StrColumn::from_parts(vec![0, 0], vec![Arc::from("a")], NullBitmap::all_valid(1))
                .is_none()
        );
    }

    #[test]
    fn mixed_and_all_null_columns_fall_back() {
        let m = TypedColumn::from_cells(vec![
            Some(PropValue::Int(1)),
            Some(PropValue::str("x")),
            None,
        ]);
        assert_eq!(m.kind(), None);
        assert!(m.mixed().is_some());
        assert_eq!(m.get(0), Some(PropValue::Int(1)));
        assert_eq!(m.get(1), Some(PropValue::str("x")));
        assert_eq!(m.get(2), None);

        let all_null = TypedColumn::from_cells(vec![None, None]);
        assert_eq!(all_null.kind(), None);
        assert_eq!(all_null.get(0), None);
        assert_eq!(all_null.len(), 2);

        // explicit stored Null values keep Some(Null) vs None distinguishable
        let with_null =
            TypedColumn::from_cells(vec![Some(PropValue::Null), Some(PropValue::Int(1))]);
        assert_eq!(with_null.kind(), None);
        assert_eq!(with_null.get(0), Some(PropValue::Null));
    }

    #[test]
    fn column_ref_reads_cells() {
        let c = TypedColumn::from_cells(vec![Some(PropValue::Int(5)), None]);
        let r = ColumnRef { column: &c, row: 0 };
        assert!(r.is_valid());
        assert_eq!(r.value(), Some(PropValue::Int(5)));
        let r = ColumnRef { column: &c, row: 1 };
        assert!(!r.is_valid());
        assert_eq!(r.value(), None);
    }
}
