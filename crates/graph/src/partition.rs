//! Partition-aware graph storage: per-partition CSR shards behind a façade.
//!
//! The paper's distributed backend (GraphScope/Gaia) hash-partitions vertices
//! over workers; each worker owns the adjacency and properties of its local
//! vertices and every record that crosses workers is communication. Before
//! this module the partitioned backend merely *simulated* that ownership on a
//! monolithic CSR. [`PartitionedGraph`] makes it real:
//!
//! ```text
//! PartitionedGraph
//! ├── partitioner: vertex → partition   (HashPartitioner: v mod p)
//! ├── local_index: global vertex id → dense local id within its shard
//! ├── shards[p]: GraphShard             one per partition
//! │   ├── out_adj / in_adj: CsrAdjacency over LOCAL vertex ids
//! │   │     (compressed u32 neighbours + delta-encoded edge ids + offsets +
//! │   │      per-(vertex,label) segment index — storing GLOBAL
//! │   │      neighbour/edge ids)
//! │   └── props: per-(label, key) columns of the shard's local vertices
//! └── base: global catalog              (schema, label columns, edge
//!       endpoints, edge properties, vertices-by-label index) with the
//!       monolithic adjacency and vertex-property columns stripped
//! ```
//!
//! The façade implements [`GraphView`], so operator code written against the
//! trait runs unchanged: `out_edges_with_label(v, l)` resolves the owning
//! shard (`partition_of(v)`), maps `v` to its local id (one array lookup) and
//! slices the shard's CSR — still O(1) and allocation-free, still sorted by
//! `(neighbor, edge)` in *global* ids, so every access-contract consumer
//! (binary-searching `ExpandInto`, gallop-merging `ExpandIntersect`) works on
//! shard segments exactly as on the monolithic layout.
//!
//! Edge ownership follows the usual out-edge-cut convention: an edge's
//! out-adjacency entry lives in the source vertex's shard and its in-adjacency
//! entry in the destination's shard, so expansion from a vertex only ever
//! touches the shard owning that vertex. Edge property columns remain in the
//! global catalog (edges are identified globally; only *vertex* state is
//! partitioned, as in the paper's vertex-cut-free deployment).

use crate::column::{ColumnRef, TypedColumn};
use crate::graph::{Adj, AdjSegment, CsrAdjacency, PropColumns, PropertyGraph};
use crate::ids::{EdgeId, LabelId, PropKeyId, VertexId};
use crate::schema::GraphSchema;
use crate::value::PropValue;
use crate::view::GraphView;

/// Assigns every vertex to one of `partitions()` workers.
pub trait Partitioner: Send + Sync + std::fmt::Debug {
    /// Number of partitions.
    fn partitions(&self) -> usize;

    /// The partition owning `v`. Must be `< partitions()` for every vertex.
    fn partition_of(&self, v: VertexId) -> usize;
}

/// The default partitioner: `v mod p`, matching the hash placement the
/// engines' communication model has always assumed.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    /// A modulo partitioner over `partitions` workers (at least 1).
    pub fn new(partitions: usize) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        HashPartitioner { partitions }
    }
}

impl Partitioner for HashPartitioner {
    fn partitions(&self) -> usize {
        self.partitions
    }

    #[inline]
    fn partition_of(&self, v: VertexId) -> usize {
        (v.0 as usize) % self.partitions
    }
}

/// One partition's share of the graph: an independent CSR over the partition's
/// local vertices plus their property columns.
#[derive(Debug, Clone)]
pub struct GraphShard {
    /// Global ids of the shard's vertices, indexed by local id.
    vertices: Vec<VertexId>,
    /// Label of each local vertex.
    labels: Vec<LabelId>,
    /// Position of each local vertex among the shard's vertices of the same
    /// label (the shard-local property-column row).
    in_label_offset: Vec<u32>,
    /// Out-adjacency of the local vertices (local vertex ids, global
    /// neighbour/edge ids).
    out_adj: CsrAdjacency,
    /// In-adjacency of the local vertices.
    in_adj: CsrAdjacency,
    /// Property columns of the local vertices.
    props: PropColumns,
}

impl GraphShard {
    /// Global ids of the shard's vertices in local order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of local vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of out-adjacency entries stored in this shard (= number of
    /// edges whose source is local).
    pub fn out_edge_count(&self) -> usize {
        self.out_adj.entry_count()
    }

    /// Out-adjacency of the local vertex `local`, restricted to `label`.
    pub fn out_edges_with_label_local(&self, local: usize, label: LabelId) -> AdjSegment<'_> {
        self.out_adj.edges_with_label(VertexId(local as u64), label)
    }

    /// In-adjacency of the local vertex `local`, restricted to `label`.
    pub fn in_edges_with_label_local(&self, local: usize, label: LabelId) -> AdjSegment<'_> {
        self.in_adj.edges_with_label(VertexId(local as u64), label)
    }

    /// Full out-adjacency of the local vertex `local` (grouped by label).
    pub fn out_edges_local(&self, local: usize) -> impl Iterator<Item = Adj> + '_ {
        self.out_adj.edges(VertexId(local as u64))
    }

    /// Full in-adjacency of the local vertex `local` (grouped by label).
    pub fn in_edges_local(&self, local: usize) -> impl Iterator<Item = Adj> + '_ {
        self.in_adj.edges(VertexId(local as u64))
    }

    /// The shard's out-adjacency arrays (for the graph image writer and the
    /// storage benchmarks).
    pub fn out_adjacency(&self) -> &CsrAdjacency {
        &self.out_adj
    }

    /// The shard's in-adjacency arrays.
    pub fn in_adjacency(&self) -> &CsrAdjacency {
        &self.in_adj
    }

    /// Property of the local vertex `local` (owned value).
    pub fn vertex_prop_local(&self, local: usize, key: PropKeyId) -> Option<PropValue> {
        self.props
            .get(self.labels[local], self.in_label_offset[local], key)
    }

    /// The typed cell holding the `key` property of local vertex `local`:
    /// the shard's `(label, key)` column plus the vertex's row within it.
    pub fn vertex_prop_cell_local(&self, local: usize, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.props
            .cell(self.labels[local], self.in_label_offset[local], key)
    }

    /// The shard's typed property column of `(vertex label, key)`, when any
    /// local vertex of that label carries the key. Each shard infers its own
    /// layout from its local cells, so a column that is `Mixed` globally can
    /// still be typed in a shard that only holds one kind.
    pub fn prop_column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        self.props.column(label, key)
    }

    /// The shard's property column store (for the statistics layer, which
    /// builds per-shard stats and merges them).
    pub(crate) fn prop_columns(&self) -> &PropColumns {
        &self.props
    }
}

/// Vertex-partitioned graph storage: a [`Partitioner`], one [`GraphShard`]
/// per partition, and a global catalog. Implements [`GraphView`], so it is a
/// drop-in storage backend for the execution operators.
#[derive(Debug)]
pub struct PartitionedGraph {
    /// Global catalog: schema, label columns, edge endpoints and properties,
    /// vertices-by-label index. Adjacency and vertex properties are stripped —
    /// they live in the shards.
    base: PropertyGraph,
    partitioner: Box<dyn Partitioner>,
    /// Dense local id of every vertex within its owning shard.
    local_index: Vec<u32>,
    shards: Vec<GraphShard>,
}

impl PartitionedGraph {
    /// Shard `graph` over `partitions` workers with the default
    /// [`HashPartitioner`].
    pub fn build(graph: &PropertyGraph, partitions: usize) -> PartitionedGraph {
        Self::build_with(graph, Box::new(HashPartitioner::new(partitions)))
    }

    /// Shard `graph` with a custom partitioner.
    pub fn build_with(
        graph: &PropertyGraph,
        partitioner: Box<dyn Partitioner>,
    ) -> PartitionedGraph {
        let p = partitioner.partitions();
        assert!(p >= 1, "need at least one partition");
        let n = graph.vertex_count();
        let n_elabels = graph.schema().edge_label_count();
        let n_keys = graph.prop_key_count();

        // vertex routing: shard membership in global-id order
        let mut local_index = vec![0u32; n];
        let mut shard_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); p];
        for v in graph.vertex_ids() {
            let part = partitioner.partition_of(v);
            assert!(part < p, "partitioner returned {part} for {p} partitions");
            local_index[v.index()] = shard_vertices[part].len() as u32;
            shard_vertices[part].push(v);
        }

        // edge routing: out entries to the source's shard, in entries to the
        // destination's
        let labels = graph.edge_label_column();
        let srcs = graph.edge_source_column();
        let dsts = graph.edge_target_column();
        let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut in_edges: Vec<Vec<u32>> = vec![Vec::new(); p];
        for i in 0..labels.len() {
            out_edges[partitioner.partition_of(srcs[i])].push(i as u32);
            in_edges[partitioner.partition_of(dsts[i])].push(i as u32);
        }

        let mut shards = Vec::with_capacity(p);
        for part in 0..p {
            let locals = std::mem::take(&mut shard_vertices[part]);
            let n_local = locals.len();

            let build_dir = |edge_idx: &[u32], endpoint: &[VertexId], other: &[VertexId]| {
                let seg_labels: Vec<LabelId> =
                    edge_idx.iter().map(|&i| labels[i as usize]).collect();
                CsrAdjacency::build_with_ids(
                    n_local,
                    n_elabels,
                    &seg_labels,
                    |j| VertexId(local_index[endpoint[edge_idx[j] as usize].index()] as u64),
                    |j| other[edge_idx[j] as usize],
                    |j| EdgeId(edge_idx[j] as u64),
                )
            };
            let out_adj = build_dir(&out_edges[part], srcs, dsts);
            let in_adj = build_dir(&in_edges[part], dsts, srcs);

            // shard-local label partition + property column scatter
            let mut v_labels = Vec::with_capacity(n_local);
            let mut in_label_offset = Vec::with_capacity(n_local);
            let mut label_sizes = vec![0usize; graph.schema().vertex_label_count()];
            for &v in &locals {
                let l = graph.vertex_label(v);
                v_labels.push(l);
                in_label_offset.push(label_sizes[l.index()] as u32);
                label_sizes[l.index()] += 1;
            }
            let props = PropColumns::build(
                n_keys,
                &label_sizes,
                locals.iter().enumerate().map(|(local, &v)| {
                    let props: Box<[(PropKeyId, PropValue)]> = (0..n_keys as u16)
                        .filter_map(|k| {
                            let key = PropKeyId(k);
                            graph.vertex_prop(v, key).map(|val| (key, val))
                        })
                        .collect();
                    (v_labels[local], in_label_offset[local], props)
                }),
            );

            shards.push(GraphShard {
                vertices: locals,
                labels: v_labels,
                in_label_offset,
                out_adj,
                in_adj,
                props,
            });
        }

        // the shards now own adjacency + vertex properties; the catalog
        // clone never copies the monolithic versions, so the façade cannot
        // silently fall back to them (and shard construction avoids a
        // transient full adjacency copy)
        let base = graph.catalog_clone();

        PartitionedGraph {
            base,
            partitioner,
            local_index,
            shards,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitioner.partitions()
    }

    /// The partition owning `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        self.partitioner.partition_of(v)
    }

    /// The dense local id of `v` within its owning shard.
    #[inline]
    pub fn local_index(&self, v: VertexId) -> usize {
        self.local_index[v.index()] as usize
    }

    /// The shard of partition `p`.
    pub fn shard(&self, p: usize) -> &GraphShard {
        &self.shards[p]
    }

    /// All shards, indexed by partition.
    pub fn shards(&self) -> &[GraphShard] {
        &self.shards
    }

    /// The global catalog (schema, label columns, edge endpoints/properties,
    /// property-key interning) shared by all shards.
    pub(crate) fn catalog(&self) -> &PropertyGraph {
        &self.base
    }

    /// Build id of the source graph this partitioning was built from —
    /// shared only by bit-identical clones, so backends can key shard caches
    /// on it (see [`PropertyGraph::build_id`]).
    pub fn base_build_id(&self) -> u64 {
        self.base.build_id()
    }

    #[inline]
    fn locate(&self, v: VertexId) -> (&GraphShard, usize) {
        let part = self.partitioner.partition_of(v);
        (&self.shards[part], self.local_index[v.index()] as usize)
    }

    /// Full out-adjacency of `v` (grouped by label), read from its shard.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = Adj> + '_ {
        let (shard, local) = self.locate(v);
        shard.out_edges_local(local)
    }

    /// Full in-adjacency of `v` (grouped by label), read from its shard.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = Adj> + '_ {
        let (shard, local) = self.locate(v);
        shard.in_edges_local(local)
    }

    /// Reassemble a partitioned graph from a full monolithic `graph` plus
    /// per-shard adjacency/property arrays deserialized from a graph image
    /// (one `(out_adj, in_adj, props)` triple per partition, hash-partitioned
    /// by `v mod p`). The routing index and shard vertex/label tables are
    /// rederived from the catalog — only the expensive members (CSR arrays,
    /// scattered columns) come from the image. Returns `None` when the shard
    /// count does not match `partitions`.
    pub(crate) fn assemble(
        graph: &PropertyGraph,
        partitions: usize,
        shard_parts: Vec<(CsrAdjacency, CsrAdjacency, PropColumns)>,
    ) -> Option<PartitionedGraph> {
        if partitions == 0 || shard_parts.len() != partitions {
            return None;
        }
        let partitioner = HashPartitioner::new(partitions);
        let n = graph.vertex_count();
        let mut local_index = vec![0u32; n];
        let mut shard_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); partitions];
        for v in graph.vertex_ids() {
            let part = partitioner.partition_of(v);
            local_index[v.index()] = shard_vertices[part].len() as u32;
            shard_vertices[part].push(v);
        }
        let mut shards = Vec::with_capacity(partitions);
        for (part, (out_adj, in_adj, props)) in shard_parts.into_iter().enumerate() {
            let locals = std::mem::take(&mut shard_vertices[part]);
            let mut labels = Vec::with_capacity(locals.len());
            let mut in_label_offset = Vec::with_capacity(locals.len());
            let mut label_sizes = vec![0u32; graph.schema().vertex_label_count()];
            for &v in &locals {
                let l = graph.vertex_label(v);
                labels.push(l);
                in_label_offset.push(label_sizes[l.index()]);
                label_sizes[l.index()] += 1;
            }
            if out_adj.entry_count() + in_adj.entry_count() > 2 * graph.edge_count() {
                return None;
            }
            shards.push(GraphShard {
                vertices: locals,
                labels,
                in_label_offset,
                out_adj,
                in_adj,
                props,
            });
        }
        Some(PartitionedGraph {
            base: graph.catalog_clone(),
            partitioner: Box::new(partitioner),
            local_index,
            shards,
        })
    }
}

impl GraphView for PartitionedGraph {
    fn schema(&self) -> &GraphSchema {
        self.base.schema()
    }

    fn vertex_count(&self) -> usize {
        self.base.vertex_count()
    }

    fn edge_count(&self) -> usize {
        self.base.edge_count()
    }

    fn vertex_label(&self, v: VertexId) -> LabelId {
        self.base.vertex_label(v)
    }

    fn edge_label(&self, e: EdgeId) -> LabelId {
        self.base.edge_label(e)
    }

    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.base.edge_endpoints(e)
    }

    fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.base.vertices_with_label(label)
    }

    #[inline]
    fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        let (shard, local) = self.locate(v);
        shard.out_edges_with_label_local(local, label)
    }

    #[inline]
    fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        let (shard, local) = self.locate(v);
        shard.in_edges_with_label_local(local, label)
    }

    #[inline]
    fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> AdjSegment<'_> {
        let (shard, local) = self.locate(src);
        shard.out_adj.edges_to(VertexId(local as u64), label, dst)
    }

    fn prop_key(&self, name: &str) -> Option<PropKeyId> {
        self.base.prop_key(name)
    }

    #[inline]
    fn vertex_prop_cell(&self, v: VertexId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        let (shard, local) = self.locate(v);
        shard.vertex_prop_cell_local(local, key)
    }

    #[inline]
    fn edge_prop_cell(&self, e: EdgeId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.base.edge_prop_cell(e, key)
    }

    #[inline]
    fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<PropValue> {
        let (shard, local) = self.locate(v);
        shard.vertex_prop_local(local, key)
    }

    #[inline]
    fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<PropValue> {
        self.base.edge_prop(e, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::schema::fig6_schema;

    fn sample() -> PropertyGraph {
        let mut b = GraphBuilder::new(fig6_schema());
        let p: Vec<_> = (0..5)
            .map(|i| {
                b.add_vertex_by_name("Person", vec![("id", PropValue::Int(i))])
                    .unwrap()
            })
            .collect();
        let place = b
            .add_vertex_by_name("Place", vec![("name", PropValue::str("China"))])
            .unwrap();
        b.add_edge_by_name("Knows", p[0], p[1], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[0], p[3], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[1], p[3], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[2], p[4], vec![]).unwrap();
        for v in &p {
            b.add_edge_by_name("LocatedIn", *v, place, vec![("w", PropValue::Int(1))])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn shard_slices_agree_with_the_monolithic_layout() {
        let g = sample();
        for parts in [1usize, 2, 3, 4] {
            let pg = PartitionedGraph::build(&g, parts);
            assert_eq!(pg.partitions(), parts);
            assert_eq!(pg.vertex_count(), g.vertex_count());
            assert_eq!(pg.edge_count(), g.edge_count());
            let total_local: usize = pg.shards().iter().map(|s| s.vertex_count()).sum();
            assert_eq!(total_local, g.vertex_count());
            let total_out: usize = pg.shards().iter().map(|s| s.out_edge_count()).sum();
            assert_eq!(total_out, g.edge_count());
            for v in g.vertex_ids() {
                assert_eq!(pg.partition_of(v), v.0 as usize % parts);
                assert_eq!(
                    pg.shard(pg.partition_of(v)).vertices()[pg.local_index(v)],
                    v
                );
                assert_eq!(
                    pg.out_edges(v).collect::<Vec<_>>(),
                    g.out_edges(v).collect::<Vec<_>>()
                );
                assert_eq!(
                    pg.in_edges(v).collect::<Vec<_>>(),
                    g.in_edges(v).collect::<Vec<_>>()
                );
                for l in g.schema().edge_label_ids() {
                    assert_eq!(
                        GraphView::out_edges_with_label(&pg, v, l).to_vec(),
                        g.out_edges_with_label(v, l).to_vec()
                    );
                    assert_eq!(
                        GraphView::in_edges_with_label(&pg, v, l).to_vec(),
                        g.in_edges_with_label(v, l).to_vec()
                    );
                }
                let id_key = g.prop_key("id");
                if let Some(k) = id_key {
                    assert_eq!(GraphView::vertex_prop(&pg, v, k), g.vertex_prop(v, k));
                }
            }
            let knows = g.schema().edge_label("Knows").unwrap();
            assert_eq!(
                GraphView::edges_between(&pg, VertexId(0), knows, VertexId(1)).to_vec(),
                g.edges_between(VertexId(0), knows, VertexId(1)).to_vec()
            );
            assert!(GraphView::has_edge(&pg, VertexId(0), knows, VertexId(1)));
            assert_eq!(
                GraphView::first_edge_between(&pg, VertexId(0), knows, VertexId(3)),
                g.first_edge_between(VertexId(0), knows, VertexId(3))
            );
            // edge props stay reachable through the catalog
            let w = g.prop_key("w").unwrap();
            let e = g
                .first_edge_between(
                    VertexId(0),
                    g.schema().edge_label("LocatedIn").unwrap(),
                    VertexId(5),
                )
                .unwrap();
            assert_eq!(GraphView::edge_prop(&pg, e, w), Some(PropValue::Int(1)));
        }
    }
}
