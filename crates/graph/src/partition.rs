//! Partition-aware graph storage: per-partition CSR shards behind a façade.
//!
//! The paper's distributed backend (GraphScope/Gaia) hash-partitions vertices
//! over workers; each worker owns the adjacency and properties of its local
//! vertices and every record that crosses workers is communication. Before
//! this module the partitioned backend merely *simulated* that ownership on a
//! monolithic CSR. [`PartitionedGraph`] makes it real:
//!
//! ```text
//! PartitionedGraph
//! ├── pmap: PartitionMap                vertex → partition owner table
//! │     (+ hub bitset; placement chosen by a Partitioner at build time:
//! │      HashPartitioner v mod p, or the Fennel-style GreedyPartitioner)
//! ├── local_index: global vertex id → dense local id within its shard
//! ├── shards[p]: GraphShard             one per partition
//! │   ├── out_adj / in_adj: CsrAdjacency over LOCAL vertex ids
//! │   │     (compressed u32 neighbours + delta-encoded edge ids + offsets +
//! │   │      per-(vertex,label) segment index — storing GLOBAL
//! │   │      neighbour/edge ids)
//! │   └── props: per-(label, key) columns of the shard's local vertices
//! ├── replicas: Option<HubReplicas>     read-only out-adjacency overlay of
//! │     the top-k highest-degree vertices, logically copied into every
//! │     shard so expands sourced at a hub never cross partitions
//! └── base: global catalog              (schema, label columns, edge
//!       endpoints, edge properties, vertices-by-label index) with the
//!       monolithic adjacency and vertex-property columns stripped
//! ```
//!
//! Placement is **pluggable**: [`PartitionedGraph::build_with`] accepts any
//! [`Partitioner`]. Whatever the partitioner, the build materialises one
//! shared **owner table** (`Vec<u32>`, one entry per vertex) inside a
//! [`PartitionMap`]; every consumer — shard routing here, exchange routing
//! and communication accounting in the execution engines — looks ownership
//! up in that table and never assumes modulo arithmetic.
//!
//! The façade implements [`GraphView`], so operator code written against the
//! trait runs unchanged: `out_edges_with_label(v, l)` resolves the owning
//! shard (`partition_of(v)`), maps `v` to its local id (one array lookup) and
//! slices the shard's CSR — still O(1) and allocation-free, still sorted by
//! `(neighbor, edge)` in *global* ids, so every access-contract consumer
//! (binary-searching `ExpandInto`, gallop-merging `ExpandIntersect`) works on
//! shard segments exactly as on the monolithic layout.
//!
//! Edge ownership follows the usual out-edge-cut convention: an edge's
//! out-adjacency entry lives in the source vertex's shard and its in-adjacency
//! entry in the destination's shard, so expansion from a vertex only ever
//! touches the shard owning that vertex. Edge property columns remain in the
//! global catalog (edges are identified globally; only *vertex* state is
//! partitioned, as in the paper's vertex-cut-free deployment).

use crate::column::{ColumnRef, TypedColumn};
use crate::graph::{Adj, AdjSegment, CsrAdjacency, PropColumns, PropertyGraph};
use crate::ids::{EdgeId, LabelId, PropKeyId, VertexId};
use crate::schema::GraphSchema;
use crate::value::PropValue;
use crate::view::GraphView;

/// Assigns every vertex to one of `partitions()` workers.
pub trait Partitioner: Send + Sync + std::fmt::Debug {
    /// Number of partitions.
    fn partitions(&self) -> usize;

    /// The partition owning `v`. Must be `< partitions()` for every vertex.
    fn partition_of(&self, v: VertexId) -> usize;
}

/// The default partitioner: `v mod p`, matching the hash placement the
/// engines' communication model has always assumed.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    /// A modulo partitioner over `partitions` workers (at least 1).
    pub fn new(partitions: usize) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        HashPartitioner { partitions }
    }
}

impl Partitioner for HashPartitioner {
    fn partitions(&self) -> usize {
        self.partitions
    }

    #[inline]
    fn partition_of(&self, v: VertexId) -> usize {
        (v.0 as usize) % self.partitions
    }
}

/// Fennel-style streaming partitioner: vertices are placed one at a time (in
/// global-id order, the order they arrive from ingest) onto the partition
/// holding the **most already-placed neighbours**, subject to a hard balance
/// cap of `ceil(n/p)` plus ~5% slack. Ties break toward the least-loaded,
/// then lowest-numbered partition, so placement is deterministic. On skewed
/// graphs this keeps most edges internal to a shard, which the exchange
/// layer observes directly as fewer shipped rows (`ExecStats::comm_*`).
#[derive(Debug, Clone)]
pub struct GreedyPartitioner {
    partitions: usize,
    owners: std::sync::Arc<[u32]>,
}

impl GreedyPartitioner {
    /// Stream `graph`'s vertices into `partitions` shards greedily.
    pub fn build(graph: &PropertyGraph, partitions: usize) -> GreedyPartitioner {
        assert!(partitions >= 1, "need at least one partition");
        let n = graph.vertex_count();
        // balance cap: perfect share plus ~5% slack (and at least one spare
        // slot so tiny graphs are never wedged)
        let cap = n.div_ceil(partitions.max(1)) + n / (partitions.max(1) * 20) + 1;
        let mut owners = vec![u32::MAX; n];
        let mut load = vec![0usize; partitions];
        let mut score = vec![0usize; partitions];
        let mut touched: Vec<usize> = Vec::with_capacity(partitions);
        for v in graph.vertex_ids() {
            for adj in graph.out_edges(v).chain(graph.in_edges(v)) {
                let u = adj.neighbor.index();
                if u < n && owners[u] != u32::MAX {
                    let p = owners[u] as usize;
                    if score[p] == 0 {
                        touched.push(p);
                    }
                    score[p] += 1;
                }
            }
            let mut best = usize::MAX;
            for p in 0..partitions {
                if load[p] >= cap {
                    continue;
                }
                if best == usize::MAX
                    || score[p] > score[best]
                    || (score[p] == score[best] && load[p] < load[best])
                {
                    best = p;
                }
            }
            // the slack in `cap` guarantees some partition always has room
            debug_assert!(best != usize::MAX, "balance cap left no open partition");
            let best = if best == usize::MAX { 0 } else { best };
            owners[v.index()] = best as u32;
            load[best] += 1;
            for p in touched.drain(..) {
                score[p] = 0;
            }
        }
        GreedyPartitioner {
            partitions,
            owners: owners.into(),
        }
    }
}

impl Partitioner for GreedyPartitioner {
    fn partitions(&self) -> usize {
        self.partitions
    }

    #[inline]
    fn partition_of(&self, v: VertexId) -> usize {
        self.owners[v.index()] as usize
    }
}

/// Which [`Partitioner`] implementation to build a [`PartitionedGraph`] with
/// — the parsed form of the `GOPT_PARTITIONER` environment variable and the
/// `PartitionedBackend::with_partitioner` builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionerSpec {
    /// Modulo placement (`v mod p`) — the paper's hash partitioning.
    #[default]
    Hash,
    /// Fennel-style streaming placement ([`GreedyPartitioner`]).
    Greedy,
}

impl PartitionerSpec {
    /// Parse a spec name. Accepts `hash` and `greedy` (case-insensitive);
    /// anything else is an error naming the valid values.
    pub fn parse(s: &str) -> Result<PartitionerSpec, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hash" => Ok(PartitionerSpec::Hash),
            "greedy" => Ok(PartitionerSpec::Greedy),
            other => Err(format!(
                "unknown partitioner {other:?} (expected \"hash\" or \"greedy\")"
            )),
        }
    }

    /// Read `GOPT_PARTITIONER`. Unset or empty means "no override"
    /// (`Ok(None)`); an invalid value is a typed error for the caller to
    /// surface, never a silent fallback.
    pub fn from_env() -> Result<Option<PartitionerSpec>, String> {
        match std::env::var("GOPT_PARTITIONER") {
            Ok(v) if v.is_empty() => Ok(None),
            Ok(v) => Self::parse(&v)
                .map(Some)
                .map_err(|e| format!("GOPT_PARTITIONER: {e}")),
            Err(_) => Ok(None),
        }
    }

    /// Construct the partitioner this spec names for `graph`.
    pub fn build(self, graph: &PropertyGraph, partitions: usize) -> Box<dyn Partitioner> {
        match self {
            PartitionerSpec::Hash => Box::new(HashPartitioner::new(partitions)),
            PartitionerSpec::Greedy => Box::new(GreedyPartitioner::build(graph, partitions)),
        }
    }

    /// Stable lowercase name (inverse of [`PartitionerSpec::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            PartitionerSpec::Hash => "hash",
            PartitionerSpec::Greedy => "greedy",
        }
    }
}

/// The shared owner-lookup table: vertex → partition, plus the hub bitset.
///
/// This is the **only** placement oracle the execution layer consults — the
/// exchange routes rows and charges communication through `partition_of`
/// and `is_hub`, so any [`Partitioner`] (and any replica set) plugs in
/// without the engines knowing. A map without an owner table falls back to
/// modulo arithmetic; the scalar/batched engines use that form to *simulate*
/// a `p`-way deployment on a monolithic graph.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    partitions: usize,
    owners: Option<std::sync::Arc<[u32]>>,
    /// Hub bitset over global vertex ids (empty when nothing is replicated).
    hub_bits: std::sync::Arc<[u64]>,
}

impl PartitionMap {
    /// A table-free modulo map (`v mod p`), for simulated deployments.
    pub fn modulo(partitions: usize) -> PartitionMap {
        PartitionMap {
            partitions: partitions.max(1),
            owners: None,
            hub_bits: std::sync::Arc::from([]),
        }
    }

    fn from_owners(partitions: usize, owners: std::sync::Arc<[u32]>) -> PartitionMap {
        PartitionMap {
            partitions: partitions.max(1),
            owners: Some(owners),
            hub_bits: std::sync::Arc::from([]),
        }
    }

    fn with_hubs(mut self, hubs: &[VertexId], n_vertices: usize) -> PartitionMap {
        let mut bits = vec![0u64; n_vertices.div_ceil(64)];
        for h in hubs {
            bits[h.index() >> 6] |= 1u64 << (h.index() & 63);
        }
        self.hub_bits = bits.into();
        self
    }

    /// Number of partitions.
    #[inline]
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The partition owning `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        match &self.owners {
            Some(o) => o[v.index()] as usize,
            None => (v.0 as usize) % self.partitions,
        }
    }

    /// Whether `v`'s out-adjacency is replicated into every shard.
    #[inline]
    pub fn is_hub(&self, v: VertexId) -> bool {
        let i = v.index();
        self.hub_bits
            .get(i >> 6)
            .is_some_and(|w| w >> (i & 63) & 1 == 1)
    }

    /// The explicit owner table, when placement is not modulo.
    pub fn owner_table(&self) -> Option<&[u32]> {
        self.owners.as_deref()
    }
}

/// Read-only replica of the out-adjacency of the top-k highest-degree
/// vertices, logically present in **every** shard. A single overlay CSR
/// (hub-local source ids, global neighbour/edge ids, identical segment
/// ordering to the owning shard's) backs all copies in this in-process
/// build; `replicated_bytes` accounts the `p-1` extra copies a multi-process
/// deployment would materialise.
#[derive(Debug, Clone)]
pub struct HubReplicas {
    /// Replicated vertices, ascending by id (binary-searched on the read
    /// path).
    hubs: Vec<VertexId>,
    /// Out-adjacency over hub-local source ids.
    out_adj: CsrAdjacency,
    /// Bytes one replica copy occupies.
    bytes_per_copy: u64,
}

impl HubReplicas {
    /// The replicated vertex ids, ascending.
    pub fn hubs(&self) -> &[VertexId] {
        &self.hubs
    }

    /// Hub-local id of `v`, if replicated.
    #[inline]
    fn local_of(&self, v: VertexId) -> Option<usize> {
        self.hubs.binary_search(&v).ok()
    }

    /// Heap bytes of one replica copy of the overlay.
    pub fn bytes_per_copy(&self) -> u64 {
        self.bytes_per_copy
    }
}

/// Pick the `k` highest-degree vertices of `graph` (out + in degree, ties
/// toward lower ids), skipping isolated vertices; returned ascending by id.
fn top_k_hubs(graph: &PropertyGraph, k: usize) -> Vec<VertexId> {
    if k == 0 {
        return Vec::new();
    }
    let mut by_degree: Vec<(usize, VertexId)> = graph
        .vertex_ids()
        .map(|v| (graph.out_degree(v) + graph.in_degree(v), v))
        .filter(|&(d, _)| d > 0)
        .collect();
    by_degree.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    by_degree.truncate(k);
    let mut hubs: Vec<VertexId> = by_degree.into_iter().map(|(_, v)| v).collect();
    hubs.sort_unstable();
    hubs
}

/// Build the shared overlay CSR over `hubs` (ascending) from the global edge
/// columns — the same per-edge inputs the owning shards index, sorted the
/// same way, so overlay reads are bit-identical to shard reads.
fn build_hub_overlay(graph: &PropertyGraph, hubs: Vec<VertexId>) -> Option<HubReplicas> {
    if hubs.is_empty() {
        return None;
    }
    let labels = graph.edge_label_column();
    let srcs = graph.edge_source_column();
    let edge_idx: Vec<u32> = (0..labels.len() as u32)
        .filter(|&i| hubs.binary_search(&srcs[i as usize]).is_ok())
        .collect();
    let seg_labels: Vec<LabelId> = edge_idx.iter().map(|&i| labels[i as usize]).collect();
    let dsts = graph.edge_target_column();
    let out_adj = CsrAdjacency::build_with_ids(
        hubs.len(),
        graph.schema().edge_label_count(),
        &seg_labels,
        |j| {
            let src = srcs[edge_idx[j] as usize];
            VertexId(hubs.binary_search(&src).unwrap() as u64)
        },
        |j| dsts[edge_idx[j] as usize],
        |j| EdgeId(edge_idx[j] as u64),
    );
    let bytes_per_copy = (out_adj.heap_bytes() + hubs.len() * size_of::<VertexId>()) as u64;
    Some(HubReplicas {
        hubs,
        out_adj,
        bytes_per_copy,
    })
}

/// One partition's share of the graph: an independent CSR over the partition's
/// local vertices plus their property columns.
#[derive(Debug, Clone)]
pub struct GraphShard {
    /// Global ids of the shard's vertices, indexed by local id.
    vertices: Vec<VertexId>,
    /// Label of each local vertex.
    labels: Vec<LabelId>,
    /// Position of each local vertex among the shard's vertices of the same
    /// label (the shard-local property-column row).
    in_label_offset: Vec<u32>,
    /// Out-adjacency of the local vertices (local vertex ids, global
    /// neighbour/edge ids).
    out_adj: CsrAdjacency,
    /// In-adjacency of the local vertices.
    in_adj: CsrAdjacency,
    /// Property columns of the local vertices.
    props: PropColumns,
}

impl GraphShard {
    /// Global ids of the shard's vertices in local order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of local vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of out-adjacency entries stored in this shard (= number of
    /// edges whose source is local).
    pub fn out_edge_count(&self) -> usize {
        self.out_adj.entry_count()
    }

    /// Out-adjacency of the local vertex `local`, restricted to `label`.
    pub fn out_edges_with_label_local(&self, local: usize, label: LabelId) -> AdjSegment<'_> {
        self.out_adj.edges_with_label(VertexId(local as u64), label)
    }

    /// In-adjacency of the local vertex `local`, restricted to `label`.
    pub fn in_edges_with_label_local(&self, local: usize, label: LabelId) -> AdjSegment<'_> {
        self.in_adj.edges_with_label(VertexId(local as u64), label)
    }

    /// Full out-adjacency of the local vertex `local` (grouped by label).
    pub fn out_edges_local(&self, local: usize) -> impl Iterator<Item = Adj> + '_ {
        self.out_adj.edges(VertexId(local as u64))
    }

    /// Full in-adjacency of the local vertex `local` (grouped by label).
    pub fn in_edges_local(&self, local: usize) -> impl Iterator<Item = Adj> + '_ {
        self.in_adj.edges(VertexId(local as u64))
    }

    /// The shard's out-adjacency arrays (for the graph image writer and the
    /// storage benchmarks).
    pub fn out_adjacency(&self) -> &CsrAdjacency {
        &self.out_adj
    }

    /// The shard's in-adjacency arrays.
    pub fn in_adjacency(&self) -> &CsrAdjacency {
        &self.in_adj
    }

    /// Property of the local vertex `local` (owned value).
    pub fn vertex_prop_local(&self, local: usize, key: PropKeyId) -> Option<PropValue> {
        self.props
            .get(self.labels[local], self.in_label_offset[local], key)
    }

    /// The typed cell holding the `key` property of local vertex `local`:
    /// the shard's `(label, key)` column plus the vertex's row within it.
    pub fn vertex_prop_cell_local(&self, local: usize, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.props
            .cell(self.labels[local], self.in_label_offset[local], key)
    }

    /// The shard's typed property column of `(vertex label, key)`, when any
    /// local vertex of that label carries the key. Each shard infers its own
    /// layout from its local cells, so a column that is `Mixed` globally can
    /// still be typed in a shard that only holds one kind.
    pub fn prop_column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        self.props.column(label, key)
    }

    /// The shard's property column store (for the statistics layer, which
    /// builds per-shard stats and merges them).
    pub(crate) fn prop_columns(&self) -> &PropColumns {
        &self.props
    }
}

/// Vertex-partitioned graph storage: a [`Partitioner`], one [`GraphShard`]
/// per partition, and a global catalog. Implements [`GraphView`], so it is a
/// drop-in storage backend for the execution operators.
#[derive(Debug)]
pub struct PartitionedGraph {
    /// Global catalog: schema, label columns, edge endpoints and properties,
    /// vertices-by-label index. Adjacency and vertex properties are stripped —
    /// they live in the shards.
    base: PropertyGraph,
    /// The shared owner table (+ hub bitset) every routing decision and every
    /// communication charge goes through.
    pmap: PartitionMap,
    /// Whether the owner table happens to equal `v mod p` — lets the graph
    /// image skip persisting the table for hash placements.
    modulo_placed: bool,
    /// Dense local id of every vertex within its owning shard.
    local_index: Vec<u32>,
    shards: Vec<GraphShard>,
    /// Out-adjacency overlay of replicated hub vertices, if any.
    replicas: Option<HubReplicas>,
}

impl PartitionedGraph {
    /// Shard `graph` over `partitions` workers with the default
    /// [`HashPartitioner`].
    pub fn build(graph: &PropertyGraph, partitions: usize) -> PartitionedGraph {
        Self::build_with(graph, Box::new(HashPartitioner::new(partitions)))
    }

    /// Shard `graph` with a custom partitioner (no hub replication).
    pub fn build_with(
        graph: &PropertyGraph,
        partitioner: Box<dyn Partitioner>,
    ) -> PartitionedGraph {
        Self::build_with_opts(graph, partitioner, 0)
    }

    /// Shard `graph` with a custom partitioner and replicate the
    /// out-adjacency of the `replicate_hubs` highest-degree vertices into
    /// every shard (0 disables replication).
    pub fn build_with_opts(
        graph: &PropertyGraph,
        partitioner: Box<dyn Partitioner>,
        replicate_hubs: usize,
    ) -> PartitionedGraph {
        let p = partitioner.partitions();
        assert!(p >= 1, "need at least one partition");
        let n = graph.vertex_count();
        let n_elabels = graph.schema().edge_label_count();
        let n_keys = graph.prop_key_count();

        // vertex routing: shard membership in global-id order, materialised
        // into the shared owner table
        let mut owners = vec![0u32; n];
        let mut modulo_placed = true;
        let mut local_index = vec![0u32; n];
        let mut shard_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); p];
        for v in graph.vertex_ids() {
            let part = partitioner.partition_of(v);
            assert!(part < p, "partitioner returned {part} for {p} partitions");
            owners[v.index()] = part as u32;
            modulo_placed &= part == (v.0 as usize) % p;
            local_index[v.index()] = shard_vertices[part].len() as u32;
            shard_vertices[part].push(v);
        }

        // edge routing: out entries to the source's shard, in entries to the
        // destination's
        let labels = graph.edge_label_column();
        let srcs = graph.edge_source_column();
        let dsts = graph.edge_target_column();
        let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut in_edges: Vec<Vec<u32>> = vec![Vec::new(); p];
        for i in 0..labels.len() {
            out_edges[owners[srcs[i].index()] as usize].push(i as u32);
            in_edges[owners[dsts[i].index()] as usize].push(i as u32);
        }

        let mut shards = Vec::with_capacity(p);
        for part in 0..p {
            let locals = std::mem::take(&mut shard_vertices[part]);
            let n_local = locals.len();

            let build_dir = |edge_idx: &[u32], endpoint: &[VertexId], other: &[VertexId]| {
                let seg_labels: Vec<LabelId> =
                    edge_idx.iter().map(|&i| labels[i as usize]).collect();
                CsrAdjacency::build_with_ids(
                    n_local,
                    n_elabels,
                    &seg_labels,
                    |j| VertexId(local_index[endpoint[edge_idx[j] as usize].index()] as u64),
                    |j| other[edge_idx[j] as usize],
                    |j| EdgeId(edge_idx[j] as u64),
                )
            };
            let out_adj = build_dir(&out_edges[part], srcs, dsts);
            let in_adj = build_dir(&in_edges[part], dsts, srcs);

            // shard-local label partition + property column scatter
            let mut v_labels = Vec::with_capacity(n_local);
            let mut in_label_offset = Vec::with_capacity(n_local);
            let mut label_sizes = vec![0usize; graph.schema().vertex_label_count()];
            for &v in &locals {
                let l = graph.vertex_label(v);
                v_labels.push(l);
                in_label_offset.push(label_sizes[l.index()] as u32);
                label_sizes[l.index()] += 1;
            }
            let props = PropColumns::build(
                n_keys,
                &label_sizes,
                locals.iter().enumerate().map(|(local, &v)| {
                    let props: Box<[(PropKeyId, PropValue)]> = (0..n_keys as u16)
                        .filter_map(|k| {
                            let key = PropKeyId(k);
                            graph.vertex_prop(v, key).map(|val| (key, val))
                        })
                        .collect();
                    (v_labels[local], in_label_offset[local], props)
                }),
            );

            shards.push(GraphShard {
                vertices: locals,
                labels: v_labels,
                in_label_offset,
                out_adj,
                in_adj,
                props,
            });
        }

        // the shards now own adjacency + vertex properties; the catalog
        // clone never copies the monolithic versions, so the façade cannot
        // silently fall back to them (and shard construction avoids a
        // transient full adjacency copy)
        let base = graph.catalog_clone();

        let replicas = build_hub_overlay(graph, top_k_hubs(graph, replicate_hubs));
        let mut pmap = PartitionMap::from_owners(p, owners.into());
        if let Some(r) = &replicas {
            pmap = pmap.with_hubs(&r.hubs, n);
        }

        PartitionedGraph {
            base,
            pmap,
            modulo_placed,
            local_index,
            shards,
            replicas,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.pmap.partitions()
    }

    /// The partition owning `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        self.pmap.partition_of(v)
    }

    /// The shared owner table + hub bitset. The execution engines route and
    /// account all communication through this map.
    #[inline]
    pub fn partition_map(&self) -> &PartitionMap {
        &self.pmap
    }

    /// Whether the owner table equals `v mod p` (hash placement).
    pub fn modulo_placed(&self) -> bool {
        self.modulo_placed
    }

    /// The hub replica overlay, when hub replication is enabled.
    pub fn replicas(&self) -> Option<&HubReplicas> {
        self.replicas.as_ref()
    }

    /// Bytes the `p-1` extra replica copies of the hub overlay would occupy
    /// in a deployment with one materialised copy per shard (0 with no
    /// replication or a single partition).
    pub fn replicated_bytes(&self) -> u64 {
        match &self.replicas {
            Some(r) => r.bytes_per_copy() * (self.partitions().saturating_sub(1)) as u64,
            None => 0,
        }
    }

    /// The dense local id of `v` within its owning shard.
    #[inline]
    pub fn local_index(&self, v: VertexId) -> usize {
        self.local_index[v.index()] as usize
    }

    /// The shard of partition `p`.
    pub fn shard(&self, p: usize) -> &GraphShard {
        &self.shards[p]
    }

    /// All shards, indexed by partition.
    pub fn shards(&self) -> &[GraphShard] {
        &self.shards
    }

    /// The global catalog (schema, label columns, edge endpoints/properties,
    /// property-key interning) shared by all shards.
    pub(crate) fn catalog(&self) -> &PropertyGraph {
        &self.base
    }

    /// Build id of the source graph this partitioning was built from —
    /// shared only by bit-identical clones, so backends can key shard caches
    /// on it (see [`PropertyGraph::build_id`]).
    pub fn base_build_id(&self) -> u64 {
        self.base.build_id()
    }

    #[inline]
    fn locate(&self, v: VertexId) -> (&GraphShard, usize) {
        let part = self.pmap.partition_of(v);
        (&self.shards[part], self.local_index[v.index()] as usize)
    }

    /// The replica overlay's local id for `v`, when `v` is a replicated hub.
    #[inline]
    fn replica_local(&self, v: VertexId) -> Option<(&HubReplicas, usize)> {
        if !self.pmap.is_hub(v) {
            return None;
        }
        let r = self.replicas.as_ref()?;
        r.local_of(v).map(|l| (r, l))
    }

    /// Full out-adjacency of `v` (grouped by label), read from its shard —
    /// or from the replica overlay when `v` is a hub.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = Adj> + '_ {
        let (adj, local) = match self.replica_local(v) {
            Some((r, local)) => (&r.out_adj, local),
            None => {
                let (shard, local) = self.locate(v);
                (shard.out_adjacency(), local)
            }
        };
        adj.edges(VertexId(local as u64))
    }

    /// Full in-adjacency of `v` (grouped by label), read from its shard.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = Adj> + '_ {
        let (shard, local) = self.locate(v);
        shard.in_edges_local(local)
    }

    /// Reassemble a partitioned graph from a full monolithic `graph` plus
    /// per-shard adjacency/property arrays deserialized from a graph image
    /// (one `(out_adj, in_adj, props)` triple per partition). Placement comes
    /// from `owners` — an explicit owner table, or `None` for hash placement
    /// (`v mod p`); `hubs` names the replicated vertices, whose overlay is
    /// rebuilt from the catalog's edge columns. The routing index and shard
    /// vertex/label tables are rederived from the catalog — only the
    /// expensive members (CSR arrays, scattered columns) come from the
    /// image. Returns `None` when the shard count, owner table or hub list
    /// is inconsistent with `graph`.
    pub(crate) fn assemble(
        graph: &PropertyGraph,
        partitions: usize,
        owners: Option<Vec<u32>>,
        hubs: Vec<VertexId>,
        shard_parts: Vec<(CsrAdjacency, CsrAdjacency, PropColumns)>,
    ) -> Option<PartitionedGraph> {
        if partitions == 0 || shard_parts.len() != partitions {
            return None;
        }
        let n = graph.vertex_count();
        if let Some(o) = &owners {
            if o.len() != n || o.iter().any(|&p| p as usize >= partitions) {
                return None;
            }
        }
        if hubs.iter().any(|h| h.index() >= n) || hubs.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let modulo_placed = match &owners {
            None => true,
            Some(o) => graph
                .vertex_ids()
                .all(|v| o[v.index()] as usize == (v.0 as usize) % partitions),
        };
        let owner_of = |v: VertexId| match &owners {
            Some(o) => o[v.index()] as usize,
            None => (v.0 as usize) % partitions,
        };
        let mut local_index = vec![0u32; n];
        let mut shard_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); partitions];
        for v in graph.vertex_ids() {
            let part = owner_of(v);
            local_index[v.index()] = shard_vertices[part].len() as u32;
            shard_vertices[part].push(v);
        }
        let mut shards = Vec::with_capacity(partitions);
        for (part, (out_adj, in_adj, props)) in shard_parts.into_iter().enumerate() {
            let locals = std::mem::take(&mut shard_vertices[part]);
            let mut labels = Vec::with_capacity(locals.len());
            let mut in_label_offset = Vec::with_capacity(locals.len());
            let mut label_sizes = vec![0u32; graph.schema().vertex_label_count()];
            for &v in &locals {
                let l = graph.vertex_label(v);
                labels.push(l);
                in_label_offset.push(label_sizes[l.index()]);
                label_sizes[l.index()] += 1;
            }
            if out_adj.entry_count() + in_adj.entry_count() > 2 * graph.edge_count() {
                return None;
            }
            shards.push(GraphShard {
                vertices: locals,
                labels,
                in_label_offset,
                out_adj,
                in_adj,
                props,
            });
        }
        let owner_table: std::sync::Arc<[u32]> = match owners {
            Some(o) => o.into(),
            None => (0..n as u32).map(|i| i % partitions as u32).collect(),
        };
        let replicas = build_hub_overlay(graph, hubs);
        let mut pmap = PartitionMap::from_owners(partitions, owner_table);
        if let Some(r) = &replicas {
            pmap = pmap.with_hubs(&r.hubs, n);
        }
        Some(PartitionedGraph {
            base: graph.catalog_clone(),
            pmap,
            modulo_placed,
            local_index,
            shards,
            replicas,
        })
    }
}

impl GraphView for PartitionedGraph {
    fn schema(&self) -> &GraphSchema {
        self.base.schema()
    }

    fn vertex_count(&self) -> usize {
        self.base.vertex_count()
    }

    fn edge_count(&self) -> usize {
        self.base.edge_count()
    }

    fn vertex_label(&self, v: VertexId) -> LabelId {
        self.base.vertex_label(v)
    }

    fn edge_label(&self, e: EdgeId) -> LabelId {
        self.base.edge_label(e)
    }

    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.base.edge_endpoints(e)
    }

    fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.base.vertices_with_label(label)
    }

    #[inline]
    fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        // hubs are served from the replica overlay — identical bytes to the
        // owning shard's segment, but available in every partition
        if let Some((r, local)) = self.replica_local(v) {
            return r.out_adj.edges_with_label(VertexId(local as u64), label);
        }
        let (shard, local) = self.locate(v);
        shard.out_edges_with_label_local(local, label)
    }

    #[inline]
    fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        let (shard, local) = self.locate(v);
        shard.in_edges_with_label_local(local, label)
    }

    #[inline]
    fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> AdjSegment<'_> {
        if let Some((r, local)) = self.replica_local(src) {
            return r.out_adj.edges_to(VertexId(local as u64), label, dst);
        }
        let (shard, local) = self.locate(src);
        shard.out_adj.edges_to(VertexId(local as u64), label, dst)
    }

    fn prop_key(&self, name: &str) -> Option<PropKeyId> {
        self.base.prop_key(name)
    }

    #[inline]
    fn vertex_prop_cell(&self, v: VertexId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        let (shard, local) = self.locate(v);
        shard.vertex_prop_cell_local(local, key)
    }

    #[inline]
    fn edge_prop_cell(&self, e: EdgeId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.base.edge_prop_cell(e, key)
    }

    #[inline]
    fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<PropValue> {
        let (shard, local) = self.locate(v);
        shard.vertex_prop_local(local, key)
    }

    #[inline]
    fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<PropValue> {
        self.base.edge_prop(e, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::schema::fig6_schema;

    fn sample() -> PropertyGraph {
        let mut b = GraphBuilder::new(fig6_schema());
        let p: Vec<_> = (0..5)
            .map(|i| {
                b.add_vertex_by_name("Person", vec![("id", PropValue::Int(i))])
                    .unwrap()
            })
            .collect();
        let place = b
            .add_vertex_by_name("Place", vec![("name", PropValue::str("China"))])
            .unwrap();
        b.add_edge_by_name("Knows", p[0], p[1], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[0], p[3], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[1], p[3], vec![]).unwrap();
        b.add_edge_by_name("Knows", p[2], p[4], vec![]).unwrap();
        for v in &p {
            b.add_edge_by_name("LocatedIn", *v, place, vec![("w", PropValue::Int(1))])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn shard_slices_agree_with_the_monolithic_layout() {
        let g = sample();
        for parts in [1usize, 2, 3, 4] {
            let pg = PartitionedGraph::build(&g, parts);
            assert_eq!(pg.partitions(), parts);
            assert_eq!(pg.vertex_count(), g.vertex_count());
            assert_eq!(pg.edge_count(), g.edge_count());
            let total_local: usize = pg.shards().iter().map(|s| s.vertex_count()).sum();
            assert_eq!(total_local, g.vertex_count());
            let total_out: usize = pg.shards().iter().map(|s| s.out_edge_count()).sum();
            assert_eq!(total_out, g.edge_count());
            for v in g.vertex_ids() {
                assert_eq!(pg.partition_of(v), v.0 as usize % parts);
                assert_eq!(
                    pg.shard(pg.partition_of(v)).vertices()[pg.local_index(v)],
                    v
                );
                assert_eq!(
                    pg.out_edges(v).collect::<Vec<_>>(),
                    g.out_edges(v).collect::<Vec<_>>()
                );
                assert_eq!(
                    pg.in_edges(v).collect::<Vec<_>>(),
                    g.in_edges(v).collect::<Vec<_>>()
                );
                for l in g.schema().edge_label_ids() {
                    assert_eq!(
                        GraphView::out_edges_with_label(&pg, v, l).to_vec(),
                        g.out_edges_with_label(v, l).to_vec()
                    );
                    assert_eq!(
                        GraphView::in_edges_with_label(&pg, v, l).to_vec(),
                        g.in_edges_with_label(v, l).to_vec()
                    );
                }
                let id_key = g.prop_key("id");
                if let Some(k) = id_key {
                    assert_eq!(GraphView::vertex_prop(&pg, v, k), g.vertex_prop(v, k));
                }
            }
            let knows = g.schema().edge_label("Knows").unwrap();
            assert_eq!(
                GraphView::edges_between(&pg, VertexId(0), knows, VertexId(1)).to_vec(),
                g.edges_between(VertexId(0), knows, VertexId(1)).to_vec()
            );
            assert!(GraphView::has_edge(&pg, VertexId(0), knows, VertexId(1)));
            assert_eq!(
                GraphView::first_edge_between(&pg, VertexId(0), knows, VertexId(3)),
                g.first_edge_between(VertexId(0), knows, VertexId(3))
            );
            // edge props stay reachable through the catalog
            let w = g.prop_key("w").unwrap();
            let e = g
                .first_edge_between(
                    VertexId(0),
                    g.schema().edge_label("LocatedIn").unwrap(),
                    VertexId(5),
                )
                .unwrap();
            assert_eq!(GraphView::edge_prop(&pg, e, w), Some(PropValue::Int(1)));
        }
    }

    #[test]
    fn greedy_placement_is_balanced_and_reads_agree_with_the_monolith() {
        let g = crate::generator::random_graph(
            &fig6_schema(),
            &crate::generator::RandomGraphConfig {
                vertices_per_label: 40,
                edges_per_endpoint: 120,
                seed: 11,
            },
        );
        for parts in [1usize, 2, 4] {
            let gp = GreedyPartitioner::build(&g, parts);
            let pg = PartitionedGraph::build_with(&g, Box::new(gp.clone()));
            assert!(!pg
                .partition_map()
                .owner_table()
                .unwrap()
                .iter()
                .any(|&p| p as usize >= parts));
            // balance cap: no shard exceeds the perfect share plus slack
            let n = g.vertex_count();
            let cap = n.div_ceil(parts) + n / (parts * 20) + 1;
            for s in pg.shards() {
                assert!(s.vertex_count() <= cap, "shard over the balance cap");
            }
            // placement is deterministic
            let again = GreedyPartitioner::build(&g, parts);
            for v in g.vertex_ids() {
                assert_eq!(gp.partition_of(v), again.partition_of(v));
            }
            // reads through the façade agree with the monolith regardless of
            // placement
            for v in g.vertex_ids() {
                assert_eq!(pg.partition_of(v), gp.partition_of(v));
                assert_eq!(
                    pg.out_edges(v).collect::<Vec<_>>(),
                    g.out_edges(v).collect::<Vec<_>>()
                );
                for l in g.schema().edge_label_ids() {
                    assert_eq!(
                        GraphView::out_edges_with_label(&pg, v, l).to_vec(),
                        g.out_edges_with_label(v, l).to_vec()
                    );
                    assert_eq!(
                        GraphView::in_edges_with_label(&pg, v, l).to_vec(),
                        g.in_edges_with_label(v, l).to_vec()
                    );
                }
            }
        }
        // a greedy placement keeps at least as many edges shard-internal as
        // hash placement on this clustered-ish random graph (weak check: it
        // must place *some* neighbours together)
        let gp = GreedyPartitioner::build(&g, 4);
        let internal = |part_of: &dyn Fn(VertexId) -> usize| {
            let srcs = g.edge_source_column();
            let dsts = g.edge_target_column();
            (0..srcs.len())
                .filter(|&i| part_of(srcs[i]) == part_of(dsts[i]))
                .count()
        };
        let greedy_internal = internal(&|v| gp.partition_of(v));
        let hash = HashPartitioner::new(4);
        let hash_internal = internal(&|v| hash.partition_of(v));
        assert!(
            greedy_internal >= hash_internal,
            "greedy kept {greedy_internal} edges internal, hash {hash_internal}"
        );
    }

    #[test]
    fn hub_replicas_serve_identical_adjacency_and_account_bytes() {
        let g = crate::generator::random_graph(
            &fig6_schema(),
            &crate::generator::RandomGraphConfig {
                vertices_per_label: 30,
                edges_per_endpoint: 90,
                seed: 7,
            },
        );
        let plain = PartitionedGraph::build(&g, 4);
        let pg = PartitionedGraph::build_with_opts(&g, Box::new(HashPartitioner::new(4)), 8);
        let r = pg.replicas().expect("replicas requested");
        assert_eq!(r.hubs().len(), 8);
        assert!(r.hubs().windows(2).all(|w| w[0] < w[1]));
        assert!(pg.replicated_bytes() >= 3 * r.bytes_per_copy());
        // every hub really is a top-degree vertex and flagged in the map
        for &h in r.hubs() {
            assert!(pg.partition_map().is_hub(h));
            assert!(g.out_degree(h) + g.in_degree(h) > 0);
        }
        // overlay reads are bit-identical to shard reads
        for v in g.vertex_ids() {
            assert_eq!(
                pg.out_edges(v).collect::<Vec<_>>(),
                plain.out_edges(v).collect::<Vec<_>>()
            );
            for l in g.schema().edge_label_ids() {
                assert_eq!(
                    GraphView::out_edges_with_label(&pg, v, l).to_vec(),
                    GraphView::out_edges_with_label(&plain, v, l).to_vec()
                );
            }
        }
        // no replication ⇒ no replica accounting
        assert_eq!(plain.replicated_bytes(), 0);
        assert!(plain.replicas().is_none());
        // p=1 ⇒ no extra copies even with hubs requested
        let solo = PartitionedGraph::build_with_opts(&g, Box::new(HashPartitioner::new(1)), 8);
        assert_eq!(solo.replicated_bytes(), 0);
    }

    #[test]
    fn partitioner_spec_parses_and_rejects() {
        assert_eq!(PartitionerSpec::parse("hash"), Ok(PartitionerSpec::Hash));
        assert_eq!(
            PartitionerSpec::parse(" Greedy "),
            Ok(PartitionerSpec::Greedy)
        );
        assert!(PartitionerSpec::parse("fennel").is_err());
        assert_eq!(PartitionerSpec::Greedy.name(), "greedy");
    }
}
