//! Small random typed-graph generator used by unit tests, property tests and
//! micro-benchmarks.
//!
//! The realistic LDBC-SNB-like generator lives in the `gopt-workloads` crate; this one
//! simply produces a random graph that conforms to an arbitrary schema, which is all the
//! correctness tests need.

use crate::graph::{GraphBuilder, PropertyGraph};
use crate::schema::GraphSchema;
use crate::value::PropValue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_graph`].
#[derive(Debug, Clone)]
pub struct RandomGraphConfig {
    /// Number of vertices generated per vertex label.
    pub vertices_per_label: usize,
    /// Number of edges generated per declared (edge label, endpoint pair).
    pub edges_per_endpoint: usize,
    /// RNG seed, so tests are deterministic.
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            vertices_per_label: 20,
            edges_per_endpoint: 60,
            seed: 42,
        }
    }
}

/// Generate a random property graph conforming to `schema`.
///
/// Every vertex gets an integer `id` property and a string `name` property; every edge
/// gets an integer `weight` property, so predicate-related code paths always have
/// something to select on.
pub fn random_graph(schema: &GraphSchema, cfg: &RandomGraphConfig) -> PropertyGraph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new(schema.clone());
    let mut by_label: Vec<Vec<crate::ids::VertexId>> =
        vec![Vec::new(); schema.vertex_label_count()];
    for l in schema.vertex_label_ids() {
        for i in 0..cfg.vertices_per_label {
            let name = format!("{}_{}", schema.vertex_label_name(l), i);
            let v = b
                .add_vertex(
                    l,
                    vec![
                        ("id", PropValue::Int(i as i64)),
                        ("name", PropValue::str(&name)),
                    ],
                )
                .expect("valid label");
            by_label[l.index()].push(v);
        }
    }
    for el in schema.edge_label_ids() {
        let endpoints = schema.edge_endpoints(el).to_vec();
        for (src_l, dst_l) in endpoints {
            let srcs = &by_label[src_l.index()];
            let dsts = &by_label[dst_l.index()];
            if srcs.is_empty() || dsts.is_empty() {
                continue;
            }
            for _ in 0..cfg.edges_per_endpoint {
                let s = srcs[rng.gen_range(0..srcs.len())];
                let d = dsts[rng.gen_range(0..dsts.len())];
                b.add_edge(
                    el,
                    s,
                    d,
                    vec![("weight", PropValue::Int(rng.gen_range(0..100)))],
                )
                .expect("schema-conforming edge");
            }
        }
    }
    b.finish()
}

/// Configuration for [`zipf_graph`]: like [`RandomGraphConfig`] but edge
/// endpoints are drawn from a Zipf distribution over the label's vertices, so
/// a few "hub" vertices collect most of the edges — the degree skew real
/// social/web graphs exhibit and the shape hub replication targets.
#[derive(Debug, Clone)]
pub struct ZipfGraphConfig {
    /// Number of vertices generated per vertex label.
    pub vertices_per_label: usize,
    /// Number of edges generated per declared (edge label, endpoint pair).
    pub edges_per_endpoint: usize,
    /// Zipf exponent `s` (weight of rank `r` is `1/r^s`); 0 is uniform,
    /// ~1.0–1.5 is web-graph-like skew.
    pub skew: f64,
    /// RNG seed, so benchmarks are deterministic.
    pub seed: u64,
}

impl Default for ZipfGraphConfig {
    fn default() -> Self {
        ZipfGraphConfig {
            vertices_per_label: 20,
            edges_per_endpoint: 60,
            skew: 1.1,
            seed: 42,
        }
    }
}

/// Generate a random property graph whose edge endpoints follow a Zipf
/// distribution (both source and destination), yielding a heavy-tailed
/// degree distribution. Vertex/property layout matches [`random_graph`].
pub fn zipf_graph(schema: &GraphSchema, cfg: &ZipfGraphConfig) -> PropertyGraph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new(schema.clone());
    let mut by_label: Vec<Vec<crate::ids::VertexId>> =
        vec![Vec::new(); schema.vertex_label_count()];
    for l in schema.vertex_label_ids() {
        for i in 0..cfg.vertices_per_label {
            let name = format!("{}_{}", schema.vertex_label_name(l), i);
            let v = b
                .add_vertex(
                    l,
                    vec![
                        ("id", PropValue::Int(i as i64)),
                        ("name", PropValue::str(&name)),
                    ],
                )
                .expect("valid label");
            by_label[l.index()].push(v);
        }
    }
    // cumulative Zipf weights over ranks 1..=n; rank r gets weight 1/r^s.
    // Hub ranks are scattered over vertex ids by a fixed stride so skew is
    // not correlated with the id-order placement partitioners see.
    let cumulative: Vec<f64> = {
        let n = cfg.vertices_per_label.max(1);
        let mut acc = 0.0;
        (1..=n)
            .map(|r| {
                acc += 1.0 / (r as f64).powf(cfg.skew);
                acc
            })
            .collect()
    };
    let total = cumulative.last().copied().unwrap_or(1.0);
    let pick = |rng: &mut SmallRng, pool: &[crate::ids::VertexId]| {
        // the rand shim only samples integer ranges — scale one down
        let x = rng.gen_range(0..1u64 << 32) as f64 / (1u64 << 32) as f64 * total;
        let rank = cumulative.partition_point(|&c| c <= x).min(pool.len() - 1);
        // stride-scatter rank → index so hubs are spread across id space
        pool[(rank * 7 + 3) % pool.len()]
    };
    for el in schema.edge_label_ids() {
        let endpoints = schema.edge_endpoints(el).to_vec();
        for (src_l, dst_l) in endpoints {
            let srcs = &by_label[src_l.index()];
            let dsts = &by_label[dst_l.index()];
            if srcs.is_empty() || dsts.is_empty() {
                continue;
            }
            for _ in 0..cfg.edges_per_endpoint {
                let s = pick(&mut rng, srcs);
                let d = pick(&mut rng, dsts);
                b.add_edge(
                    el,
                    s,
                    d,
                    vec![("weight", PropValue::Int(rng.gen_range(0..100)))],
                )
                .expect("schema-conforming edge");
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{fig5_schema, fig6_schema};

    #[test]
    fn generated_graph_conforms_to_schema() {
        let schema = fig6_schema();
        let g = random_graph(&schema, &RandomGraphConfig::default());
        assert_eq!(g.vertex_count(), 3 * 20);
        assert!(g.edge_count() > 0);
        // every edge respects the schema endpoints
        for e in g.edge_ids() {
            let (s, d) = g.edge_endpoints(e);
            assert!(g
                .schema()
                .can_connect(g.vertex_label(s), g.edge_label(e), g.vertex_label(d)));
        }
    }

    #[test]
    fn zipf_graph_is_skewed_and_deterministic() {
        let schema = fig6_schema();
        let cfg = ZipfGraphConfig {
            vertices_per_label: 50,
            edges_per_endpoint: 400,
            skew: 1.2,
            seed: 9,
        };
        let g1 = zipf_graph(&schema, &cfg);
        let g2 = zipf_graph(&schema, &cfg);
        assert_eq!(g1.edge_count(), g2.edge_count());
        for e in g1.edge_ids() {
            assert_eq!(g1.edge_endpoints(e), g2.edge_endpoints(e));
        }
        // heavy tail: the busiest 10% of vertices carry well over 10% of
        // the degree mass
        let mut degrees: Vec<usize> = g1
            .vertex_ids()
            .map(|v| g1.out_degree(v) + g1.in_degree(v))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = degrees.iter().take(degrees.len() / 10).sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top * 100 > total * 30,
            "top decile carries {top} of {total} — not skewed"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = fig5_schema();
        let cfg = RandomGraphConfig {
            vertices_per_label: 10,
            edges_per_endpoint: 30,
            seed: 7,
        };
        let g1 = random_graph(&schema, &cfg);
        let g2 = random_graph(&schema, &cfg);
        assert_eq!(g1.vertex_count(), g2.vertex_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for e in g1.edge_ids() {
            assert_eq!(g1.edge_endpoints(e), g2.edge_endpoints(e));
        }
        let g3 = random_graph(
            &schema,
            &RandomGraphConfig {
                seed: 8,
                ..cfg.clone()
            },
        );
        // extremely likely to differ
        let differs = g1
            .edge_ids()
            .any(|e| g1.edge_endpoints(e) != g3.edge_endpoints(e));
        assert!(differs);
    }
}
