//! Strongly-typed identifiers used across the framework.
//!
//! Using newtypes rather than bare integers prevents accidentally mixing up
//! vertex ids, edge ids, label ids and property-key ids — a class of bugs that
//! is otherwise easy to introduce in a query engine where everything is "just
//! an integer".

use std::fmt;

/// Identifier of a vertex in a [`crate::PropertyGraph`]. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u64);

/// Identifier of an edge in a [`crate::PropertyGraph`]. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u64);

/// Identifier of a vertex label or an edge label in a [`crate::GraphSchema`].
///
/// Vertex labels and edge labels live in two separate id spaces; the context
/// (vertex vs. edge position) disambiguates them, mirroring the paper's
/// `λ_G(v)` / `λ_G(e)` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u16);

/// Identifier of an interned property key (e.g. `name`, `id`, `creationDate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropKeyId(pub u16);

impl VertexId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LabelId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PropKeyId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

impl From<u64> for EdgeId {
    fn from(v: u64) -> Self {
        EdgeId(v)
    }
}

impl From<u16> for LabelId {
    fn from(v: u16) -> Self {
        LabelId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(7) > EdgeId(3));
        assert_eq!(VertexId(5).to_string(), "v5");
        assert_eq!(EdgeId(5).to_string(), "e5");
        assert_eq!(LabelId(2).to_string(), "l2");
        assert_eq!(LabelId::from(3u16).index(), 3);
        assert_eq!(VertexId::from(9u64).index(), 9);
        assert_eq!(EdgeId::from(9u64).index(), 9);
        assert_eq!(PropKeyId(4).index(), 4);
    }
}
