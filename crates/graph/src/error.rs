//! Error type for graph construction and access.

use std::fmt;

/// Errors raised while building or querying a [`crate::PropertyGraph`] or
/// [`crate::GraphSchema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex or edge label name was not found in the schema.
    UnknownLabel(String),
    /// A label id is out of range for the schema it is used with.
    InvalidLabelId(u16),
    /// A vertex id does not exist in the graph.
    InvalidVertex(u64),
    /// An edge id does not exist in the graph.
    InvalidEdge(u64),
    /// An edge was added whose (source label, destination label) pair is not
    /// declared for the edge label in the schema.
    SchemaViolation {
        /// Edge label name.
        edge_label: String,
        /// Source vertex label name.
        src_label: String,
        /// Destination vertex label name.
        dst_label: String,
    },
    /// A label with the same name was declared twice.
    DuplicateLabel(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownLabel(name) => write!(f, "unknown label: {name}"),
            GraphError::InvalidLabelId(id) => write!(f, "invalid label id: {id}"),
            GraphError::InvalidVertex(id) => write!(f, "invalid vertex id: {id}"),
            GraphError::InvalidEdge(id) => write!(f, "invalid edge id: {id}"),
            GraphError::SchemaViolation {
                edge_label,
                src_label,
                dst_label,
            } => write!(
                f,
                "schema violation: edge label {edge_label} cannot connect {src_label} -> {dst_label}"
            ),
            GraphError::DuplicateLabel(name) => write!(f, "duplicate label: {name}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GraphError::UnknownLabel("Person".into());
        assert!(e.to_string().contains("Person"));
        let e = GraphError::SchemaViolation {
            edge_label: "KNOWS".into(),
            src_label: "Person".into(),
            dst_label: "Place".into(),
        };
        let s = e.to_string();
        assert!(s.contains("KNOWS") && s.contains("Person") && s.contains("Place"));
        let e = GraphError::InvalidVertex(42);
        assert!(e.to_string().contains("42"));
    }
}
