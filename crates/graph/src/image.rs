//! Versioned binary serialization of a partitioned graph plus its statistics
//! — the **graph image**.
//!
//! An image is the memory-scale storage layout written straight to disk: the
//! monolithic [`PropertyGraph`] arrays (compressed CSR adjacency,
//! dictionary-encoded property columns), the per-shard arrays of a
//! [`PartitionedGraph`], and the precomputed [`GraphStats`]. Loading an image
//! reconstructs all three **without** re-sorting adjacency, re-scattering
//! property columns, or re-scanning for statistics — the expensive phases of
//! ingest — leaving only array reads plus cheap derived-index rebuilds, which
//! is what makes a cold boot from an image several times faster than
//! re-ingesting the same graph.
//!
//! # Format
//!
//! ```text
//! magic    8 bytes  b"GOPTIMG\0"
//! version  u32      IMAGE_VERSION
//! count    u32      number of sections
//! table    count × { id: u32, offset: u64, len: u64, checksum: u64 }
//! payloads …        section bytes, contiguous, in table order
//! ```
//!
//! Every integer is little-endian. Each section carries an FNV-1a 64
//! checksum over its payload, verified before any decoding; truncated,
//! bit-flipped or wrong-version images fail with a typed [`ImageError`] and
//! never panic. Sections:
//!
//! * `META` — schema (labels, property defs), the interned property-key
//!   table, the partition count, the vertex **placement** (modulo, or an
//!   explicit owner table for non-hash partitioners) and the replicated
//!   hub-vertex set (the hub overlay itself is cheaply rebuilt from the
//!   catalog's edge columns on load);
//! * `GRAPH` — the monolithic primary columns: vertex labels, vertex property
//!   columns, edge labels/endpoints, edge property columns, both adjacency
//!   structures;
//! * `SHARDS` — per partition: out/in adjacency over local ids plus the
//!   shard's scattered vertex property columns;
//! * `STATS` — the full [`GraphStats`] (low-order counts, per-column
//!   sketches, histograms and value maps).
//!
//! Loaded graphs get a **fresh** build id (see
//! [`crate::graph::PropertyGraph::build_id`]), so engine-side caches keyed on
//! graph identity never alias an image with an in-process build.

use crate::column::{NullBitmap, StrColumn, TypedColumn};
use crate::graph::{CsrAdjacency, PropColumns, PropertyGraph};
use crate::ids::{LabelId, VertexId};
use crate::partition::PartitionedGraph;
use crate::schema::{GraphSchema, PropType, PropertyDef};
use crate::stats::GraphStats;
use crate::value::PropValue;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// File magic, first 8 bytes of every image.
pub const IMAGE_MAGIC: [u8; 8] = *b"GOPTIMG\0";

/// Current image format version. Bump on any layout change; loaders reject
/// other versions with [`ImageError::UnsupportedVersion`]. Version 2 added
/// vertex placement (owner table) and the replicated hub set to `META`.
pub const IMAGE_VERSION: u32 = 2;

const SECTION_META: u32 = 1;
const SECTION_GRAPH: u32 = 2;
const SECTION_SHARDS: u32 = 3;
const SECTION_STATS: u32 = 4;

/// Why an image could not be written or loaded. Every malformed input maps to
/// a variant here — the loader never panics on untrusted bytes.
#[derive(Debug)]
pub enum ImageError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`IMAGE_MAGIC`].
    BadMagic,
    /// The file's format version is not [`IMAGE_VERSION`].
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The file ended before the named structure was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Section name.
        section: &'static str,
    },
    /// A required section is absent from the section table.
    MissingSection {
        /// Section name.
        section: &'static str,
    },
    /// A section decoded but violates a structural invariant.
    Corrupt {
        /// Section name.
        section: &'static str,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Io(e) => write!(f, "image i/o error: {e}"),
            ImageError::BadMagic => write!(f, "not a graph image (bad magic)"),
            ImageError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "image version {found} unsupported (expected {supported})"
                )
            }
            ImageError::Truncated { what } => write!(f, "image truncated while reading {what}"),
            ImageError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            ImageError::MissingSection { section } => write!(f, "missing section {section}"),
            ImageError::Corrupt { section, detail } => {
                write!(f, "corrupt section {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// 64-bit section checksum: FNV-1a folded over 8-byte little-endian lanes,
/// four independent lanes per 32-byte block (so the multiply chains overlap
/// instead of serializing), with the trailing partial lane zero-padded and
/// the length mixed into the seed (so payloads differing only in trailing
/// zero bytes hash apart). Not cryptographic; it guards against truncation
/// and accidental corruption, like a CRC — but a handful of overlapping
/// multiplies per 32 bytes instead of one dependent multiply per byte, which
/// matters on the cold-load path.
fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let seed: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut lanes = [
        seed,
        seed ^ PRIME,
        seed.rotate_left(17),
        seed.rotate_left(31),
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (lane, chunk) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(chunk.try_into().unwrap());
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut h = lanes
        .iter()
        .fold(seed, |acc, &l| (acc ^ l).wrapping_mul(PRIME));
    let mut tail8 = blocks.remainder().chunks_exact(8);
    for chunk in &mut tail8 {
        h ^= u64::from_le_bytes(chunk.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    let rem = tail8.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Little-endian writers
// ---------------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}
pub(crate) fn put_u16s(out: &mut Vec<u8>, vs: &[u16]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u16(out, v);
    }
}
pub(crate) fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}
pub(crate) fn put_i64s(out: &mut Vec<u8>, vs: &[i64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_i64(out, v);
    }
}
pub(crate) fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f64(out, v);
    }
}
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over one section's payload. Every read returns a
/// typed error instead of panicking when the bytes run out.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8], section: &'static str) -> Cursor<'a> {
        Cursor {
            buf,
            pos: 0,
            section,
        }
    }

    pub(crate) fn corrupt(&self, detail: impl Into<String>) -> ImageError {
        ImageError::Corrupt {
            section: self.section,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ImageError::Truncated { what: self.section })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    pub(crate) fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> Result<i64, ImageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, ImageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed string, borrowed straight from the payload —
    /// callers building `Arc<str>` values copy once instead of via an
    /// intermediate `String`.
    pub(crate) fn str_slice(&mut self) -> Result<&'a str, ImageError> {
        let len = self.len_capped("string")?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("invalid UTF-8 in string"))
    }

    pub(crate) fn str(&mut self) -> Result<String, ImageError> {
        Ok(self.str_slice()?.to_owned())
    }

    /// A length-prefixed `u16` array, decoded in bulk.
    pub(crate) fn u16s(&mut self, what: &str) -> Result<Vec<u16>, ImageError> {
        let n = self.count_capped(2, what)?;
        let bytes = self.take(n * 2)?;
        Ok(bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A length-prefixed `u32` array, decoded in bulk.
    pub(crate) fn u32s(&mut self, what: &str) -> Result<Vec<u32>, ImageError> {
        let n = self.count_capped(4, what)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A length-prefixed `i64` array, decoded in bulk.
    pub(crate) fn i64s(&mut self, what: &str) -> Result<Vec<i64>, ImageError> {
        let n = self.count_capped(8, what)?;
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A length-prefixed `f64` array (bit patterns), decoded in bulk.
    pub(crate) fn f64s(&mut self, what: &str) -> Result<Vec<f64>, ImageError> {
        let n = self.count_capped(8, what)?;
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    /// A `u32` length field, sanity-capped against the remaining bytes so a
    /// corrupted length cannot trigger a huge allocation.
    pub(crate) fn len_capped(&mut self, what: &str) -> Result<usize, ImageError> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(self.corrupt(format!("{what} length {len} exceeds section size")));
        }
        Ok(len)
    }

    /// A `u32` count of fixed-size items, capped by the bytes remaining.
    pub(crate) fn count_capped(
        &mut self,
        item_bytes: usize,
        what: &str,
    ) -> Result<usize, ImageError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(item_bytes) > self.buf.len() - self.pos {
            return Err(self.corrupt(format!("{what} count {n} exceeds section size")));
        }
        Ok(n)
    }

    pub(crate) fn done(&self) -> Result<(), ImageError> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Value / column / adjacency codecs
// ---------------------------------------------------------------------------

pub(crate) fn put_value(out: &mut Vec<u8>, v: &PropValue) {
    match v {
        PropValue::Null => put_u8(out, 0),
        PropValue::Bool(b) => {
            put_u8(out, 1);
            put_u8(out, u8::from(*b));
        }
        PropValue::Int(i) => {
            put_u8(out, 2);
            put_i64(out, *i);
        }
        PropValue::Float(f) => {
            put_u8(out, 3);
            put_f64(out, *f);
        }
        PropValue::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
        PropValue::Date(d) => {
            put_u8(out, 5);
            put_i64(out, *d);
        }
    }
}

pub(crate) fn read_value(r: &mut Cursor<'_>) -> Result<PropValue, ImageError> {
    Ok(match r.u8()? {
        0 => PropValue::Null,
        1 => PropValue::Bool(r.u8()? != 0),
        2 => PropValue::Int(r.i64()?),
        3 => PropValue::Float(r.f64()?),
        4 => PropValue::Str(Arc::from(r.str_slice()?)),
        5 => PropValue::Date(r.i64()?),
        t => return Err(r.corrupt(format!("unknown PropValue tag {t}"))),
    })
}

fn put_bitmap(out: &mut Vec<u8>, bm: &NullBitmap) {
    put_u32(out, bm.len() as u32);
    for &w in bm.words() {
        put_u64(out, w);
    }
}

fn read_bitmap(r: &mut Cursor<'_>) -> Result<NullBitmap, ImageError> {
    let len = r.u32()? as usize;
    let n_words = len.div_ceil(64);
    if n_words.saturating_mul(8) > usize::MAX / 2 {
        return Err(r.corrupt("bitmap length overflow"));
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    NullBitmap::from_words(words, len).ok_or_else(|| r.corrupt("bitmap word/length mismatch"))
}

fn put_column(out: &mut Vec<u8>, col: &TypedColumn) {
    match col {
        TypedColumn::Int(vals, bm) => {
            put_u8(out, 0);
            put_i64s(out, vals);
            put_bitmap(out, bm);
        }
        TypedColumn::Float(vals, bm) => {
            put_u8(out, 1);
            put_f64s(out, vals);
            put_bitmap(out, bm);
        }
        TypedColumn::Bool(vals, bm) => {
            put_u8(out, 2);
            put_u32(out, vals.len() as u32);
            for &v in vals {
                put_u8(out, u8::from(v));
            }
            put_bitmap(out, bm);
        }
        TypedColumn::Date(vals, bm) => {
            put_u8(out, 3);
            put_i64s(out, vals);
            put_bitmap(out, bm);
        }
        TypedColumn::Str(col) => {
            put_u8(out, 4);
            put_u32s(out, col.codes());
            put_u32(out, col.dict().len() as u32);
            for s in col.dict() {
                put_str(out, s);
            }
            put_bitmap(out, col.validity());
        }
        TypedColumn::Mixed(cells) => {
            put_u8(out, 5);
            put_u32(out, cells.len() as u32);
            for cell in cells.iter() {
                match cell {
                    None => put_u8(out, 0),
                    Some(v) => {
                        put_u8(out, 1);
                        put_value(out, v);
                    }
                }
            }
        }
    }
}

fn read_column(r: &mut Cursor<'_>) -> Result<TypedColumn, ImageError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 | 3 => {
            let vals = r.i64s("int column")?;
            let bm = read_bitmap(r)?;
            if bm.len() != vals.len() {
                return Err(r.corrupt("column/bitmap length mismatch"));
            }
            if tag == 0 {
                TypedColumn::Int(vals, bm)
            } else {
                TypedColumn::Date(vals, bm)
            }
        }
        1 => {
            let vals = r.f64s("float column")?;
            let bm = read_bitmap(r)?;
            if bm.len() != vals.len() {
                return Err(r.corrupt("column/bitmap length mismatch"));
            }
            TypedColumn::Float(vals, bm)
        }
        2 => {
            let n = r.count_capped(1, "bool column")?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(r.u8()? != 0);
            }
            let bm = read_bitmap(r)?;
            if bm.len() != vals.len() {
                return Err(r.corrupt("column/bitmap length mismatch"));
            }
            TypedColumn::Bool(vals, bm)
        }
        4 => {
            let codes = r.u32s("str column codes")?;
            let n_dict = r.count_capped(4, "str column dictionary")?;
            let mut dict: Vec<Arc<str>> = Vec::with_capacity(n_dict);
            for _ in 0..n_dict {
                dict.push(Arc::from(r.str_slice()?));
            }
            let bm = read_bitmap(r)?;
            StrColumn::from_parts(codes, dict, bm)
                .map(TypedColumn::Str)
                .ok_or_else(|| r.corrupt("invalid dictionary-encoded string column"))?
        }
        5 => {
            let n = r.count_capped(1, "mixed column")?;
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                cells.push(match r.u8()? {
                    0 => None,
                    1 => Some(read_value(r)?),
                    t => return Err(r.corrupt(format!("unknown cell tag {t}"))),
                });
            }
            TypedColumn::Mixed(cells.into_boxed_slice())
        }
        t => return Err(r.corrupt(format!("unknown column tag {t}"))),
    })
}

fn put_prop_columns(out: &mut Vec<u8>, cols: &PropColumns) {
    let (n_keys, columns) = cols.raw();
    put_u32(out, n_keys as u32);
    put_u32(out, columns.len() as u32);
    for col in columns {
        match col {
            None => put_u8(out, 0),
            Some(c) => {
                put_u8(out, 1);
                put_column(out, c);
            }
        }
    }
}

fn read_prop_columns(r: &mut Cursor<'_>) -> Result<PropColumns, ImageError> {
    let n_keys = r.u32()? as usize;
    let n_cols = r.count_capped(1, "prop columns")?;
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        columns.push(match r.u8()? {
            0 => None,
            1 => Some(read_column(r)?),
            t => return Err(r.corrupt(format!("unknown prop column tag {t}"))),
        });
    }
    PropColumns::from_raw(n_keys, columns)
        .ok_or_else(|| r.corrupt("prop column table not a multiple of the key count"))
}

fn put_adjacency(out: &mut Vec<u8>, adj: &CsrAdjacency) {
    let (neighbors, edge_bytes, seg_index, seg_labels, seg_ends, seg_metas, n_labels) = adj.parts();
    put_u32(out, n_labels as u32);
    put_u32s(out, neighbors);
    put_u32(out, edge_bytes.len() as u32);
    out.extend_from_slice(edge_bytes);
    put_u32s(out, seg_index);
    put_u16s(out, seg_labels);
    put_u32s(out, seg_ends);
    put_u32s(out, seg_metas);
}

fn read_adjacency(
    r: &mut Cursor<'_>,
    max_vertex: u64,
    max_edge: u64,
) -> Result<CsrAdjacency, ImageError> {
    let n_labels = r.u32()? as usize;
    let neighbors = r.u32s("adjacency neighbors")?;
    let n = r.len_capped("adjacency edge pool")?;
    let edge_bytes = r.take(n)?.to_vec();
    let seg_index = r.u32s("adjacency segment index")?;
    let seg_labels = r.u16s("adjacency segment labels")?;
    let seg_ends = r.u32s("adjacency segment ends")?;
    let seg_metas = r.u32s("adjacency segment metadata")?;
    CsrAdjacency::from_parts(
        neighbors, edge_bytes, seg_index, seg_labels, seg_ends, seg_metas, n_labels, max_vertex,
        max_edge,
    )
    .ok_or_else(|| r.corrupt("adjacency arrays violate CSR invariants"))
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

fn put_prop_defs(out: &mut Vec<u8>, defs: &[PropertyDef]) {
    put_u32(out, defs.len() as u32);
    for d in defs {
        put_str(out, &d.name);
        put_u8(
            out,
            match d.kind {
                PropType::Int => 0,
                PropType::Float => 1,
                PropType::Str => 2,
                PropType::Bool => 3,
                PropType::Date => 4,
            },
        );
    }
}

fn read_prop_defs(r: &mut Cursor<'_>) -> Result<Vec<PropertyDef>, ImageError> {
    let n = r.count_capped(5, "property defs")?;
    let mut defs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let kind = match r.u8()? {
            0 => PropType::Int,
            1 => PropType::Float,
            2 => PropType::Str,
            3 => PropType::Bool,
            4 => PropType::Date,
            t => return Err(r.corrupt(format!("unknown PropType tag {t}"))),
        };
        defs.push(PropertyDef::new(name, kind));
    }
    Ok(defs)
}

fn encode_meta(graph: &PropertyGraph, pg: &PartitionedGraph) -> Vec<u8> {
    let mut out = Vec::new();
    let schema = graph.schema();
    put_u32(&mut out, pg.partitions() as u32);
    // placement: hash layouts need no table (tag 0); anything else persists
    // the owner table so a loaded image routes exactly as the built graph
    if pg.modulo_placed() {
        put_u8(&mut out, 0);
    } else {
        put_u8(&mut out, 1);
        put_u32s(
            &mut out,
            pg.partition_map().owner_table().unwrap_or_default(),
        );
    }
    let hubs: Vec<u32> = pg
        .replicas()
        .map(|r| r.hubs().iter().map(|h| h.0 as u32).collect())
        .unwrap_or_default();
    put_u32s(&mut out, &hubs);
    put_u32(&mut out, schema.vertex_label_count() as u32);
    for id in schema.vertex_label_ids() {
        put_str(&mut out, schema.vertex_label_name(id));
        put_prop_defs(&mut out, &schema.vertex_label_def(id).properties);
    }
    put_u32(&mut out, schema.edge_label_count() as u32);
    for id in schema.edge_label_ids() {
        let def = schema.edge_label_def(id);
        put_str(&mut out, schema.edge_label_name(id));
        put_u32(&mut out, def.endpoints.len() as u32);
        for &(s, d) in &def.endpoints {
            put_u16(&mut out, s.0);
            put_u16(&mut out, d.0);
        }
        put_prop_defs(&mut out, &def.properties);
    }
    put_u32(&mut out, graph.prop_key_count() as u32);
    for i in 0..graph.prop_key_count() {
        put_str(
            &mut out,
            graph.prop_key_name(crate::ids::PropKeyId(i as u16)),
        );
    }
    out
}

struct Meta {
    partitions: usize,
    /// Explicit owner table (`None` = modulo placement).
    owners: Option<Vec<u32>>,
    /// Replicated hub vertices, ascending.
    hubs: Vec<VertexId>,
    schema: GraphSchema,
    prop_keys: Vec<String>,
}

fn decode_meta(r: &mut Cursor<'_>) -> Result<Meta, ImageError> {
    let partitions = r.u32()? as usize;
    if partitions == 0 {
        return Err(r.corrupt("partition count is zero"));
    }
    let owners = match r.u8()? {
        0 => None,
        1 => {
            let o = r.u32s("owner table")?;
            if o.iter().any(|&p| p as usize >= partitions) {
                return Err(r.corrupt("owner table entry out of partition range"));
            }
            Some(o)
        }
        t => return Err(r.corrupt(format!("unknown placement tag {t}"))),
    };
    let hubs: Vec<VertexId> = r
        .u32s("hub set")?
        .into_iter()
        .map(|h| VertexId(u64::from(h)))
        .collect();
    if hubs.windows(2).any(|w| w[0] >= w[1]) {
        return Err(r.corrupt("hub set not strictly ascending"));
    }
    let mut schema = GraphSchema::new();
    let n_vlabels = r.count_capped(4, "vertex labels")?;
    for _ in 0..n_vlabels {
        let name = r.str()?;
        let props = read_prop_defs(r)?;
        schema
            .add_vertex_label(name, props)
            .map_err(|e| r.corrupt(format!("schema rejects vertex label: {e}")))?;
    }
    let n_elabels = r.count_capped(4, "edge labels")?;
    for _ in 0..n_elabels {
        let name = r.str()?;
        let n_ep = r.count_capped(4, "edge endpoints")?;
        let mut endpoints = Vec::with_capacity(n_ep);
        for _ in 0..n_ep {
            let s = LabelId(r.u16()?);
            let d = LabelId(r.u16()?);
            if s.index() >= n_vlabels || d.index() >= n_vlabels {
                return Err(r.corrupt("edge endpoint label out of range"));
            }
            endpoints.push((s, d));
        }
        let props = read_prop_defs(r)?;
        schema
            .add_edge_label(name, endpoints, props)
            .map_err(|e| r.corrupt(format!("schema rejects edge label: {e}")))?;
    }
    let n_keys = r.count_capped(4, "prop keys")?;
    let mut prop_keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        prop_keys.push(r.str()?);
    }
    Ok(Meta {
        partitions,
        owners,
        hubs,
        schema,
        prop_keys,
    })
}

fn encode_graph(graph: &PropertyGraph) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, graph.vertex_count() as u32);
    for &l in graph.vertex_label_column() {
        put_u16(&mut out, l.0);
    }
    put_prop_columns(&mut out, graph.vertex_prop_columns());
    put_u32(&mut out, graph.edge_count() as u32);
    for &l in graph.edge_label_column() {
        put_u16(&mut out, l.0);
    }
    for &v in graph.edge_source_column() {
        put_u32(&mut out, v.0 as u32);
    }
    for &v in graph.edge_target_column() {
        put_u32(&mut out, v.0 as u32);
    }
    put_prop_columns(&mut out, graph.edge_prop_columns());
    for adj in [graph.out_adjacency(), graph.in_adjacency()] {
        // length-prefixed so the loader can decode both directions
        // concurrently
        let mut block = Vec::new();
        put_adjacency(&mut block, adj);
        put_u32(&mut out, block.len() as u32);
        out.extend_from_slice(&block);
    }
    out
}

/// Whether the decode fan-out is worth spawning scoped threads for. On a
/// single-core host the spawns only add overhead to the cold-load path.
fn decode_in_parallel() -> bool {
    std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
}

fn decode_graph(r: &mut Cursor<'_>, meta: &Meta) -> Result<PropertyGraph, ImageError> {
    let n_vlabels = meta.schema.vertex_label_count();
    let n_elabels = meta.schema.edge_label_count();
    let n_vertices = r.count_capped(2, "vertex labels")?;
    let vertex_labels: Vec<LabelId> = r
        .take(n_vertices * 2)?
        .chunks_exact(2)
        .map(|c| LabelId(u16::from_le_bytes(c.try_into().unwrap())))
        .collect();
    if vertex_labels.iter().any(|l| l.index() >= n_vlabels) {
        return Err(r.corrupt("vertex label out of range"));
    }
    let vertex_props = read_prop_columns(r)?;
    let n_edges = r.count_capped(10, "edge catalog")?;
    let edge_labels: Vec<LabelId> = r
        .take(n_edges * 2)?
        .chunks_exact(2)
        .map(|c| LabelId(u16::from_le_bytes(c.try_into().unwrap())))
        .collect();
    if edge_labels.iter().any(|l| l.index() >= n_elabels) {
        return Err(r.corrupt("edge label out of range"));
    }
    let mut endpoints = |what| -> Result<Vec<VertexId>, ImageError> {
        let vs: Vec<VertexId> = r
            .take(n_edges * 4)?
            .chunks_exact(4)
            .map(|c| VertexId(u64::from(u32::from_le_bytes(c.try_into().unwrap()))))
            .collect();
        if vs.iter().any(|v| v.0 >= n_vertices as u64) {
            return Err(r.corrupt(format!("edge {what} out of range")));
        }
        Ok(vs)
    };
    let edge_srcs = endpoints("source")?;
    let edge_dsts = endpoints("target")?;
    let edge_props = read_prop_columns(r)?;
    let out_len = r.len_capped("out adjacency block")?;
    let out_block = r.take(out_len)?;
    let in_len = r.len_capped("in adjacency block")?;
    let in_block = r.take(in_len)?;
    // the two directions are independent — decode them concurrently when
    // there is more than one core to run on
    let (out_adj, in_adj) = if decode_in_parallel() {
        std::thread::scope(|s| {
            let h =
                s.spawn(|| decode_adjacency_block(out_block, n_vertices as u64, n_edges as u64));
            let in_adj = decode_adjacency_block(in_block, n_vertices as u64, n_edges as u64);
            (h.join().expect("adjacency decode does not panic"), in_adj)
        })
    } else {
        (
            decode_adjacency_block(out_block, n_vertices as u64, n_edges as u64),
            decode_adjacency_block(in_block, n_vertices as u64, n_edges as u64),
        )
    };
    let (out_adj, in_adj) = (out_adj?, in_adj?);
    Ok(PropertyGraph::assemble(
        meta.schema.clone(),
        vertex_labels,
        vertex_props,
        edge_labels,
        edge_srcs,
        edge_dsts,
        edge_props,
        out_adj,
        in_adj,
        meta.prop_keys.clone(),
    ))
}

fn encode_shards(pg: &PartitionedGraph) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, pg.partitions() as u32);
    for shard in pg.shards() {
        // each shard is a length-prefixed block, so the loader can hand
        // whole blocks to worker threads without parsing them first
        let mut block = Vec::new();
        put_adjacency(&mut block, shard.out_adjacency());
        put_adjacency(&mut block, shard.in_adjacency());
        put_prop_columns(&mut block, shard.prop_columns());
        put_u32(&mut out, block.len() as u32);
        out.extend_from_slice(&block);
    }
    out
}

/// Decode one direction's length-prefixed adjacency block (on a worker
/// thread).
fn decode_adjacency_block(
    bytes: &[u8],
    max_vertex: u64,
    max_edge: u64,
) -> Result<CsrAdjacency, ImageError> {
    let mut r = Cursor::new(bytes, "graph");
    let adj = read_adjacency(&mut r, max_vertex, max_edge)?;
    r.done()?;
    Ok(adj)
}

/// Decode one shard's length-prefixed block (on a worker thread).
fn decode_shard_block(
    bytes: &[u8],
    n_vertices: u64,
    n_edges: u64,
) -> Result<(CsrAdjacency, CsrAdjacency, PropColumns), ImageError> {
    let mut r = Cursor::new(bytes, "shards");
    // shard adjacency stores GLOBAL neighbour/edge ids over LOCAL sources
    let out_adj = read_adjacency(&mut r, n_vertices, n_edges)?;
    let in_adj = read_adjacency(&mut r, n_vertices, n_edges)?;
    let props = read_prop_columns(&mut r)?;
    r.done()?;
    Ok((out_adj, in_adj, props))
}

fn decode_shards(
    r: &mut Cursor<'_>,
    meta: &mut Meta,
    graph: &PropertyGraph,
) -> Result<PartitionedGraph, ImageError> {
    let n_shards = r.u32()? as usize;
    if n_shards != meta.partitions {
        return Err(r.corrupt(format!(
            "shard count {n_shards} does not match partition count {}",
            meta.partitions
        )));
    }
    let n_vertices = graph.vertex_count() as u64;
    let n_edges = graph.edge_count() as u64;
    let mut blocks = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let len = r.len_capped("shard block")?;
        blocks.push(r.take(len)?);
    }
    // shard blocks are independent — decode them concurrently when there is
    // more than one core to run on
    let decoded: Vec<Result<_, ImageError>> = if decode_in_parallel() {
        std::thread::scope(|s| {
            let handles: Vec<_> = blocks
                .iter()
                .map(|&b| s.spawn(move || decode_shard_block(b, n_vertices, n_edges)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard decode does not panic"))
                .collect()
        })
    } else {
        blocks
            .iter()
            .map(|&b| decode_shard_block(b, n_vertices, n_edges))
            .collect()
    };
    let mut parts = Vec::with_capacity(n_shards);
    for d in decoded {
        parts.push(d?);
    }
    PartitionedGraph::assemble(
        graph,
        meta.partitions,
        meta.owners.take(),
        std::mem::take(&mut meta.hubs),
        parts,
    )
    .ok_or_else(|| r.corrupt("shard arrays do not assemble into a partitioned graph"))
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

/// Everything a graph image holds, reconstructed: the monolithic graph, the
/// partitioned layout over it, and the precomputed statistics.
pub struct LoadedImage {
    /// The monolithic graph (fresh build id).
    pub graph: Arc<PropertyGraph>,
    /// The partitioned layout, shard arrays taken from the image verbatim.
    pub partitioned: Arc<PartitionedGraph>,
    /// The statistics as they were when the image was written.
    pub stats: Arc<GraphStats>,
}

/// Serialize `graph` + its partitioned layout + `stats` into an image byte
/// buffer. `pg` must be a partitioning **of** `graph` (same vertex/edge set).
pub fn image_bytes(graph: &PropertyGraph, pg: &PartitionedGraph, stats: &GraphStats) -> Vec<u8> {
    let sections: [(u32, Vec<u8>); 4] = [
        (SECTION_META, encode_meta(graph, pg)),
        (SECTION_GRAPH, encode_graph(graph)),
        (SECTION_SHARDS, encode_shards(pg)),
        (SECTION_STATS, {
            let mut out = Vec::new();
            stats.encode(&mut out);
            out
        }),
    ];
    let header_len = IMAGE_MAGIC.len() + 4 + 4 + sections.len() * 28;
    let mut out =
        Vec::with_capacity(header_len + sections.iter().map(|(_, p)| p.len()).sum::<usize>());
    out.extend_from_slice(&IMAGE_MAGIC);
    put_u32(&mut out, IMAGE_VERSION);
    put_u32(&mut out, sections.len() as u32);
    let mut offset = header_len as u64;
    for (id, payload) in &sections {
        put_u32(&mut out, *id);
        put_u64(&mut out, offset);
        put_u64(&mut out, payload.len() as u64);
        put_u64(&mut out, checksum64(payload));
        offset += payload.len() as u64;
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

/// Write a graph image to `path` (atomic: written to a sibling temp file,
/// then renamed over the target).
pub fn write_image(
    graph: &PropertyGraph,
    pg: &PartitionedGraph,
    stats: &GraphStats,
    path: &Path,
) -> Result<(), ImageError> {
    let bytes = image_bytes(graph, pg, stats);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_META => "meta",
        SECTION_GRAPH => "graph",
        SECTION_SHARDS => "shards",
        SECTION_STATS => "stats",
        _ => "unknown",
    }
}

/// Locate, checksum-verify and return one section's payload.
fn section<'a>(
    bytes: &'a [u8],
    table: &[(u32, u64, u64, u64)],
    id: u32,
) -> Result<&'a [u8], ImageError> {
    let name = section_name(id);
    let &(_, offset, len, checksum) = table
        .iter()
        .find(|(sid, ..)| *sid == id)
        .ok_or(ImageError::MissingSection { section: name })?;
    let start = usize::try_from(offset).map_err(|_| ImageError::Truncated { what: name })?;
    let len = usize::try_from(len).map_err(|_| ImageError::Truncated { what: name })?;
    let payload = start
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .map(|end| &bytes[start..end])
        .ok_or(ImageError::Truncated { what: name })?;
    if checksum64(payload) != checksum {
        return Err(ImageError::ChecksumMismatch { section: name });
    }
    Ok(payload)
}

/// Reconstruct a graph, its partitioned layout and its statistics from image
/// bytes. Malformed input of any kind — truncation, bit flips, bad lengths,
/// invariant violations — yields a typed [`ImageError`]; this function never
/// panics on untrusted bytes.
pub fn load_image_bytes(bytes: &[u8]) -> Result<LoadedImage, ImageError> {
    let mut hdr = Cursor::new(bytes, "header");
    let magic = hdr
        .take(8)
        .map_err(|_| ImageError::Truncated { what: "magic" })?;
    if magic != IMAGE_MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = hdr
        .u32()
        .map_err(|_| ImageError::Truncated { what: "version" })?;
    if version != IMAGE_VERSION {
        return Err(ImageError::UnsupportedVersion {
            found: version,
            supported: IMAGE_VERSION,
        });
    }
    let n_sections = hdr.u32().map_err(|_| ImageError::Truncated {
        what: "section count",
    })? as usize;
    if n_sections > 64 {
        return Err(ImageError::Corrupt {
            section: "header",
            detail: format!("implausible section count {n_sections}"),
        });
    }
    let mut table = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let id = hdr.u32().map_err(|_| ImageError::Truncated {
            what: "section table",
        })?;
        let offset = hdr.u64().map_err(|_| ImageError::Truncated {
            what: "section table",
        })?;
        let len = hdr.u64().map_err(|_| ImageError::Truncated {
            what: "section table",
        })?;
        let checksum = hdr.u64().map_err(|_| ImageError::Truncated {
            what: "section table",
        })?;
        table.push((id, offset, len, checksum));
    }

    let mut meta_r = Cursor::new(section(bytes, &table, SECTION_META)?, "meta");
    let mut meta = decode_meta(&mut meta_r)?;
    meta_r.done()?;

    let mut graph_r = Cursor::new(section(bytes, &table, SECTION_GRAPH)?, "graph");
    let graph = decode_graph(&mut graph_r, &meta)?;
    graph_r.done()?;

    let mut shards_r = Cursor::new(section(bytes, &table, SECTION_SHARDS)?, "shards");
    let partitioned = decode_shards(&mut shards_r, &mut meta, &graph)?;
    shards_r.done()?;

    let mut stats_r = Cursor::new(section(bytes, &table, SECTION_STATS)?, "stats");
    let stats = GraphStats::decode(&mut stats_r)?;
    stats_r.done()?;

    Ok(LoadedImage {
        graph: Arc::new(graph),
        partitioned: Arc::new(partitioned),
        stats: Arc::new(stats),
    })
}

/// Load a graph image from `path`. See [`load_image_bytes`].
pub fn load_image(path: &Path) -> Result<LoadedImage, ImageError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    load_image_bytes(&bytes)
}
