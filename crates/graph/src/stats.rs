//! Low-order statistics over a property graph.
//!
//! These are the statistics a conventional optimizer (e.g. Neo4j's CypherPlanner or a
//! relational optimizer) works with: per-label vertex and edge counts and average degrees.
//! The GOpt paper contrasts them with *high-order statistics* (pattern frequencies stored
//! in GLogue, see the `gopt-glogue` crate); Fig. 8(d) compares plans produced from the two.

use crate::graph::PropertyGraph;
use crate::ids::LabelId;

/// Per-label counts and degree summaries.
#[derive(Debug, Clone)]
pub struct LowOrderStats {
    vertex_counts: Vec<u64>,
    edge_counts: Vec<u64>,
    /// Average out-degree indexed by `[src_vertex_label][edge_label]`.
    avg_out_degree: Vec<Vec<f64>>,
    /// Average in-degree indexed by `[dst_vertex_label][edge_label]`.
    avg_in_degree: Vec<Vec<f64>>,
    total_vertices: u64,
    total_edges: u64,
}

impl LowOrderStats {
    /// Compute low-order statistics by a single pass over the graph.
    pub fn from_graph(g: &PropertyGraph) -> Self {
        let nv_labels = g.schema().vertex_label_count();
        let ne_labels = g.schema().edge_label_count();
        let mut vertex_counts = vec![0u64; nv_labels];
        for l in g.schema().vertex_label_ids() {
            vertex_counts[l.index()] = g.vertex_count_by_label(l) as u64;
        }
        let mut edge_counts = vec![0u64; ne_labels];
        for l in g.schema().edge_label_ids() {
            edge_counts[l.index()] = g.edge_count_by_label(l);
        }
        // out-degree sums per (src label, edge label); in-degree per (dst label,
        // edge label): a single pass zipping the columnar edge arrays — no
        // per-edge id indirection
        let mut out_sums = vec![vec![0u64; ne_labels]; nv_labels];
        let mut in_sums = vec![vec![0u64; ne_labels]; nv_labels];
        let vlabels = g.vertex_label_column();
        for ((&el, &src), &dst) in g
            .edge_label_column()
            .iter()
            .zip(g.edge_source_column())
            .zip(g.edge_target_column())
        {
            out_sums[vlabels[src.index()].index()][el.index()] += 1;
            in_sums[vlabels[dst.index()].index()][el.index()] += 1;
        }
        let avg = |sums: Vec<Vec<u64>>| -> Vec<Vec<f64>> {
            sums.into_iter()
                .enumerate()
                .map(|(vl, row)| {
                    let denom = vertex_counts[vl].max(1) as f64;
                    row.into_iter().map(|s| s as f64 / denom).collect()
                })
                .collect()
        };
        LowOrderStats {
            total_vertices: vertex_counts.iter().sum(),
            total_edges: edge_counts.iter().sum(),
            avg_out_degree: avg(out_sums),
            avg_in_degree: avg(in_sums),
            vertex_counts,
            edge_counts,
        }
    }

    /// Number of vertices with the given label.
    pub fn vertex_count(&self, label: LabelId) -> u64 {
        self.vertex_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Number of edges with the given label.
    pub fn edge_count(&self, label: LabelId) -> u64 {
        self.edge_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Total number of vertices.
    pub fn total_vertices(&self) -> u64 {
        self.total_vertices
    }

    /// Total number of edges.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Average number of outgoing `edge_label` edges per `src_label` vertex.
    pub fn avg_out_degree(&self, src_label: LabelId, edge_label: LabelId) -> f64 {
        self.avg_out_degree
            .get(src_label.index())
            .and_then(|r| r.get(edge_label.index()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Average number of incoming `edge_label` edges per `dst_label` vertex.
    pub fn avg_in_degree(&self, dst_label: LabelId, edge_label: LabelId) -> f64 {
        self.avg_in_degree
            .get(dst_label.index())
            .and_then(|r| r.get(edge_label.index()))
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::schema::fig6_schema;
    use crate::value::PropValue;

    #[test]
    fn stats_count_labels_and_degrees() {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let mut b = GraphBuilder::new(schema);
        let p: Vec<_> = (0..4)
            .map(|i| {
                b.add_vertex_by_name("Person", vec![("id", PropValue::Int(i))])
                    .unwrap()
            })
            .collect();
        let pl = b.add_vertex_by_name("Place", vec![]).unwrap();
        // 3 knows edges from p0
        for i in 1..4 {
            b.add_edge_by_name("Knows", p[0], p[i], vec![]).unwrap();
        }
        // every person located in pl
        for v in &p {
            b.add_edge_by_name("LocatedIn", *v, pl, vec![]).unwrap();
        }
        let g = b.finish();
        let s = LowOrderStats::from_graph(&g);
        assert_eq!(s.vertex_count(person), 4);
        assert_eq!(s.vertex_count(place), 1);
        assert_eq!(s.edge_count(knows), 3);
        assert_eq!(s.edge_count(located), 4);
        assert_eq!(s.total_vertices(), 5);
        assert_eq!(s.total_edges(), 7);
        assert!((s.avg_out_degree(person, knows) - 0.75).abs() < 1e-9);
        assert!((s.avg_out_degree(person, located) - 1.0).abs() < 1e-9);
        assert!((s.avg_in_degree(place, located) - 4.0).abs() < 1e-9);
        assert_eq!(s.avg_out_degree(place, knows), 0.0);
    }
}
