//! Statistics over a property graph: low-order label counts and typed
//! per-(label, key) property statistics.
//!
//! Two layers live here:
//!
//! * [`LowOrderStats`] — per-label vertex/edge counts and average degrees, the
//!   statistics a conventional optimizer (e.g. Neo4j's CypherPlanner) works
//!   with. The GOpt paper contrasts them with *high-order statistics* (pattern
//!   frequencies stored in GLogue, see the `gopt-glogue` crate).
//! * [`PropStats`] — per-(label, property-key) **typed column statistics**
//!   computed in one pass over the PR 4 [`TypedColumn`]s: null count,
//!   distinct-value sketch, min/max, and an equi-width [`Histogram`] for
//!   Int/Float/Date columns (a complete value-count map for Bool/Str; a
//!   conservative fallback for `Mixed`). These are what turn the paper's
//!   Remark 7.1 *pre-defined constant selectivity* into a real, data-driven
//!   estimate for `prop CMP literal` filters.
//!
//! [`GraphStats`] bundles both and is buildable from the monolithic
//! [`PropertyGraph`] **and** from a [`PartitionedGraph`] by merging per-shard
//! statistics.
//!
//! # Mergeability (monolithic ≡ merged shards)
//!
//! Every per-column statistic is designed so that merging per-shard stats is
//! *exactly* equal to computing them on the monolithic graph — not just
//! approximately. This is what makes the partitioned build trustworthy (and
//! testable: `PropStats::from_partitioned(p) == PropStats::from_graph(g)` for
//! any partition count):
//!
//! * **Histograms** use power-of-two bucket widths aligned to absolute value
//!   space (bucket `i` covers `[i·2^e, (i+1)·2^e)`). The width exponent `e` is
//!   the canonical smallest one that fits the column's value range into
//!   [`HISTOGRAM_MAX_BUCKETS`] buckets, so a shard's finer histogram re-bins
//!   *exactly* (integer shift of bucket indices) into the coarser merged one.
//! * **NDV** uses a K-minimum-values sketch over a deterministic value hash:
//!   the K smallest hashes of a union are the merge of the per-shard K
//!   smallest. Exact below K distinct values, an unbiased estimate above.
//! * **Value maps** (Bool/Str) are complete counts capped at
//!   [`VALUES_MAX_DISTINCT`] distinct values; overflowing columns drop the map
//!   on both the monolithic and the merged path (a shard's domain is a subset
//!   of the global domain, so overflow states agree).

use crate::column::TypedColumn;
use crate::graph::PropertyGraph;
use crate::ids::LabelId;
use crate::partition::PartitionedGraph;
use crate::schema::PropType;
use crate::value::PropValue;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Per-label counts and degree summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct LowOrderStats {
    vertex_counts: Vec<u64>,
    edge_counts: Vec<u64>,
    /// Average out-degree indexed by `[src_vertex_label][edge_label]`.
    avg_out_degree: Vec<Vec<f64>>,
    /// Average in-degree indexed by `[dst_vertex_label][edge_label]`.
    avg_in_degree: Vec<Vec<f64>>,
    total_vertices: u64,
    total_edges: u64,
}

impl LowOrderStats {
    /// Compute low-order statistics by a single pass over the graph.
    pub fn from_graph(g: &PropertyGraph) -> Self {
        let nv_labels = g.schema().vertex_label_count();
        let ne_labels = g.schema().edge_label_count();
        let mut vertex_counts = vec![0u64; nv_labels];
        for l in g.schema().vertex_label_ids() {
            vertex_counts[l.index()] = g.vertex_count_by_label(l) as u64;
        }
        let mut edge_counts = vec![0u64; ne_labels];
        for l in g.schema().edge_label_ids() {
            edge_counts[l.index()] = g.edge_count_by_label(l);
        }
        // out-degree sums per (src label, edge label); in-degree per (dst label,
        // edge label): a single pass zipping the columnar edge arrays — no
        // per-edge id indirection
        let mut out_sums = vec![vec![0u64; ne_labels]; nv_labels];
        let mut in_sums = vec![vec![0u64; ne_labels]; nv_labels];
        let vlabels = g.vertex_label_column();
        for ((&el, &src), &dst) in g
            .edge_label_column()
            .iter()
            .zip(g.edge_source_column())
            .zip(g.edge_target_column())
        {
            out_sums[vlabels[src.index()].index()][el.index()] += 1;
            in_sums[vlabels[dst.index()].index()][el.index()] += 1;
        }
        let avg = |sums: Vec<Vec<u64>>| -> Vec<Vec<f64>> {
            sums.into_iter()
                .enumerate()
                .map(|(vl, row)| {
                    let denom = vertex_counts[vl].max(1) as f64;
                    row.into_iter().map(|s| s as f64 / denom).collect()
                })
                .collect()
        };
        LowOrderStats {
            total_vertices: vertex_counts.iter().sum(),
            total_edges: edge_counts.iter().sum(),
            avg_out_degree: avg(out_sums),
            avg_in_degree: avg(in_sums),
            vertex_counts,
            edge_counts,
        }
    }

    /// Number of vertices with the given label.
    pub fn vertex_count(&self, label: LabelId) -> u64 {
        self.vertex_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Number of edges with the given label.
    pub fn edge_count(&self, label: LabelId) -> u64 {
        self.edge_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Number of vertex labels the statistics cover.
    pub fn vertex_label_count(&self) -> usize {
        self.vertex_counts.len()
    }

    /// Number of edge labels the statistics cover.
    pub fn edge_label_count(&self) -> usize {
        self.edge_counts.len()
    }

    /// Total number of vertices.
    pub fn total_vertices(&self) -> u64 {
        self.total_vertices
    }

    /// Total number of edges.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Average number of outgoing `edge_label` edges per `src_label` vertex.
    pub fn avg_out_degree(&self, src_label: LabelId, edge_label: LabelId) -> f64 {
        self.avg_out_degree
            .get(src_label.index())
            .and_then(|r| r.get(edge_label.index()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Average number of incoming `edge_label` edges per `dst_label` vertex.
    pub fn avg_in_degree(&self, dst_label: LabelId, edge_label: LabelId) -> f64 {
        self.avg_in_degree
            .get(dst_label.index())
            .and_then(|r| r.get(edge_label.index()))
            .copied()
            .unwrap_or(0.0)
    }
}

// ---------------------------------------------------------------------------
// Typed property statistics
// ---------------------------------------------------------------------------

/// Maximum number of buckets of an equi-width [`Histogram`].
pub const HISTOGRAM_MAX_BUCKETS: usize = 64;

/// Maximum number of distinct values a Bool/Str column keeps complete counts
/// for; columns with more distinct values drop the map and fall back to the
/// NDV sketch.
pub const VALUES_MAX_DISTINCT: usize = 64;

/// Number of minimum hash values kept by the [`NdvSketch`]; distinct counts up
/// to this are exact.
pub const NDV_SKETCH_K: usize = 256;

/// Smallest bucket-width exponent used for Float histograms (Int/Date columns
/// never go below width `2^0 = 1`).
const FLOAT_E_MIN: i32 = -512;

/// FNV-1a over a canonical byte encoding of a value. Deterministic (no
/// per-process randomness), so per-shard sketches merge exactly.
fn value_hash(v: &PropValue) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        PropValue::Null => eat(&[0]),
        PropValue::Bool(b) => {
            eat(&[1, *b as u8]);
        }
        // Int and integral Float hash identically, matching PropValue's
        // numeric equality (Int(3) == Float(3.0))
        PropValue::Int(i) => {
            eat(&[2]);
            eat(&i.to_le_bytes());
        }
        PropValue::Float(f) => {
            let integral =
                f.fract() == 0.0 && f.abs() < 9.0e15 && !(*f == 0.0 && f.is_sign_negative());
            if integral {
                eat(&[2]);
                eat(&(*f as i64).to_le_bytes());
            } else {
                eat(&[3]);
                eat(&f.to_bits().to_le_bytes());
            }
        }
        PropValue::Date(d) => {
            eat(&[4]);
            eat(&d.to_le_bytes());
        }
        PropValue::Str(s) => {
            eat(&[5]);
            eat(s.as_bytes());
        }
    }
    h
}

/// K-minimum-values distinct-count sketch: the [`NDV_SKETCH_K`] smallest
/// deterministic hashes seen. Merging is set union + truncation, which is
/// exactly the sketch of the union — monolithic and merged builds agree bit
/// for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NdvSketch {
    mins: BTreeSet<u64>,
}

impl NdvSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn insert(&mut self, v: &PropValue) {
        let h = value_hash(v);
        if self.mins.len() < NDV_SKETCH_K {
            self.mins.insert(h);
        } else if let Some(&largest) = self.mins.iter().next_back() {
            if h < largest {
                self.mins.insert(h);
                if self.mins.len() > NDV_SKETCH_K {
                    self.mins.pop_last();
                }
            }
        }
    }

    /// Merge another sketch into this one (union + truncate).
    pub fn merge(&mut self, other: &NdvSketch) {
        self.mins.extend(other.mins.iter().copied());
        while self.mins.len() > NDV_SKETCH_K {
            self.mins.pop_last();
        }
    }

    /// Estimated number of distinct values: exact while fewer than
    /// [`NDV_SKETCH_K`] distinct hashes were seen, the standard KMV estimator
    /// `(K-1) / (kth_min / 2^64)` beyond.
    pub fn estimate(&self) -> f64 {
        if self.mins.len() < NDV_SKETCH_K {
            return self.mins.len() as f64;
        }
        let kth = *self.mins.iter().next_back().expect("sketch is full") as f64;
        if kth <= 0.0 {
            return self.mins.len() as f64;
        }
        (NDV_SKETCH_K as f64 - 1.0) * (u64::MAX as f64) / kth
    }
}

/// Bucket index of `v` at width `2^e`; `None` when the index overflows.
fn bucket_of(v: f64, e: i32) -> Option<i64> {
    let w = 2f64.powi(e);
    if !w.is_finite() || w <= 0.0 {
        return None;
    }
    let x = (v / w).floor();
    if x.is_finite() && x >= -(2f64.powi(62)) && x <= 2f64.powi(62) {
        Some(x as i64)
    } else {
        None
    }
}

/// Whether the value range fits into [`HISTOGRAM_MAX_BUCKETS`] buckets of
/// width `2^e`.
fn fits(min: f64, max: f64, e: i32) -> bool {
    match (bucket_of(min, e), bucket_of(max, e)) {
        (Some(lo), Some(hi)) => {
            hi.wrapping_sub(lo) >= 0 && ((hi - lo) as usize) < HISTOGRAM_MAX_BUCKETS
        }
        _ => false,
    }
}

/// The canonical width exponent for a value range: the smallest `e >= e_min`
/// whose aligned buckets cover `[min, max]` in at most
/// [`HISTOGRAM_MAX_BUCKETS`] buckets. Purely a function of `(min, max,
/// e_min)`, so the monolithic build and the shard merge land on the same
/// exponent.
fn fit_exponent(min: f64, max: f64, e_min: i32) -> i32 {
    let range = max - min;
    let mut e = if range > 0.0 && range.is_finite() {
        ((range / HISTOGRAM_MAX_BUCKETS as f64).log2().ceil() as i32).max(e_min)
    } else {
        e_min
    };
    while e > e_min && fits(min, max, e - 1) {
        e -= 1;
    }
    while !fits(min, max, e) {
        e += 1;
        if e > 1100 {
            break; // unreachable for finite inputs; guard against loops
        }
    }
    e
}

/// An equi-width histogram with power-of-two bucket widths aligned to
/// absolute value space: bucket `start + i` covers
/// `[(start+i)·2^e, (start+i+1)·2^e)`. See the module documentation for why
/// this alignment makes shard merges exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket width exponent (`width = 2^width_log2`).
    width_log2: i32,
    /// Bucket index of `counts[0]`.
    start: i64,
    /// Per-bucket value counts; first and last buckets are non-empty.
    counts: Vec<u64>,
    /// Exact minimum of the histogrammed values.
    min: f64,
    /// Exact maximum of the histogrammed values.
    max: f64,
    /// Total number of histogrammed values.
    total: u64,
}

impl Histogram {
    /// Build from finite values; `None` when `values` is empty. `e_min` is the
    /// smallest width exponent considered (0 for integer-valued columns).
    fn build(values: &[f64], e_min: i32) -> Option<Histogram> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if values.is_empty() || !min.is_finite() || !max.is_finite() {
            return None;
        }
        let e = fit_exponent(min, max, e_min);
        let start = bucket_of(min, e)?;
        let end = bucket_of(max, e)?;
        let mut counts = vec![0u64; (end - start) as usize + 1];
        for &v in values {
            let b = bucket_of(v, e).expect("value within fitted range");
            counts[(b - start) as usize] += 1;
        }
        Some(Histogram {
            width_log2: e,
            start,
            counts,
            min,
            max,
            total: values.len() as u64,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total number of histogrammed values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Minimum and maximum histogrammed value.
    pub fn bounds(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Merge two histograms over the same value space: re-fit the exponent to
    /// the union range (always a coarsening of both, see [`fit_exponent`]),
    /// re-bin each side by integer index shifts (exact), and add counts.
    fn merge(&self, other: &Histogram, e_min: i32) -> Histogram {
        let min = self.min.min(other.min);
        let max = self.max.max(other.max);
        let e = fit_exponent(min, max, e_min);
        let start = bucket_of(min, e).expect("fitted exponent covers the union");
        let end = bucket_of(max, e).expect("fitted exponent covers the union");
        let mut counts = vec![0u64; (end - start) as usize + 1];
        for h in [self, other] {
            debug_assert!(e >= h.width_log2, "merge must coarsen");
            let shift = e - h.width_log2;
            for (i, &c) in h.counts.iter().enumerate() {
                // arithmetic shift = floor division by 2^shift, exact because
                // bucket boundaries are aligned across exponents. Float shards
                // can differ by more than 63 exponent steps (e.g. one shard
                // holding only tiny values, another only huge ones), where the
                // shift saturates: every i64 index floor-divides to 0 or -1.
                let old = h.start + i as i64;
                let idx = if shift >= 63 {
                    if old < 0 {
                        -1
                    } else {
                        0
                    }
                } else {
                    old >> shift
                };
                counts[(idx - start) as usize] += c;
            }
        }
        Histogram {
            width_log2: e,
            start,
            counts,
            min,
            max,
            total: self.total + other.total,
        }
    }

    /// Estimated number of values strictly below `x` (linear interpolation
    /// within the bucket containing `x`).
    pub fn count_lt(&self, x: f64) -> f64 {
        if x <= self.min {
            return 0.0;
        }
        if x > self.max {
            return self.total as f64;
        }
        let w = 2f64.powi(self.width_log2);
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = (self.start + i as i64) as f64 * w;
            let hi = lo + w;
            if hi <= x {
                acc += c as f64;
            } else if lo < x {
                acc += c as f64 * ((x - lo) / w).clamp(0.0, 1.0);
            } else {
                break;
            }
        }
        acc
    }

    /// Estimated number of values equal to `x`, assuming `ndv` distinct
    /// values spread over the column: the per-distinct average, capped by the
    /// count of the bucket containing `x`.
    pub fn count_eq(&self, x: f64, ndv: f64) -> f64 {
        if x < self.min || x > self.max {
            return 0.0;
        }
        let bucket = match bucket_of(x, self.width_log2) {
            Some(b) if b >= self.start && ((b - self.start) as usize) < self.counts.len() => {
                self.counts[(b - self.start) as usize] as f64
            }
            _ => return 0.0,
        };
        (self.total as f64 / ndv.max(1.0)).min(bucket)
    }
}

/// A comparison operator on property values, as stats consumers see it (the
/// same six shapes the PR 4 typed predicate kernels compile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpKind {
    /// Whether the operator accepts the ordering of `value cmp literal`.
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpKind::Eq => ord == Equal,
            CmpKind::Ne => ord != Equal,
            CmpKind::Lt => ord == Less,
            CmpKind::Le => ord != Greater,
            CmpKind::Gt => ord == Greater,
            CmpKind::Ge => ord != Less,
        }
    }
}

/// Per-value estimation basis of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnDetail {
    /// Equi-width histogram (Int/Float/Date columns).
    Histogram(Histogram),
    /// Complete per-value counts (Bool/Str columns); `None` when the column
    /// exceeded [`VALUES_MAX_DISTINCT`] distinct values.
    Values(Option<BTreeMap<PropValue, u64>>),
    /// No per-value basis (`Mixed` columns, kind-mismatched shard merges).
    None,
}

/// Statistics of one (label, property-key) column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of cells holding a proper value (explicit stored `Null`s count
    /// as absent, matching predicate semantics).
    pub non_null: u64,
    /// The column's single value kind; `None` for `Mixed` columns (and for
    /// shard merges whose kinds disagree).
    pub kind: Option<PropType>,
    /// Smallest value under [`PropValue`]'s total order.
    pub min: Option<PropValue>,
    /// Largest value under [`PropValue`]'s total order.
    pub max: Option<PropValue>,
    /// Distinct-count sketch.
    pub ndv: NdvSketch,
    /// Per-value estimation basis.
    pub detail: ColumnDetail,
}

/// The smallest histogram width exponent for a kind (integers never split a
/// unit bucket; floats go down to `2^-512`).
fn e_min_of(kind: PropType) -> i32 {
    match kind {
        PropType::Float => FLOAT_E_MIN,
        _ => 0,
    }
}

impl ColumnStats {
    /// Compute the statistics of one typed column in a single pass.
    pub fn from_column(col: &TypedColumn) -> ColumnStats {
        let mut ndv = NdvSketch::new();
        let mut min: Option<PropValue> = None;
        let mut max: Option<PropValue> = None;
        let mut non_null = 0u64;
        let note = |v: &PropValue,
                    ndv: &mut NdvSketch,
                    min: &mut Option<PropValue>,
                    max: &mut Option<PropValue>| {
            ndv.insert(v);
            if min.as_ref().is_none_or(|m| v < m) {
                *min = Some(v.clone());
            }
            if max.as_ref().is_none_or(|m| v > m) {
                *max = Some(v.clone());
            }
        };
        let detail = match col {
            TypedColumn::Int(vals, valid) | TypedColumn::Date(vals, valid) => {
                let date = matches!(col, TypedColumn::Date(..));
                let mut nums = Vec::new();
                for (i, &v) in vals.iter().enumerate() {
                    if valid.get(i) {
                        non_null += 1;
                        let pv = if date {
                            PropValue::Date(v)
                        } else {
                            PropValue::Int(v)
                        };
                        note(&pv, &mut ndv, &mut min, &mut max);
                        nums.push(v as f64);
                    }
                }
                match Histogram::build(&nums, 0) {
                    Some(h) => ColumnDetail::Histogram(h),
                    None => ColumnDetail::None,
                }
            }
            TypedColumn::Float(vals, valid) => {
                let mut nums = Vec::new();
                for (i, &v) in vals.iter().enumerate() {
                    if valid.get(i) {
                        non_null += 1;
                        note(&PropValue::Float(v), &mut ndv, &mut min, &mut max);
                        if v.is_finite() {
                            nums.push(v);
                        }
                    }
                }
                match Histogram::build(&nums, FLOAT_E_MIN) {
                    Some(h) => ColumnDetail::Histogram(h),
                    None => ColumnDetail::None,
                }
            }
            TypedColumn::Bool(vals, valid) => {
                let mut map = BTreeMap::new();
                for (i, &v) in vals.iter().enumerate() {
                    if valid.get(i) {
                        non_null += 1;
                        let pv = PropValue::Bool(v);
                        note(&pv, &mut ndv, &mut min, &mut max);
                        *map.entry(pv).or_insert(0u64) += 1;
                    }
                }
                ColumnDetail::Values(Some(map))
            }
            TypedColumn::Str(col) => {
                // Dictionary layout: count per-code occurrences over the u32
                // code vector, then materialize `PropValue::Str` only once per
                // distinct dictionary entry.
                let valid = col.validity();
                let mut counts = vec![0u64; col.dict().len()];
                for (i, &code) in col.codes().iter().enumerate() {
                    if valid.get(i) {
                        non_null += 1;
                        counts[code as usize] += 1;
                    }
                }
                let mut map: Option<BTreeMap<PropValue, u64>> = Some(BTreeMap::new());
                for (code, &n) in counts.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let pv = PropValue::Str(col.dict()[code].clone());
                    note(&pv, &mut ndv, &mut min, &mut max);
                    if let Some(m) = map.as_mut() {
                        *m.entry(pv).or_insert(0u64) += n;
                        if m.len() > VALUES_MAX_DISTINCT {
                            map = None;
                        }
                    }
                }
                ColumnDetail::Values(map)
            }
            TypedColumn::Mixed(cells) => {
                for cell in cells.iter().flatten() {
                    if cell.is_null() {
                        continue; // explicit stored Null: absent for predicates
                    }
                    non_null += 1;
                    note(cell, &mut ndv, &mut min, &mut max);
                }
                ColumnDetail::None
            }
        };
        ColumnStats {
            non_null,
            kind: col.kind(),
            min,
            max,
            ndv,
            detail,
        }
    }

    /// Merge another column's statistics into this one. Exact: merging shard
    /// stats equals the monolithic build (see the module documentation).
    pub fn merge(&mut self, other: &ColumnStats) {
        self.non_null += other.non_null;
        self.ndv.merge(&other.ndv);
        if other
            .min
            .as_ref()
            .is_some_and(|m| self.min.as_ref().is_none_or(|s| m < s))
        {
            self.min = other.min.clone();
        }
        if other
            .max
            .as_ref()
            .is_some_and(|m| self.max.as_ref().is_none_or(|s| m > s))
        {
            self.max = other.max.clone();
        }
        let same_kind = self.kind.is_some() && self.kind == other.kind;
        self.detail = if !same_kind {
            ColumnDetail::None
        } else {
            match (&self.detail, &other.detail) {
                (ColumnDetail::Histogram(a), ColumnDetail::Histogram(b)) => {
                    let e_min = e_min_of(self.kind.expect("same_kind checked"));
                    ColumnDetail::Histogram(a.merge(b, e_min))
                }
                (ColumnDetail::Values(Some(a)), ColumnDetail::Values(Some(b))) => {
                    let mut merged = a.clone();
                    for (k, v) in b {
                        *merged.entry(k.clone()).or_insert(0) += v;
                    }
                    if merged.len() > VALUES_MAX_DISTINCT {
                        ColumnDetail::Values(None)
                    } else {
                        ColumnDetail::Values(Some(merged))
                    }
                }
                (ColumnDetail::Values(_), ColumnDetail::Values(_)) => ColumnDetail::Values(None),
                _ => ColumnDetail::None,
            }
        };
        if !same_kind {
            self.kind = None;
        }
    }

    /// Estimated distinct-value count.
    pub fn ndv_estimate(&self) -> f64 {
        self.ndv.estimate().max(1.0)
    }

    /// Estimated number of cells whose value satisfies `value op lit`, or
    /// `None` when the statistics cannot cover the comparison (the caller
    /// falls back to the Remark 7.1 constant). The result is within
    /// `[0, non_null]`.
    pub fn matching(&self, op: CmpKind, lit: &PropValue) -> Option<f64> {
        if lit.is_null() {
            // `x cmp Null` is Null, which is falsy, for every x
            return Some(0.0);
        }
        if self.non_null == 0 {
            return Some(0.0);
        }
        let kind = self.kind?;
        let nn = self.non_null as f64;
        // cross-kind comparisons are constant under PropValue's total order
        // (the same reduction the typed predicate kernels use)
        let same_rank = matches!(
            (kind, lit),
            (
                PropType::Int | PropType::Float,
                PropValue::Int(_) | PropValue::Float(_)
            ) | (PropType::Date, PropValue::Date(_))
                | (PropType::Bool, PropValue::Bool(_))
                | (PropType::Str, PropValue::Str(_))
        );
        if !same_rank {
            let representative = match kind {
                PropType::Int => PropValue::Int(0),
                PropType::Float => PropValue::Float(0.0),
                PropType::Bool => PropValue::Bool(false),
                PropType::Date => PropValue::Date(0),
                PropType::Str => PropValue::str(""),
            };
            let ord = representative.cmp(lit);
            return Some(if op.test(ord) { nn } else { 0.0 });
        }
        match &self.detail {
            ColumnDetail::Histogram(h) => {
                let x = lit.as_float()?;
                let total = h.total() as f64;
                let eq = h.count_eq(x, self.ndv_estimate());
                let lt = h.count_lt(x);
                let est = match op {
                    CmpKind::Eq => eq,
                    CmpKind::Ne => total - eq,
                    CmpKind::Lt => lt,
                    CmpKind::Le => (lt + eq).min(total),
                    CmpKind::Gt => total - (lt + eq).min(total),
                    CmpKind::Ge => total - lt,
                };
                Some(est.clamp(0.0, nn))
            }
            ColumnDetail::Values(Some(map)) => {
                let mut acc = 0u64;
                for (v, c) in map {
                    if op.test(v.cmp(lit)) {
                        acc += c;
                    }
                }
                Some((acc as f64).min(nn))
            }
            ColumnDetail::Values(None) => {
                // complete counts overflowed: equality falls back to the
                // per-distinct average; ranges are uncovered
                let eq = (nn / self.ndv_estimate()).min(nn);
                match op {
                    CmpKind::Eq => Some(eq),
                    CmpKind::Ne => Some(nn - eq),
                    _ => None,
                }
            }
            ColumnDetail::None => None,
        }
    }
}

/// Per-(label, property-key) typed column statistics for one graph, split by
/// element kind (vertex vs edge columns). Keys are property *names*, so the
/// stats survive independently of any particular graph's key interning.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropStats {
    vertex: BTreeMap<LabelId, BTreeMap<String, ColumnStats>>,
    edge: BTreeMap<LabelId, BTreeMap<String, ColumnStats>>,
}

impl PropStats {
    /// Compute property statistics in one pass over the monolithic graph's
    /// typed columns.
    pub fn from_graph(g: &PropertyGraph) -> PropStats {
        let mut stats = PropStats::default();
        for (label, key, col) in g.vertex_prop_columns().iter_columns() {
            stats.vertex.entry(label).or_default().insert(
                g.prop_key_name(key).to_string(),
                ColumnStats::from_column(col),
            );
        }
        for (label, key, col) in g.edge_prop_columns().iter_columns() {
            stats.edge.entry(label).or_default().insert(
                g.prop_key_name(key).to_string(),
                ColumnStats::from_column(col),
            );
        }
        stats
    }

    /// Compute property statistics for a partitioned graph: per-shard vertex
    /// column stats merged shard by shard (each shard re-infers its own
    /// column layout, so this exercises the mergeable design), plus the edge
    /// columns from the global catalog.
    pub fn from_partitioned(pg: &PartitionedGraph) -> PropStats {
        let catalog = pg.catalog();
        let mut stats = PropStats::default();
        for shard in pg.shards() {
            for (label, key, col) in shard.prop_columns().iter_columns() {
                let col_stats = ColumnStats::from_column(col);
                let per_label = stats.vertex.entry(label).or_default();
                match per_label.get_mut(catalog.prop_key_name(key)) {
                    Some(existing) => existing.merge(&col_stats),
                    None => {
                        per_label.insert(catalog.prop_key_name(key).to_string(), col_stats);
                    }
                }
            }
        }
        for (label, key, col) in catalog.edge_prop_columns().iter_columns() {
            stats.edge.entry(label).or_default().insert(
                catalog.prop_key_name(key).to_string(),
                ColumnStats::from_column(col),
            );
        }
        stats
    }

    /// Statistics of the `(vertex label, key name)` column, when any vertex of
    /// that label carries the key. Allocation-free: this sits in the CBO's
    /// innermost frequency loop.
    pub fn vertex_stats(&self, label: LabelId, key: &str) -> Option<&ColumnStats> {
        self.vertex.get(&label)?.get(key)
    }

    /// Statistics of the `(edge label, key name)` column.
    pub fn edge_stats(&self, label: LabelId, key: &str) -> Option<&ColumnStats> {
        self.edge.get(&label)?.get(key)
    }

    /// Number of vertex columns with statistics.
    pub fn vertex_column_count(&self) -> usize {
        self.vertex.values().map(|m| m.len()).sum()
    }

    /// Number of edge columns with statistics.
    pub fn edge_column_count(&self) -> usize {
        self.edge.values().map(|m| m.len()).sum()
    }
}

/// Everything the cost-based optimizer knows about one graph: low-order label
/// counts plus typed property statistics. Buildable from both storage
/// layouts; the partitioned build merges per-shard statistics and is exactly
/// equal to the monolithic one.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Per-label counts and degrees.
    pub low: LowOrderStats,
    /// Per-(label, key) typed column statistics.
    pub props: PropStats,
}

impl GraphStats {
    /// Compute all statistics from the monolithic graph.
    pub fn from_graph(g: &PropertyGraph) -> GraphStats {
        GraphStats {
            low: LowOrderStats::from_graph(g),
            props: PropStats::from_graph(g),
        }
    }

    /// Compute all statistics from a partitioned graph (per-shard property
    /// stats merged; label counts from the global catalog).
    pub fn from_partitioned(pg: &PartitionedGraph) -> GraphStats {
        GraphStats {
            low: LowOrderStats::from_graph(pg.catalog()),
            props: PropStats::from_partitioned(pg),
        }
    }

    /// Convenience: build and wrap in an [`Arc`] for sharing with the
    /// optimizer's selectivity estimator and RBO rules.
    pub fn shared(g: &PropertyGraph) -> Arc<GraphStats> {
        Arc::new(Self::from_graph(g))
    }
}

// ---------------------------------------------------------------------------
// Graph-image codec
// ---------------------------------------------------------------------------
//
// The statistics structs keep their fields private, so their (de)serializers
// live here and plug into the [`crate::image`] section framing. Stats are
// serialized rather than recomputed on load: a cold boot from an image must
// not re-scan every property column.

use crate::image::{
    put_f64, put_i64, put_str, put_u32, put_u64, put_u8, put_value, read_value, Cursor, ImageError,
};

fn put_prop_type(out: &mut Vec<u8>, k: PropType) {
    put_u8(
        out,
        match k {
            PropType::Int => 0,
            PropType::Float => 1,
            PropType::Str => 2,
            PropType::Bool => 3,
            PropType::Date => 4,
        },
    );
}

fn read_prop_type(r: &mut Cursor<'_>) -> Result<PropType, ImageError> {
    Ok(match r.u8()? {
        0 => PropType::Int,
        1 => PropType::Float,
        2 => PropType::Str,
        3 => PropType::Bool,
        4 => PropType::Date,
        t => return Err(r.corrupt(format!("unknown PropType tag {t}"))),
    })
}

impl LowOrderStats {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.vertex_counts.len() as u32);
        for &c in &self.vertex_counts {
            put_u64(out, c);
        }
        put_u32(out, self.edge_counts.len() as u32);
        for &c in &self.edge_counts {
            put_u64(out, c);
        }
        for table in [&self.avg_out_degree, &self.avg_in_degree] {
            for row in table.iter() {
                for &d in row {
                    put_f64(out, d);
                }
            }
        }
        put_u64(out, self.total_vertices);
        put_u64(out, self.total_edges);
    }

    pub(crate) fn decode(r: &mut Cursor<'_>) -> Result<LowOrderStats, ImageError> {
        let n_v = r.count_capped(8, "vertex counts")?;
        let mut vertex_counts = Vec::with_capacity(n_v);
        for _ in 0..n_v {
            vertex_counts.push(r.u64()?);
        }
        let n_e = r.count_capped(8, "edge counts")?;
        let mut edge_counts = Vec::with_capacity(n_e);
        for _ in 0..n_e {
            edge_counts.push(r.u64()?);
        }
        // Degree tables are dense (vertex labels × edge labels); the counts
        // above fix their shape, so no lengths are stored.
        let read_table = |r: &mut Cursor<'_>| -> Result<Vec<Vec<f64>>, ImageError> {
            let mut table = Vec::with_capacity(n_v);
            for _ in 0..n_v {
                let mut row = Vec::with_capacity(n_e);
                for _ in 0..n_e {
                    row.push(r.f64()?);
                }
                table.push(row);
            }
            Ok(table)
        };
        let avg_out_degree = read_table(r)?;
        let avg_in_degree = read_table(r)?;
        Ok(LowOrderStats {
            vertex_counts,
            edge_counts,
            avg_out_degree,
            avg_in_degree,
            total_vertices: r.u64()?,
            total_edges: r.u64()?,
        })
    }
}

impl NdvSketch {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.mins.len() as u32);
        for &m in &self.mins {
            put_u64(out, m);
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<NdvSketch, ImageError> {
        let n = r.count_capped(8, "ndv sketch")?;
        if n > NDV_SKETCH_K {
            return Err(r.corrupt(format!("ndv sketch holds {n} > K={NDV_SKETCH_K} hashes")));
        }
        let mut mins = BTreeSet::new();
        for _ in 0..n {
            mins.insert(r.u64()?);
        }
        Ok(NdvSketch { mins })
    }
}

impl Histogram {
    fn encode(&self, out: &mut Vec<u8>) {
        put_i64(out, i64::from(self.width_log2));
        put_i64(out, self.start);
        put_u32(out, self.counts.len() as u32);
        for &c in &self.counts {
            put_u64(out, c);
        }
        put_f64(out, self.min);
        put_f64(out, self.max);
        put_u64(out, self.total);
    }

    fn decode(r: &mut Cursor<'_>) -> Result<Histogram, ImageError> {
        let width_log2 = i32::try_from(r.i64()?)
            .map_err(|_| r.corrupt("histogram width exponent out of range"))?;
        let start = r.i64()?;
        let n = r.count_capped(8, "histogram buckets")?;
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            counts.push(r.u64()?);
        }
        Ok(Histogram {
            width_log2,
            start,
            counts,
            min: r.f64()?,
            max: r.f64()?,
            total: r.u64()?,
        })
    }
}

impl ColumnStats {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.non_null);
        match self.kind {
            None => put_u8(out, 0),
            Some(k) => {
                put_u8(out, 1);
                put_prop_type(out, k);
            }
        }
        for v in [&self.min, &self.max] {
            match v {
                None => put_u8(out, 0),
                Some(v) => {
                    put_u8(out, 1);
                    put_value(out, v);
                }
            }
        }
        self.ndv.encode(out);
        match &self.detail {
            ColumnDetail::None => put_u8(out, 0),
            ColumnDetail::Histogram(h) => {
                put_u8(out, 1);
                h.encode(out);
            }
            ColumnDetail::Values(None) => put_u8(out, 2),
            ColumnDetail::Values(Some(map)) => {
                put_u8(out, 3);
                put_u32(out, map.len() as u32);
                for (v, c) in map {
                    put_value(out, v);
                    put_u64(out, *c);
                }
            }
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<ColumnStats, ImageError> {
        let non_null = r.u64()?;
        let kind = match r.u8()? {
            0 => None,
            1 => Some(read_prop_type(r)?),
            t => return Err(r.corrupt(format!("unknown kind tag {t}"))),
        };
        let read_opt = |r: &mut Cursor<'_>| -> Result<Option<PropValue>, ImageError> {
            Ok(match r.u8()? {
                0 => None,
                1 => Some(read_value(r)?),
                t => return Err(r.corrupt(format!("unknown option tag {t}"))),
            })
        };
        let min = read_opt(r)?;
        let max = read_opt(r)?;
        let ndv = NdvSketch::decode(r)?;
        let detail = match r.u8()? {
            0 => ColumnDetail::None,
            1 => ColumnDetail::Histogram(Histogram::decode(r)?),
            2 => ColumnDetail::Values(None),
            3 => {
                let n = r.count_capped(9, "value map")?;
                if n > VALUES_MAX_DISTINCT {
                    return Err(r.corrupt(format!(
                        "value map holds {n} > {VALUES_MAX_DISTINCT} entries"
                    )));
                }
                let mut map = BTreeMap::new();
                for _ in 0..n {
                    let v = read_value(r)?;
                    let c = r.u64()?;
                    map.insert(v, c);
                }
                ColumnDetail::Values(Some(map))
            }
            t => return Err(r.corrupt(format!("unknown detail tag {t}"))),
        };
        Ok(ColumnStats {
            non_null,
            kind,
            min,
            max,
            ndv,
            detail,
        })
    }
}

fn encode_stats_side(out: &mut Vec<u8>, side: &BTreeMap<LabelId, BTreeMap<String, ColumnStats>>) {
    put_u32(out, side.len() as u32);
    for (label, cols) in side {
        put_u32(out, u32::from(label.0));
        put_u32(out, cols.len() as u32);
        for (key, stats) in cols {
            put_str(out, key);
            stats.encode(out);
        }
    }
}

fn decode_stats_side(
    r: &mut Cursor<'_>,
) -> Result<BTreeMap<LabelId, BTreeMap<String, ColumnStats>>, ImageError> {
    let n_labels = r.count_capped(8, "stats labels")?;
    let mut side = BTreeMap::new();
    for _ in 0..n_labels {
        let raw = r.u32()?;
        let label =
            LabelId(u16::try_from(raw).map_err(|_| r.corrupt("stats label id out of range"))?);
        let n_cols = r.count_capped(4, "stats columns")?;
        let mut cols = BTreeMap::new();
        for _ in 0..n_cols {
            let key = r.str()?;
            cols.insert(key, ColumnStats::decode(r)?);
        }
        side.insert(label, cols);
    }
    Ok(side)
}

impl PropStats {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        encode_stats_side(out, &self.vertex);
        encode_stats_side(out, &self.edge);
    }

    pub(crate) fn decode(r: &mut Cursor<'_>) -> Result<PropStats, ImageError> {
        Ok(PropStats {
            vertex: decode_stats_side(r)?,
            edge: decode_stats_side(r)?,
        })
    }
}

impl GraphStats {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        self.low.encode(out);
        self.props.encode(out);
    }

    pub(crate) fn decode(r: &mut Cursor<'_>) -> Result<GraphStats, ImageError> {
        Ok(GraphStats {
            low: LowOrderStats::decode(r)?,
            props: PropStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::schema::fig6_schema;
    use crate::value::PropValue;

    #[test]
    fn stats_count_labels_and_degrees() {
        let schema = fig6_schema();
        let person = schema.vertex_label("Person").unwrap();
        let place = schema.vertex_label("Place").unwrap();
        let knows = schema.edge_label("Knows").unwrap();
        let located = schema.edge_label("LocatedIn").unwrap();
        let mut b = GraphBuilder::new(schema);
        let p: Vec<_> = (0..4)
            .map(|i| {
                b.add_vertex_by_name("Person", vec![("id", PropValue::Int(i))])
                    .unwrap()
            })
            .collect();
        let pl = b.add_vertex_by_name("Place", vec![]).unwrap();
        // 3 knows edges from p0
        for i in 1..4 {
            b.add_edge_by_name("Knows", p[0], p[i], vec![]).unwrap();
        }
        // every person located in pl
        for v in &p {
            b.add_edge_by_name("LocatedIn", *v, pl, vec![]).unwrap();
        }
        let g = b.finish();
        let s = LowOrderStats::from_graph(&g);
        assert_eq!(s.vertex_count(person), 4);
        assert_eq!(s.vertex_count(place), 1);
        assert_eq!(s.edge_count(knows), 3);
        assert_eq!(s.edge_count(located), 4);
        assert_eq!(s.total_vertices(), 5);
        assert_eq!(s.total_edges(), 7);
        assert!((s.avg_out_degree(person, knows) - 0.75).abs() < 1e-9);
        assert!((s.avg_out_degree(person, located) - 1.0).abs() < 1e-9);
        assert!((s.avg_in_degree(place, located) - 4.0).abs() < 1e-9);
        assert_eq!(s.avg_out_degree(place, knows), 0.0);
    }

    fn int_column(vals: &[Option<i64>]) -> TypedColumn {
        TypedColumn::from_cells(vals.iter().map(|v| v.map(PropValue::Int)).collect())
    }

    #[test]
    fn histogram_estimates_int_ranges() {
        // 0..=99 dense
        let col = int_column(&(0..100).map(Some).collect::<Vec<_>>());
        let s = ColumnStats::from_column(&col);
        assert_eq!(s.non_null, 100);
        assert_eq!(s.kind, Some(PropType::Int));
        assert_eq!(s.min, Some(PropValue::Int(0)));
        assert_eq!(s.max, Some(PropValue::Int(99)));
        assert!((s.ndv_estimate() - 100.0).abs() < 1e-9, "exact below K");
        let ColumnDetail::Histogram(h) = &s.detail else {
            panic!("int column gets a histogram");
        };
        assert!(h.buckets() <= HISTOGRAM_MAX_BUCKETS);
        assert_eq!(h.total(), 100);
        // `< 50` is half the column
        let m = s.matching(CmpKind::Lt, &PropValue::Int(50)).unwrap();
        assert!((m - 50.0).abs() <= 2.0, "lt 50 ~ 50, got {m}");
        // `>= 90` is a tenth
        let m = s.matching(CmpKind::Ge, &PropValue::Int(90)).unwrap();
        assert!((m - 10.0).abs() <= 2.0, "ge 90 ~ 10, got {m}");
        // equality ~ 1 row
        let m = s.matching(CmpKind::Eq, &PropValue::Int(7)).unwrap();
        assert!((0.5..=2.0).contains(&m), "eq ~ 1, got {m}");
        // out-of-range literals
        assert_eq!(s.matching(CmpKind::Lt, &PropValue::Int(-5)), Some(0.0));
        assert_eq!(s.matching(CmpKind::Gt, &PropValue::Int(500)), Some(0.0));
        assert_eq!(s.matching(CmpKind::Eq, &PropValue::Int(500)), Some(0.0));
        // Null literal never matches
        assert_eq!(s.matching(CmpKind::Eq, &PropValue::Null), Some(0.0));
        // cross-kind literal: Int column < Str literal is constant-true
        let m = s.matching(CmpKind::Lt, &PropValue::str("x")).unwrap();
        assert_eq!(m, 100.0);
        let m = s.matching(CmpKind::Gt, &PropValue::str("x")).unwrap();
        assert_eq!(m, 0.0);
    }

    #[test]
    fn value_maps_are_exact_for_strings_and_bools() {
        let col = TypedColumn::from_cells(vec![
            Some(PropValue::str("a")),
            Some(PropValue::str("a")),
            Some(PropValue::str("b")),
            None,
        ]);
        let s = ColumnStats::from_column(&col);
        assert_eq!(s.non_null, 3);
        assert_eq!(s.matching(CmpKind::Eq, &PropValue::str("a")), Some(2.0));
        assert_eq!(s.matching(CmpKind::Eq, &PropValue::str("z")), Some(0.0));
        assert_eq!(s.matching(CmpKind::Ne, &PropValue::str("a")), Some(1.0));
        assert_eq!(s.matching(CmpKind::Lt, &PropValue::str("b")), Some(2.0));

        let col = TypedColumn::from_cells(vec![
            Some(PropValue::Bool(true)),
            Some(PropValue::Bool(false)),
            Some(PropValue::Bool(true)),
        ]);
        let s = ColumnStats::from_column(&col);
        assert_eq!(s.matching(CmpKind::Eq, &PropValue::Bool(true)), Some(2.0));
    }

    #[test]
    fn string_overflow_drops_the_map_but_keeps_eq_estimates() {
        let cells: Vec<Option<PropValue>> = (0..(VALUES_MAX_DISTINCT + 10))
            .map(|i| Some(PropValue::str(format!("s{i}"))))
            .collect();
        let s = ColumnStats::from_column(&TypedColumn::from_cells(cells));
        assert_eq!(s.detail, ColumnDetail::Values(None));
        let eq = s.matching(CmpKind::Eq, &PropValue::str("s1")).unwrap();
        assert!(eq > 0.0 && eq < 2.0);
        assert!(s.matching(CmpKind::Lt, &PropValue::str("s1")).is_none());
    }

    #[test]
    fn mixed_columns_fall_back_but_keep_min_max_ndv() {
        let col = TypedColumn::from_cells(vec![
            Some(PropValue::Int(1)),
            Some(PropValue::str("x")),
            Some(PropValue::Null),
            None,
        ]);
        let s = ColumnStats::from_column(&col);
        assert_eq!(s.kind, None);
        assert_eq!(s.non_null, 2, "explicit Null counts as absent");
        assert_eq!(s.min, Some(PropValue::Int(1)));
        assert_eq!(s.max, Some(PropValue::str("x")));
        assert!(s.matching(CmpKind::Eq, &PropValue::Int(1)).is_none());
    }

    #[test]
    fn ndv_sketch_merges_exactly_and_estimates_large_domains() {
        let mut a = NdvSketch::new();
        let mut b = NdvSketch::new();
        let mut whole = NdvSketch::new();
        for i in 0..5000i64 {
            let v = PropValue::Int(i);
            if i % 2 == 0 {
                a.insert(&v);
            } else {
                b.insert(&v);
            }
            whole.insert(&v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole, "KMV merge is exact");
        let est = whole.estimate();
        assert!(
            est > 2500.0 && est < 10000.0,
            "estimate {est} should be near 5000"
        );
        // small domains are exact
        let mut small = NdvSketch::new();
        for i in 0..10 {
            small.insert(&PropValue::Int(i));
            small.insert(&PropValue::Int(i)); // duplicates don't count
        }
        assert_eq!(small.estimate(), 10.0);
    }

    #[test]
    fn histogram_merge_survives_extreme_float_exponent_gaps() {
        // one shard holds only a tiny value (fit exponent ~ -63), the other
        // only a huge one (~ 44): the re-bin shift exceeds 63 and must
        // saturate instead of overflowing — and still equal the monolithic
        // build
        let tiny = Histogram::build(&[0.5], FLOAT_E_MIN).unwrap();
        let huge = Histogram::build(&[1.0e15], FLOAT_E_MIN).unwrap();
        let merged = tiny.merge(&huge, FLOAT_E_MIN);
        let mono = Histogram::build(&[0.5, 1.0e15], FLOAT_E_MIN).unwrap();
        assert_eq!(merged, mono);
        // negative side too
        let neg = Histogram::build(&[-0.5], FLOAT_E_MIN).unwrap();
        let merged = neg.merge(&huge, FLOAT_E_MIN);
        let mono = Histogram::build(&[-0.5, 1.0e15], FLOAT_E_MIN).unwrap();
        assert_eq!(merged, mono);
        // end-to-end: partitioned stats over such a column still equal the
        // monolithic build (HashPartitioner splits consecutive vertex ids)
        let mut b = GraphBuilder::new(fig6_schema());
        for v in [0.5f64, 1.0e15, -0.25, 3.0] {
            b.add_vertex_by_name("Person", vec![("score", PropValue::Float(v))])
                .unwrap();
        }
        let g = b.finish();
        let mono = GraphStats::from_graph(&g);
        for p in [2usize, 3, 4] {
            let pg = PartitionedGraph::build(&g, p);
            assert_eq!(mono, GraphStats::from_partitioned(&pg), "p = {p}");
        }
    }

    #[test]
    fn histogram_merge_equals_monolithic_build() {
        // deliberately skewed split: shard ranges differ so widths differ
        let all: Vec<f64> = (0..500).map(|i| (i * i % 997) as f64).collect();
        let (left, right) = all.split_at(123);
        let mono = Histogram::build(&all, 0).unwrap();
        let merged = Histogram::build(left, 0)
            .unwrap()
            .merge(&Histogram::build(right, 0).unwrap(), 0);
        assert_eq!(mono, merged);
        // floats too, with fractional widths
        let all: Vec<f64> = (0..400).map(|i| i as f64 * 0.03125).collect();
        let (left, right) = all.split_at(57);
        let mono = Histogram::build(&all, FLOAT_E_MIN).unwrap();
        let merged = Histogram::build(left, FLOAT_E_MIN)
            .unwrap()
            .merge(&Histogram::build(right, FLOAT_E_MIN).unwrap(), FLOAT_E_MIN);
        assert_eq!(mono, merged);
    }

    fn prop_graph() -> PropertyGraph {
        let mut b = GraphBuilder::new(fig6_schema());
        let mut people = Vec::new();
        for i in 0..40i64 {
            let mut props = vec![
                ("id", PropValue::Int(i)),
                ("score", PropValue::Float(i as f64 / 4.0)),
                ("name", PropValue::str(format!("p{}", i % 5))),
            ];
            if i % 3 == 0 {
                props.push(("seen", PropValue::Date(1000 + i)));
            }
            props.push(if i < 20 {
                ("tag", PropValue::Int(i))
            } else {
                ("tag", PropValue::str("t"))
            });
            people.push(b.add_vertex_by_name("Person", props).unwrap());
        }
        let place = b
            .add_vertex_by_name("Place", vec![("name", PropValue::str("China"))])
            .unwrap();
        for (i, v) in people.iter().enumerate() {
            b.add_edge_by_name(
                "LocatedIn",
                *v,
                place,
                vec![("w", PropValue::Int(i as i64 % 7))],
            )
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn prop_stats_cover_vertex_and_edge_columns() {
        let g = prop_graph();
        let person = g.schema().vertex_label("Person").unwrap();
        let located = g.schema().edge_label("LocatedIn").unwrap();
        let stats = PropStats::from_graph(&g);
        let id = stats.vertex_stats(person, "id").unwrap();
        assert_eq!(id.non_null, 40);
        assert_eq!(id.kind, Some(PropType::Int));
        let seen = stats.vertex_stats(person, "seen").unwrap();
        assert_eq!(seen.non_null, 14, "sparse Date column");
        assert_eq!(seen.kind, Some(PropType::Date));
        let name = stats.vertex_stats(person, "name").unwrap();
        assert_eq!(name.matching(CmpKind::Eq, &PropValue::str("p0")), Some(8.0));
        let tag = stats.vertex_stats(person, "tag").unwrap();
        assert_eq!(tag.kind, None, "mixed column");
        let w = stats.edge_stats(located, "w").unwrap();
        assert_eq!(w.non_null, 40);
        assert!(stats.vertex_stats(person, "ghost").is_none());
        assert!(stats.vertex_column_count() >= 4);
        assert!(stats.edge_column_count() >= 1);
    }

    #[test]
    fn partitioned_stats_equal_monolithic_stats() {
        let g = prop_graph();
        let mono = GraphStats::from_graph(&g);
        for p in [1usize, 2, 3, 4] {
            let pg = PartitionedGraph::build(&g, p);
            let merged = GraphStats::from_partitioned(&pg);
            assert_eq!(mono, merged, "p = {p}");
        }
        let shared = GraphStats::shared(&g);
        assert_eq!(*shared, mono);
    }
}
