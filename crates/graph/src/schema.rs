//! Graph schema: vertex/edge label definitions and their connectivity.
//!
//! The schema plays the role of `S` in the paper's type-inference algorithm
//! (Algorithm 1): given a vertex type `t`, the optimizer needs to know which
//! vertex types are reachable over which edge types in the outgoing
//! (`N_S(t)`, `N^E_S(t)`) and incoming directions.
//!
//! In a *schema-strict* system (GraphScope-like) the schema is declared up
//! front. In a *schema-loose* system (Neo4j-like) it can be extracted from the
//! data (see [`GraphSchema::extract_from`][crate::PropertyGraph]), which is how
//! the paper's Remark 6.1 handles Neo4j.

use crate::error::GraphError;
use crate::ids::LabelId;
use std::collections::HashMap;

/// Data type of a declared property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Date (days since epoch).
    Date,
}

/// Declaration of a property on a vertex or edge label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDef {
    /// Property name (e.g. `name`, `creationDate`).
    pub name: String,
    /// Declared data type.
    pub kind: PropType,
}

impl PropertyDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: PropType) -> Self {
        PropertyDef {
            name: name.into(),
            kind,
        }
    }
}

/// Definition of a vertex label (type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexLabelDef {
    /// Label name (e.g. `Person`).
    pub name: String,
    /// Declared properties.
    pub properties: Vec<PropertyDef>,
}

/// Definition of an edge label (type), including which (source, destination)
/// vertex-label pairs it may connect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeLabelDef {
    /// Label name (e.g. `KNOWS`).
    pub name: String,
    /// Permitted (source label, destination label) pairs.
    pub endpoints: Vec<(LabelId, LabelId)>,
    /// Declared properties.
    pub properties: Vec<PropertyDef>,
}

/// The schema of a property graph: all vertex and edge label definitions.
///
/// Vertex labels and edge labels have independent [`LabelId`] spaces, each dense
/// from 0.
#[derive(Debug, Clone, Default)]
pub struct GraphSchema {
    vertex_labels: Vec<VertexLabelDef>,
    edge_labels: Vec<EdgeLabelDef>,
    vertex_by_name: HashMap<String, LabelId>,
    edge_by_name: HashMap<String, LabelId>,
}

impl GraphSchema {
    /// Create an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a new vertex label. Returns its id.
    pub fn add_vertex_label(
        &mut self,
        name: impl Into<String>,
        properties: Vec<PropertyDef>,
    ) -> Result<LabelId, GraphError> {
        let name = name.into();
        if self.vertex_by_name.contains_key(&name) {
            return Err(GraphError::DuplicateLabel(name));
        }
        let id = LabelId(self.vertex_labels.len() as u16);
        self.vertex_by_name.insert(name.clone(), id);
        self.vertex_labels.push(VertexLabelDef { name, properties });
        Ok(id)
    }

    /// Declare a new edge label connecting the given (src, dst) vertex-label pairs.
    pub fn add_edge_label(
        &mut self,
        name: impl Into<String>,
        endpoints: Vec<(LabelId, LabelId)>,
        properties: Vec<PropertyDef>,
    ) -> Result<LabelId, GraphError> {
        let name = name.into();
        if self.edge_by_name.contains_key(&name) {
            return Err(GraphError::DuplicateLabel(name));
        }
        for (s, d) in &endpoints {
            if s.index() >= self.vertex_labels.len() || d.index() >= self.vertex_labels.len() {
                return Err(GraphError::InvalidLabelId(s.0.max(d.0)));
            }
        }
        let id = LabelId(self.edge_labels.len() as u16);
        self.edge_by_name.insert(name.clone(), id);
        self.edge_labels.push(EdgeLabelDef {
            name,
            endpoints,
            properties,
        });
        Ok(id)
    }

    /// Add another permitted (src, dst) endpoint pair to an existing edge label.
    pub fn add_edge_endpoint(
        &mut self,
        edge_label: LabelId,
        src: LabelId,
        dst: LabelId,
    ) -> Result<(), GraphError> {
        let def = self
            .edge_labels
            .get_mut(edge_label.index())
            .ok_or(GraphError::InvalidLabelId(edge_label.0))?;
        if !def.endpoints.contains(&(src, dst)) {
            def.endpoints.push((src, dst));
        }
        Ok(())
    }

    /// Number of vertex labels.
    pub fn vertex_label_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edge labels.
    pub fn edge_label_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// All vertex label ids.
    pub fn vertex_label_ids(&self) -> impl Iterator<Item = LabelId> + '_ {
        (0..self.vertex_labels.len() as u16).map(LabelId)
    }

    /// All edge label ids.
    pub fn edge_label_ids(&self) -> impl Iterator<Item = LabelId> + '_ {
        (0..self.edge_labels.len() as u16).map(LabelId)
    }

    /// Look up a vertex label by name.
    pub fn vertex_label(&self, name: &str) -> Option<LabelId> {
        self.vertex_by_name.get(name).copied()
    }

    /// Look up an edge label by name.
    pub fn edge_label(&self, name: &str) -> Option<LabelId> {
        self.edge_by_name.get(name).copied()
    }

    /// Name of a vertex label.
    pub fn vertex_label_name(&self, id: LabelId) -> &str {
        &self.vertex_labels[id.index()].name
    }

    /// Name of an edge label.
    pub fn edge_label_name(&self, id: LabelId) -> &str {
        &self.edge_labels[id.index()].name
    }

    /// Definition of a vertex label.
    pub fn vertex_label_def(&self, id: LabelId) -> &VertexLabelDef {
        &self.vertex_labels[id.index()]
    }

    /// Definition of an edge label.
    pub fn edge_label_def(&self, id: LabelId) -> &EdgeLabelDef {
        &self.edge_labels[id.index()]
    }

    /// The permitted (source, destination) vertex-label pairs of an edge label.
    pub fn edge_endpoints(&self, edge_label: LabelId) -> &[(LabelId, LabelId)] {
        &self.edge_labels[edge_label.index()].endpoints
    }

    /// Whether `edge_label` may connect a `src`-labelled vertex to a `dst`-labelled vertex.
    pub fn can_connect(&self, src: LabelId, edge_label: LabelId, dst: LabelId) -> bool {
        self.edge_endpoints(edge_label).contains(&(src, dst))
    }

    /// Vertex labels reachable from `vlabel` over one **outgoing** edge: the paper's `N_S(t)`.
    pub fn out_vertex_neighbors(&self, vlabel: LabelId) -> Vec<LabelId> {
        let mut out = Vec::new();
        for e in &self.edge_labels {
            for &(s, d) in &e.endpoints {
                if s == vlabel && !out.contains(&d) {
                    out.push(d);
                }
            }
        }
        out
    }

    /// Edge labels that may leave a `vlabel`-labelled vertex: the paper's `N^E_S(t)`.
    pub fn out_edge_types(&self, vlabel: LabelId) -> Vec<LabelId> {
        let mut out = Vec::new();
        for (i, e) in self.edge_labels.iter().enumerate() {
            if e.endpoints.iter().any(|&(s, _)| s == vlabel) {
                out.push(LabelId(i as u16));
            }
        }
        out
    }

    /// Vertex labels that can reach `vlabel` over one **incoming** edge.
    pub fn in_vertex_neighbors(&self, vlabel: LabelId) -> Vec<LabelId> {
        let mut out = Vec::new();
        for e in &self.edge_labels {
            for &(s, d) in &e.endpoints {
                if d == vlabel && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Edge labels that may enter a `vlabel`-labelled vertex.
    pub fn in_edge_types(&self, vlabel: LabelId) -> Vec<LabelId> {
        let mut out = Vec::new();
        for (i, e) in self.edge_labels.iter().enumerate() {
            if e.endpoints.iter().any(|&(_, d)| d == vlabel) {
                out.push(LabelId(i as u16));
            }
        }
        out
    }

    /// Destination vertex labels reachable from `src` over the specific `edge_label`.
    pub fn dst_labels_of(&self, src: LabelId, edge_label: LabelId) -> Vec<LabelId> {
        self.edge_endpoints(edge_label)
            .iter()
            .filter(|&&(s, _)| s == src)
            .map(|&(_, d)| d)
            .collect()
    }

    /// Source vertex labels that can reach `dst` over the specific `edge_label`.
    pub fn src_labels_of(&self, dst: LabelId, edge_label: LabelId) -> Vec<LabelId> {
        self.edge_endpoints(edge_label)
            .iter()
            .filter(|&&(_, d)| d == dst)
            .map(|&(s, _)| s)
            .collect()
    }

    /// Whether the vertex label has any outgoing edge label declared (|N_S(t)| = 0 check
    /// in Algorithm 1).
    pub fn has_out_edges(&self, vlabel: LabelId) -> bool {
        self.edge_labels
            .iter()
            .any(|e| e.endpoints.iter().any(|&(s, _)| s == vlabel))
    }

    /// Whether the vertex label has any incoming edge label declared.
    pub fn has_in_edges(&self, vlabel: LabelId) -> bool {
        self.edge_labels
            .iter()
            .any(|e| e.endpoints.iter().any(|&(_, d)| d == vlabel))
    }

    /// The declared (or inferred, see
    /// [`register_vertex_prop_type`](Self::register_vertex_prop_type)) value
    /// type of property `name` on vertex label `label`.
    pub fn vertex_prop_type(&self, label: LabelId, name: &str) -> Option<PropType> {
        self.vertex_labels
            .get(label.index())?
            .properties
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.kind)
    }

    /// The declared (or inferred) value type of property `name` on edge label
    /// `label`.
    pub fn edge_prop_type(&self, label: LabelId, name: &str) -> Option<PropType> {
        self.edge_labels
            .get(label.index())?
            .properties
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.kind)
    }

    /// Record a property type inferred from the data for a vertex label.
    /// A type already declared (or previously registered) for the name wins —
    /// registration never overrides.
    pub fn register_vertex_prop_type(&mut self, label: LabelId, name: &str, kind: PropType) {
        if let Some(def) = self.vertex_labels.get_mut(label.index()) {
            if !def.properties.iter().any(|p| p.name == name) {
                def.properties.push(PropertyDef::new(name, kind));
            }
        }
    }

    /// Record a property type inferred from the data for an edge label
    /// (declared types win, as for vertices).
    pub fn register_edge_prop_type(&mut self, label: LabelId, name: &str, kind: PropType) {
        if let Some(def) = self.edge_labels.get_mut(label.index()) {
            if !def.properties.iter().any(|p| p.name == name) {
                def.properties.push(PropertyDef::new(name, kind));
            }
        }
    }
}

/// Build the schema of the paper's Fig. 5(a): `Person`, `Post`, `Forum` with edges
/// `Knows (Person->Person)`, `Likes (Person->Post)`, `HasMember (Forum->Person)`,
/// `ContainerOf (Forum->Post)`. Used by examples and tests of type inference.
pub fn fig5_schema() -> GraphSchema {
    let mut s = GraphSchema::new();
    let person = s
        .add_vertex_label(
            "Person",
            vec![
                PropertyDef::new("id", PropType::Int),
                PropertyDef::new("name", PropType::Str),
            ],
        )
        .unwrap();
    let post = s
        .add_vertex_label(
            "Post",
            vec![
                PropertyDef::new("id", PropType::Int),
                PropertyDef::new("title", PropType::Str),
            ],
        )
        .unwrap();
    let forum = s
        .add_vertex_label(
            "Forum",
            vec![
                PropertyDef::new("id", PropType::Int),
                PropertyDef::new("name", PropType::Str),
            ],
        )
        .unwrap();
    s.add_edge_label("Knows", vec![(person, person)], vec![])
        .unwrap();
    s.add_edge_label("Likes", vec![(person, post)], vec![])
        .unwrap();
    s.add_edge_label("HasMember", vec![(forum, person)], vec![])
        .unwrap();
    s.add_edge_label("ContainerOf", vec![(forum, post)], vec![])
        .unwrap();
    s
}

/// Build the schema used by the paper's Fig. 5(b,c) and Fig. 6 cardinality-estimation
/// examples: `Person`, `Product`, `Place` with edges `Knows (Person->Person)`,
/// `Purchases (Person->Product)`, `LocatedIn (Person->Place)`, `ProducedIn (Product->Place)`.
pub fn fig6_schema() -> GraphSchema {
    let mut s = GraphSchema::new();
    let person = s
        .add_vertex_label(
            "Person",
            vec![
                PropertyDef::new("id", PropType::Int),
                PropertyDef::new("name", PropType::Str),
            ],
        )
        .unwrap();
    let product = s
        .add_vertex_label(
            "Product",
            vec![
                PropertyDef::new("id", PropType::Int),
                PropertyDef::new("name", PropType::Str),
            ],
        )
        .unwrap();
    let place = s
        .add_vertex_label(
            "Place",
            vec![
                PropertyDef::new("id", PropType::Int),
                PropertyDef::new("name", PropType::Str),
            ],
        )
        .unwrap();
    s.add_edge_label("Knows", vec![(person, person)], vec![])
        .unwrap();
    s.add_edge_label("Purchases", vec![(person, product)], vec![])
        .unwrap();
    s.add_edge_label("LocatedIn", vec![(person, place)], vec![])
        .unwrap();
    s.add_edge_label("ProducedIn", vec![(product, place)], vec![])
        .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup_by_name_and_id() {
        let s = fig6_schema();
        let person = s.vertex_label("Person").unwrap();
        let place = s.vertex_label("Place").unwrap();
        assert_eq!(s.vertex_label_name(person), "Person");
        assert_eq!(s.vertex_label_count(), 3);
        assert_eq!(s.edge_label_count(), 4);
        let located = s.edge_label("LocatedIn").unwrap();
        assert_eq!(s.edge_label_name(located), "LocatedIn");
        assert!(s.can_connect(person, located, place));
        assert!(!s.can_connect(place, located, person));
        assert!(s.vertex_label("Nope").is_none());
        assert!(s.edge_label("Nope").is_none());
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let mut s = GraphSchema::new();
        s.add_vertex_label("A", vec![]).unwrap();
        assert!(matches!(
            s.add_vertex_label("A", vec![]),
            Err(GraphError::DuplicateLabel(_))
        ));
        s.add_edge_label("E", vec![], vec![]).unwrap();
        assert!(matches!(
            s.add_edge_label("E", vec![], vec![]),
            Err(GraphError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn edge_label_with_bad_endpoint_is_rejected() {
        let mut s = GraphSchema::new();
        let a = s.add_vertex_label("A", vec![]).unwrap();
        let bad = LabelId(9);
        assert!(s.add_edge_label("E", vec![(a, bad)], vec![]).is_err());
    }

    #[test]
    fn connectivity_queries_match_fig6() {
        let s = fig6_schema();
        let person = s.vertex_label("Person").unwrap();
        let product = s.vertex_label("Product").unwrap();
        let place = s.vertex_label("Place").unwrap();

        // Person can reach Person (Knows), Product (Purchases), Place (LocatedIn)
        let n = s.out_vertex_neighbors(person);
        assert!(n.contains(&person) && n.contains(&product) && n.contains(&place));
        // Place has no outgoing edges
        assert!(s.out_vertex_neighbors(place).is_empty());
        assert!(!s.has_out_edges(place));
        assert!(s.has_in_edges(place));
        // Who can reach Place? Person (LocatedIn) and Product (ProducedIn)
        let into_place = s.in_vertex_neighbors(place);
        assert_eq!(into_place.len(), 2);
        assert!(into_place.contains(&person) && into_place.contains(&product));
        // Edge types into Place
        let e_in = s.in_edge_types(place);
        assert_eq!(e_in.len(), 2);
        // Outgoing edge types of Person: Knows, Purchases, LocatedIn
        assert_eq!(s.out_edge_types(person).len(), 3);
    }

    #[test]
    fn dst_and_src_labels_of_edge() {
        let s = fig6_schema();
        let person = s.vertex_label("Person").unwrap();
        let place = s.vertex_label("Place").unwrap();
        let located = s.edge_label("LocatedIn").unwrap();
        assert_eq!(s.dst_labels_of(person, located), vec![place]);
        assert_eq!(s.src_labels_of(place, located), vec![person]);
        assert!(s.dst_labels_of(place, located).is_empty());
    }

    #[test]
    fn prop_types_declared_and_registered() {
        let mut s = fig6_schema();
        let person = s.vertex_label("Person").unwrap();
        let knows = s.edge_label("Knows").unwrap();
        // declared
        assert_eq!(s.vertex_prop_type(person, "name"), Some(PropType::Str));
        assert_eq!(s.vertex_prop_type(person, "creationDate"), None);
        // registration fills gaps but never overrides
        s.register_vertex_prop_type(person, "creationDate", PropType::Date);
        assert_eq!(
            s.vertex_prop_type(person, "creationDate"),
            Some(PropType::Date)
        );
        s.register_vertex_prop_type(person, "name", PropType::Int);
        assert_eq!(s.vertex_prop_type(person, "name"), Some(PropType::Str));
        assert_eq!(s.edge_prop_type(knows, "since"), None);
        s.register_edge_prop_type(knows, "since", PropType::Int);
        assert_eq!(s.edge_prop_type(knows, "since"), Some(PropType::Int));
        // out-of-range labels answer None and register as a no-op
        assert_eq!(s.vertex_prop_type(LabelId(99), "x"), None);
        s.register_edge_prop_type(LabelId(99), "x", PropType::Int);
    }

    #[test]
    fn add_edge_endpoint_extends_connectivity() {
        let mut s = fig5_schema();
        let forum = s.vertex_label("Forum").unwrap();
        let post = s.vertex_label("Post").unwrap();
        let likes = s.edge_label("Likes").unwrap();
        assert!(!s.can_connect(forum, likes, post));
        s.add_edge_endpoint(likes, forum, post).unwrap();
        assert!(s.can_connect(forum, likes, post));
        // idempotent
        s.add_edge_endpoint(likes, forum, post).unwrap();
        assert_eq!(
            s.edge_endpoints(likes)
                .iter()
                .filter(|&&(a, b)| a == forum && b == post)
                .count(),
            1
        );
    }
}
