//! A deliberately naive graph layout used as a test oracle.
//!
//! [`NaiveGraph`] stores adjacency as `Vec<Vec<Adj>>` (one heap allocation per
//! vertex) and properties as per-record association lists searched linearly —
//! exactly the layout [`crate::PropertyGraph`] used before the CSR + columnar
//! refactor. It is built from the same insertion sequence and must agree with
//! the CSR layout on every query; the property tests in
//! `crates/graph/tests/csr_equivalence.rs` assert that. It is **not** meant
//! for production use.

use crate::graph::Adj;
use crate::ids::{EdgeId, LabelId, PropKeyId, VertexId};
use crate::value::PropValue;

/// One vertex or edge insertion, mirroring the `GraphBuilder` call sequence.
#[derive(Debug, Clone)]
pub enum Insertion {
    /// `add_vertex(label, props)`.
    Vertex {
        /// Vertex label.
        label: LabelId,
        /// Property list as passed to the builder (pre-interned keys).
        props: Vec<(PropKeyId, PropValue)>,
    },
    /// `add_edge(label, src, dst, props)`.
    Edge {
        /// Edge label.
        label: LabelId,
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Property list as passed to the builder (pre-interned keys).
        props: Vec<(PropKeyId, PropValue)>,
    },
}

#[derive(Debug, Clone)]
struct NaiveRecord {
    label: LabelId,
    props: Vec<(PropKeyId, PropValue)>,
}

/// Reference implementation: per-vertex `Vec<Vec<Adj>>` adjacency sorted by
/// `(edge_label, neighbor, edge)` and linearly-scanned per-record properties.
#[derive(Debug, Clone, Default)]
pub struct NaiveGraph {
    vertices: Vec<NaiveRecord>,
    edges: Vec<NaiveRecord>,
    endpoints: Vec<(VertexId, VertexId)>,
    out_adj: Vec<Vec<Adj>>,
    in_adj: Vec<Vec<Adj>>,
}

impl NaiveGraph {
    /// Replay an insertion sequence (vertex ids are assigned densely in order,
    /// exactly like `GraphBuilder`).
    pub fn from_insertions(insertions: &[Insertion]) -> NaiveGraph {
        let mut g = NaiveGraph::default();
        for ins in insertions {
            match ins {
                Insertion::Vertex { label, props } => {
                    g.vertices.push(NaiveRecord {
                        label: *label,
                        props: props.clone(),
                    });
                    g.out_adj.push(Vec::new());
                    g.in_adj.push(Vec::new());
                }
                Insertion::Edge {
                    label,
                    src,
                    dst,
                    props,
                } => {
                    let edge = EdgeId(g.edges.len() as u64);
                    g.edges.push(NaiveRecord {
                        label: *label,
                        props: props.clone(),
                    });
                    g.endpoints.push((*src, *dst));
                    g.out_adj[src.index()].push(Adj {
                        edge_label: *label,
                        edge,
                        neighbor: *dst,
                    });
                    g.in_adj[dst.index()].push(Adj {
                        edge_label: *label,
                        edge,
                        neighbor: *src,
                    });
                }
            }
        }
        for adj in g.out_adj.iter_mut().chain(g.in_adj.iter_mut()) {
            adj.sort_unstable_by_key(|a| (a.edge_label, a.neighbor, a.edge));
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Label of a vertex.
    pub fn vertex_label(&self, v: VertexId) -> LabelId {
        self.vertices[v.index()].label
    }

    /// Label of an edge.
    pub fn edge_label(&self, e: EdgeId) -> LabelId {
        self.edges[e.index()].label
    }

    /// (source, destination) of an edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e.index()]
    }

    /// Full out-adjacency of `v`, sorted by `(edge_label, neighbor, edge)`.
    pub fn out_edges(&self, v: VertexId) -> &[Adj] {
        &self.out_adj[v.index()]
    }

    /// Full in-adjacency of `v`, sorted by `(edge_label, neighbor, edge)`.
    pub fn in_edges(&self, v: VertexId) -> &[Adj] {
        &self.in_adj[v.index()]
    }

    fn label_slice(adj: &[Adj], label: LabelId) -> &[Adj] {
        let start = adj.partition_point(|a| a.edge_label < label);
        let end = adj.partition_point(|a| a.edge_label <= label);
        &adj[start..end]
    }

    /// Out-adjacency restricted to one label (binary search over the sorted list).
    pub fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> &[Adj] {
        Self::label_slice(&self.out_adj[v.index()], label)
    }

    /// In-adjacency restricted to one label (binary search over the sorted list).
    pub fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> &[Adj] {
        Self::label_slice(&self.in_adj[v.index()], label)
    }

    /// Whether an edge `src -[label]-> dst` exists (linear scan).
    pub fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        self.out_edges_with_label(src, label)
            .iter()
            .any(|a| a.neighbor == dst)
    }

    /// Ids of all `label` edges from `src` to `dst` (allocating filter scan).
    pub fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> Vec<EdgeId> {
        self.out_edges_with_label(src, label)
            .iter()
            .filter(|a| a.neighbor == dst)
            .map(|a| a.edge)
            .collect()
    }

    /// Vertex property lookup (linear scan of the record's association list).
    pub fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<&PropValue> {
        self.vertices[v.index()]
            .props
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, val)| val)
    }

    /// Edge property lookup (linear scan of the record's association list).
    pub fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<&PropValue> {
        self.edges[e.index()]
            .props
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, val)| val)
    }
}
