//! The in-memory property graph store.
//!
//! [`PropertyGraph`] is an immutable-after-build, label-partitioned graph with
//! per-vertex adjacency lists sorted by edge label, so that expanding a vertex
//! over a specific edge label is a binary search plus a contiguous scan — the
//! access pattern that the physical operators (`ExpandEdge`, `ExpandInto`,
//! `ExpandIntersect`) rely on.

use crate::error::GraphError;
use crate::ids::{EdgeId, LabelId, PropKeyId, VertexId};
use crate::schema::GraphSchema;
use crate::value::PropValue;
use std::collections::HashMap;

/// One adjacency entry: the incident edge and the neighbouring vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adj {
    /// Label of the incident edge.
    pub edge_label: LabelId,
    /// Id of the incident edge.
    pub edge: EdgeId,
    /// Id of the neighbouring vertex (head for out-adjacency, tail for in-adjacency).
    pub neighbor: VertexId,
}

#[derive(Debug, Clone)]
struct VertexRecord {
    label: LabelId,
    props: Box<[(PropKeyId, PropValue)]>,
}

#[derive(Debug, Clone)]
struct EdgeRecord {
    label: LabelId,
    src: VertexId,
    dst: VertexId,
    props: Box<[(PropKeyId, PropValue)]>,
}

/// An immutable in-memory property graph.
///
/// Build one with [`GraphBuilder`]. Vertices and edges get dense ids in insertion
/// order; adjacency lists are finalised (sorted by edge label, then neighbour id)
/// when [`GraphBuilder::finish`] is called.
#[derive(Debug, Clone)]
pub struct PropertyGraph {
    schema: GraphSchema,
    vertices: Vec<VertexRecord>,
    edges: Vec<EdgeRecord>,
    out_adj: Vec<Vec<Adj>>,
    in_adj: Vec<Vec<Adj>>,
    vertices_by_label: Vec<Vec<VertexId>>,
    edge_count_by_label: Vec<u64>,
    prop_keys: Vec<String>,
    prop_key_idx: HashMap<String, PropKeyId>,
}

impl PropertyGraph {
    /// The schema this graph conforms to.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// Total number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices carrying the given label.
    pub fn vertex_count_by_label(&self, label: LabelId) -> usize {
        self.vertices_by_label
            .get(label.index())
            .map_or(0, |v| v.len())
    }

    /// Number of edges carrying the given label.
    pub fn edge_count_by_label(&self, label: LabelId) -> u64 {
        self.edge_count_by_label
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// Ids of all vertices with the given label.
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.vertices_by_label
            .get(label.index())
            .map_or(&[][..], |v| v.as_slice())
    }

    /// Iterate over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u64).map(VertexId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u64).map(EdgeId)
    }

    /// Label of a vertex.
    pub fn vertex_label(&self, v: VertexId) -> LabelId {
        self.vertices[v.index()].label
    }

    /// Label of an edge.
    pub fn edge_label(&self, e: EdgeId) -> LabelId {
        self.edges[e.index()].label
    }

    /// (source, destination) endpoints of an edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let r = &self.edges[e.index()];
        (r.src, r.dst)
    }

    /// All outgoing adjacency entries of a vertex, sorted by (edge label, neighbour).
    pub fn out_edges(&self, v: VertexId) -> &[Adj] {
        &self.out_adj[v.index()]
    }

    /// All incoming adjacency entries of a vertex, sorted by (edge label, neighbour).
    pub fn in_edges(&self, v: VertexId) -> &[Adj] {
        &self.in_adj[v.index()]
    }

    /// Outgoing adjacency entries of `v` restricted to one edge label (contiguous slice).
    pub fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> &[Adj] {
        Self::label_slice(&self.out_adj[v.index()], label)
    }

    /// Incoming adjacency entries of `v` restricted to one edge label (contiguous slice).
    pub fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> &[Adj] {
        Self::label_slice(&self.in_adj[v.index()], label)
    }

    fn label_slice(adj: &[Adj], label: LabelId) -> &[Adj] {
        let start = adj.partition_point(|a| a.edge_label < label);
        let end = adj.partition_point(|a| a.edge_label <= label);
        &adj[start..end]
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Whether there is at least one edge with label `label` from `src` to `dst`.
    pub fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        self.out_edges_with_label(src, label)
            .iter()
            .any(|a| a.neighbor == dst)
    }

    /// All edges with label `label` from `src` to `dst`.
    pub fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> Vec<EdgeId> {
        self.out_edges_with_label(src, label)
            .iter()
            .filter(|a| a.neighbor == dst)
            .map(|a| a.edge)
            .collect()
    }

    /// Intern (or look up) a property key name.
    pub fn prop_key(&self, name: &str) -> Option<PropKeyId> {
        self.prop_key_idx.get(name).copied()
    }

    /// Name of an interned property key.
    pub fn prop_key_name(&self, id: PropKeyId) -> &str {
        &self.prop_keys[id.index()]
    }

    /// Look up a vertex property by key id.
    pub fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<&PropValue> {
        self.vertices[v.index()]
            .props
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, val)| val)
    }

    /// Look up a vertex property by name.
    pub fn vertex_prop_by_name(&self, v: VertexId, name: &str) -> Option<&PropValue> {
        self.prop_key(name).and_then(|k| self.vertex_prop(v, k))
    }

    /// Look up an edge property by key id.
    pub fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<&PropValue> {
        self.edges[e.index()]
            .props
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, val)| val)
    }

    /// Look up an edge property by name.
    pub fn edge_prop_by_name(&self, e: EdgeId, name: &str) -> Option<&PropValue> {
        self.prop_key(name).and_then(|k| self.edge_prop(e, k))
    }

    /// Extract a schema from the data itself: one vertex label per observed label,
    /// and edge-label endpoint pairs from the observed (src-label, dst-label) pairs.
    ///
    /// This models the paper's Remark 6.1: for schema-loose backends such as Neo4j the
    /// schema needed by type inference can be recovered from the stored data.
    pub fn extract_schema(&self) -> GraphSchema {
        let mut s = GraphSchema::new();
        for id in self.schema.vertex_label_ids() {
            s.add_vertex_label(
                self.schema.vertex_label_name(id).to_string(),
                self.schema.vertex_label_def(id).properties.clone(),
            )
            .expect("labels are unique");
        }
        // declare edge labels with endpoints observed in the data only
        let mut observed: Vec<Vec<(LabelId, LabelId)>> =
            vec![Vec::new(); self.schema.edge_label_count()];
        for e in &self.edges {
            let pair = (self.vertices[e.src.index()].label, self.vertices[e.dst.index()].label);
            if !observed[e.label.index()].contains(&pair) {
                observed[e.label.index()].push(pair);
            }
        }
        for id in self.schema.edge_label_ids() {
            s.add_edge_label(
                self.schema.edge_label_name(id).to_string(),
                observed[id.index()].clone(),
                self.schema.edge_label_def(id).properties.clone(),
            )
            .expect("labels are unique");
        }
        s
    }
}

/// Builder for [`PropertyGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    schema: GraphSchema,
    vertices: Vec<VertexRecord>,
    edges: Vec<EdgeRecord>,
    prop_keys: Vec<String>,
    prop_key_idx: HashMap<String, PropKeyId>,
    /// When true (default), added edges are checked against the schema's endpoint pairs.
    validate: bool,
}

impl GraphBuilder {
    /// Start building a graph that conforms to `schema`.
    pub fn new(schema: GraphSchema) -> Self {
        GraphBuilder {
            schema,
            vertices: Vec::new(),
            edges: Vec::new(),
            prop_keys: Vec::new(),
            prop_key_idx: HashMap::new(),
            validate: true,
        }
    }

    /// Disable schema validation of edge endpoints (useful for schema-loose ingestion).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// The schema being built against.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    fn intern(&mut self, name: &str) -> PropKeyId {
        if let Some(id) = self.prop_key_idx.get(name) {
            return *id;
        }
        let id = PropKeyId(self.prop_keys.len() as u16);
        self.prop_keys.push(name.to_string());
        self.prop_key_idx.insert(name.to_string(), id);
        id
    }

    fn intern_props(&mut self, props: Vec<(&str, PropValue)>) -> Box<[(PropKeyId, PropValue)]> {
        props
            .into_iter()
            .map(|(k, v)| (self.intern(k), v))
            .collect::<Vec<_>>()
            .into_boxed_slice()
    }

    /// Add a vertex with the given label and properties; returns its id.
    pub fn add_vertex(
        &mut self,
        label: LabelId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<VertexId, GraphError> {
        if label.index() >= self.schema.vertex_label_count() {
            return Err(GraphError::InvalidLabelId(label.0));
        }
        let props = self.intern_props(props);
        let id = VertexId(self.vertices.len() as u64);
        self.vertices.push(VertexRecord { label, props });
        Ok(id)
    }

    /// Add a vertex looking the label up by name.
    pub fn add_vertex_by_name(
        &mut self,
        label: &str,
        props: Vec<(&str, PropValue)>,
    ) -> Result<VertexId, GraphError> {
        let l = self
            .schema
            .vertex_label(label)
            .ok_or_else(|| GraphError::UnknownLabel(label.to_string()))?;
        self.add_vertex(l, props)
    }

    /// Add an edge with the given label and properties; returns its id.
    pub fn add_edge(
        &mut self,
        label: LabelId,
        src: VertexId,
        dst: VertexId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<EdgeId, GraphError> {
        if label.index() >= self.schema.edge_label_count() {
            return Err(GraphError::InvalidLabelId(label.0));
        }
        let sv = self
            .vertices
            .get(src.index())
            .ok_or(GraphError::InvalidVertex(src.0))?;
        let dv = self
            .vertices
            .get(dst.index())
            .ok_or(GraphError::InvalidVertex(dst.0))?;
        if self.validate && !self.schema.can_connect(sv.label, label, dv.label) {
            return Err(GraphError::SchemaViolation {
                edge_label: self.schema.edge_label_name(label).to_string(),
                src_label: self.schema.vertex_label_name(sv.label).to_string(),
                dst_label: self.schema.vertex_label_name(dv.label).to_string(),
            });
        }
        let props = self.intern_props(props);
        let id = EdgeId(self.edges.len() as u64);
        self.edges.push(EdgeRecord {
            label,
            src,
            dst,
            props,
        });
        Ok(id)
    }

    /// Add an edge looking the label up by name.
    pub fn add_edge_by_name(
        &mut self,
        label: &str,
        src: VertexId,
        dst: VertexId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<EdgeId, GraphError> {
        let l = self
            .schema
            .edge_label(label)
            .ok_or_else(|| GraphError::UnknownLabel(label.to_string()))?;
        self.add_edge(l, src, dst, props)
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalise the graph: build sorted adjacency lists and label partitions.
    pub fn finish(self) -> PropertyGraph {
        let n = self.vertices.len();
        let mut out_adj: Vec<Vec<Adj>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<Adj>> = vec![Vec::new(); n];
        let mut edge_count_by_label = vec![0u64; self.schema.edge_label_count()];
        for (i, e) in self.edges.iter().enumerate() {
            let eid = EdgeId(i as u64);
            out_adj[e.src.index()].push(Adj {
                edge_label: e.label,
                edge: eid,
                neighbor: e.dst,
            });
            in_adj[e.dst.index()].push(Adj {
                edge_label: e.label,
                edge: eid,
                neighbor: e.src,
            });
            edge_count_by_label[e.label.index()] += 1;
        }
        for adj in out_adj.iter_mut().chain(in_adj.iter_mut()) {
            adj.sort_unstable_by_key(|a| (a.edge_label, a.neighbor, a.edge));
        }
        let mut vertices_by_label: Vec<Vec<VertexId>> =
            vec![Vec::new(); self.schema.vertex_label_count()];
        for (i, v) in self.vertices.iter().enumerate() {
            vertices_by_label[v.label.index()].push(VertexId(i as u64));
        }
        PropertyGraph {
            schema: self.schema,
            vertices: self.vertices,
            edges: self.edges,
            out_adj,
            in_adj,
            vertices_by_label,
            edge_count_by_label,
            prop_keys: self.prop_keys,
            prop_key_idx: self.prop_key_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::fig6_schema;

    fn small_graph() -> PropertyGraph {
        // 2 persons, 1 product, 1 place
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let p1 = b
            .add_vertex_by_name("Person", vec![("name", PropValue::str("alice"))])
            .unwrap();
        let p2 = b
            .add_vertex_by_name("Person", vec![("name", PropValue::str("bob"))])
            .unwrap();
        let prod = b
            .add_vertex_by_name("Product", vec![("name", PropValue::str("widget"))])
            .unwrap();
        let place = b
            .add_vertex_by_name("Place", vec![("name", PropValue::str("China"))])
            .unwrap();
        b.add_edge_by_name("Knows", p1, p2, vec![]).unwrap();
        b.add_edge_by_name("Purchases", p1, prod, vec![]).unwrap();
        b.add_edge_by_name("LocatedIn", p2, place, vec![]).unwrap();
        b.add_edge_by_name("ProducedIn", prod, place, vec![("year", PropValue::Int(2020))])
            .unwrap();
        b.finish()
    }

    #[test]
    fn counts_and_labels() {
        let g = small_graph();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let person = g.schema().vertex_label("Person").unwrap();
        assert_eq!(g.vertex_count_by_label(person), 2);
        assert_eq!(g.vertices_with_label(person).len(), 2);
        let knows = g.schema().edge_label("Knows").unwrap();
        assert_eq!(g.edge_count_by_label(knows), 1);
        assert_eq!(g.vertex_ids().count(), 4);
        assert_eq!(g.edge_ids().count(), 4);
    }

    #[test]
    fn adjacency_and_expansion() {
        let g = small_graph();
        let p1 = VertexId(0);
        let p2 = VertexId(1);
        let place = VertexId(3);
        assert_eq!(g.out_degree(p1), 2);
        assert_eq!(g.in_degree(place), 2);
        let knows = g.schema().edge_label("Knows").unwrap();
        let adj = g.out_edges_with_label(p1, knows);
        assert_eq!(adj.len(), 1);
        assert_eq!(adj[0].neighbor, p2);
        assert!(g.has_edge(p1, knows, p2));
        assert!(!g.has_edge(p2, knows, p1));
        assert_eq!(g.edges_between(p1, knows, p2).len(), 1);
        let located = g.schema().edge_label("LocatedIn").unwrap();
        assert!(g.out_edges_with_label(p1, located).is_empty());
        // edge endpoints
        let e0 = EdgeId(0);
        assert_eq!(g.edge_endpoints(e0), (p1, p2));
        assert_eq!(g.edge_label(e0), knows);
    }

    #[test]
    fn properties_are_interned_and_retrievable() {
        let g = small_graph();
        let p1 = VertexId(0);
        assert_eq!(
            g.vertex_prop_by_name(p1, "name"),
            Some(&PropValue::str("alice"))
        );
        assert!(g.vertex_prop_by_name(p1, "missing").is_none());
        let e3 = EdgeId(3);
        assert_eq!(g.edge_prop_by_name(e3, "year"), Some(&PropValue::Int(2020)));
        let key = g.prop_key("name").unwrap();
        assert_eq!(g.prop_key_name(key), "name");
    }

    #[test]
    fn schema_violation_is_detected() {
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let place = b.add_vertex_by_name("Place", vec![]).unwrap();
        let person = b.add_vertex_by_name("Person", vec![]).unwrap();
        // LocatedIn goes Person -> Place, not the reverse
        let err = b.add_edge_by_name("LocatedIn", place, person, vec![]);
        assert!(matches!(err, Err(GraphError::SchemaViolation { .. })));
        // without validation the edge is accepted
        let mut b2 = GraphBuilder::new(fig6_schema()).without_validation();
        let place = b2.add_vertex_by_name("Place", vec![]).unwrap();
        let person = b2.add_vertex_by_name("Person", vec![]).unwrap();
        assert!(b2.add_edge_by_name("LocatedIn", place, person, vec![]).is_ok());
    }

    #[test]
    fn unknown_names_error() {
        let mut b = GraphBuilder::new(fig6_schema());
        assert!(matches!(
            b.add_vertex_by_name("Alien", vec![]),
            Err(GraphError::UnknownLabel(_))
        ));
        let v = b.add_vertex_by_name("Person", vec![]).unwrap();
        assert!(matches!(
            b.add_edge_by_name("Flies", v, v, vec![]),
            Err(GraphError::UnknownLabel(_))
        ));
        assert!(b.add_edge(LabelId(99), v, v, vec![]).is_err());
        assert!(b.add_vertex(LabelId(99), vec![]).is_err());
        assert!(b
            .add_edge_by_name("Knows", v, VertexId(42), vec![])
            .is_err());
    }

    #[test]
    fn extract_schema_reflects_observed_endpoints() {
        let g = small_graph();
        let extracted = g.extract_schema();
        let person = extracted.vertex_label("Person").unwrap();
        let place = extracted.vertex_label("Place").unwrap();
        let located = extracted.edge_label("LocatedIn").unwrap();
        assert!(extracted.can_connect(person, located, place));
        assert_eq!(extracted.vertex_label_count(), g.schema().vertex_label_count());
        assert_eq!(extracted.edge_label_count(), g.schema().edge_label_count());
    }
}
