//! The in-memory property graph store.
//!
//! # Storage layout: CSR adjacency + columnar properties
//!
//! [`PropertyGraph`] is immutable after build and organised for the access
//! pattern of the physical operators (`ExpandEdge`, `ExpandInto`,
//! `ExpandIntersect`): *expand a vertex over one edge label* must be a pure
//! array lookup returning a contiguous, sorted slice — no pointer chasing, no
//! per-call allocation.
//!
//! ## Adjacency: compressed flat CSR with a sparse segment directory
//!
//! Each direction (out/in) is one [`CsrAdjacency`], stored
//! structure-of-arrays and compressed:
//!
//! ```text
//! neighbors:  [ u32 | u32 | u32 | ... ]        one flat Vec for ALL vertices
//! edge_bytes: [ base:u32 | δ δ δ ... | ... ]   per non-empty segment: the minimum
//!                                              edge id, then one fixed-width delta
//!                                              (1, 2 or 4 bytes) per entry
//! seg_index:  [ d_0, d_1, ..., d_n ]           n+1; segments of v are j in d_v..d_{v+1}
//! seg_labels: [ u16 | u16 | ... ]              per non-empty segment: its edge label,
//!                                              ascending within each vertex
//! seg_ends:   [ u32 | u32 | ... ]              per non-empty segment: end offset in
//!                                              neighbors (start = previous end)
//! seg_metas:  [ u32 | u32 | ... ]              per non-empty segment:
//!                                              (edge byte offset << 2) | width code
//! ```
//!
//! Neighbour ids are `u32` (4 bytes instead of a 24-byte `Adj` struct per
//! entry) and edge ids are delta-encoded against the segment's minimum edge
//! id with the narrowest fixed width that fits — dense graphs whose edge ids
//! cluster per segment pay 1 byte per edge. The segment directory is
//! **sparse**: only non-empty (vertex, label) segments are materialised (10
//! bytes each), instead of dense `n_vertices * n_edge_labels` offset tables —
//! on label-rich graphs the dense tables cost more than the edges themselves.
//! `out_edges_with_label(v, l)` scans the vertex's directory row (ascending,
//! almost always ≤ 4 entries, early exit) and returns an [`AdjSegment`]: the
//! borrowed neighbour slice plus an [`EdgeCodes`] decoder over the segment's
//! delta bytes. Within each (vertex, label) segment the entries are sorted by
//! `(neighbor, edge)`, which is the contract the operators rely on:
//!
//! * [`PropertyGraph::has_edge`] / [`PropertyGraph::edges_between`] binary-search
//!   the segment by neighbour (`O(log d)`) directly over the `u32` slice;
//! * `ExpandIntersect` merge-intersects two neighbour slices with a galloping
//!   scan instead of hashing, never touching edge bytes;
//! * distinct-neighbour deduplication during expansion is a linear `dedup`.
//!
//! The directory trades 10 bytes per *non-empty* segment (plus a `u32` per
//! vertex) for constant-bounded label slicing and per-segment edge decoding
//! state.
//!
//! ## Properties: per-(label, key) columns
//!
//! Vertex and edge properties live in `PropColumns`: one dense column per
//! (label, interned property key) pair, indexed by the record's *in-label
//! offset* (its position among records of the same label, assigned in
//! insertion order). `vertex_prop` / `edge_prop` are O(1) — label lookup,
//! offset lookup, column cell — replacing the previous per-record boxed slice
//! that was linearly scanned on every access. Endpoints and labels of edges
//! are likewise stored as flat columns (`edge_labels`, `edge_srcs`,
//! `edge_dsts`), which the statistics layer scans directly.
//!
//! ## Operator access contract
//!
//! Code outside this crate may rely on exactly this:
//!
//! 1. `{out,in}_edges_with_label(v, l)` returns an [`AdjSegment`] over a
//!    contiguous neighbour slice sorted by `(neighbor, edge)`, without
//!    allocating;
//! 2. `{out,in}_edges(v)` iterates the full per-vertex adjacency, grouped by
//!    edge label in increasing label order (segments concatenated);
//! 3. `edges_between(src, l, dst)` returns the contiguous sub-segment of
//!    parallel edges (sorted by edge id), located by binary search;
//! 4. vertex/edge ids are dense and assigned in insertion order, so columns can
//!    be zipped with id ranges.
//!
//! Build one with [`GraphBuilder`]; the CSR arrays and property columns are
//! materialised in [`GraphBuilder::finish`].

use crate::column::{ColumnRef, TypedColumn};
use crate::error::GraphError;
use crate::ids::{EdgeId, LabelId, PropKeyId, VertexId};
use crate::schema::GraphSchema;
use crate::value::PropValue;
use std::collections::HashMap;

/// One adjacency entry: the incident edge and the neighbouring vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adj {
    /// Label of the incident edge.
    pub edge_label: LabelId,
    /// Id of the incident edge.
    pub edge: EdgeId,
    /// Id of the neighbouring vertex (head for out-adjacency, tail for in-adjacency).
    pub neighbor: VertexId,
}

/// The fixed delta widths selectable per segment, indexed by the 2-bit width
/// code stored in `seg_metas`.
const EDGE_WIDTHS: [u8; 4] = [0, 1, 2, 4];

/// Decoder over one segment's delta-encoded edge ids: every edge id is
/// `base + delta`, with `delta` read from `bytes` at a fixed `width` (0, 1, 2
/// or 4 bytes — width 0 means every entry carries the base itself, i.e. the
/// segment has at most one entry). `Copy`, borrowed, zero allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeCodes<'a> {
    base: u32,
    width: u8,
    bytes: &'a [u8],
}

impl<'a> EdgeCodes<'a> {
    /// The edge id at position `i` within the segment.
    #[inline]
    pub fn get(&self, i: usize) -> EdgeId {
        let delta = match self.width {
            0 => 0,
            1 => self.bytes[i] as u32,
            2 => u16::from_le_bytes([self.bytes[2 * i], self.bytes[2 * i + 1]]) as u32,
            _ => {
                let b = &self.bytes[4 * i..4 * i + 4];
                u32::from_le_bytes([b[0], b[1], b[2], b[3]])
            }
        };
        EdgeId((self.base + delta) as u64)
    }

    /// The decoder restricted to positions `start..end`.
    #[inline]
    fn slice(&self, start: usize, end: usize) -> EdgeCodes<'a> {
        let w = self.width as usize;
        EdgeCodes {
            base: self.base,
            width: self.width,
            bytes: &self.bytes[start * w..end * w],
        }
    }
}

/// One (vertex, edge-label) adjacency segment of a compressed
/// [`CsrAdjacency`]: the borrowed `u32` neighbour slice plus the segment's
/// edge-id decoder. Sorted by `(neighbor, edge)`; `Copy` and allocation-free,
/// which is what keeps the expand operators' zero-allocation contract intact
/// over the compressed layout.
#[derive(Debug, Clone, Copy)]
pub struct AdjSegment<'a> {
    label: LabelId,
    neighbors: &'a [u32],
    edges: EdgeCodes<'a>,
}

impl<'a> AdjSegment<'a> {
    /// An empty segment carrying only the label.
    #[inline]
    pub fn empty(label: LabelId) -> AdjSegment<'a> {
        AdjSegment {
            label,
            neighbors: &[],
            edges: EdgeCodes::default(),
        }
    }

    /// The edge label every entry of this segment carries.
    #[inline]
    pub fn label(&self) -> LabelId {
        self.label
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the segment has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The raw sorted neighbour slice — the merge/gallop kernels' input.
    /// Neighbour ids are `u32`; duplicates are parallel edges.
    #[inline]
    pub fn neighbors(&self) -> &'a [u32] {
        self.neighbors
    }

    /// The neighbour at position `i`.
    #[inline]
    pub fn neighbor(&self, i: usize) -> VertexId {
        VertexId(self.neighbors[i] as u64)
    }

    /// The edge id at position `i` (decoded from the segment's delta bytes).
    #[inline]
    pub fn edge(&self, i: usize) -> EdgeId {
        self.edges.get(i)
    }

    /// The materialised adjacency entry at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Adj {
        Adj {
            edge_label: self.label,
            edge: self.edges.get(i),
            neighbor: VertexId(self.neighbors[i] as u64),
        }
    }

    /// The first entry, when the segment is non-empty.
    #[inline]
    pub fn first(&self) -> Option<Adj> {
        if self.neighbors.is_empty() {
            None
        } else {
            Some(self.get(0))
        }
    }

    /// The sub-segment covering positions `start..end`.
    #[inline]
    pub fn slice(&self, start: usize, end: usize) -> AdjSegment<'a> {
        AdjSegment {
            label: self.label,
            neighbors: &self.neighbors[start..end],
            edges: self.edges.slice(start, end),
        }
    }

    /// Iterate the materialised entries.
    #[inline]
    pub fn iter(&self) -> AdjSegmentIter<'a> {
        AdjSegmentIter { seg: *self, pos: 0 }
    }

    /// Collect the materialised entries (test/oracle convenience — the hot
    /// paths use the borrowed accessors).
    pub fn to_vec(&self) -> Vec<Adj> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for AdjSegment<'a> {
    type Item = Adj;
    type IntoIter = AdjSegmentIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        AdjSegmentIter { seg: self, pos: 0 }
    }
}

/// Iterator over the materialised [`Adj`] entries of an [`AdjSegment`].
#[derive(Debug, Clone)]
pub struct AdjSegmentIter<'a> {
    seg: AdjSegment<'a>,
    pos: usize,
}

impl Iterator for AdjSegmentIter<'_> {
    type Item = Adj;

    #[inline]
    fn next(&mut self) -> Option<Adj> {
        if self.pos < self.seg.len() {
            let a = self.seg.get(self.pos);
            self.pos += 1;
            Some(a)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.seg.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for AdjSegmentIter<'_> {}

/// Flat compressed-sparse-row adjacency for one direction.
///
/// See the [module documentation](self) for the layout. All offsets are `u32`
/// (graphs are capped at `u32::MAX` edges per direction, asserted at build);
/// neighbour and edge ids are stored in 4 bytes or fewer per entry.
#[derive(Debug, Clone, Default)]
pub struct CsrAdjacency {
    /// All neighbour ids, grouped by vertex, then by edge label, each
    /// (vertex, label) segment sorted by `(neighbor, edge)`.
    neighbors: Vec<u32>,
    /// Delta-encoded edge ids: per non-empty segment a 4-byte little-endian
    /// base (the segment's minimum edge id) followed by `width * len` delta
    /// bytes.
    edge_bytes: Vec<u8>,
    /// Per-vertex extents into the segment directory: the non-empty segments
    /// of `v` are `seg_index[v] .. seg_index[v+1]`. Length `n+1`.
    seg_index: Vec<u32>,
    /// Per non-empty segment: its edge label, strictly ascending within each
    /// vertex's directory row.
    seg_labels: Vec<u16>,
    /// Per non-empty segment: end offset (exclusive) in `neighbors`. The
    /// start is the previous segment's end (0 for the first segment), so the
    /// array is strictly increasing and ends at `neighbors.len()`.
    seg_ends: Vec<u32>,
    /// Per non-empty segment: `(byte offset into edge_bytes << 2) | width
    /// code` (see [`EDGE_WIDTHS`]).
    seg_metas: Vec<u32>,
    /// Number of edge labels `L` the directory is built over.
    n_labels: usize,
}

impl CsrAdjacency {
    /// Build from per-edge endpoint/label columns. `endpoint(e)` gives the
    /// vertex whose adjacency the edge belongs to, `other(e)` the neighbour.
    fn build(
        n_vertices: usize,
        n_labels: usize,
        edge_labels: &[LabelId],
        endpoint: impl Fn(usize) -> VertexId,
        other: impl Fn(usize) -> VertexId,
    ) -> CsrAdjacency {
        Self::build_with_ids(n_vertices, n_labels, edge_labels, endpoint, other, |i| {
            EdgeId(i as u64)
        })
    }

    /// Like [`CsrAdjacency::build`], but with the stored edge id supplied by
    /// `edge_id(i)` instead of the dense position `i`. This is what lets a
    /// partition shard index a *subset* of the edges while keeping global edge
    /// ids in its entries (see [`crate::partition`]).
    pub(crate) fn build_with_ids(
        n_vertices: usize,
        n_labels: usize,
        edge_labels: &[LabelId],
        endpoint: impl Fn(usize) -> VertexId,
        other: impl Fn(usize) -> VertexId,
        edge_id: impl Fn(usize) -> EdgeId,
    ) -> CsrAdjacency {
        assert!(
            edge_labels.len() <= u32::MAX as usize,
            "CSR adjacency is limited to u32::MAX edges"
        );
        assert!(
            n_vertices <= u32::MAX as usize,
            "CSR adjacency is limited to u32::MAX vertices"
        );
        // counting sort by (vertex, label): one pass to size segments,
        // a prefix sum for extents, one pass to scatter
        let mut label_offsets = vec![0u32; n_vertices * n_labels + 1];
        for (i, &l) in edge_labels.iter().enumerate() {
            label_offsets[endpoint(i).index() * n_labels + l.index() + 1] += 1;
        }
        for i in 1..label_offsets.len() {
            label_offsets[i] += label_offsets[i - 1];
        }
        let mut cursors: Vec<u32> = label_offsets[..label_offsets.len() - 1].to_vec();
        let total = edge_labels.len();
        // transient uncompressed (neighbor, edge) pairs, compressed below
        let mut pairs = vec![(0u32, 0u32); total];
        for (i, &l) in edge_labels.iter().enumerate() {
            let seg = endpoint(i).index() * n_labels + l.index();
            let pos = cursors[seg] as usize;
            cursors[seg] += 1;
            let nb = other(i).0;
            let ed = edge_id(i).0;
            assert!(nb <= u32::MAX as u64, "neighbor id exceeds u32");
            assert!(ed <= u32::MAX as u64, "edge id exceeds u32");
            pairs[pos] = (nb as u32, ed as u32);
        }
        // establish per-segment (neighbor, edge) order, then delta-compress
        // each segment's edge ids against the segment minimum; only non-empty
        // segments enter the directory
        let mut neighbors = Vec::with_capacity(total);
        let mut edge_bytes = Vec::new();
        let mut seg_index = Vec::with_capacity(n_vertices + 1);
        let mut seg_labels = Vec::new();
        let mut seg_ends = Vec::new();
        let mut seg_metas = Vec::new();
        seg_index.push(0u32);
        for v in 0..n_vertices {
            for l in 0..n_labels {
                let seg = v * n_labels + l;
                let (s, e) = (label_offsets[seg] as usize, label_offsets[seg + 1] as usize);
                if s == e {
                    continue;
                }
                if e - s > 1 {
                    pairs[s..e].sort_unstable();
                }
                neighbors.extend(pairs[s..e].iter().map(|&(nb, _)| nb));
                // the segment is sorted by (neighbor, edge), so the minimum
                // edge id must be located by scan, not taken from the first
                // entry
                let base = pairs[s..e]
                    .iter()
                    .map(|&(_, ed)| ed)
                    .min()
                    .expect("non-empty");
                let max_delta = pairs[s..e]
                    .iter()
                    .map(|&(_, ed)| ed - base)
                    .max()
                    .expect("non-empty");
                let code: u32 = match max_delta {
                    0 => 0,
                    1..=0xFF => 1,
                    0x100..=0xFFFF => 2,
                    _ => 3,
                };
                let width = EDGE_WIDTHS[code as usize] as usize;
                let off = edge_bytes.len();
                assert!(
                    off < (1usize << 30),
                    "CSR edge byte pool exceeds 2^30 bytes"
                );
                seg_labels.push(l as u16);
                seg_ends.push(neighbors.len() as u32);
                seg_metas.push(((off as u32) << 2) | code);
                edge_bytes.extend_from_slice(&base.to_le_bytes());
                for &(_, ed) in &pairs[s..e] {
                    let delta = ed - base;
                    edge_bytes.extend_from_slice(&delta.to_le_bytes()[..width]);
                }
            }
            seg_index.push(seg_labels.len() as u32);
        }
        CsrAdjacency {
            neighbors,
            edge_bytes,
            seg_index,
            seg_labels,
            seg_ends,
            seg_metas,
            n_labels,
        }
    }

    /// Reassemble an adjacency from its serialized arrays (for the graph
    /// image loader). Performs structural validation — offset monotony,
    /// extents, and that every stored neighbour id is `< max_vertex` and
    /// every decoded edge id `< max_edge` — but not a re-sort; the writer
    /// guarantees segment order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        neighbors: Vec<u32>,
        edge_bytes: Vec<u8>,
        seg_index: Vec<u32>,
        seg_labels: Vec<u16>,
        seg_ends: Vec<u32>,
        seg_metas: Vec<u32>,
        n_labels: usize,
        max_vertex: u64,
        max_edge: u64,
    ) -> Option<CsrAdjacency> {
        let n_segs = seg_labels.len();
        if seg_ends.len() != n_segs || seg_metas.len() != n_segs {
            return None;
        }
        if seg_index.first() != Some(&0) || *seg_index.last()? as usize != n_segs {
            return None;
        }
        if seg_index.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        // segments are non-empty and contiguous: strictly increasing ends
        // starting above zero, last one covering the neighbour pool exactly
        if seg_ends.first().is_some_and(|&e| e == 0) {
            return None;
        }
        if seg_ends.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        match seg_ends.last() {
            Some(&last) => {
                if last as usize != neighbors.len() {
                    return None;
                }
            }
            None => {
                if !neighbors.is_empty() {
                    return None;
                }
            }
        }
        // each vertex's directory row carries strictly ascending in-range labels
        for row in seg_index.windows(2) {
            let (s, e) = (row[0] as usize, row[1] as usize);
            let labels = &seg_labels[s..e];
            if labels.iter().any(|&l| (l as usize) >= n_labels) {
                return None;
            }
            if labels.windows(2).any(|w| w[0] >= w[1]) {
                return None;
            }
        }
        if neighbors.iter().any(|&n| u64::from(n) >= max_vertex) {
            return None;
        }
        // every segment's byte range must lie inside the pool and decode to
        // in-range edge ids; the largest decodable id is `base + max delta`,
        // so scanning for the maximum delta bounds every entry without
        // decoding each one (and keeps the arithmetic in u64, so a corrupt
        // base can never overflow)
        let mut start = 0usize;
        for seg in 0..n_segs {
            let end = seg_ends[seg] as usize;
            let len = end - start;
            start = end;
            let off = (seg_metas[seg] >> 2) as usize;
            let width = EDGE_WIDTHS[(seg_metas[seg] & 3) as usize] as usize;
            if off + 4 + width * len > edge_bytes.len() {
                return None;
            }
            let base = u32::from_le_bytes(edge_bytes[off..off + 4].try_into().ok()?);
            let deltas = &edge_bytes[off + 4..off + 4 + width * len];
            let max_delta: u32 = match width {
                0 => 0,
                1 => deltas.iter().copied().max().map_or(0, u32::from),
                2 => deltas
                    .chunks_exact(2)
                    .map(|c| u32::from(u16::from_le_bytes(c.try_into().unwrap())))
                    .max()
                    .unwrap_or(0),
                _ => deltas
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .max()
                    .unwrap_or(0),
            };
            if u64::from(base) + u64::from(max_delta) >= max_edge {
                return None;
            }
        }
        Some(CsrAdjacency {
            neighbors,
            edge_bytes,
            seg_index,
            seg_labels,
            seg_ends,
            seg_metas,
            n_labels,
        })
    }

    /// The serialized arrays of the adjacency (for the graph image writer):
    /// `(neighbors, edge_bytes, seg_index, seg_labels, seg_ends, seg_metas,
    /// n_labels)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(&self) -> (&[u32], &[u8], &[u32], &[u16], &[u32], &[u32], usize) {
        (
            &self.neighbors,
            &self.edge_bytes,
            &self.seg_index,
            &self.seg_labels,
            &self.seg_ends,
            &self.seg_metas,
            self.n_labels,
        )
    }

    /// Start offset in `neighbors` of directory segment `seg` — the previous
    /// segment's end (segments are globally contiguous).
    #[inline]
    fn seg_start(&self, seg: usize) -> usize {
        if seg == 0 {
            0
        } else {
            self.seg_ends[seg - 1] as usize
        }
    }

    /// Iterate all adjacency entries of `v` (grouped by label,
    /// label-ascending, each group sorted by `(neighbor, edge)`).
    #[inline]
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = Adj> + '_ {
        let (s, e) = (
            self.seg_index[v.index()] as usize,
            self.seg_index[v.index() + 1] as usize,
        );
        (s..e).flat_map(move |seg| self.segment(seg).iter())
    }

    /// Adjacency entries of `v` restricted to `label`: a scan of the vertex's
    /// directory row (strictly ascending labels, almost always ≤ 4 entries,
    /// early exit), one contiguous segment sorted by `(neighbor, edge)`, zero
    /// allocation.
    #[inline]
    pub fn edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        let (s, e) = (
            self.seg_index[v.index()] as usize,
            self.seg_index[v.index() + 1] as usize,
        );
        let want = label.0;
        for seg in s..e {
            let l = self.seg_labels[seg];
            if l == want {
                return self.segment(seg);
            }
            if l > want {
                break;
            }
        }
        AdjSegment::empty(label)
    }

    /// The directory segment `seg` (non-empty by construction).
    #[inline]
    fn segment(&self, seg: usize) -> AdjSegment<'_> {
        let (s, e) = (self.seg_start(seg), self.seg_ends[seg] as usize);
        let meta = self.seg_metas[seg];
        let off = (meta >> 2) as usize;
        let width = EDGE_WIDTHS[(meta & 3) as usize];
        let base = u32::from_le_bytes([
            self.edge_bytes[off],
            self.edge_bytes[off + 1],
            self.edge_bytes[off + 2],
            self.edge_bytes[off + 3],
        ]);
        let data = off + 4;
        AdjSegment {
            label: LabelId(self.seg_labels[seg]),
            neighbors: &self.neighbors[s..e],
            edges: EdgeCodes {
                base,
                width,
                bytes: &self.edge_bytes[data..data + width as usize * (e - s)],
            },
        }
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (s, e) = (
            self.seg_index[v.index()] as usize,
            self.seg_index[v.index() + 1] as usize,
        );
        if s == e {
            return 0;
        }
        self.seg_ends[e - 1] as usize - self.seg_start(s)
    }

    /// Number of stored adjacency entries (one per edge).
    pub fn entry_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Heap bytes held by the adjacency arrays — the bytes/edge numerator of
    /// the storage benchmarks.
    pub fn heap_bytes(&self) -> usize {
        self.neighbors.len() * 4
            + self.edge_bytes.len()
            + self.seg_index.len() * 4
            + self.seg_labels.len() * 2
            + self.seg_ends.len() * 4
            + self.seg_metas.len() * 4
    }

    /// The contiguous run of entries of `v` with `label` whose neighbour is
    /// `to` — the parallel edges between the pair, sorted by edge id. Located
    /// by binary search (`O(log d)`), sliced without allocation.
    #[inline]
    pub fn edges_to(&self, v: VertexId, label: LabelId, to: VertexId) -> AdjSegment<'_> {
        let seg = self.edges_with_label(v, label);
        if to.0 > u32::MAX as u64 {
            return AdjSegment::empty(label);
        }
        let to = to.0 as u32;
        let nbs = seg.neighbors();
        let start = nbs.partition_point(|&n| n < to);
        let end = start + nbs[start..].partition_point(|&n| n == to);
        seg.slice(start, end)
    }
}

/// Columnar property storage: one [`TypedColumn`] per (record label, property
/// key), indexed by the record's in-label offset. Null-bitmap bits (or `None`
/// cells of a `Mixed` column) mark absent properties; whole columns are `None`
/// when no record of that label carries the key.
#[derive(Debug, Clone, Default)]
pub(crate) struct PropColumns {
    n_keys: usize,
    /// `columns[label.index() * n_keys + key.index()]`.
    columns: Vec<Option<TypedColumn>>,
}

impl PropColumns {
    /// Scatter per-record property lists into boxed cells, then infer one
    /// typed layout per column ([`TypedColumn::from_cells`]). `label_sizes[l]`
    /// is the number of records with label `l`; `(label, in_label_offset)`
    /// locates each record.
    pub(crate) fn build(
        n_keys: usize,
        label_sizes: &[usize],
        records: impl Iterator<Item = (LabelId, u32, Box<[(PropKeyId, PropValue)]>)>,
    ) -> PropColumns {
        let mut cells: Vec<Option<Vec<Option<PropValue>>>> = vec![None; label_sizes.len() * n_keys];
        for (label, off, props) in records {
            for (key, value) in props.into_vec() {
                let col = &mut cells[label.index() * n_keys + key.index()];
                let col = col.get_or_insert_with(|| vec![None; label_sizes[label.index()]]);
                let cell = &mut col[off as usize];
                // first-wins on duplicate keys within one record, matching the
                // pre-columnar layout's linear `find` over the property list
                if cell.is_none() {
                    *cell = Some(value);
                }
            }
        }
        PropColumns {
            n_keys,
            columns: cells
                .into_iter()
                .map(|c| c.map(TypedColumn::from_cells))
                .collect(),
        }
    }

    /// The typed column of `(label, key)`, when any record of that label
    /// carries the key.
    #[inline]
    pub(crate) fn column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        if key.index() >= self.n_keys {
            return None;
        }
        self.columns
            .get(label.index() * self.n_keys + key.index())?
            .as_ref()
    }

    #[inline]
    pub(crate) fn get(
        &self,
        label: LabelId,
        in_label_offset: u32,
        key: PropKeyId,
    ) -> Option<PropValue> {
        self.column(label, key)?.get(in_label_offset as usize)
    }

    #[inline]
    pub(crate) fn cell(
        &self,
        label: LabelId,
        in_label_offset: u32,
        key: PropKeyId,
    ) -> Option<ColumnRef<'_>> {
        self.column(label, key).map(|column| ColumnRef {
            column,
            row: in_label_offset as usize,
        })
    }

    /// The raw column table (including unpopulated `None` slots), for the
    /// graph image writer.
    pub(crate) fn raw(&self) -> (usize, &[Option<TypedColumn>]) {
        (self.n_keys, &self.columns)
    }

    /// Reassemble a column store from its raw table (graph image loader).
    /// Returns `None` when the table size is not a multiple of `n_keys`.
    pub(crate) fn from_raw(
        n_keys: usize,
        columns: Vec<Option<TypedColumn>>,
    ) -> Option<PropColumns> {
        if n_keys == 0 && !columns.is_empty() {
            return None;
        }
        if n_keys != 0 && !columns.len().is_multiple_of(n_keys) {
            return None;
        }
        Some(PropColumns { n_keys, columns })
    }

    /// Iterate the populated columns as `(label, key, column)` triples.
    pub(crate) fn iter_columns(&self) -> impl Iterator<Item = (LabelId, PropKeyId, &TypedColumn)> {
        let n_keys = self.n_keys;
        self.columns.iter().enumerate().filter_map(move |(i, c)| {
            c.as_ref().map(|col| {
                (
                    LabelId((i / n_keys) as u16),
                    PropKeyId((i % n_keys) as u16),
                    col,
                )
            })
        })
    }
}

/// An immutable in-memory property graph in CSR + columnar layout.
///
/// Build one with [`GraphBuilder`]. Vertices and edges get dense ids in
/// insertion order; the adjacency arrays and property columns are materialised
/// by [`GraphBuilder::finish`]. See the [module documentation](self) for the
/// storage layout and the access contract operators rely on.
#[derive(Debug, Clone)]
pub struct PropertyGraph {
    schema: GraphSchema,
    /// Unique id of the `GraphBuilder::finish` call that built this graph.
    /// Clones share it — they are bit-identical — so it identifies graph
    /// *content* cheaply (used by shard caches to detect a different graph
    /// reallocated at a recycled address).
    build_id: u64,
    // vertex columns
    vertex_labels: Vec<LabelId>,
    vertex_in_label_offset: Vec<u32>,
    vertices_by_label: Vec<Vec<VertexId>>,
    vertex_props: PropColumns,
    // edge columns
    edge_labels: Vec<LabelId>,
    edge_srcs: Vec<VertexId>,
    edge_dsts: Vec<VertexId>,
    edge_in_label_offset: Vec<u32>,
    edge_count_by_label: Vec<u64>,
    edge_props: PropColumns,
    // adjacency
    out_adj: CsrAdjacency,
    in_adj: CsrAdjacency,
    // interned property keys
    prop_keys: Vec<String>,
    prop_key_idx: HashMap<String, PropKeyId>,
}

impl PropertyGraph {
    /// The schema this graph conforms to.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// Total number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// Number of vertices carrying the given label.
    pub fn vertex_count_by_label(&self, label: LabelId) -> usize {
        self.vertices_by_label
            .get(label.index())
            .map_or(0, |v| v.len())
    }

    /// Number of edges carrying the given label.
    pub fn edge_count_by_label(&self, label: LabelId) -> u64 {
        self.edge_count_by_label
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// Ids of all vertices with the given label.
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.vertices_by_label
            .get(label.index())
            .map_or(&[][..], |v| v.as_slice())
    }

    /// Iterate over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_labels.len() as u64).map(VertexId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_labels.len() as u64).map(EdgeId)
    }

    /// Label of a vertex.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> LabelId {
        self.vertex_labels[v.index()]
    }

    /// Label of an edge.
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> LabelId {
        self.edge_labels[e.index()]
    }

    /// (source, destination) endpoints of an edge.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        (self.edge_srcs[e.index()], self.edge_dsts[e.index()])
    }

    /// The per-vertex label column (indexed by `VertexId`). For columnar
    /// consumers such as the statistics layer.
    pub fn vertex_label_column(&self) -> &[LabelId] {
        &self.vertex_labels
    }

    /// The per-edge label column (indexed by `EdgeId`).
    pub fn edge_label_column(&self) -> &[LabelId] {
        &self.edge_labels
    }

    /// The per-edge source-vertex column (indexed by `EdgeId`).
    pub fn edge_source_column(&self) -> &[VertexId] {
        &self.edge_srcs
    }

    /// The per-edge destination-vertex column (indexed by `EdgeId`).
    pub fn edge_target_column(&self) -> &[VertexId] {
        &self.edge_dsts
    }

    /// The outgoing CSR adjacency (for layout-aware consumers).
    pub fn out_adjacency(&self) -> &CsrAdjacency {
        &self.out_adj
    }

    /// The incoming CSR adjacency (for layout-aware consumers).
    pub fn in_adjacency(&self) -> &CsrAdjacency {
        &self.in_adj
    }

    /// Iterate all outgoing adjacency entries of a vertex, grouped by edge
    /// label (ascending), each label group sorted by `(neighbor, edge)`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = Adj> + '_ {
        self.out_adj.edges(v)
    }

    /// Iterate all incoming adjacency entries of a vertex, grouped by edge
    /// label (ascending), each label group sorted by `(neighbor, edge)`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = Adj> + '_ {
        self.in_adj.edges(v)
    }

    /// Outgoing adjacency entries of `v` restricted to one edge label:
    /// two array lookups, one contiguous compressed segment, zero allocation.
    #[inline]
    pub fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        self.out_adj.edges_with_label(v, label)
    }

    /// Incoming adjacency entries of `v` restricted to one edge label:
    /// two array lookups, one contiguous compressed segment, zero allocation.
    #[inline]
    pub fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> AdjSegment<'_> {
        self.in_adj.edges_with_label(v, label)
    }

    /// Out-degree of a vertex.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj.degree(v)
    }

    /// In-degree of a vertex.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj.degree(v)
    }

    /// Whether there is at least one edge with label `label` from `src` to
    /// `dst`. Binary search over the sorted (vertex, label) neighbour slice.
    #[inline]
    pub fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        if dst.0 > u32::MAX as u64 {
            return false;
        }
        let nbs = self.out_adj.edges_with_label(src, label).neighbors();
        let dst = dst.0 as u32;
        let i = nbs.partition_point(|&n| n < dst);
        nbs.get(i).is_some_and(|&n| n == dst)
    }

    /// All edges with label `label` from `src` to `dst`, as a contiguous
    /// segment sorted by edge id. Binary search, zero allocation.
    #[inline]
    pub fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> AdjSegment<'_> {
        self.out_adj.edges_to(src, label, dst)
    }

    /// The smallest-id edge with label `label` from `src` to `dst`, if any.
    #[inline]
    pub fn first_edge_between(
        &self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
    ) -> Option<EdgeId> {
        self.edges_between(src, label, dst).first().map(|a| a.edge)
    }

    /// Intern (or look up) a property key name.
    pub fn prop_key(&self, name: &str) -> Option<PropKeyId> {
        self.prop_key_idx.get(name).copied()
    }

    /// Number of interned property keys.
    pub fn prop_key_count(&self) -> usize {
        self.prop_keys.len()
    }

    /// Unique id of the build that produced this graph. Clones share it;
    /// independently built graphs never do — a cheap content identity.
    pub fn build_id(&self) -> u64 {
        self.build_id
    }

    /// A copy of everything *except* the adjacency arrays and vertex property
    /// columns (left empty) — the global catalog a [`crate::PartitionedGraph`]
    /// keeps after routing those members into per-partition shards. Cloning
    /// only the catalog avoids a transient full copy of the adjacency during
    /// shard construction.
    pub(crate) fn catalog_clone(&self) -> PropertyGraph {
        PropertyGraph {
            schema: self.schema.clone(),
            build_id: self.build_id,
            vertex_labels: self.vertex_labels.clone(),
            vertex_in_label_offset: self.vertex_in_label_offset.clone(),
            vertices_by_label: self.vertices_by_label.clone(),
            vertex_props: PropColumns::default(),
            edge_labels: self.edge_labels.clone(),
            edge_srcs: self.edge_srcs.clone(),
            edge_dsts: self.edge_dsts.clone(),
            edge_in_label_offset: self.edge_in_label_offset.clone(),
            edge_count_by_label: self.edge_count_by_label.clone(),
            edge_props: self.edge_props.clone(),
            out_adj: CsrAdjacency::default(),
            in_adj: CsrAdjacency::default(),
            prop_keys: self.prop_keys.clone(),
            prop_key_idx: self.prop_key_idx.clone(),
        }
    }

    /// Name of an interned property key.
    pub fn prop_key_name(&self, id: PropKeyId) -> &str {
        &self.prop_keys[id.index()]
    }

    /// Reassemble a graph from its primary columns (graph image loader).
    /// Derived members — label partitions, in-label offsets, per-label counts
    /// and the key-interning index — are recomputed from the primary columns,
    /// and a **fresh** build id is stamped: a loaded graph is new content as
    /// far as shard caches are concerned. The caller must have validated that
    /// every label id is in range for `schema`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        schema: GraphSchema,
        vertex_labels: Vec<LabelId>,
        vertex_props: PropColumns,
        edge_labels: Vec<LabelId>,
        edge_srcs: Vec<VertexId>,
        edge_dsts: Vec<VertexId>,
        edge_props: PropColumns,
        out_adj: CsrAdjacency,
        in_adj: CsrAdjacency,
        prop_keys: Vec<String>,
    ) -> PropertyGraph {
        let n_vlabels = schema.vertex_label_count();
        let n_elabels = schema.edge_label_count();
        let mut vertex_in_label_offset = Vec::with_capacity(vertex_labels.len());
        let mut vertices_by_label: Vec<Vec<VertexId>> = vec![Vec::new(); n_vlabels];
        for (i, l) in vertex_labels.iter().enumerate() {
            let part = &mut vertices_by_label[l.index()];
            vertex_in_label_offset.push(part.len() as u32);
            part.push(VertexId(i as u64));
        }
        let mut edge_in_label_offset = Vec::with_capacity(edge_labels.len());
        let mut edge_count_by_label = vec![0u64; n_elabels];
        for l in &edge_labels {
            edge_in_label_offset.push(edge_count_by_label[l.index()] as u32);
            edge_count_by_label[l.index()] += 1;
        }
        let prop_key_idx = prop_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), PropKeyId(i as u16)))
            .collect();
        PropertyGraph {
            schema,
            build_id: next_build_id(),
            vertex_labels,
            vertex_in_label_offset,
            vertices_by_label,
            vertex_props,
            edge_labels,
            edge_srcs,
            edge_dsts,
            edge_in_label_offset,
            edge_count_by_label,
            edge_props,
            out_adj,
            in_adj,
            prop_keys,
            prop_key_idx,
        }
    }

    /// Look up a vertex property by key id: O(1) column access. Returns an
    /// owned value ([`PropValue`] is cheap to materialise from typed storage;
    /// strings are `Arc`-shared).
    #[inline]
    pub fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<PropValue> {
        self.vertex_props.get(
            self.vertex_labels[v.index()],
            self.vertex_in_label_offset[v.index()],
            key,
        )
    }

    /// Look up a vertex property by name.
    pub fn vertex_prop_by_name(&self, v: VertexId, name: &str) -> Option<PropValue> {
        self.prop_key(name).and_then(|k| self.vertex_prop(v, k))
    }

    /// Look up an edge property by key id: O(1) column access.
    #[inline]
    pub fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<PropValue> {
        self.edge_props.get(
            self.edge_labels[e.index()],
            self.edge_in_label_offset[e.index()],
            key,
        )
    }

    /// Look up an edge property by name.
    pub fn edge_prop_by_name(&self, e: EdgeId, name: &str) -> Option<PropValue> {
        self.prop_key(name).and_then(|k| self.edge_prop(e, k))
    }

    /// The typed property column of `(vertex label, key)`, when populated —
    /// the column-slice entry point of the batch kernels.
    #[inline]
    pub fn vertex_prop_column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        self.vertex_props.column(label, key)
    }

    /// The typed property column of `(edge label, key)`, when populated.
    #[inline]
    pub fn edge_prop_column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        self.edge_props.column(label, key)
    }

    /// The typed cell holding `v`'s `key` property: the `(label, key)` column
    /// plus the vertex's row within it. `None` when no vertex of `v`'s label
    /// carries the key.
    #[inline]
    pub fn vertex_prop_cell(&self, v: VertexId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.vertex_props.cell(
            self.vertex_labels[v.index()],
            self.vertex_in_label_offset[v.index()],
            key,
        )
    }

    /// The vertex property column store (for the statistics layer).
    pub(crate) fn vertex_prop_columns(&self) -> &PropColumns {
        &self.vertex_props
    }

    /// The edge property column store (for the statistics layer).
    pub(crate) fn edge_prop_columns(&self) -> &PropColumns {
        &self.edge_props
    }

    /// The typed cell holding `e`'s `key` property.
    #[inline]
    pub fn edge_prop_cell(&self, e: EdgeId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.edge_props.cell(
            self.edge_labels[e.index()],
            self.edge_in_label_offset[e.index()],
            key,
        )
    }

    /// Extract a schema from the data itself: one vertex label per observed label,
    /// and edge-label endpoint pairs from the observed (src-label, dst-label) pairs.
    ///
    /// This models the paper's Remark 6.1: for schema-loose backends such as Neo4j the
    /// schema needed by type inference can be recovered from the stored data.
    pub fn extract_schema(&self) -> GraphSchema {
        let mut s = GraphSchema::new();
        for id in self.schema.vertex_label_ids() {
            s.add_vertex_label(
                self.schema.vertex_label_name(id).to_string(),
                self.schema.vertex_label_def(id).properties.clone(),
            )
            .expect("labels are unique");
        }
        // declare edge labels with endpoints observed in the data only
        let mut observed: Vec<Vec<(LabelId, LabelId)>> =
            vec![Vec::new(); self.schema.edge_label_count()];
        for i in 0..self.edge_labels.len() {
            let pair = (
                self.vertex_labels[self.edge_srcs[i].index()],
                self.vertex_labels[self.edge_dsts[i].index()],
            );
            if !observed[self.edge_labels[i].index()].contains(&pair) {
                observed[self.edge_labels[i].index()].push(pair);
            }
        }
        for id in self.schema.edge_label_ids() {
            s.add_edge_label(
                self.schema.edge_label_name(id).to_string(),
                observed[id.index()].clone(),
                self.schema.edge_label_def(id).properties.clone(),
            )
            .expect("labels are unique");
        }
        s
    }
}

/// A process-unique id for each materialised graph. Image loads draw from the
/// same counter as [`GraphBuilder::finish`], so a loaded graph never aliases
/// the identity of a graph built in-process (shard caches key on this).
pub(crate) fn next_build_id() -> u64 {
    static NEXT_BUILD_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    NEXT_BUILD_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

#[derive(Debug, Clone)]
struct PendingVertex {
    label: LabelId,
    props: Box<[(PropKeyId, PropValue)]>,
}

#[derive(Debug, Clone)]
struct PendingEdge {
    label: LabelId,
    src: VertexId,
    dst: VertexId,
    props: Box<[(PropKeyId, PropValue)]>,
}

/// Builder for [`PropertyGraph`].
///
/// Records are buffered row-wise during insertion; [`GraphBuilder::finish`]
/// performs the column scatter and CSR construction in O(V + E).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    schema: GraphSchema,
    vertices: Vec<PendingVertex>,
    edges: Vec<PendingEdge>,
    prop_keys: Vec<String>,
    prop_key_idx: HashMap<String, PropKeyId>,
    /// When true (default), added edges are checked against the schema's endpoint pairs.
    validate: bool,
}

impl GraphBuilder {
    /// Start building a graph that conforms to `schema`.
    pub fn new(schema: GraphSchema) -> Self {
        GraphBuilder {
            schema,
            vertices: Vec::new(),
            edges: Vec::new(),
            prop_keys: Vec::new(),
            prop_key_idx: HashMap::new(),
            validate: true,
        }
    }

    /// Disable schema validation of edge endpoints (useful for schema-loose ingestion).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// The schema being built against.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    fn intern(&mut self, name: &str) -> PropKeyId {
        if let Some(id) = self.prop_key_idx.get(name) {
            return *id;
        }
        let id = PropKeyId(self.prop_keys.len() as u16);
        self.prop_keys.push(name.to_string());
        self.prop_key_idx.insert(name.to_string(), id);
        id
    }

    fn intern_props(&mut self, props: Vec<(&str, PropValue)>) -> Box<[(PropKeyId, PropValue)]> {
        props
            .into_iter()
            .map(|(k, v)| (self.intern(k), v))
            .collect::<Vec<_>>()
            .into_boxed_slice()
    }

    /// Add a vertex with the given label and properties; returns its id.
    pub fn add_vertex(
        &mut self,
        label: LabelId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<VertexId, GraphError> {
        if label.index() >= self.schema.vertex_label_count() {
            return Err(GraphError::InvalidLabelId(label.0));
        }
        let props = self.intern_props(props);
        let id = VertexId(self.vertices.len() as u64);
        self.vertices.push(PendingVertex { label, props });
        Ok(id)
    }

    /// Add a vertex looking the label up by name.
    pub fn add_vertex_by_name(
        &mut self,
        label: &str,
        props: Vec<(&str, PropValue)>,
    ) -> Result<VertexId, GraphError> {
        let l = self
            .schema
            .vertex_label(label)
            .ok_or_else(|| GraphError::UnknownLabel(label.to_string()))?;
        self.add_vertex(l, props)
    }

    /// Add an edge with the given label and properties; returns its id.
    pub fn add_edge(
        &mut self,
        label: LabelId,
        src: VertexId,
        dst: VertexId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<EdgeId, GraphError> {
        if label.index() >= self.schema.edge_label_count() {
            return Err(GraphError::InvalidLabelId(label.0));
        }
        let sv = self
            .vertices
            .get(src.index())
            .ok_or(GraphError::InvalidVertex(src.0))?;
        let dv = self
            .vertices
            .get(dst.index())
            .ok_or(GraphError::InvalidVertex(dst.0))?;
        if self.validate && !self.schema.can_connect(sv.label, label, dv.label) {
            return Err(GraphError::SchemaViolation {
                edge_label: self.schema.edge_label_name(label).to_string(),
                src_label: self.schema.vertex_label_name(sv.label).to_string(),
                dst_label: self.schema.vertex_label_name(dv.label).to_string(),
            });
        }
        let props = self.intern_props(props);
        let id = EdgeId(self.edges.len() as u64);
        self.edges.push(PendingEdge {
            label,
            src,
            dst,
            props,
        });
        Ok(id)
    }

    /// Add an edge looking the label up by name.
    pub fn add_edge_by_name(
        &mut self,
        label: &str,
        src: VertexId,
        dst: VertexId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<EdgeId, GraphError> {
        let l = self
            .schema
            .edge_label(label)
            .ok_or_else(|| GraphError::UnknownLabel(label.to_string()))?;
        self.add_edge(l, src, dst, props)
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalise the graph: flatten adjacency into CSR arrays and scatter
    /// properties into per-(label, key) columns.
    pub fn finish(self) -> PropertyGraph {
        let n = self.vertices.len();
        let n_vlabels = self.schema.vertex_label_count();
        let n_elabels = self.schema.edge_label_count();
        let n_keys = self.prop_keys.len();

        // vertex columns + label partitions + in-label offsets
        let mut vertex_labels = Vec::with_capacity(n);
        let mut vertex_in_label_offset = Vec::with_capacity(n);
        let mut vertices_by_label: Vec<Vec<VertexId>> = vec![Vec::new(); n_vlabels];
        for (i, v) in self.vertices.iter().enumerate() {
            vertex_labels.push(v.label);
            let part = &mut vertices_by_label[v.label.index()];
            vertex_in_label_offset.push(part.len() as u32);
            part.push(VertexId(i as u64));
        }
        let vertex_label_sizes: Vec<usize> = vertices_by_label.iter().map(|p| p.len()).collect();

        // edge columns + per-label counts + in-label offsets
        let ne = self.edges.len();
        let mut edge_labels = Vec::with_capacity(ne);
        let mut edge_srcs = Vec::with_capacity(ne);
        let mut edge_dsts = Vec::with_capacity(ne);
        let mut edge_in_label_offset = Vec::with_capacity(ne);
        let mut edge_count_by_label = vec![0u64; n_elabels];
        for e in &self.edges {
            edge_labels.push(e.label);
            edge_srcs.push(e.src);
            edge_dsts.push(e.dst);
            edge_in_label_offset.push(edge_count_by_label[e.label.index()] as u32);
            edge_count_by_label[e.label.index()] += 1;
        }
        let edge_label_sizes: Vec<usize> =
            edge_count_by_label.iter().map(|&c| c as usize).collect();

        // CSR adjacency per direction
        let out_adj = CsrAdjacency::build(
            n,
            n_elabels,
            &edge_labels,
            |i| edge_srcs[i],
            |i| edge_dsts[i],
        );
        let in_adj = CsrAdjacency::build(
            n,
            n_elabels,
            &edge_labels,
            |i| edge_dsts[i],
            |i| edge_srcs[i],
        );

        // property column scatter
        let vertex_props = PropColumns::build(
            n_keys,
            &vertex_label_sizes,
            self.vertices
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.label, vertex_in_label_offset[i], v.props)),
        );
        let edge_props = PropColumns::build(
            n_keys,
            &edge_label_sizes,
            self.edges
                .into_iter()
                .enumerate()
                .map(|(i, e)| (e.label, edge_in_label_offset[i], e.props)),
        );

        // register the inferred per-(label, key) value types in the schema so
        // the optimizer's type inference can consult them (declared types win;
        // Mixed columns register nothing)
        let mut schema = self.schema;
        for (label, key, col) in vertex_props.iter_columns() {
            if let Some(kind) = col.kind() {
                schema.register_vertex_prop_type(label, &self.prop_keys[key.index()], kind);
            }
        }
        for (label, key, col) in edge_props.iter_columns() {
            if let Some(kind) = col.kind() {
                schema.register_edge_prop_type(label, &self.prop_keys[key.index()], kind);
            }
        }

        PropertyGraph {
            schema,
            build_id: next_build_id(),
            vertex_labels,
            vertex_in_label_offset,
            vertices_by_label,
            vertex_props,
            edge_labels,
            edge_srcs,
            edge_dsts,
            edge_in_label_offset,
            edge_count_by_label,
            edge_props,
            out_adj,
            in_adj,
            prop_keys: self.prop_keys,
            prop_key_idx: self.prop_key_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::fig6_schema;

    fn small_graph() -> PropertyGraph {
        // 2 persons, 1 product, 1 place
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let p1 = b
            .add_vertex_by_name("Person", vec![("name", PropValue::str("alice"))])
            .unwrap();
        let p2 = b
            .add_vertex_by_name("Person", vec![("name", PropValue::str("bob"))])
            .unwrap();
        let prod = b
            .add_vertex_by_name("Product", vec![("name", PropValue::str("widget"))])
            .unwrap();
        let place = b
            .add_vertex_by_name("Place", vec![("name", PropValue::str("China"))])
            .unwrap();
        b.add_edge_by_name("Knows", p1, p2, vec![]).unwrap();
        b.add_edge_by_name("Purchases", p1, prod, vec![]).unwrap();
        b.add_edge_by_name("LocatedIn", p2, place, vec![]).unwrap();
        b.add_edge_by_name(
            "ProducedIn",
            prod,
            place,
            vec![("year", PropValue::Int(2020))],
        )
        .unwrap();
        b.finish()
    }

    #[test]
    fn counts_and_labels() {
        let g = small_graph();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let person = g.schema().vertex_label("Person").unwrap();
        assert_eq!(g.vertex_count_by_label(person), 2);
        assert_eq!(g.vertices_with_label(person).len(), 2);
        let knows = g.schema().edge_label("Knows").unwrap();
        assert_eq!(g.edge_count_by_label(knows), 1);
        assert_eq!(g.vertex_ids().count(), 4);
        assert_eq!(g.edge_ids().count(), 4);
    }

    #[test]
    fn adjacency_and_expansion() {
        let g = small_graph();
        let p1 = VertexId(0);
        let p2 = VertexId(1);
        let place = VertexId(3);
        assert_eq!(g.out_degree(p1), 2);
        assert_eq!(g.in_degree(place), 2);
        let knows = g.schema().edge_label("Knows").unwrap();
        let adj = g.out_edges_with_label(p1, knows);
        assert_eq!(adj.len(), 1);
        assert_eq!(adj.neighbor(0), p2);
        assert_eq!(
            adj.get(0),
            Adj {
                edge_label: knows,
                edge: EdgeId(0),
                neighbor: p2
            }
        );
        assert!(g.has_edge(p1, knows, p2));
        assert!(!g.has_edge(p2, knows, p1));
        assert_eq!(g.edges_between(p1, knows, p2).len(), 1);
        assert_eq!(g.first_edge_between(p1, knows, p2), Some(EdgeId(0)));
        assert_eq!(g.first_edge_between(p2, knows, p1), None);
        let located = g.schema().edge_label("LocatedIn").unwrap();
        assert!(g.out_edges_with_label(p1, located).is_empty());
        // out-of-range labels are empty, not a panic
        assert!(g.out_edges_with_label(p1, LabelId(999)).is_empty());
        assert!(!g.has_edge(p1, LabelId(999), p2));
        // edge endpoints
        let e0 = EdgeId(0);
        assert_eq!(g.edge_endpoints(e0), (p1, p2));
        assert_eq!(g.edge_label(e0), knows);
        // columnar accessors line up with the record accessors
        assert_eq!(g.edge_label_column()[0], knows);
        assert_eq!(g.edge_source_column()[0], p1);
        assert_eq!(g.edge_target_column()[0], p2);
        assert_eq!(g.vertex_label_column()[0], g.vertex_label(p1));
        assert_eq!(g.out_adjacency().degree(p1), 2);
        assert_eq!(g.in_adjacency().degree(place), 2);
    }

    #[test]
    fn full_adjacency_is_grouped_by_label() {
        let g = small_graph();
        let p1 = VertexId(0);
        let all: Vec<Adj> = g.out_edges(p1).collect();
        assert_eq!(all.len(), 2);
        // groups appear in ascending label order
        assert!(all.windows(2).all(|w| w[0].edge_label <= w[1].edge_label));
        // the concatenation of per-label segments equals the full iteration
        let mut concat: Vec<Adj> = Vec::new();
        for l in g.schema().edge_label_ids() {
            concat.extend(g.out_edges_with_label(p1, l).iter());
        }
        assert_eq!(concat, all);
    }

    #[test]
    fn parallel_edges_form_a_contiguous_run() {
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let p1 = b.add_vertex_by_name("Person", vec![]).unwrap();
        let p2 = b.add_vertex_by_name("Person", vec![]).unwrap();
        let p3 = b.add_vertex_by_name("Person", vec![]).unwrap();
        let e1 = b.add_edge_by_name("Knows", p1, p2, vec![]).unwrap();
        b.add_edge_by_name("Knows", p1, p3, vec![]).unwrap();
        let e3 = b.add_edge_by_name("Knows", p1, p2, vec![]).unwrap();
        let g = b.finish();
        let knows = g.schema().edge_label("Knows").unwrap();
        let run = g.edges_between(p1, knows, p2);
        assert_eq!(run.len(), 2);
        assert_eq!(run.edge(0), e1, "parallel edges sorted by edge id");
        assert_eq!(run.edge(1), e3);
        assert_eq!(g.first_edge_between(p1, knows, p2), Some(e1));
        assert_eq!(g.edges_between(p1, knows, p3).len(), 1);
        assert!(g.edges_between(p2, knows, p1).is_empty());
    }

    #[test]
    fn edge_ids_delta_decode_across_widths() {
        // synthetic edge ids spanning the delta widths: segment (v0, l0) gets
        // {300, 70_000} and segment (v0 -> neighbor 1) interleaved, so the
        // combined segment sorted by (neighbor, edge) is
        // [(0, 300), (0, 70_000), (1, 7), (1, 8)] with base 7, width 4
        let ids = [70_000u64, 8, 300, 7];
        let labels = vec![LabelId(0); 4];
        let adj = CsrAdjacency::build_with_ids(
            2,
            1,
            &labels,
            |_| VertexId(0),
            |i| VertexId((i % 2) as u64),
            |i| EdgeId(ids[i]),
        );
        let seg = adj.edges_with_label(VertexId(0), LabelId(0));
        assert_eq!(seg.len(), 4);
        assert_eq!(seg.neighbors(), &[0, 0, 1, 1]);
        let decoded: Vec<(u64, u64)> = seg.iter().map(|a| (a.neighbor.0, a.edge.0)).collect();
        assert_eq!(decoded, [(0, 300), (0, 70_000), (1, 7), (1, 8)]);
        assert_eq!(seg.edge(1), EdgeId(70_000));
        // sub-slicing keeps decoding aligned
        let tail = seg.slice(2, 4);
        assert_eq!(tail.to_vec(), seg.to_vec()[2..]);
        assert_eq!(adj.entry_count(), 4);
        assert_eq!(adj.degree(VertexId(0)), 4);
        assert_eq!(adj.degree(VertexId(1)), 0);
        assert!(adj.edges_with_label(VertexId(1), LabelId(0)).is_empty());

        // a tight id cluster compresses to 1-byte deltas
        let labels = vec![LabelId(0); 200];
        let dense = CsrAdjacency::build_with_ids(
            1,
            1,
            &labels,
            |_| VertexId(0),
            |_| VertexId(0),
            |i| EdgeId(1000 + i as u64),
        );
        let seg = dense.edges_with_label(VertexId(0), LabelId(0));
        assert_eq!(seg.len(), 200);
        for i in 0..200 {
            assert_eq!(seg.edge(i).0, 1000 + i as u64);
        }
        // 4 B neighbor + 1 B delta per entry, plus small per-segment overhead:
        // far below the 24 B/entry of the uncompressed Adj struct
        assert!(dense.heap_bytes() < 200 * 24);
    }

    #[test]
    fn properties_are_interned_and_retrievable() {
        let g = small_graph();
        let p1 = VertexId(0);
        assert_eq!(
            g.vertex_prop_by_name(p1, "name"),
            Some(PropValue::str("alice"))
        );
        assert!(g.vertex_prop_by_name(p1, "missing").is_none());
        let e3 = EdgeId(3);
        assert_eq!(g.edge_prop_by_name(e3, "year"), Some(PropValue::Int(2020)));
        // edges without the property return None even when the column exists
        assert!(g.edge_prop_by_name(EdgeId(0), "year").is_none());
        let key = g.prop_key("name").unwrap();
        assert_eq!(g.prop_key_name(key), "name");
        // out-of-range key ids return None
        assert!(g.vertex_prop(p1, PropKeyId(999)).is_none());
    }

    #[test]
    fn duplicate_property_keys_keep_the_first_value() {
        // the builder does not reject duplicate keys; the pre-columnar layout
        // returned the first occurrence and the column scatter must agree
        let mut b = GraphBuilder::new(fig6_schema());
        let v = b
            .add_vertex_by_name(
                "Person",
                vec![("name", PropValue::Int(1)), ("name", PropValue::Int(2))],
            )
            .unwrap();
        let w = b.add_vertex_by_name("Person", vec![]).unwrap();
        let e = b
            .add_edge_by_name(
                "Knows",
                v,
                w,
                vec![("since", PropValue::Int(3)), ("since", PropValue::Int(4))],
            )
            .unwrap();
        let g = b.finish();
        assert_eq!(g.vertex_prop_by_name(v, "name"), Some(PropValue::Int(1)));
        assert_eq!(g.edge_prop_by_name(e, "since"), Some(PropValue::Int(3)));
    }

    #[test]
    fn schema_violation_is_detected() {
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let place = b.add_vertex_by_name("Place", vec![]).unwrap();
        let person = b.add_vertex_by_name("Person", vec![]).unwrap();
        // LocatedIn goes Person -> Place, not the reverse
        let err = b.add_edge_by_name("LocatedIn", place, person, vec![]);
        assert!(matches!(err, Err(GraphError::SchemaViolation { .. })));
        // without validation the edge is accepted
        let mut b2 = GraphBuilder::new(fig6_schema()).without_validation();
        let place = b2.add_vertex_by_name("Place", vec![]).unwrap();
        let person = b2.add_vertex_by_name("Person", vec![]).unwrap();
        assert!(b2
            .add_edge_by_name("LocatedIn", place, person, vec![])
            .is_ok());
    }

    #[test]
    fn unknown_names_error() {
        let mut b = GraphBuilder::new(fig6_schema());
        assert!(matches!(
            b.add_vertex_by_name("Alien", vec![]),
            Err(GraphError::UnknownLabel(_))
        ));
        let v = b.add_vertex_by_name("Person", vec![]).unwrap();
        assert!(matches!(
            b.add_edge_by_name("Flies", v, v, vec![]),
            Err(GraphError::UnknownLabel(_))
        ));
        assert!(b.add_edge(LabelId(99), v, v, vec![]).is_err());
        assert!(b.add_vertex(LabelId(99), vec![]).is_err());
        assert!(b
            .add_edge_by_name("Knows", v, VertexId(42), vec![])
            .is_err());
    }

    #[test]
    fn extract_schema_reflects_observed_endpoints() {
        let g = small_graph();
        let extracted = g.extract_schema();
        let person = extracted.vertex_label("Person").unwrap();
        let place = extracted.vertex_label("Place").unwrap();
        let located = extracted.edge_label("LocatedIn").unwrap();
        assert!(extracted.can_connect(person, located, place));
        assert_eq!(
            extracted.vertex_label_count(),
            g.schema().vertex_label_count()
        );
        assert_eq!(extracted.edge_label_count(), g.schema().edge_label_count());
    }
}
