//! The in-memory property graph store.
//!
//! # Storage layout: CSR adjacency + columnar properties
//!
//! [`PropertyGraph`] is immutable after build and organised for the access
//! pattern of the physical operators (`ExpandEdge`, `ExpandInto`,
//! `ExpandIntersect`): *expand a vertex over one edge label* must be a pure
//! array lookup returning a contiguous, sorted slice — no pointer chasing, no
//! per-call allocation.
//!
//! ## Adjacency: flat CSR with a per-(vertex, label) segment index
//!
//! Each direction (out/in) is one [`CsrAdjacency`]:
//!
//! ```text
//! entries:       [ Adj | Adj | Adj | ... ]        one flat Vec for ALL vertices
//! offsets:       [ o_0, o_1, ..., o_n ]           n+1; entries[o_v..o_{v+1}] = adjacency of v
//! label_offsets: [ s_{0,0}, ..., s_{v,l}, ... ]   n*L+1; entries[s_{v,l}..s_{v,l+1}] =
//!                                                 adjacency of v restricted to edge label l
//! ```
//!
//! `out_edges_with_label(v, l)` is therefore **two array lookups** into
//! `label_offsets` plus a slice construction — O(1), zero allocation, and the
//! returned entries are contiguous in memory. Within each (vertex, label)
//! segment the entries are sorted by `(neighbor, edge)`, which is the contract
//! the operators rely on:
//!
//! * [`PropertyGraph::has_edge`] / [`PropertyGraph::edges_between`] binary-search
//!   the segment by neighbour (`O(log d)`);
//! * `ExpandIntersect` merge-intersects two segments with a galloping scan
//!   instead of hashing;
//! * distinct-neighbour deduplication during expansion is a linear `dedup`.
//!
//! The `label_offsets` index trades `n_vertices * n_edge_labels * 4` bytes of
//! memory for O(1) label slicing (the previous layout binary-searched a
//! per-vertex `Vec<Adj>`, costing two searches and a cache miss per hop).
//!
//! ## Properties: per-(label, key) columns
//!
//! Vertex and edge properties live in `PropColumns`: one dense column per
//! (label, interned property key) pair, indexed by the record's *in-label
//! offset* (its position among records of the same label, assigned in
//! insertion order). `vertex_prop` / `edge_prop` are O(1) — label lookup,
//! offset lookup, column cell — replacing the previous per-record boxed slice
//! that was linearly scanned on every access. Endpoints and labels of edges
//! are likewise stored as flat columns (`edge_labels`, `edge_srcs`,
//! `edge_dsts`), which the statistics layer scans directly.
//!
//! ## Operator access contract
//!
//! Code outside this crate may rely on exactly this:
//!
//! 1. `{out,in}_edges_with_label(v, l)` returns a contiguous slice sorted by
//!    `(neighbor, edge)`, without allocating;
//! 2. `{out,in}_edges(v)` returns the full per-vertex slice, grouped by edge
//!    label in increasing label order (segments concatenated);
//! 3. `edges_between(src, l, dst)` returns the contiguous sub-slice of parallel
//!    edges (sorted by edge id), located by binary search;
//! 4. vertex/edge ids are dense and assigned in insertion order, so columns can
//!    be zipped with id ranges.
//!
//! Build one with [`GraphBuilder`]; the CSR arrays and property columns are
//! materialised in [`GraphBuilder::finish`].

use crate::column::{ColumnRef, TypedColumn};
use crate::error::GraphError;
use crate::ids::{EdgeId, LabelId, PropKeyId, VertexId};
use crate::schema::GraphSchema;
use crate::value::PropValue;
use std::collections::HashMap;

/// One adjacency entry: the incident edge and the neighbouring vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adj {
    /// Label of the incident edge.
    pub edge_label: LabelId,
    /// Id of the incident edge.
    pub edge: EdgeId,
    /// Id of the neighbouring vertex (head for out-adjacency, tail for in-adjacency).
    pub neighbor: VertexId,
}

/// Flat compressed-sparse-row adjacency for one direction.
///
/// See the [module documentation](self) for the layout. All offsets are `u32`
/// (graphs are capped at `u32::MAX` edges per direction, asserted at build).
#[derive(Debug, Clone, Default)]
pub struct CsrAdjacency {
    /// All adjacency entries, grouped by vertex, then by edge label, each
    /// (vertex, label) segment sorted by `(neighbor, edge)`.
    entries: Vec<Adj>,
    /// Per-vertex extents: `entries[offsets[v] .. offsets[v+1]]`. Length `n+1`.
    offsets: Vec<u32>,
    /// Per-(vertex, label) extents: `entries[label_offsets[v*L+l] .. label_offsets[v*L+l+1]]`.
    /// Length `n*L + 1`; monotone, ending at `entries.len()`.
    label_offsets: Vec<u32>,
    /// Number of edge labels `L` the segment index is built over.
    n_labels: usize,
}

impl CsrAdjacency {
    /// Build from per-edge endpoint/label columns. `endpoint(e)` gives the
    /// vertex whose adjacency the edge belongs to, `other(e)` the neighbour.
    fn build(
        n_vertices: usize,
        n_labels: usize,
        edge_labels: &[LabelId],
        endpoint: impl Fn(usize) -> VertexId,
        other: impl Fn(usize) -> VertexId,
    ) -> CsrAdjacency {
        Self::build_with_ids(n_vertices, n_labels, edge_labels, endpoint, other, |i| {
            EdgeId(i as u64)
        })
    }

    /// Like [`CsrAdjacency::build`], but with the stored edge id supplied by
    /// `edge_id(i)` instead of the dense position `i`. This is what lets a
    /// partition shard index a *subset* of the edges while keeping global edge
    /// ids in its entries (see [`crate::partition`]).
    pub(crate) fn build_with_ids(
        n_vertices: usize,
        n_labels: usize,
        edge_labels: &[LabelId],
        endpoint: impl Fn(usize) -> VertexId,
        other: impl Fn(usize) -> VertexId,
        edge_id: impl Fn(usize) -> EdgeId,
    ) -> CsrAdjacency {
        assert!(
            edge_labels.len() <= u32::MAX as usize,
            "CSR adjacency is limited to u32::MAX edges"
        );
        // counting sort by (vertex, label): one pass to size segments,
        // a prefix sum for extents, one pass to scatter
        let mut label_offsets = vec![0u32; n_vertices * n_labels + 1];
        for (i, &l) in edge_labels.iter().enumerate() {
            label_offsets[endpoint(i).index() * n_labels + l.index() + 1] += 1;
        }
        for i in 1..label_offsets.len() {
            label_offsets[i] += label_offsets[i - 1];
        }
        let mut cursors: Vec<u32> = label_offsets[..label_offsets.len() - 1].to_vec();
        let total = edge_labels.len();
        let mut entries = vec![
            Adj {
                edge_label: LabelId(0),
                edge: EdgeId(0),
                neighbor: VertexId(0),
            };
            total
        ];
        for (i, &l) in edge_labels.iter().enumerate() {
            let seg = endpoint(i).index() * n_labels + l.index();
            let pos = cursors[seg] as usize;
            cursors[seg] += 1;
            entries[pos] = Adj {
                edge_label: l,
                edge: edge_id(i),
                neighbor: other(i),
            };
        }
        // establish per-segment (neighbor, edge) order
        for seg in 0..n_vertices * n_labels {
            let (s, e) = (label_offsets[seg] as usize, label_offsets[seg + 1] as usize);
            if e - s > 1 {
                entries[s..e].sort_unstable_by_key(|a| (a.neighbor, a.edge));
            }
        }
        let offsets = (0..=n_vertices)
            .map(|v| label_offsets[(v * n_labels).min(label_offsets.len() - 1)])
            .collect();
        CsrAdjacency {
            entries,
            offsets,
            label_offsets,
            n_labels,
        }
    }

    /// All adjacency entries of `v` (grouped by label, label-ascending).
    #[inline]
    pub fn edges(&self, v: VertexId) -> &[Adj] {
        &self.entries[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Adjacency entries of `v` restricted to `label`: two array lookups, one
    /// contiguous slice sorted by `(neighbor, edge)`.
    #[inline]
    pub fn edges_with_label(&self, v: VertexId, label: LabelId) -> &[Adj] {
        if label.index() >= self.n_labels {
            return &[];
        }
        let seg = v.index() * self.n_labels + label.index();
        &self.entries[self.label_offsets[seg] as usize..self.label_offsets[seg + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// The contiguous run of entries of `v` with `label` whose neighbour is
    /// `to` — the parallel edges between the pair, sorted by edge id. Located
    /// by binary search (`O(log d)`), sliced without allocation.
    #[inline]
    pub fn edges_to(&self, v: VertexId, label: LabelId, to: VertexId) -> &[Adj] {
        let seg = self.edges_with_label(v, label);
        let start = seg.partition_point(|a| a.neighbor < to);
        let end = start + seg[start..].partition_point(|a| a.neighbor == to);
        &seg[start..end]
    }
}

/// Columnar property storage: one [`TypedColumn`] per (record label, property
/// key), indexed by the record's in-label offset. Null-bitmap bits (or `None`
/// cells of a `Mixed` column) mark absent properties; whole columns are `None`
/// when no record of that label carries the key.
#[derive(Debug, Clone, Default)]
pub(crate) struct PropColumns {
    n_keys: usize,
    /// `columns[label.index() * n_keys + key.index()]`.
    columns: Vec<Option<TypedColumn>>,
}

impl PropColumns {
    /// Scatter per-record property lists into boxed cells, then infer one
    /// typed layout per column ([`TypedColumn::from_cells`]). `label_sizes[l]`
    /// is the number of records with label `l`; `(label, in_label_offset)`
    /// locates each record.
    pub(crate) fn build(
        n_keys: usize,
        label_sizes: &[usize],
        records: impl Iterator<Item = (LabelId, u32, Box<[(PropKeyId, PropValue)]>)>,
    ) -> PropColumns {
        let mut cells: Vec<Option<Vec<Option<PropValue>>>> = vec![None; label_sizes.len() * n_keys];
        for (label, off, props) in records {
            for (key, value) in props.into_vec() {
                let col = &mut cells[label.index() * n_keys + key.index()];
                let col = col.get_or_insert_with(|| vec![None; label_sizes[label.index()]]);
                let cell = &mut col[off as usize];
                // first-wins on duplicate keys within one record, matching the
                // pre-columnar layout's linear `find` over the property list
                if cell.is_none() {
                    *cell = Some(value);
                }
            }
        }
        PropColumns {
            n_keys,
            columns: cells
                .into_iter()
                .map(|c| c.map(TypedColumn::from_cells))
                .collect(),
        }
    }

    /// The typed column of `(label, key)`, when any record of that label
    /// carries the key.
    #[inline]
    pub(crate) fn column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        if key.index() >= self.n_keys {
            return None;
        }
        self.columns
            .get(label.index() * self.n_keys + key.index())?
            .as_ref()
    }

    #[inline]
    pub(crate) fn get(
        &self,
        label: LabelId,
        in_label_offset: u32,
        key: PropKeyId,
    ) -> Option<PropValue> {
        self.column(label, key)?.get(in_label_offset as usize)
    }

    #[inline]
    pub(crate) fn cell(
        &self,
        label: LabelId,
        in_label_offset: u32,
        key: PropKeyId,
    ) -> Option<ColumnRef<'_>> {
        self.column(label, key).map(|column| ColumnRef {
            column,
            row: in_label_offset as usize,
        })
    }

    /// Iterate the populated columns as `(label, key, column)` triples.
    pub(crate) fn iter_columns(&self) -> impl Iterator<Item = (LabelId, PropKeyId, &TypedColumn)> {
        let n_keys = self.n_keys;
        self.columns.iter().enumerate().filter_map(move |(i, c)| {
            c.as_ref().map(|col| {
                (
                    LabelId((i / n_keys) as u16),
                    PropKeyId((i % n_keys) as u16),
                    col,
                )
            })
        })
    }
}

/// An immutable in-memory property graph in CSR + columnar layout.
///
/// Build one with [`GraphBuilder`]. Vertices and edges get dense ids in
/// insertion order; the adjacency arrays and property columns are materialised
/// by [`GraphBuilder::finish`]. See the [module documentation](self) for the
/// storage layout and the access contract operators rely on.
#[derive(Debug, Clone)]
pub struct PropertyGraph {
    schema: GraphSchema,
    /// Unique id of the `GraphBuilder::finish` call that built this graph.
    /// Clones share it — they are bit-identical — so it identifies graph
    /// *content* cheaply (used by shard caches to detect a different graph
    /// reallocated at a recycled address).
    build_id: u64,
    // vertex columns
    vertex_labels: Vec<LabelId>,
    vertex_in_label_offset: Vec<u32>,
    vertices_by_label: Vec<Vec<VertexId>>,
    vertex_props: PropColumns,
    // edge columns
    edge_labels: Vec<LabelId>,
    edge_srcs: Vec<VertexId>,
    edge_dsts: Vec<VertexId>,
    edge_in_label_offset: Vec<u32>,
    edge_count_by_label: Vec<u64>,
    edge_props: PropColumns,
    // adjacency
    out_adj: CsrAdjacency,
    in_adj: CsrAdjacency,
    // interned property keys
    prop_keys: Vec<String>,
    prop_key_idx: HashMap<String, PropKeyId>,
}

impl PropertyGraph {
    /// The schema this graph conforms to.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// Total number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// Number of vertices carrying the given label.
    pub fn vertex_count_by_label(&self, label: LabelId) -> usize {
        self.vertices_by_label
            .get(label.index())
            .map_or(0, |v| v.len())
    }

    /// Number of edges carrying the given label.
    pub fn edge_count_by_label(&self, label: LabelId) -> u64 {
        self.edge_count_by_label
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// Ids of all vertices with the given label.
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.vertices_by_label
            .get(label.index())
            .map_or(&[][..], |v| v.as_slice())
    }

    /// Iterate over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_labels.len() as u64).map(VertexId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_labels.len() as u64).map(EdgeId)
    }

    /// Label of a vertex.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> LabelId {
        self.vertex_labels[v.index()]
    }

    /// Label of an edge.
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> LabelId {
        self.edge_labels[e.index()]
    }

    /// (source, destination) endpoints of an edge.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        (self.edge_srcs[e.index()], self.edge_dsts[e.index()])
    }

    /// The per-vertex label column (indexed by `VertexId`). For columnar
    /// consumers such as the statistics layer.
    pub fn vertex_label_column(&self) -> &[LabelId] {
        &self.vertex_labels
    }

    /// The per-edge label column (indexed by `EdgeId`).
    pub fn edge_label_column(&self) -> &[LabelId] {
        &self.edge_labels
    }

    /// The per-edge source-vertex column (indexed by `EdgeId`).
    pub fn edge_source_column(&self) -> &[VertexId] {
        &self.edge_srcs
    }

    /// The per-edge destination-vertex column (indexed by `EdgeId`).
    pub fn edge_target_column(&self) -> &[VertexId] {
        &self.edge_dsts
    }

    /// The outgoing CSR adjacency (for layout-aware consumers).
    pub fn out_adjacency(&self) -> &CsrAdjacency {
        &self.out_adj
    }

    /// The incoming CSR adjacency (for layout-aware consumers).
    pub fn in_adjacency(&self) -> &CsrAdjacency {
        &self.in_adj
    }

    /// All outgoing adjacency entries of a vertex, grouped by edge label
    /// (ascending), each label group sorted by `(neighbor, edge)`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[Adj] {
        self.out_adj.edges(v)
    }

    /// All incoming adjacency entries of a vertex, grouped by edge label
    /// (ascending), each label group sorted by `(neighbor, edge)`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[Adj] {
        self.in_adj.edges(v)
    }

    /// Outgoing adjacency entries of `v` restricted to one edge label:
    /// two array lookups, one contiguous slice, zero allocation.
    #[inline]
    pub fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> &[Adj] {
        self.out_adj.edges_with_label(v, label)
    }

    /// Incoming adjacency entries of `v` restricted to one edge label:
    /// two array lookups, one contiguous slice, zero allocation.
    #[inline]
    pub fn in_edges_with_label(&self, v: VertexId, label: LabelId) -> &[Adj] {
        self.in_adj.edges_with_label(v, label)
    }

    /// Out-degree of a vertex.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj.degree(v)
    }

    /// In-degree of a vertex.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj.degree(v)
    }

    /// Whether there is at least one edge with label `label` from `src` to
    /// `dst`. Binary search over the sorted (vertex, label) segment.
    #[inline]
    pub fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        let seg = self.out_adj.edges_with_label(src, label);
        let i = seg.partition_point(|a| a.neighbor < dst);
        seg.get(i).is_some_and(|a| a.neighbor == dst)
    }

    /// All edges with label `label` from `src` to `dst`, as a contiguous slice
    /// sorted by edge id. Binary search, zero allocation.
    #[inline]
    pub fn edges_between(&self, src: VertexId, label: LabelId, dst: VertexId) -> &[Adj] {
        self.out_adj.edges_to(src, label, dst)
    }

    /// The smallest-id edge with label `label` from `src` to `dst`, if any.
    #[inline]
    pub fn first_edge_between(
        &self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
    ) -> Option<EdgeId> {
        self.edges_between(src, label, dst).first().map(|a| a.edge)
    }

    /// Intern (or look up) a property key name.
    pub fn prop_key(&self, name: &str) -> Option<PropKeyId> {
        self.prop_key_idx.get(name).copied()
    }

    /// Number of interned property keys.
    pub fn prop_key_count(&self) -> usize {
        self.prop_keys.len()
    }

    /// Unique id of the build that produced this graph. Clones share it;
    /// independently built graphs never do — a cheap content identity.
    pub fn build_id(&self) -> u64 {
        self.build_id
    }

    /// A copy of everything *except* the adjacency arrays and vertex property
    /// columns (left empty) — the global catalog a [`crate::PartitionedGraph`]
    /// keeps after routing those members into per-partition shards. Cloning
    /// only the catalog avoids a transient full copy of the adjacency during
    /// shard construction.
    pub(crate) fn catalog_clone(&self) -> PropertyGraph {
        PropertyGraph {
            schema: self.schema.clone(),
            build_id: self.build_id,
            vertex_labels: self.vertex_labels.clone(),
            vertex_in_label_offset: self.vertex_in_label_offset.clone(),
            vertices_by_label: self.vertices_by_label.clone(),
            vertex_props: PropColumns::default(),
            edge_labels: self.edge_labels.clone(),
            edge_srcs: self.edge_srcs.clone(),
            edge_dsts: self.edge_dsts.clone(),
            edge_in_label_offset: self.edge_in_label_offset.clone(),
            edge_count_by_label: self.edge_count_by_label.clone(),
            edge_props: self.edge_props.clone(),
            out_adj: CsrAdjacency::default(),
            in_adj: CsrAdjacency::default(),
            prop_keys: self.prop_keys.clone(),
            prop_key_idx: self.prop_key_idx.clone(),
        }
    }

    /// Name of an interned property key.
    pub fn prop_key_name(&self, id: PropKeyId) -> &str {
        &self.prop_keys[id.index()]
    }

    /// Look up a vertex property by key id: O(1) column access. Returns an
    /// owned value ([`PropValue`] is cheap to materialise from typed storage;
    /// strings are `Arc`-shared).
    #[inline]
    pub fn vertex_prop(&self, v: VertexId, key: PropKeyId) -> Option<PropValue> {
        self.vertex_props.get(
            self.vertex_labels[v.index()],
            self.vertex_in_label_offset[v.index()],
            key,
        )
    }

    /// Look up a vertex property by name.
    pub fn vertex_prop_by_name(&self, v: VertexId, name: &str) -> Option<PropValue> {
        self.prop_key(name).and_then(|k| self.vertex_prop(v, k))
    }

    /// Look up an edge property by key id: O(1) column access.
    #[inline]
    pub fn edge_prop(&self, e: EdgeId, key: PropKeyId) -> Option<PropValue> {
        self.edge_props.get(
            self.edge_labels[e.index()],
            self.edge_in_label_offset[e.index()],
            key,
        )
    }

    /// Look up an edge property by name.
    pub fn edge_prop_by_name(&self, e: EdgeId, name: &str) -> Option<PropValue> {
        self.prop_key(name).and_then(|k| self.edge_prop(e, k))
    }

    /// The typed property column of `(vertex label, key)`, when populated —
    /// the column-slice entry point of the batch kernels.
    #[inline]
    pub fn vertex_prop_column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        self.vertex_props.column(label, key)
    }

    /// The typed property column of `(edge label, key)`, when populated.
    #[inline]
    pub fn edge_prop_column(&self, label: LabelId, key: PropKeyId) -> Option<&TypedColumn> {
        self.edge_props.column(label, key)
    }

    /// The typed cell holding `v`'s `key` property: the `(label, key)` column
    /// plus the vertex's row within it. `None` when no vertex of `v`'s label
    /// carries the key.
    #[inline]
    pub fn vertex_prop_cell(&self, v: VertexId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.vertex_props.cell(
            self.vertex_labels[v.index()],
            self.vertex_in_label_offset[v.index()],
            key,
        )
    }

    /// The vertex property column store (for the statistics layer).
    pub(crate) fn vertex_prop_columns(&self) -> &PropColumns {
        &self.vertex_props
    }

    /// The edge property column store (for the statistics layer).
    pub(crate) fn edge_prop_columns(&self) -> &PropColumns {
        &self.edge_props
    }

    /// The typed cell holding `e`'s `key` property.
    #[inline]
    pub fn edge_prop_cell(&self, e: EdgeId, key: PropKeyId) -> Option<ColumnRef<'_>> {
        self.edge_props.cell(
            self.edge_labels[e.index()],
            self.edge_in_label_offset[e.index()],
            key,
        )
    }

    /// Extract a schema from the data itself: one vertex label per observed label,
    /// and edge-label endpoint pairs from the observed (src-label, dst-label) pairs.
    ///
    /// This models the paper's Remark 6.1: for schema-loose backends such as Neo4j the
    /// schema needed by type inference can be recovered from the stored data.
    pub fn extract_schema(&self) -> GraphSchema {
        let mut s = GraphSchema::new();
        for id in self.schema.vertex_label_ids() {
            s.add_vertex_label(
                self.schema.vertex_label_name(id).to_string(),
                self.schema.vertex_label_def(id).properties.clone(),
            )
            .expect("labels are unique");
        }
        // declare edge labels with endpoints observed in the data only
        let mut observed: Vec<Vec<(LabelId, LabelId)>> =
            vec![Vec::new(); self.schema.edge_label_count()];
        for i in 0..self.edge_labels.len() {
            let pair = (
                self.vertex_labels[self.edge_srcs[i].index()],
                self.vertex_labels[self.edge_dsts[i].index()],
            );
            if !observed[self.edge_labels[i].index()].contains(&pair) {
                observed[self.edge_labels[i].index()].push(pair);
            }
        }
        for id in self.schema.edge_label_ids() {
            s.add_edge_label(
                self.schema.edge_label_name(id).to_string(),
                observed[id.index()].clone(),
                self.schema.edge_label_def(id).properties.clone(),
            )
            .expect("labels are unique");
        }
        s
    }
}

#[derive(Debug, Clone)]
struct PendingVertex {
    label: LabelId,
    props: Box<[(PropKeyId, PropValue)]>,
}

#[derive(Debug, Clone)]
struct PendingEdge {
    label: LabelId,
    src: VertexId,
    dst: VertexId,
    props: Box<[(PropKeyId, PropValue)]>,
}

/// Builder for [`PropertyGraph`].
///
/// Records are buffered row-wise during insertion; [`GraphBuilder::finish`]
/// performs the column scatter and CSR construction in O(V + E).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    schema: GraphSchema,
    vertices: Vec<PendingVertex>,
    edges: Vec<PendingEdge>,
    prop_keys: Vec<String>,
    prop_key_idx: HashMap<String, PropKeyId>,
    /// When true (default), added edges are checked against the schema's endpoint pairs.
    validate: bool,
}

impl GraphBuilder {
    /// Start building a graph that conforms to `schema`.
    pub fn new(schema: GraphSchema) -> Self {
        GraphBuilder {
            schema,
            vertices: Vec::new(),
            edges: Vec::new(),
            prop_keys: Vec::new(),
            prop_key_idx: HashMap::new(),
            validate: true,
        }
    }

    /// Disable schema validation of edge endpoints (useful for schema-loose ingestion).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// The schema being built against.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    fn intern(&mut self, name: &str) -> PropKeyId {
        if let Some(id) = self.prop_key_idx.get(name) {
            return *id;
        }
        let id = PropKeyId(self.prop_keys.len() as u16);
        self.prop_keys.push(name.to_string());
        self.prop_key_idx.insert(name.to_string(), id);
        id
    }

    fn intern_props(&mut self, props: Vec<(&str, PropValue)>) -> Box<[(PropKeyId, PropValue)]> {
        props
            .into_iter()
            .map(|(k, v)| (self.intern(k), v))
            .collect::<Vec<_>>()
            .into_boxed_slice()
    }

    /// Add a vertex with the given label and properties; returns its id.
    pub fn add_vertex(
        &mut self,
        label: LabelId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<VertexId, GraphError> {
        if label.index() >= self.schema.vertex_label_count() {
            return Err(GraphError::InvalidLabelId(label.0));
        }
        let props = self.intern_props(props);
        let id = VertexId(self.vertices.len() as u64);
        self.vertices.push(PendingVertex { label, props });
        Ok(id)
    }

    /// Add a vertex looking the label up by name.
    pub fn add_vertex_by_name(
        &mut self,
        label: &str,
        props: Vec<(&str, PropValue)>,
    ) -> Result<VertexId, GraphError> {
        let l = self
            .schema
            .vertex_label(label)
            .ok_or_else(|| GraphError::UnknownLabel(label.to_string()))?;
        self.add_vertex(l, props)
    }

    /// Add an edge with the given label and properties; returns its id.
    pub fn add_edge(
        &mut self,
        label: LabelId,
        src: VertexId,
        dst: VertexId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<EdgeId, GraphError> {
        if label.index() >= self.schema.edge_label_count() {
            return Err(GraphError::InvalidLabelId(label.0));
        }
        let sv = self
            .vertices
            .get(src.index())
            .ok_or(GraphError::InvalidVertex(src.0))?;
        let dv = self
            .vertices
            .get(dst.index())
            .ok_or(GraphError::InvalidVertex(dst.0))?;
        if self.validate && !self.schema.can_connect(sv.label, label, dv.label) {
            return Err(GraphError::SchemaViolation {
                edge_label: self.schema.edge_label_name(label).to_string(),
                src_label: self.schema.vertex_label_name(sv.label).to_string(),
                dst_label: self.schema.vertex_label_name(dv.label).to_string(),
            });
        }
        let props = self.intern_props(props);
        let id = EdgeId(self.edges.len() as u64);
        self.edges.push(PendingEdge {
            label,
            src,
            dst,
            props,
        });
        Ok(id)
    }

    /// Add an edge looking the label up by name.
    pub fn add_edge_by_name(
        &mut self,
        label: &str,
        src: VertexId,
        dst: VertexId,
        props: Vec<(&str, PropValue)>,
    ) -> Result<EdgeId, GraphError> {
        let l = self
            .schema
            .edge_label(label)
            .ok_or_else(|| GraphError::UnknownLabel(label.to_string()))?;
        self.add_edge(l, src, dst, props)
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalise the graph: flatten adjacency into CSR arrays and scatter
    /// properties into per-(label, key) columns.
    pub fn finish(self) -> PropertyGraph {
        let n = self.vertices.len();
        let n_vlabels = self.schema.vertex_label_count();
        let n_elabels = self.schema.edge_label_count();
        let n_keys = self.prop_keys.len();

        // vertex columns + label partitions + in-label offsets
        let mut vertex_labels = Vec::with_capacity(n);
        let mut vertex_in_label_offset = Vec::with_capacity(n);
        let mut vertices_by_label: Vec<Vec<VertexId>> = vec![Vec::new(); n_vlabels];
        for (i, v) in self.vertices.iter().enumerate() {
            vertex_labels.push(v.label);
            let part = &mut vertices_by_label[v.label.index()];
            vertex_in_label_offset.push(part.len() as u32);
            part.push(VertexId(i as u64));
        }
        let vertex_label_sizes: Vec<usize> = vertices_by_label.iter().map(|p| p.len()).collect();

        // edge columns + per-label counts + in-label offsets
        let ne = self.edges.len();
        let mut edge_labels = Vec::with_capacity(ne);
        let mut edge_srcs = Vec::with_capacity(ne);
        let mut edge_dsts = Vec::with_capacity(ne);
        let mut edge_in_label_offset = Vec::with_capacity(ne);
        let mut edge_count_by_label = vec![0u64; n_elabels];
        for e in &self.edges {
            edge_labels.push(e.label);
            edge_srcs.push(e.src);
            edge_dsts.push(e.dst);
            edge_in_label_offset.push(edge_count_by_label[e.label.index()] as u32);
            edge_count_by_label[e.label.index()] += 1;
        }
        let edge_label_sizes: Vec<usize> =
            edge_count_by_label.iter().map(|&c| c as usize).collect();

        // CSR adjacency per direction
        let out_adj = CsrAdjacency::build(
            n,
            n_elabels,
            &edge_labels,
            |i| edge_srcs[i],
            |i| edge_dsts[i],
        );
        let in_adj = CsrAdjacency::build(
            n,
            n_elabels,
            &edge_labels,
            |i| edge_dsts[i],
            |i| edge_srcs[i],
        );

        // property column scatter
        let vertex_props = PropColumns::build(
            n_keys,
            &vertex_label_sizes,
            self.vertices
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.label, vertex_in_label_offset[i], v.props)),
        );
        let edge_props = PropColumns::build(
            n_keys,
            &edge_label_sizes,
            self.edges
                .into_iter()
                .enumerate()
                .map(|(i, e)| (e.label, edge_in_label_offset[i], e.props)),
        );

        // register the inferred per-(label, key) value types in the schema so
        // the optimizer's type inference can consult them (declared types win;
        // Mixed columns register nothing)
        let mut schema = self.schema;
        for (label, key, col) in vertex_props.iter_columns() {
            if let Some(kind) = col.kind() {
                schema.register_vertex_prop_type(label, &self.prop_keys[key.index()], kind);
            }
        }
        for (label, key, col) in edge_props.iter_columns() {
            if let Some(kind) = col.kind() {
                schema.register_edge_prop_type(label, &self.prop_keys[key.index()], kind);
            }
        }

        static NEXT_BUILD_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        PropertyGraph {
            schema,
            build_id: NEXT_BUILD_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            vertex_labels,
            vertex_in_label_offset,
            vertices_by_label,
            vertex_props,
            edge_labels,
            edge_srcs,
            edge_dsts,
            edge_in_label_offset,
            edge_count_by_label,
            edge_props,
            out_adj,
            in_adj,
            prop_keys: self.prop_keys,
            prop_key_idx: self.prop_key_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::fig6_schema;

    fn small_graph() -> PropertyGraph {
        // 2 persons, 1 product, 1 place
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let p1 = b
            .add_vertex_by_name("Person", vec![("name", PropValue::str("alice"))])
            .unwrap();
        let p2 = b
            .add_vertex_by_name("Person", vec![("name", PropValue::str("bob"))])
            .unwrap();
        let prod = b
            .add_vertex_by_name("Product", vec![("name", PropValue::str("widget"))])
            .unwrap();
        let place = b
            .add_vertex_by_name("Place", vec![("name", PropValue::str("China"))])
            .unwrap();
        b.add_edge_by_name("Knows", p1, p2, vec![]).unwrap();
        b.add_edge_by_name("Purchases", p1, prod, vec![]).unwrap();
        b.add_edge_by_name("LocatedIn", p2, place, vec![]).unwrap();
        b.add_edge_by_name(
            "ProducedIn",
            prod,
            place,
            vec![("year", PropValue::Int(2020))],
        )
        .unwrap();
        b.finish()
    }

    #[test]
    fn counts_and_labels() {
        let g = small_graph();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let person = g.schema().vertex_label("Person").unwrap();
        assert_eq!(g.vertex_count_by_label(person), 2);
        assert_eq!(g.vertices_with_label(person).len(), 2);
        let knows = g.schema().edge_label("Knows").unwrap();
        assert_eq!(g.edge_count_by_label(knows), 1);
        assert_eq!(g.vertex_ids().count(), 4);
        assert_eq!(g.edge_ids().count(), 4);
    }

    #[test]
    fn adjacency_and_expansion() {
        let g = small_graph();
        let p1 = VertexId(0);
        let p2 = VertexId(1);
        let place = VertexId(3);
        assert_eq!(g.out_degree(p1), 2);
        assert_eq!(g.in_degree(place), 2);
        let knows = g.schema().edge_label("Knows").unwrap();
        let adj = g.out_edges_with_label(p1, knows);
        assert_eq!(adj.len(), 1);
        assert_eq!(adj[0].neighbor, p2);
        assert!(g.has_edge(p1, knows, p2));
        assert!(!g.has_edge(p2, knows, p1));
        assert_eq!(g.edges_between(p1, knows, p2).len(), 1);
        assert_eq!(g.first_edge_between(p1, knows, p2), Some(EdgeId(0)));
        assert_eq!(g.first_edge_between(p2, knows, p1), None);
        let located = g.schema().edge_label("LocatedIn").unwrap();
        assert!(g.out_edges_with_label(p1, located).is_empty());
        // out-of-range labels are empty, not a panic
        assert!(g.out_edges_with_label(p1, LabelId(999)).is_empty());
        assert!(!g.has_edge(p1, LabelId(999), p2));
        // edge endpoints
        let e0 = EdgeId(0);
        assert_eq!(g.edge_endpoints(e0), (p1, p2));
        assert_eq!(g.edge_label(e0), knows);
        // columnar accessors line up with the record accessors
        assert_eq!(g.edge_label_column()[0], knows);
        assert_eq!(g.edge_source_column()[0], p1);
        assert_eq!(g.edge_target_column()[0], p2);
        assert_eq!(g.vertex_label_column()[0], g.vertex_label(p1));
        assert_eq!(g.out_adjacency().degree(p1), 2);
        assert_eq!(g.in_adjacency().degree(place), 2);
    }

    #[test]
    fn full_adjacency_is_grouped_by_label() {
        let g = small_graph();
        let p1 = VertexId(0);
        let all = g.out_edges(p1);
        assert_eq!(all.len(), 2);
        // groups appear in ascending label order
        assert!(all.windows(2).all(|w| w[0].edge_label <= w[1].edge_label));
        // the concatenation of per-label slices equals the full slice
        let mut concat: Vec<Adj> = Vec::new();
        for l in g.schema().edge_label_ids() {
            concat.extend_from_slice(g.out_edges_with_label(p1, l));
        }
        assert_eq!(concat, all);
    }

    #[test]
    fn parallel_edges_form_a_contiguous_run() {
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let p1 = b.add_vertex_by_name("Person", vec![]).unwrap();
        let p2 = b.add_vertex_by_name("Person", vec![]).unwrap();
        let p3 = b.add_vertex_by_name("Person", vec![]).unwrap();
        let e1 = b.add_edge_by_name("Knows", p1, p2, vec![]).unwrap();
        b.add_edge_by_name("Knows", p1, p3, vec![]).unwrap();
        let e3 = b.add_edge_by_name("Knows", p1, p2, vec![]).unwrap();
        let g = b.finish();
        let knows = g.schema().edge_label("Knows").unwrap();
        let run = g.edges_between(p1, knows, p2);
        assert_eq!(run.len(), 2);
        assert_eq!(run[0].edge, e1, "parallel edges sorted by edge id");
        assert_eq!(run[1].edge, e3);
        assert_eq!(g.first_edge_between(p1, knows, p2), Some(e1));
        assert_eq!(g.edges_between(p1, knows, p3).len(), 1);
        assert!(g.edges_between(p2, knows, p1).is_empty());
    }

    #[test]
    fn properties_are_interned_and_retrievable() {
        let g = small_graph();
        let p1 = VertexId(0);
        assert_eq!(
            g.vertex_prop_by_name(p1, "name"),
            Some(PropValue::str("alice"))
        );
        assert!(g.vertex_prop_by_name(p1, "missing").is_none());
        let e3 = EdgeId(3);
        assert_eq!(g.edge_prop_by_name(e3, "year"), Some(PropValue::Int(2020)));
        // edges without the property return None even when the column exists
        assert!(g.edge_prop_by_name(EdgeId(0), "year").is_none());
        let key = g.prop_key("name").unwrap();
        assert_eq!(g.prop_key_name(key), "name");
        // out-of-range key ids return None
        assert!(g.vertex_prop(p1, PropKeyId(999)).is_none());
    }

    #[test]
    fn duplicate_property_keys_keep_the_first_value() {
        // the builder does not reject duplicate keys; the pre-columnar layout
        // returned the first occurrence and the column scatter must agree
        let mut b = GraphBuilder::new(fig6_schema());
        let v = b
            .add_vertex_by_name(
                "Person",
                vec![("name", PropValue::Int(1)), ("name", PropValue::Int(2))],
            )
            .unwrap();
        let w = b.add_vertex_by_name("Person", vec![]).unwrap();
        let e = b
            .add_edge_by_name(
                "Knows",
                v,
                w,
                vec![("since", PropValue::Int(3)), ("since", PropValue::Int(4))],
            )
            .unwrap();
        let g = b.finish();
        assert_eq!(g.vertex_prop_by_name(v, "name"), Some(PropValue::Int(1)));
        assert_eq!(g.edge_prop_by_name(e, "since"), Some(PropValue::Int(3)));
    }

    #[test]
    fn schema_violation_is_detected() {
        let schema = fig6_schema();
        let mut b = GraphBuilder::new(schema);
        let place = b.add_vertex_by_name("Place", vec![]).unwrap();
        let person = b.add_vertex_by_name("Person", vec![]).unwrap();
        // LocatedIn goes Person -> Place, not the reverse
        let err = b.add_edge_by_name("LocatedIn", place, person, vec![]);
        assert!(matches!(err, Err(GraphError::SchemaViolation { .. })));
        // without validation the edge is accepted
        let mut b2 = GraphBuilder::new(fig6_schema()).without_validation();
        let place = b2.add_vertex_by_name("Place", vec![]).unwrap();
        let person = b2.add_vertex_by_name("Person", vec![]).unwrap();
        assert!(b2
            .add_edge_by_name("LocatedIn", place, person, vec![])
            .is_ok());
    }

    #[test]
    fn unknown_names_error() {
        let mut b = GraphBuilder::new(fig6_schema());
        assert!(matches!(
            b.add_vertex_by_name("Alien", vec![]),
            Err(GraphError::UnknownLabel(_))
        ));
        let v = b.add_vertex_by_name("Person", vec![]).unwrap();
        assert!(matches!(
            b.add_edge_by_name("Flies", v, v, vec![]),
            Err(GraphError::UnknownLabel(_))
        ));
        assert!(b.add_edge(LabelId(99), v, v, vec![]).is_err());
        assert!(b.add_vertex(LabelId(99), vec![]).is_err());
        assert!(b
            .add_edge_by_name("Knows", v, VertexId(42), vec![])
            .is_err());
    }

    #[test]
    fn extract_schema_reflects_observed_endpoints() {
        let g = small_graph();
        let extracted = g.extract_schema();
        let person = extracted.vertex_label("Person").unwrap();
        let place = extracted.vertex_label("Place").unwrap();
        let located = extracted.edge_label("LocatedIn").unwrap();
        assert!(extracted.can_connect(person, located, place));
        assert_eq!(
            extracted.vertex_label_count(),
            g.schema().vertex_label_count()
        );
        assert_eq!(extracted.edge_label_count(), g.schema().edge_label_count());
    }
}
