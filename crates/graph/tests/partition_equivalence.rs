//! Property-based equivalence tests for partition routing: merging all
//! [`GraphShard`]s of a [`PartitionedGraph`] must reproduce the monolithic
//! layout — and therefore the naive `Vec<Vec<Adj>>` reference
//! ([`gopt_graph::reference::NaiveGraph`]) — exactly, for every partition
//! count. This is the storage-level guarantee the morsel executor relies on:
//! expanding through the façade reads only the owning shard, yet sees
//! precisely the monolithic adjacency slices.

use gopt_graph::graph::GraphBuilder;
use gopt_graph::reference::{Insertion, NaiveGraph};
use gopt_graph::schema::fig6_schema;
use gopt_graph::view::GraphView;
use gopt_graph::{
    Adj, LabelId, PartitionedGraph, PropKeyId, PropType, PropValue, PropertyGraph, VertexId,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PROP_KEYS: [&str; 4] = ["id", "name", "weight", "since"];

/// Random insertion sequence over the fig6 schema, replayed into the CSR
/// layout and the naive reference (same generator as `csr_equivalence.rs`).
fn random_layouts(seed: u64, n_vertices: usize, n_edges: usize) -> (PropertyGraph, NaiveGraph) {
    let schema = fig6_schema();
    let n_vlabels = schema.vertex_label_count() as u16;
    let n_elabels = schema.edge_label_count() as u16;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(schema).without_validation();
    let mut insertions = Vec::new();

    // per-key value kinds chosen to exercise every typed-column layout:
    // `id` stays Int (dense typed), `name` mixes Str and Int cells (Mixed
    // fallback), `weight` is Float, `since` is Date — all sparse, so null
    // bitmaps are exercised too
    let random_props = |rng: &mut SmallRng| {
        let mut props: Vec<(&'static str, PropValue)> = Vec::new();
        for key in PROP_KEYS {
            if rng.gen_bool(0.4) {
                let n = rng.gen_range(0i64..1000);
                props.push((
                    key,
                    match key {
                        "id" => PropValue::Int(n),
                        "name" => {
                            if n % 2 == 0 {
                                PropValue::str(format!("n{n}"))
                            } else {
                                PropValue::Int(n)
                            }
                        }
                        "weight" => PropValue::Float(n as f64 / 8.0),
                        _ => PropValue::Date(n),
                    },
                ));
            }
        }
        props
    };

    for _ in 0..n_vertices {
        let label = LabelId(rng.gen_range(0u16..n_vlabels));
        let props = random_props(&mut rng);
        b.add_vertex(label, props.clone()).unwrap();
        insertions.push(Insertion::Vertex {
            label,
            props: interned(&props),
        });
    }
    for _ in 0..n_edges {
        let label = LabelId(rng.gen_range(0u16..n_elabels));
        let src = VertexId(rng.gen_range(0u64..n_vertices as u64));
        let dst = VertexId(rng.gen_range(0u64..n_vertices as u64));
        let props = random_props(&mut rng);
        b.add_edge(label, src, dst, props.clone()).unwrap();
        insertions.push(Insertion::Edge {
            label,
            src,
            dst,
            props: interned(&props),
        });
    }
    (b.finish(), NaiveGraph::from_insertions(&insertions))
}

fn interned(props: &[(&'static str, PropValue)]) -> Vec<(PropKeyId, PropValue)> {
    props
        .iter()
        .map(|(k, v)| (naive_key(k), v.clone()))
        .collect()
}

fn naive_key(name: &str) -> PropKeyId {
    PropKeyId(PROP_KEYS.iter().position(|p| *p == name).unwrap() as u16)
}

/// The core property: every shard slice equals the corresponding monolithic
/// (and naive-reference) slice, and the shards partition the vertex and edge
/// sets without loss or duplication.
fn assert_sharding_agrees(g: &PropertyGraph, naive: &NaiveGraph, partitions: usize) {
    let pg = PartitionedGraph::build(g, partitions);
    assert_eq!(pg.partitions(), partitions);
    assert_eq!(pg.vertex_count(), naive.vertex_count());
    assert_eq!(pg.edge_count(), naive.edge_count());
    let n_elabels = GraphView::schema(g).edge_label_count() as u16;

    // shards partition the vertices: disjoint, exhaustive, correctly routed
    let mut seen = vec![false; naive.vertex_count()];
    for (p, shard) in pg.shards().iter().enumerate() {
        for (local, &v) in shard.vertices().iter().enumerate() {
            assert_eq!(pg.partition_of(v), p, "vertex {v} routed to shard {p}");
            assert_eq!(pg.local_index(v), local);
            assert!(!seen[v.index()], "vertex {v} appears in two shards");
            seen[v.index()] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "every vertex lands in some shard");

    // merged shard adjacency == naive reference, per vertex and per label
    let mut merged_out = 0usize;
    for v in g.vertex_ids() {
        assert_eq!(
            pg.out_edges(v).collect::<Vec<_>>(),
            naive.out_edges(v),
            "out adjacency of {v}"
        );
        assert_eq!(
            pg.in_edges(v).collect::<Vec<_>>(),
            naive.in_edges(v),
            "in adjacency of {v}"
        );
        merged_out += pg.out_edges(v).count();
        for l in 0..n_elabels + 2 {
            let l = LabelId(l);
            assert_eq!(
                GraphView::out_edges_with_label(&pg, v, l).to_vec(),
                naive.out_edges_with_label(v, l),
                "out[{v}, {l}]"
            );
            assert_eq!(
                GraphView::in_edges_with_label(&pg, v, l).to_vec(),
                naive.in_edges_with_label(v, l),
                "in[{v}, {l}]"
            );
        }
        // vertex properties now answered by the shard's typed columns, both
        // through the scalar read and the typed cell accessor
        for key in PROP_KEYS {
            let got = GraphView::vertex_prop_by_name(&pg, v, key);
            let want = naive.vertex_prop(v, naive_key(key)).cloned();
            assert_eq!(got, want, "vertex prop {key} of {v}");
            if let Some(k) = g.prop_key(key) {
                let cell = GraphView::vertex_prop_cell(&pg, v, k);
                assert_eq!(
                    cell.and_then(|c| c.value()),
                    want,
                    "typed cell of {key} on {v}"
                );
                assert_eq!(
                    g.vertex_prop_cell(v, k).and_then(|c| c.value()),
                    GraphView::vertex_prop(&pg, v, k),
                    "monolithic vs sharded typed cell of {key} on {v}"
                );
            }
        }
    }
    assert_eq!(merged_out, naive.edge_count(), "no edge lost or duplicated");

    // connectivity probes through the façade
    for v in g.vertex_ids() {
        for w in g.vertex_ids() {
            for l in 0..n_elabels {
                let l = LabelId(l);
                assert_eq!(GraphView::has_edge(&pg, v, l, w), naive.has_edge(v, l, w));
                let run: Vec<_> = GraphView::edges_between(&pg, v, l, w)
                    .iter()
                    .map(|a| a.edge)
                    .collect();
                assert_eq!(run, naive.edges_between(v, l, w), "edges {v} -[{l}]-> {w}");
            }
        }
    }

    // edge catalog (labels, endpoints, properties) is global and intact
    for e in g.edge_ids() {
        assert_eq!(GraphView::edge_label(&pg, e), naive.edge_label(e));
        assert_eq!(GraphView::edge_endpoints(&pg, e), naive.edge_endpoints(e));
        for key in PROP_KEYS {
            let got = GraphView::edge_prop_by_name(&pg, e, key);
            assert_eq!(
                got,
                naive.edge_prop(e, naive_key(key)).cloned(),
                "edge prop of {e}"
            );
        }
    }

    // flattening all shards' local CSRs reproduces the monolithic entry
    // multiset (same entries, independent of which shard stores them)
    let mut from_shards: Vec<Adj> = Vec::new();
    for shard in pg.shards() {
        for local in 0..shard.vertex_count() {
            from_shards.extend(shard.out_edges_local(local));
        }
    }
    let mut from_mono: Vec<Adj> = Vec::new();
    for v in g.vertex_ids() {
        from_mono.extend(g.out_edges(v));
    }
    let key = |a: &Adj| (a.edge_label, a.edge, a.neighbor);
    from_shards.sort_unstable_by_key(key);
    from_mono.sort_unstable_by_key(key);
    assert_eq!(from_shards, from_mono);

    // every shard's typed property columns hold exactly the naive cells of
    // the shard's local vertices (in local in-label order) and infer a typed
    // kind iff all non-null local cells share one kind
    for shard in pg.shards() {
        for key in PROP_KEYS {
            let Some(k) = g.prop_key(key) else { continue };
            for l in 0..GraphView::schema(g).vertex_label_count() as u16 {
                let l = LabelId(l);
                let cells: Vec<Option<PropValue>> = shard
                    .vertices()
                    .iter()
                    .filter(|&&v| g.vertex_label(v) == l)
                    .map(|&v| naive.vertex_prop(v, naive_key(key)).cloned())
                    .collect();
                let col = shard.prop_column(l, k);
                if cells.iter().all(|c| c.is_none()) {
                    if let Some(col) = col {
                        assert!((0..col.len()).all(|r| col.get(r).is_none()));
                    }
                    continue;
                }
                let col = col.expect("a column with data exists");
                assert_eq!(col.len(), cells.len(), "column rows of ({l}, {key})");
                for (r, want) in cells.iter().enumerate() {
                    assert_eq!(col.get(r), *want, "cell {r} of ({l}, {key})");
                }
                let kinds: Vec<PropType> = cells.iter().flatten().map(kind_of).collect();
                let expect = if kinds.windows(2).all(|w| w[0] == w[1]) {
                    Some(kinds[0])
                } else {
                    None
                };
                assert_eq!(
                    col.kind(),
                    expect,
                    "inferred kind of shard column ({l}, {key})"
                );
            }
        }
    }
}

fn kind_of(v: &PropValue) -> PropType {
    match v {
        PropValue::Int(_) => PropType::Int,
        PropValue::Float(_) => PropType::Float,
        PropValue::Bool(_) => PropType::Bool,
        PropValue::Date(_) => PropType::Date,
        PropValue::Str(_) => PropType::Str,
        PropValue::Null => unreachable!("generator never stores explicit nulls"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_layout_equals_naive_reference(
        seed in 0u64..10_000,
        vertices in 2usize..20,
        edges in 0usize..100,
        partitions in 1usize..6,
    ) {
        let (g, naive) = random_layouts(seed, vertices, edges);
        assert_sharding_agrees(&g, &naive, partitions);
    }
}

/// Hand-built dense / sparse / mixed / all-null columns keep their typed
/// answers (and sensible layouts) at every partition count.
#[test]
fn typed_columns_survive_sharding_dense_sparse_mixed_and_all_null() {
    let mut b = GraphBuilder::new(fig6_schema());
    let mut persons = Vec::new();
    for i in 0..8i64 {
        let mut props = vec![("id", PropValue::Int(i))];
        if i % 2 == 0 {
            props.push(("since", PropValue::Date(100 + i)));
        }
        // mixed globally, but partition 1 of a 4-way split only ever sees Ints
        props.push(if i == 0 {
            ("name", PropValue::str("zero"))
        } else {
            ("name", PropValue::Int(i))
        });
        persons.push(b.add_vertex_by_name("Person", props).unwrap());
    }
    let place = b
        .add_vertex_by_name("Place", vec![("weight", PropValue::Float(2.5))])
        .unwrap();
    let g = b.finish();
    let person = g.schema().vertex_label("Person").unwrap();
    let id = g.prop_key("id").unwrap();
    let since = g.prop_key("since").unwrap();
    let name = g.prop_key("name").unwrap();
    let weight = g.prop_key("weight").unwrap();

    // monolithic layout: dense Int, sparse Date, mixed fallback
    assert_eq!(
        g.vertex_prop_column(person, id).unwrap().kind(),
        Some(PropType::Int)
    );
    assert_eq!(
        g.vertex_prop_column(person, since).unwrap().kind(),
        Some(PropType::Date)
    );
    assert_eq!(g.vertex_prop_column(person, name).unwrap().kind(), None);
    assert!(
        g.vertex_prop_column(person, weight).is_none(),
        "all-null column is absent"
    );

    for parts in [1usize, 2, 4] {
        let pg = PartitionedGraph::build(&g, parts);
        for (i, &v) in persons.iter().enumerate() {
            let i = i as i64;
            assert_eq!(GraphView::vertex_prop(&pg, v, id), Some(PropValue::Int(i)));
            assert_eq!(
                GraphView::vertex_prop(&pg, v, since),
                (i % 2 == 0).then(|| PropValue::Date(100 + i)),
                "sparse cell of v{i} at p={parts}"
            );
            // the all-null key has no column in any shard
            assert!(GraphView::vertex_prop_cell(&pg, v, weight).is_none());
            let cell = GraphView::vertex_prop_cell(&pg, v, id).unwrap();
            assert_eq!(cell.value(), Some(PropValue::Int(i)));
        }
        assert_eq!(
            GraphView::vertex_prop(&pg, place, weight),
            Some(PropValue::Float(2.5))
        );
        // dense columns stay typed in every shard that holds Persons
        for shard in pg.shards() {
            if let Some(col) = shard.prop_column(person, id) {
                assert_eq!(col.kind(), Some(PropType::Int));
            }
        }
        if parts == 4 {
            // shard 0 holds v0 (Str) and v4 (Int) → Mixed; shard 1 holds
            // v1, v5 (both Int) → the shard re-infers a typed layout even
            // though the global column is Mixed
            assert_eq!(pg.shard(0).prop_column(person, name).unwrap().kind(), None);
            assert_eq!(
                pg.shard(1).prop_column(person, name).unwrap().kind(),
                Some(PropType::Int)
            );
        }
    }
}

#[test]
fn sharding_handles_more_partitions_than_vertices() {
    let (g, naive) = random_layouts(3, 2, 10);
    assert_sharding_agrees(&g, &naive, 7);
}

#[test]
fn sharding_handles_dense_multigraphs() {
    let (g, naive) = random_layouts(11, 4, 150);
    for p in [1, 2, 3, 4] {
        assert_sharding_agrees(&g, &naive, p);
    }
}
